// Fig. 5 — QCrank grayscale-image encoding: Qiskit on a CPU node vs
// Q-Gear on one A100, across the Table 2 image configurations
// (5k-98k pixels, 3M-98M shots, fp64).
//
// The paper's mechanisms, reproduced by the model:
//   * runtime scales with pixel count on both sides (cx count == pixels);
//   * the CPU baseline evolves the unitary redundantly per core but
//     samples on all 128 cores in parallel;
//   * the GPU evolves fast but samples serially, so the speedup — almost
//     two orders of magnitude for small images — shrinks as the shot
//     budget grows with image size.
// The measured section runs the smallest configuration end-to-end on
// this host (15-qubit Finger-sized problem, real sampling).

#include "bench/bench_util.hpp"
#include "qgear/circuits/qcrank.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

namespace {

void report_paper_scale() {
  bench::heading(
      "Fig 5 (modeled): QCrank images, CPU node vs one A100 (fp64)");
  bench::Table table({"image", "pixels", "qubits", "shots", "cpu-node",
                      "1x A100", "speedup"});
  for (const auto& cfg : image::paper_image_table()) {
    const circuits::QCrank codec({.address_qubits = cfg.address_qubits,
                                  .data_qubits = cfg.data_qubits});
    const image::Image img = image::make_paper_image(cfg);
    // Build the real circuit (cheap: gate list only, no state).
    std::vector<double> values(img.pixels.begin(), img.pixels.end());
    const auto qc = codec.encode(values);

    perfmodel::CpuBaselineConfig cpu_cfg;
    cpu_cfg.precision = core::Precision::fp64;
    cpu_cfg.mode = perfmodel::CpuBaselineConfig::Mode::per_core_unitary;
    const auto cpu = perfmodel::estimate_cpu(qc, cpu_cfg, cfg.shots);

    perfmodel::ClusterConfig gpu_cfg;
    gpu_cfg.precision = core::Precision::fp64;
    gpu_cfg.include_container_start = false;
    const auto gpu = perfmodel::estimate_gpu(qc, gpu_cfg, cfg.shots);

    std::string speedup = "-";
    if (cpu.feasible && gpu.feasible) {
      speedup = strfmt("%.0fx", cpu.total_s() / gpu.total_s());
    }
    table.row({cfg.name, std::to_string(cfg.gray_pixels()),
               strfmt("%u+%u", cfg.address_qubits, cfg.data_qubits),
               strfmt("%.0fM", static_cast<double>(cfg.shots) / 1e6),
               bench::time_cell(cpu.feasible, cpu.total_s()),
               bench::time_cell(gpu.feasible, gpu.total_s()), speedup});
  }
  table.print();
  std::printf(
      "expected shape: runtime grows with pixel count on both curves; "
      "speedup ~O(100x) for the small images, decreasing for the large "
      "ones as GPU-side sampling grows with the shot budget.\n");
}

void report_measured_local() {
  bench::heading(
      "Fig 5 (measured on this host): Finger-sized QCrank end-to-end");
  // Finger: 10 address + 5 data qubits, 5120 pixels, 3000 shots/address.
  const auto cfg = image::paper_image_table()[0];
  const circuits::QCrank codec({.address_qubits = cfg.address_qubits,
                                .data_qubits = cfg.data_qubits});
  const image::Image img = image::make_paper_image(cfg);
  const auto qc = codec.encode(
      std::vector<double>(img.pixels.begin(), img.pixels.end()));

  bench::Table table({"engine", "evolve+sample", "sweeps"});
  // Shots reduced 10x to keep the bench under a few seconds on one core.
  const std::uint64_t shots = cfg.shots / 10;
  {
    core::Transformer cpu({.target = core::Target::cpu_aer,
                           .precision = core::Precision::fp64});
    bench::StageTimer timer("fig5.per_gate");
    const auto r = cpu.run(qc, {.shots = shots});
    table.row({"aer-style (per-gate)", human_seconds(timer.seconds()),
               std::to_string(r.stats.sweeps)});
  }
  {
    core::Transformer gpu({.target = core::Target::nvidia,
                           .precision = core::Precision::fp64});
    bench::StageTimer timer("fig5.fused_w5");
    const auto r = gpu.run(qc, {.shots = shots});
    table.row({"fused (w=5)", human_seconds(timer.seconds()),
               std::to_string(r.stats.sweeps)});
  }
  table.print();
  std::printf("(%llu shots, %zu cx gates == pixel count %llu)\n",
              static_cast<unsigned long long>(shots), qc.num_2q_gates(),
              static_cast<unsigned long long>(cfg.gray_pixels()));
}

void bm_qcrank_encode_circuit(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const circuits::QCrank codec({.address_qubits = m, .data_qubits = 4});
  std::vector<double> values(codec.capacity(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(values));
  }
  state.counters["pixels"] = static_cast<double>(codec.capacity());
}
BENCHMARK(bm_qcrank_encode_circuit)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

void bm_qcrank_decode_counts(benchmark::State& state) {
  const circuits::QCrank codec({.address_qubits = 8, .data_qubits = 4});
  sim::Counts counts;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_u64(pow2(12))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_counts(counts));
  }
}
BENCHMARK(bm_qcrank_decode_counts)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_paper_scale();
  report_measured_local();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("fig5_qcrank_speedup");
  return 0;
}
