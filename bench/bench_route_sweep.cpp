// Route-sweep validation: does the autotuner's choice hold up against an
// exhaustive measured sweep of its own candidate space?
//
// For each routing-suite circuit (qft12 / random12 / ghz40 — the same
// set `qgear_cli calibrate` measures and CI's route-smoke job runs),
// route::plan ranks backend x precision x ISA x fusion width, then this
// bench *measures* every feasible candidate whose estimate is tractable
// and compares the autotuned choice against the measured optimum. The
// contract (EXPERIMENTS.md): the choice lands within 10% of the best
// measured config, and never more than 2x worse.
//
// Calibration comes from Calibration::host_default(), so point
// QGEAR_ROUTE_CALIBRATION at bench/baselines/route/calibration.json (or
// a fresh `qgear_cli calibrate` output) to exercise the measured-table
// blending; with built-in constants the 10% bar is not expected to hold
// on every host, and the bench says which mode it ran in.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/route/route.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/isa.hpp"

using namespace qgear;

namespace {

/// Best-of-`repeats` wall time of a full backend run (init + apply) of
/// the candidate's exact configuration, active ISA included. Min, not
/// median: at the sub-millisecond scale of the small suite circuits
/// scheduler noise only ever adds time, so the minimum is the stable
/// estimator of the config's real cost.
double measure_candidate(const qiskit::QuantumCircuit& qc,
                         const route::Candidate& cand,
                         const sim::BackendOptions& base, unsigned repeats) {
  sim::BackendOptions bo = base;
  bo.fp32 = cand.config.precision == "fp32";
  if (cand.config.fusion_width > 0)
    bo.fusion.max_width = cand.config.fusion_width;
  const sim::Isa prev = sim::active_isa();
  sim::set_active_isa(cand.config.isa);
  double best = 0.0;
  for (unsigned r = 0; r < repeats; ++r) {
    auto b = sim::Backend::create(cand.config.backend, bo);
    b->init_state(qc.num_qubits());
    WallTimer timer;
    std::vector<unsigned> measured;
    b->apply_circuit(qc, &measured);
    const double wall = timer.seconds();
    if (best == 0.0 || wall < best) best = wall;
    if (wall > 1.0) break;  // slow configs don't need noise suppression
  }
  sim::set_active_isa(prev);
  return best;
}

std::string config_label(const route::CandidateConfig& cfg) {
  std::string s = cfg.backend + "/" + cfg.precision + "/" +
                  sim::isa_name(cfg.isa);
  if (cfg.fusion_width > 0) s += "/w" + std::to_string(cfg.fusion_width);
  return s;
}

struct SweepOutcome {
  std::string circuit;
  std::string chosen;
  std::string best;
  double chosen_s = 0.0;
  double best_s = 0.0;
  std::size_t swept = 0;
  std::size_t skipped = 0;
};

/// Re-measures two near-tied candidates interleaved (A,B,A,B,...) so
/// drift (thermal, page cache, allocator state) hits both equally; the
/// single-pass sweep measures each config in a different machine state,
/// which at the ~100us scale of the small suite circuits is enough to
/// flip a ranking.
void refine_pair(const qiskit::QuantumCircuit& qc,
                 const route::Candidate& chosen, const route::Candidate& best,
                 const sim::BackendOptions& base, unsigned rounds,
                 double* chosen_s, double* best_s) {
  for (unsigned r = 0; r < rounds; ++r) {
    const double a = measure_candidate(qc, chosen, base, 1);
    const double b = measure_candidate(qc, best, base, 1);
    if (*chosen_s == 0.0 || a < *chosen_s) *chosen_s = a;
    if (*best_s == 0.0 || b < *best_s) *best_s = b;
  }
}

SweepOutcome sweep_circuit(const std::string& label,
                           const qiskit::QuantumCircuit& qc,
                           const route::RouteOptions& ropts,
                           double est_cap_s, unsigned repeats) {
  bench::subheading("sweep: " + label);
  route::Budget budget;
  budget.max_error = 1e-4;
  const route::Placement p = route::plan(qc, budget, ropts);

  SweepOutcome out;
  out.circuit = label;
  bench::Table table({"config", "est", "measured", "note"});
  double best_s = 0.0;
  std::string best_label;
  double chosen_s = 0.0;
  const route::Candidate* best_cand = nullptr;
  for (const route::Candidate& cand : p.alternatives) {
    if (!cand.feasible) continue;
    // Tractability cap: on the no-memory-budget sweep a 2^40 statevector
    // candidate is "feasible" but takes hours; everything skipped is
    // counted and printed, never silently dropped.
    if (cand.seconds > est_cap_s) {
      ++out.skipped;
      continue;
    }
    const double wall = measure_candidate(qc, cand, ropts.base, repeats);
    ++out.swept;
    const bool is_choice =
        p.feasible && config_label(cand.config) == config_label(p.choice.config);
    if (is_choice) chosen_s = wall;
    if (best_s == 0.0 || wall < best_s) {
      best_s = wall;
      best_label = config_label(cand.config);
      best_cand = &cand;
    }
    table.row({config_label(cand.config), human_seconds(cand.seconds),
               human_seconds(wall), is_choice ? "<- chosen" : ""});
  }
  table.print();
  if (p.feasible && best_cand != nullptr &&
      config_label(best_cand->config) != config_label(p.choice.config)) {
    refine_pair(qc, p.choice, *best_cand, ropts.base, 10, &chosen_s, &best_s);
    std::printf("  refined (interleaved best-of-10): chosen %s, best %s\n",
                human_seconds(chosen_s).c_str(),
                human_seconds(best_s).c_str());
    if (chosen_s <= best_s) best_label = config_label(p.choice.config);
  }
  if (out.skipped > 0) {
    std::printf("  (%zu candidate(s) over the %.0fs estimate cap skipped)\n",
                out.skipped, est_cap_s);
  }
  out.chosen = p.feasible ? config_label(p.choice.config) : "(infeasible)";
  out.best = best_label;
  out.chosen_s = chosen_s;
  out.best_s = best_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  bench::heading("Route sweep: autotuned choice vs exhaustive measurement");
  const route::RouteOptions ropts;  // host_default() calibration
  std::printf("calibration: %s\n",
              ropts.calibration.source.empty() ? "built-in defaults"
                                               : ropts.calibration.source.c_str());

  auto qft12 = circuits::build_qft(12, {});
  auto random12 = circuits::generate_random_circuit(
      {.num_qubits = 12, .num_blocks = 120, .seed = 1});
  qiskit::QuantumCircuit ghz40(40, "ghz40");
  ghz40.h(0);
  for (unsigned q = 0; q + 1 < 40; ++q) ghz40.cx(q, q + 1);

  const double est_cap_s = 10.0;
  const unsigned repeats = 5;
  std::vector<SweepOutcome> outcomes;
  outcomes.push_back(
      sweep_circuit("qft12", qft12, ropts, est_cap_s, repeats));
  outcomes.push_back(
      sweep_circuit("random12", random12, ropts, est_cap_s, repeats));
  outcomes.push_back(
      sweep_circuit("ghz40", ghz40, ropts, est_cap_s, repeats));

  bench::heading("Verdict (contract: within 10% of best, never >2x)");
  bench::Table verdict({"circuit", "chosen", "best measured", "chosen/best",
                        "<=1.1x", "<=2x"});
  bool all_within_2x = true;
  for (const SweepOutcome& o : outcomes) {
    // >= 1 by construction: a chosen config that re-measures faster than
    // the sweep's "best" just means the single-pass winner was noise.
    const double ratio = o.best_s > 0.0 && o.chosen_s > 0.0
                             ? std::max(1.0, o.chosen_s / o.best_s)
                             : 0.0;
    all_within_2x = all_within_2x && ratio > 0.0 && ratio <= 2.0;
    verdict.row({o.circuit, o.chosen, o.best, strfmt("%.2fx", ratio),
                 ratio > 0.0 && ratio <= 1.1 ? "yes" : "NO",
                 ratio > 0.0 && ratio <= 2.0 ? "yes" : "NO"});
    bench::StageLog::global().record("route_sweep." + o.circuit + ".ratio",
                                     ratio);
  }
  verdict.print();

  // Pure report bench — no google-benchmark timers to run.
  (void)argc;
  (void)argv;
  bench::write_report("route_sweep");
  return all_within_2x ? 0 : 1;
}
