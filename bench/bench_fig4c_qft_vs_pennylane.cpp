// Fig. 4c — QFT circuit execution time on a 4x A100 cluster: Q-Gear
// (direct kernel mapping) vs Pennylane lightning.gpu (which re-transpiles
// high-level circuit representations into kernels on every invocation).
//
// Reports:
//   (1) modeled paper-scale series, 16-33 qubits on 4 GPUs — Q-Gear wins
//       everywhere and the gap widens with circuit size (the O(n^2) QFT
//       gate count multiplies the per-gate lowering cost);
//   (2) measured local series — both run the same fused engine here, with
//       the Pennylane baseline paying its modeled overheads on top.

#include "bench/bench_util.hpp"
#include "qgear/baselines/pennylane.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

namespace {

void report_paper_scale() {
  bench::heading(
      "Fig 4c (modeled): QFT on 4x A100, Q-Gear vs Pennylane-like");
  bench::Table table({"qubits", "cr1 gates", "q-gear", "pennylane",
                      "ratio"});
  for (unsigned n = 16; n <= 33; n += 1) {
    const auto qft = circuits::build_qft(n);
    perfmodel::ClusterConfig cfg;
    cfg.gpu = perfmodel::a100_80gb();
    cfg.devices = 4;
    cfg.include_container_start = false;
    cfg.precision = core::Precision::fp32;
    const auto qgear = perfmodel::estimate_gpu(qft, cfg, /*shots=*/100);
    const auto penny = baselines::estimate_pennylane(qft, cfg, 100);
    std::string ratio = "-";
    if (qgear.feasible && penny.feasible) {
      ratio = strfmt("%.1fx", penny.total_s() / qgear.total_s());
    }
    table.row({std::to_string(n),
               std::to_string(circuits::qft_cp_gate_count(n)),
               bench::time_cell(qgear.feasible, qgear.total_s()),
               bench::time_cell(penny.feasible, penny.total_s()), ratio});
  }
  table.print();
  std::printf(
      "expected shape: Q-Gear consistently faster, and the absolute gap "
      "widens with circuit size — per-invocation lowering scales with "
      "the n^2 gate count and the baseline's shallower fusion costs "
      "extra full-state sweeps.\n");
}

void report_measured_local() {
  bench::heading(
      "Fig 4c (measured on this host): QFT, fused engine vs +overheads");
  bench::Table table({"qubits", "q-gear", "pennylane-like", "ratio"});
  for (unsigned n = 10; n <= 18; n += 2) {
    const auto qft = circuits::build_qft(n);
    const core::TransformerOptions engine{
        .target = core::Target::nvidia, .precision = core::Precision::fp32};
    core::Transformer t(engine);
    bench::StageTimer timer("fig4c.qgear_run");
    t.run(qft);
    const double qgear_s = timer.seconds();
    const auto penny = baselines::run_pennylane_like(qft, engine);
    table.row({std::to_string(n), human_seconds(qgear_s),
               human_seconds(penny.total_s()),
               strfmt("%.1fx", penny.total_s() / qgear_s)});
  }
  table.print();
}

void bm_qft_fused(benchmark::State& state) {
  const auto qft = circuits::build_qft(static_cast<unsigned>(state.range(0)));
  core::Transformer t({.target = core::Target::nvidia,
                       .precision = core::Precision::fp32});
  const core::Kernel k = core::Kernel::from_circuit(qft);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["qubits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_qft_fused)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void bm_qft_build(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuits::build_qft(static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(bm_qft_build)->Arg(20)->Arg(33)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_paper_scale();
  report_measured_local();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("fig4c_qft_vs_pennylane");
  return 0;
}
