// Fig. 4b — scaling 3,000-block random circuits of 30-42 qubits over
// A100 clusters of 4-1024 GPUs (modeled; 80 GB parts as in the paper's
// "gpu&hbm80g" runs).
//
// The figure's key features to reproduce:
//   * each curve grows ~2^n with qubit count;
//   * larger clusters unlock larger circuits (memory) and shorten runs;
//   * the highlighted 39->40-qubit region where the 1024-GPU cluster
//     LOSES to 256 GPUs — in our model (as the paper conjectures) the
//     extra global qubits of the 1024-GPU layout cross rack boundaries,
//     paying reduced Slingshot bandwidth, and large allocations are more
//     likely to include cold (unwarmed) nodes.
// A measured local section validates the distributed engine's scaling
// shape on this host at small n.

#include "bench/bench_util.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

namespace {

qiskit::QuantumCircuit blocks(unsigned n, std::uint64_t count,
                              std::uint64_t seed = 4) {
  return circuits::generate_random_circuit(
      {.num_qubits = n, .num_blocks = count, .measure = false,
       .seed = seed});
}

void report_paper_scale() {
  bench::heading(
      "Fig 4b (modeled): 3000-block random circuits, 30-42 qubits, "
      "4-1024 A100-80GB GPUs");
  const std::vector<int> clusters = {4, 16, 64, 256, 1024};
  std::vector<std::string> cols = {"qubits"};
  for (int c : clusters) cols.push_back(std::to_string(c) + " GPUs");
  bench::Table table(cols);

  for (unsigned n = 30; n <= 42; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    const auto qc = blocks(n, 3000);
    for (int devices : clusters) {
      perfmodel::ClusterConfig cfg;
      cfg.gpu = perfmodel::a100_80gb();
      cfg.devices = devices;
      cfg.precision = core::Precision::fp32;
      const auto e = perfmodel::estimate_gpu(qc, cfg);
      row.push_back(bench::time_cell(e.feasible, e.total_s()));
    }
    table.row(row);
  }
  table.print();

  // The highlighted region: compare 256 vs 1024 GPUs at 39 and 40 qubits.
  bench::subheading("highlighted region (39 -> 40 qubits)");
  for (unsigned n : {39u, 40u}) {
    const auto qc = blocks(n, 3000);
    for (int devices : {256, 1024}) {
      perfmodel::ClusterConfig cfg;
      cfg.gpu = perfmodel::a100_80gb();
      cfg.devices = devices;
      cfg.precision = core::Precision::fp32;
      const auto e = perfmodel::estimate_gpu(qc, cfg);
      if (!e.feasible) {
        std::printf("  n=%u %4d GPUs: infeasible (%s)\n", n, devices,
                    e.infeasible_reason.c_str());
        continue;
      }
      std::printf(
          "  n=%u %4d GPUs: total %-10s (compute %-9s comm %-9s "
          "startup %-8s)\n",
          n, devices, human_seconds(e.total_s()).c_str(),
          human_seconds(e.compute_s).c_str(),
          human_seconds(e.comm_s).c_str(),
          human_seconds(e.startup_s).c_str());
    }
  }
  std::printf(
      "expected shape: at 40 qubits the 1024-GPU cluster is no faster "
      "(or slower) than 256 GPUs — cross-rack exchange + cold-node "
      "startup eat the added parallelism.\n");
}

void report_measured_local() {
  bench::heading(
      "Fig 4b (measured on this host): distributed engine, rank sweep");
  bench::Table table({"qubits", "ranks", "wall", "comm bytes"});
  for (unsigned n : {12u, 14u}) {
    const auto qc = blocks(n, 200);
    const core::Kernel kernel = core::Kernel::from_circuit(qc);
    for (int ranks : {1, 2, 4, 8}) {
      core::Transformer t({.target = core::Target::nvidia_mgpu,
                           .precision = core::Precision::fp32,
                           .devices = ranks});
      const auto r = t.run(kernel);
      table.row({std::to_string(n), std::to_string(ranks),
                 human_seconds(r.wall_seconds),
                 human_bytes(r.comm_bytes)});
    }
  }
  table.print();
  std::printf(
      "expected shape: comm bytes grow with rank count (more global "
      "qubits), the schedule the model prices at paper scale.\n");
}

void bm_distributed_ranks(benchmark::State& state) {
  const auto qc = blocks(12, 100);
  const core::Kernel k = core::Kernel::from_circuit(qc);
  core::Transformer t({.target = core::Target::nvidia_mgpu,
                       .precision = core::Precision::fp32,
                       .devices = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["ranks"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_distributed_ranks)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_paper_scale();
  report_measured_local();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
