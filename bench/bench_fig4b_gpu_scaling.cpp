// Fig. 4b — scaling 3,000-block random circuits of 30-42 qubits over
// A100 clusters of 4-1024 GPUs (modeled; 80 GB parts as in the paper's
// "gpu&hbm80g" runs).
//
// The figure's key features to reproduce:
//   * each curve grows ~2^n with qubit count;
//   * larger clusters unlock larger circuits (memory) and shorten runs;
//   * the highlighted 39->40-qubit region where the 1024-GPU cluster
//     LOSES to 256 GPUs — in our model (as the paper conjectures) the
//     extra global qubits of the 1024-GPU layout cross rack boundaries,
//     paying reduced Slingshot bandwidth, and large allocations are more
//     likely to include cold (unwarmed) nodes.
// A measured local section validates the distributed engine's scaling
// shape on this host at small n.

#include <thread>

#include "bench/bench_util.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/dist/runner.hpp"
#include "qgear/obs/context.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

namespace {

qiskit::QuantumCircuit blocks(unsigned n, std::uint64_t count,
                              std::uint64_t seed = 4) {
  return circuits::generate_random_circuit(
      {.num_qubits = n, .num_blocks = count, .measure = false,
       .seed = seed});
}

/// One measured distributed run for the qgear.dist.report/v1 JSON.
struct DistRun {
  std::string circuit;
  int ranks = 0;
  bool remap = false;
  double wall_seconds = 0.0;
  std::uint64_t exchange_bytes = 0;
  std::uint64_t slab_swaps = 0;
  std::uint64_t exchange_bytes_saved = 0;
  std::uint64_t nvlink_bytes = 0;     ///< slab-exchange payload, NVLink tier
  std::uint64_t internode_bytes = 0;  ///< slab-exchange payload, inter-node
  std::uint64_t trace_id = 0;  ///< correlates the run with its trace spans
  std::vector<dist::RankObsSummary> per_rank;
};

std::vector<DistRun>& dist_runs() {
  static std::vector<DistRun> runs;
  return runs;
}

/// Measured ablation of the communication-avoiding schedule: the same
/// circuits under the baseline fused per-gate schedule vs remap + chunked
/// exchanges + pooled sweeps.
void report_remap_ablation() {
  bench::heading(
      "remap ablation (measured): baseline fused schedule vs "
      "remap+chunk+threads, fp32");
  bench::Table table({"circuit", "ranks", "schedule", "wall",
                      "exchange bytes", "nvlink", "internode", "slab swaps",
                      "bytes saved"});
  // Width 2 keeps the fused local sweeps bandwidth-bound; at wider fusion
  // the remapped schedule's long local runs pack dense width-5 blocks whose
  // extra FLOPs mask the communication win on a CPU host.
  const std::vector<std::pair<std::string, qiskit::QuantumCircuit>> cases = {
      {"qft20", circuits::build_qft(20, {.do_swaps = true})},
      {"random20", blocks(20, 300)},
  };
  for (const auto& [name, qc] : cases) {
    for (int ranks : {4, 8, 16}) {
      const std::uint64_t baseline_total =
          dist::schedule_exchange_bytes_total(
              qc, qc.num_qubits() - log2_exact(std::uint64_t(ranks)),
              sizeof(std::complex<float>));
      for (const bool remap : {false, true}) {
        dist::RunOptions opts{.num_ranks = ranks, .fusion_width = 2};
        if (remap) {
          opts.remap = true;
          // Pooled sweeps only pay off when the host has spare cores
          // beyond one per rank; on smaller hosts the pool's per-sweep
          // synchronization is pure overhead against in-process ranks.
          const unsigned cores = std::thread::hardware_concurrency();
          opts.threads_per_rank =
              cores >= 2u * static_cast<unsigned>(ranks) ? 2 : 0;
          // exchange_chunk_bytes stays 0: chunk size auto-derives from
          // message size and link tier (comm::auto_chunk_bytes).
        }
        const std::string schedule = remap ? "remap" : "baseline";
        const std::string stage =
            "remap_ablation/" + name + "/r" + std::to_string(ranks) + "/" +
            schedule;
        double wall = 0.0;
        dist::RunResult<float> res;
        {
          bench::StageTimer timer(stage);
          res = dist::run_distributed<float>(qc, opts);
          wall = timer.seconds();
        }
        const std::uint64_t bytes = res.circuit_exchange_bytes;
        const std::uint64_t saved =
            baseline_total > bytes ? baseline_total - bytes : 0;
        std::uint64_t nvlink = 0;
        std::uint64_t internode = 0;
        for (const dist::RankObsSummary& r : res.rank_obs) {
          nvlink += r.nvlink_bytes;
          internode += r.internode_bytes;
        }
        table.row({name, std::to_string(ranks), schedule,
                   human_seconds(wall), human_bytes(bytes),
                   human_bytes(nvlink), human_bytes(internode),
                   std::to_string(res.remap_slab_swaps),
                   human_bytes(saved)});
        dist_runs().push_back({name, ranks, remap, wall, bytes,
                               res.remap_slab_swaps, saved, nvlink,
                               internode, res.trace_id, res.rank_obs});
      }
    }
  }
  table.print();
  std::printf(
      "expected shape: the remapped schedule exchanges >= 2x fewer bytes "
      "on both circuits and wins wall-clock on the random blocks at every "
      "rank count; qft stays compute-bound here because its global-qubit "
      "gates are mostly diagonal (comm-free either way).\n");
}

/// Modeled paper-scale pricing of the remapped schedule.
void report_modeled_remap() {
  bench::subheading("modeled: remapped schedule at paper scale (fp32)");
  bench::Table table({"circuit", "GPUs", "schedule", "total", "comm",
                      "comm bytes/dev"});
  const std::vector<std::pair<std::string, qiskit::QuantumCircuit>> cases = {
      {"qft36", circuits::build_qft(36, {.do_swaps = true})},
      {"random36", blocks(36, 3000)},
  };
  for (const auto& [name, qc] : cases) {
    for (int devices : {64, 256}) {
      for (const bool remap : {false, true}) {
        perfmodel::ClusterConfig cfg;
        cfg.gpu = perfmodel::a100_80gb();
        cfg.devices = devices;
        cfg.precision = core::Precision::fp32;
        cfg.include_container_start = false;
        cfg.remap = remap;
        const auto e = perfmodel::estimate_gpu(qc, cfg);
        table.row({name, std::to_string(devices),
                   remap ? "remap" : "per-gate",
                   bench::time_cell(e.feasible, e.total_s()),
                   bench::time_cell(e.feasible, e.comm_s),
                   human_bytes(e.comm_bytes_per_device)});
      }
    }
  }
  table.print();
}

/// Writes the qgear.dist.report/v1 JSON when QGEAR_DIST_REPORT names a
/// file (validated in CI against docs/dist_report.schema.json).
void write_dist_report() {
  const char* path = std::getenv("QGEAR_DIST_REPORT");
  if (path == nullptr || *path == '\0') return;
  obs::JsonValue root{obs::JsonValue::Object{}};
  root.set("schema", "qgear.dist.report/v1");
  root.set("bench", "bench_fig4b_gpu_scaling");
  obs::JsonValue runs{obs::JsonValue::Array{}};
  for (const DistRun& run : dist_runs()) {
    obs::JsonValue entry{obs::JsonValue::Object{}};
    entry.set("circuit", run.circuit);
    entry.set("ranks", static_cast<double>(run.ranks));
    entry.set("remap", run.remap);
    entry.set("wall_seconds", run.wall_seconds);
    entry.set("exchange_bytes", static_cast<double>(run.exchange_bytes));
    entry.set("slab_swaps", static_cast<double>(run.slab_swaps));
    entry.set("exchange_bytes_saved",
              static_cast<double>(run.exchange_bytes_saved));
    obs::JsonValue tier_bytes{obs::JsonValue::Object{}};
    tier_bytes.set("nvlink", static_cast<double>(run.nvlink_bytes));
    tier_bytes.set("internode", static_cast<double>(run.internode_bytes));
    entry.set("tier_bytes", std::move(tier_bytes));
    entry.set("trace_id", obs::trace_id_hex(run.trace_id));
    obs::JsonValue per_rank{obs::JsonValue::Array{}};
    for (const dist::RankObsSummary& r : run.per_rank) {
      obs::JsonValue rank_entry{obs::JsonValue::Object{}};
      rank_entry.set("exchange_bytes", static_cast<double>(r.exchange_bytes));
      rank_entry.set("nvlink_bytes", static_cast<double>(r.nvlink_bytes));
      rank_entry.set("internode_bytes",
                     static_cast<double>(r.internode_bytes));
      rank_entry.set("spans", static_cast<double>(r.spans));
      rank_entry.set("span_seconds", r.span_seconds);
      per_rank.push_back(std::move(rank_entry));
    }
    entry.set("per_rank", std::move(per_rank));
    runs.push_back(std::move(entry));
  }
  root.set("runs", std::move(runs));
  obs::write_text_file(path, root.dump());
  std::printf("wrote dist report %s\n", path);
}

void report_paper_scale() {
  bench::heading(
      "Fig 4b (modeled): 3000-block random circuits, 30-42 qubits, "
      "4-1024 A100-80GB GPUs");
  const std::vector<int> clusters = {4, 16, 64, 256, 1024};
  std::vector<std::string> cols = {"qubits"};
  for (int c : clusters) cols.push_back(std::to_string(c) + " GPUs");
  bench::Table table(cols);

  for (unsigned n = 30; n <= 42; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    const auto qc = blocks(n, 3000);
    for (int devices : clusters) {
      perfmodel::ClusterConfig cfg;
      cfg.gpu = perfmodel::a100_80gb();
      cfg.devices = devices;
      cfg.precision = core::Precision::fp32;
      const auto e = perfmodel::estimate_gpu(qc, cfg);
      row.push_back(bench::time_cell(e.feasible, e.total_s()));
    }
    table.row(row);
  }
  table.print();

  // The highlighted region: compare 256 vs 1024 GPUs at 39 and 40 qubits.
  bench::subheading("highlighted region (39 -> 40 qubits)");
  for (unsigned n : {39u, 40u}) {
    const auto qc = blocks(n, 3000);
    for (int devices : {256, 1024}) {
      perfmodel::ClusterConfig cfg;
      cfg.gpu = perfmodel::a100_80gb();
      cfg.devices = devices;
      cfg.precision = core::Precision::fp32;
      const auto e = perfmodel::estimate_gpu(qc, cfg);
      if (!e.feasible) {
        std::printf("  n=%u %4d GPUs: infeasible (%s)\n", n, devices,
                    e.infeasible_reason.c_str());
        continue;
      }
      std::printf(
          "  n=%u %4d GPUs: total %-10s (compute %-9s comm %-9s "
          "startup %-8s)\n",
          n, devices, human_seconds(e.total_s()).c_str(),
          human_seconds(e.compute_s).c_str(),
          human_seconds(e.comm_s).c_str(),
          human_seconds(e.startup_s).c_str());
    }
  }
  std::printf(
      "expected shape: at 40 qubits the 1024-GPU cluster is no faster "
      "(or slower) than 256 GPUs — cross-rack exchange + cold-node "
      "startup eat the added parallelism.\n");
}

void report_measured_local() {
  bench::heading(
      "Fig 4b (measured on this host): distributed engine, rank sweep");
  bench::Table table({"qubits", "ranks", "wall", "comm bytes"});
  for (unsigned n : {12u, 14u}) {
    const auto qc = blocks(n, 200);
    const core::Kernel kernel = core::Kernel::from_circuit(qc);
    for (int ranks : {1, 2, 4, 8}) {
      core::Transformer t({.target = core::Target::nvidia_mgpu,
                           .precision = core::Precision::fp32,
                           .devices = ranks});
      const auto r = t.run(kernel);
      table.row({std::to_string(n), std::to_string(ranks),
                 human_seconds(r.wall_seconds),
                 human_bytes(r.comm_bytes)});
    }
  }
  table.print();
  std::printf(
      "expected shape: comm bytes grow with rank count (more global "
      "qubits), the schedule the model prices at paper scale.\n");
}

void bm_distributed_ranks(benchmark::State& state) {
  const auto qc = blocks(12, 100);
  const core::Kernel k = core::Kernel::from_circuit(qc);
  core::Transformer t({.target = core::Target::nvidia_mgpu,
                       .precision = core::Precision::fp32,
                       .devices = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["ranks"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_distributed_ranks)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_paper_scale();
  report_modeled_remap();
  report_measured_local();
  report_remap_ablation();
  write_dist_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("fig4b_gpu_scaling");
  return 0;
}
