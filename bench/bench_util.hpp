// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary prints its figure/table as a report (modeled
// paper-scale series and/or measured local series), then runs its
// google-benchmark timers for the locally-measured kernels. Conventions:
// rows are tab-separated "key value" series so they can be plotted
// directly; EXPERIMENTS.md records the shapes we expect.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "qgear/common/strings.hpp"

namespace qgear::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void row(const std::vector<std::string>& cells) {
    rows_.push_back(cells);
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      rule.push_back(std::string(widths[c], '-'));
    }
    print_row(rule);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.2 s" / "3.4 ms" / "n/a" formatting for estimate cells.
inline std::string time_cell(bool feasible, double seconds,
                             const std::string& reason = "") {
  if (!feasible) return reason.empty() ? "infeasible" : reason;
  return human_seconds(seconds);
}

}  // namespace qgear::bench
