// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary prints its figure/table as a report (modeled
// paper-scale series and/or measured local series), then runs its
// google-benchmark timers for the locally-measured kernels. Conventions:
// rows are tab-separated "key value" series so they can be plotted
// directly; EXPERIMENTS.md records the shapes we expect.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/obs/exporter.hpp"
#include "qgear/obs/json.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/perfcount.hpp"
#include "qgear/obs/trace.hpp"

namespace qgear::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void row(const std::vector<std::string>& cells) {
    rows_.push_back(cells);
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      rule.push_back(std::string(widths[c], '-'));
    }
    print_row(rule);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.2 s" / "3.4 ms" / "n/a" formatting for estimate cells.
inline std::string time_cell(bool feasible, double seconds,
                             const std::string& reason = "") {
  if (!feasible) return reason.empty() ? "infeasible" : reason;
  return human_seconds(seconds);
}

/// Process-wide log of named stage timings, emitted in the JSON report.
class StageLog {
 public:
  static StageLog& global() {
    static StageLog& log = *new StageLog();
    return log;
  }

  void record(const std::string& stage, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    stages_.emplace_back(stage, seconds);
  }

  obs::JsonValue to_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::JsonValue arr{obs::JsonValue::Array{}};
    for (const auto& [stage, seconds] : stages_) {
      obs::JsonValue entry{obs::JsonValue::Object{}};
      entry.set("name", stage);
      entry.set("wall_seconds", seconds);
      arr.push_back(std::move(entry));
    }
    return arr;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, double>> stages_;
};

/// Wall-clock stage timer for benches: same `seconds()` interface as
/// WallTimer, but additionally opens an obs span (visible when tracing is
/// enabled via QGEAR_BENCH_TRACE) and logs the stage's total lifetime into
/// the process-wide StageLog for the JSON report.
class StageTimer {
 public:
  explicit StageTimer(std::string stage)
      : stage_(std::move(stage)),
        span_(obs::Tracer::global(), "bench.stage", "bench") {
    if (span_.active()) span_.arg("stage", stage_);
  }

  ~StageTimer() { StageLog::global().record(stage_, timer_.seconds()); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void reset() { timer_.reset(); }
  double seconds() const { return timer_.seconds(); }
  double millis() const { return timer_.millis(); }

 private:
  std::string stage_;
  obs::Span span_;
  WallTimer timer_;
};

/// Periodic file-snapshot writer for batch benches (no scrape endpoint):
/// started by init_observability() when QGEAR_SNAPSHOT_PREFIX is set.
inline obs::SnapshotWriter& snapshot_writer() {
  static obs::SnapshotWriter& writer = *new obs::SnapshotWriter();
  return writer;
}

/// Call first in main():
///   QGEAR_BENCH_TRACE=<file>       turns on span recording
///   QGEAR_PERF=1                   turns on hardware-counter sampling
///   QGEAR_SNAPSHOT_PREFIX=<prefix> periodic metric/trace file snapshots
///   QGEAR_SNAPSHOT_PERIOD_S=<s>    snapshot cadence (default 10)
inline void init_observability() {
  const char* trace = std::getenv("QGEAR_BENCH_TRACE");
  if (trace != nullptr && *trace != '\0') {
    obs::Tracer::global().set_enabled(true);
  }
  const char* perf = std::getenv("QGEAR_PERF");
  if (perf != nullptr && *perf != '\0' && std::string(perf) != "0") {
    obs::PerfCounters::set_enabled(true);
  }
  const char* prefix = std::getenv("QGEAR_SNAPSHOT_PREFIX");
  if (prefix != nullptr && *prefix != '\0') {
    obs::SnapshotWriter::Options wopts;
    wopts.prefix = prefix;
    const char* period = std::getenv("QGEAR_SNAPSHOT_PERIOD_S");
    if (period != nullptr && *period != '\0') {
      wopts.period_s = std::atof(period);
    }
    snapshot_writer().start(wopts);
  }
}

/// Call last in main(): writes the shared-schema JSON report (stage wall
/// clocks + the full metrics registry) to QGEAR_BENCH_REPORT, and the
/// Chrome trace to QGEAR_BENCH_TRACE. No-ops when the env vars are unset.
inline void write_report(const std::string& bench_name) {
  snapshot_writer().stop();
  const char* trace = std::getenv("QGEAR_BENCH_TRACE");
  if (trace != nullptr && *trace != '\0') {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.set_enabled(false);
    tracer.write_trace_json(trace);
    std::printf("wrote trace %s (%llu spans)\n", trace,
                static_cast<unsigned long long>(tracer.recorded()));
  }
  const char* path = std::getenv("QGEAR_BENCH_REPORT");
  if (path == nullptr || *path == '\0') return;
  obs::JsonValue root{obs::JsonValue::Object{}};
  root.set("schema", "qgear.bench.report/v1");
  root.set("bench", bench_name);
  root.set("stages", StageLog::global().to_json());
  root.set("metrics",
           obs::JsonValue::parse(obs::Registry::global().snapshot().to_json()));
  if (obs::PerfCounters::enabled()) {
    // Whether the kernel actually granted counters (perf.regions > 0 in
    // metrics when it did); lets report consumers distinguish "perf off"
    // from "perf requested but unavailable in this container".
    obs::JsonValue perf{obs::JsonValue::Object{}};
    perf.set("requested", true);
    perf.set("available", obs::PerfCounters::supported());
    root.set("perf", std::move(perf));
  }
  obs::write_text_file(path, root.dump());
  std::printf("wrote report %s\n", path);
}

}  // namespace qgear::bench
