// Chaos harness: drives the serving plane and the comm exchange under
// injected faults and verifies the resilience machinery holds the SLO.
//
// Phases:
//   serve-baseline  — identical workload, injector disarmed (reference
//                     latency + a hook-overhead probe with an armed but
//                     never-firing plan)
//   serve-chaos     — worker faults + synthetic OOM at the configured
//                     rates; retries, degradation, and checkpoints must
//                     carry completion above the SLO floor
//   comm-chaos      — two-rank resilient chunked exchange under dropped
//                     chunks; every element must land intact
//
// Contract (enforced by the exit code, asserted by CI's chaos-smoke job):
// completion rate >= 99%, zero crashes, comm integrity byte-perfect.
// Report: qgear.chaos.report/v1 (docs/chaos_report.schema.json) written
// to --report <path> or $QGEAR_CHAOS_REPORT.
//
// Fault rates come from --fault-plan <spec> or $QGEAR_FAULT_PLAN (see
// docs/RESILIENCE.md for the spec grammar); the default exercises 5%
// worker faults, 2% OOM, and 5% dropped comm chunks.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "qgear/comm/comm.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/fault/fault.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/serve/service.hpp"

using namespace qgear;

namespace {

constexpr const char* kDefaultPlan =
    "seed=1;serve.worker=0.05;backend.oom=0.02;comm.drop=0.05";

qiskit::QuantumCircuit workload_circuit(unsigned index) {
  // Small but non-trivial, varied so the compilation cache does not
  // collapse the whole run onto one artifact.
  qiskit::QuantumCircuit qc(5 + index % 3);
  const double phase = 0.05 + 0.01 * static_cast<double>(index % 17);
  for (unsigned l = 0; l < 4; ++l) {
    for (unsigned q = 0; q < qc.num_qubits(); ++q) {
      qc.h(q).ry(phase + 0.01 * static_cast<double>(l), q);
    }
    for (unsigned q = 0; q + 1 < qc.num_qubits(); ++q) qc.cx(q, q + 1);
  }
  return qc;
}

double percentile_us(std::vector<double>& seconds, double pct) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const auto idx = static_cast<std::size_t>(
      pct * static_cast<double>(seconds.size() - 1));
  return seconds[idx] * 1e6;
}

struct ServeOutcome {
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retried_jobs = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t degraded_jobs = 0;
  std::uint64_t checkpoint_blocks_restored = 0;
  std::uint64_t crashes = 0;  // futures that threw / unexplained statuses
  double p50_us = 0.0;
  double p95_us = 0.0;
  double wall_s = 0.0;
  double completion_rate() const {
    return jobs == 0 ? 0.0
                     : static_cast<double>(completed) /
                           static_cast<double>(jobs);
  }
  obs::JsonValue to_json() const {
    obs::JsonValue o{obs::JsonValue::Object{}};
    o.set("jobs", jobs);
    o.set("completed", completed);
    o.set("failed", failed);
    o.set("dropped", dropped);
    o.set("retried_jobs", retried_jobs);
    o.set("retries_total", retries_total);
    o.set("degraded_jobs", degraded_jobs);
    o.set("checkpoint_blocks_restored", checkpoint_blocks_restored);
    o.set("crashes", crashes);
    o.set("completion_rate", completion_rate());
    o.set("p50_us", p50_us);
    o.set("p95_us", p95_us);
    o.set("wall_seconds", wall_s);
    return o;
  }
};

ServeOutcome run_serve_workload(unsigned jobs, unsigned workers) {
  serve::SimService::Options opts;
  opts.workers = workers;
  opts.scheduler.capacity = jobs + 16;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_ms = 1.0;
  opts.checkpoint_every = 8;
  ServeOutcome out;
  out.jobs = jobs;
  WallTimer wall;
  serve::SimService svc(opts);
  std::vector<serve::JobTicket> tickets;
  tickets.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.tenant = "t" + std::to_string(i % 3);
    spec.circuit = workload_circuit(i);
    tickets.push_back(svc.submit(std::move(spec)));
  }
  svc.drain();
  std::vector<double> latencies;
  latencies.reserve(jobs);
  for (auto& t : tickets) {
    if (!t.accepted()) {
      ++out.crashes;  // capacity is sized to never reject
      continue;
    }
    try {
      const serve::JobResult r = t.result().get();
      switch (r.status) {
        case serve::JobStatus::completed:
          ++out.completed;
          latencies.push_back(r.e2e_s);
          break;
        case serve::JobStatus::failed:
          ++out.failed;
          break;
        case serve::JobStatus::dropped:
          ++out.dropped;
          break;
        case serve::JobStatus::cancelled:
        case serve::JobStatus::timed_out:
        case serve::JobStatus::deadline_expired:
          ++out.crashes;  // nothing here cancels or sets deadlines
          break;
      }
      if (r.attempts > 1) {
        ++out.retried_jobs;
        out.retries_total += r.attempts - 1;
      }
      if (r.degraded) ++out.degraded_jobs;
      out.checkpoint_blocks_restored += r.checkpoint_blocks;
    } catch (const std::exception& e) {
      ++out.crashes;
      std::fprintf(stderr, "job future threw: %s\n", e.what());
    }
  }
  out.wall_s = wall.seconds();
  out.p50_us = percentile_us(latencies, 0.50);
  out.p95_us = percentile_us(latencies, 0.95);
  return out;
}

struct CommOutcome {
  std::uint64_t elements = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t crashes = 0;
  double wall_s = 0.0;
  obs::JsonValue to_json() const {
    obs::JsonValue o{obs::JsonValue::Object{}};
    o.set("elements", elements);
    o.set("mismatches", mismatches);
    o.set("crashes", crashes);
    o.set("integrity_ok", mismatches == 0 && crashes == 0);
    o.set("wall_seconds", wall_s);
    return o;
  }
};

CommOutcome run_comm_chaos(std::uint64_t elements) {
  CommOutcome out;
  out.elements = elements;
  std::atomic<std::uint64_t> mismatches{0};
  WallTimer wall;
  try {
    comm::World w(2);
    w.run([&](comm::Communicator& c) {
      std::vector<double> mine(elements);
      for (std::uint64_t i = 0; i < elements; ++i) {
        mine[i] = static_cast<double>(c.rank() * 1000000 + i) * 0.5;
      }
      comm::ResilienceOptions res;
      res.timeout_s = 0.05;
      res.max_resends = 100;
      const int peer = 1 - c.rank();
      c.sendrecv_chunked<double>(
          peer, 11, mine, /*chunk_elems=*/512,
          [&](std::uint64_t off, std::span<const double> chunk) {
            for (std::uint64_t i = 0; i < chunk.size(); ++i) {
              const double expect =
                  static_cast<double>(peer * 1000000 + off + i) * 0.5;
              if (chunk[i] != expect) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          },
          res);
    });
  } catch (const std::exception& e) {
    ++out.crashes;
    std::fprintf(stderr, "comm chaos crashed: %s\n", e.what());
  }
  out.wall_s = wall.seconds();
  out.mismatches = mismatches.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  unsigned jobs = 200;
  unsigned workers = 4;
  std::string plan_spec;
  std::string report_path;
  if (const char* env = std::getenv("QGEAR_FAULT_PLAN")) plan_spec = env;
  if (const char* env = std::getenv("QGEAR_CHAOS_REPORT")) report_path = env;
  for (int i = 1; i < argc; ++i) {
    const auto has_next = [&] { return i + 1 < argc; };
    if (std::strcmp(argv[i], "--jobs") == 0 && has_next()) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && has_next()) {
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && has_next()) {
      plan_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && has_next()) {
      report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_chaos [--jobs N] [--workers N] "
                   "[--fault-plan SPEC] [--report FILE]\n");
      return 2;
    }
  }
  if (plan_spec.empty()) plan_spec = kDefaultPlan;
  const fault::FaultPlan plan = fault::FaultPlan::parse(plan_spec);

  bench::heading("Chaos: resilience under injected faults");
  std::printf("fault plan: %s\n", plan.to_string().c_str());

  // Reference run, hooks present but disarmed.
  fault::FaultInjector::global().disarm();
  ServeOutcome baseline;
  {
    bench::StageTimer timer("serve_baseline");
    baseline = run_serve_workload(jobs, workers);
  }

  // Hook-overhead probe: armed with a plan that never fires, so every
  // injection site pays the full armed-path check.
  ServeOutcome armed_idle;
  {
    fault::FaultPlan never;
    never.site(fault::Site::serve_worker).probability = 1e-12;
    never.site(fault::Site::backend_oom).probability = 1e-12;
    fault::ArmScope arm(never);
    bench::StageTimer timer("serve_armed_idle");
    armed_idle = run_serve_workload(jobs, workers);
  }

  ServeOutcome chaos;
  {
    fault::ArmScope arm(plan);
    bench::StageTimer timer("serve_chaos");
    chaos = run_serve_workload(jobs, workers);
  }

  CommOutcome comm_chaos;
  {
    fault::ArmScope arm(plan);
    bench::StageTimer timer("comm_chaos");
    comm_chaos = run_comm_chaos(1 << 15);
  }

  const double inflation =
      baseline.p95_us > 0.0 ? chaos.p95_us / baseline.p95_us : 0.0;
  const double hook_overhead =
      baseline.wall_s > 0.0 ? armed_idle.wall_s / baseline.wall_s : 0.0;

  bench::Table table({"phase", "completed", "retries", "degraded", "p95",
                      "crashes"});
  const auto row = [&](const char* name, const ServeOutcome& o) {
    table.row({name,
               strfmt("%llu/%llu",
                      static_cast<unsigned long long>(o.completed),
                      static_cast<unsigned long long>(o.jobs)),
               std::to_string(o.retries_total),
               std::to_string(o.degraded_jobs),
               strfmt("%.0f us", o.p95_us), std::to_string(o.crashes)});
  };
  row("baseline", baseline);
  row("armed-idle", armed_idle);
  row("chaos", chaos);
  table.print();
  std::printf("latency inflation (chaos p95 / baseline p95): %.2fx\n",
              inflation);
  std::printf("armed-idle hook overhead: %.3fx\n", hook_overhead);
  std::printf("comm chaos: %llu elements, %llu mismatches, %llu crashes\n",
              static_cast<unsigned long long>(comm_chaos.elements),
              static_cast<unsigned long long>(comm_chaos.mismatches),
              static_cast<unsigned long long>(comm_chaos.crashes));

  const std::uint64_t crashes =
      baseline.crashes + armed_idle.crashes + chaos.crashes +
      comm_chaos.crashes;
  const bool slo_ok = chaos.completion_rate() >= 0.99 && crashes == 0 &&
                      comm_chaos.mismatches == 0 &&
                      baseline.completion_rate() == 1.0 &&
                      armed_idle.completion_rate() == 1.0;

  obs::JsonValue root{obs::JsonValue::Object{}};
  root.set("schema", "qgear.chaos.report/v1");
  root.set("fault_plan", plan.to_string());
  root.set("serve_baseline", baseline.to_json());
  root.set("serve_armed_idle", armed_idle.to_json());
  root.set("serve_chaos", chaos.to_json());
  root.set("comm_chaos", comm_chaos.to_json());
  root.set("latency_inflation_p95", inflation);
  root.set("hook_overhead_ratio", hook_overhead);
  root.set("crashes_total", crashes);
  root.set("slo_ok", slo_ok);
  if (!report_path.empty()) {
    obs::write_text_file(report_path, root.dump());
    std::printf("wrote report %s\n", report_path.c_str());
  }
  bench::write_report("chaos");

  if (!slo_ok) {
    std::fprintf(stderr,
                 "chaos SLO violated: completion %.4f (floor 0.99), "
                 "crashes %llu, comm mismatches %llu\n",
                 chaos.completion_rate(),
                 static_cast<unsigned long long>(crashes),
                 static_cast<unsigned long long>(comm_chaos.mismatches));
    return 1;
  }
  return 0;
}
