// Ablation — gate-fusion width (the paper fixes `gate fusion = 5`,
// App. D.2). Sweeps the fused engine's width 1..6 on the three workload
// families and reports sweeps, fusion ratio, and measured time; also
// ablates the negligible-angle approximation on the QFT.

#include "bench/bench_util.hpp"
#include "qgear/circuits/qcrank.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/obs/perfcount.hpp"
#include "qgear/perfmodel/model.hpp"
#include "qgear/qiskit/transpile.hpp"
#include "qgear/sim/fused.hpp"
#include "qgear/sim/isa.hpp"

using namespace qgear;

namespace {

qiskit::QuantumCircuit workload(const std::string& family) {
  if (family == "random") {
    return circuits::generate_random_circuit(
        {.num_qubits = 16, .num_blocks = 500, .measure = false, .seed = 8});
  }
  if (family == "qft") {
    return qiskit::to_native_basis(circuits::build_qft(16));
  }
  // qcrank
  const circuits::QCrank codec({.address_qubits = 12, .data_qubits = 4});
  std::vector<double> values(codec.capacity());
  Rng rng(5);
  for (double& v : values) v = rng.uniform(0.05, 0.95);
  auto qc = codec.encode(values);
  return qc;
}

void report_fusion_sweep() {
  bench::heading("Ablation: fusion width sweep (paper default w=5)");
  bench::Table table({"workload", "width", "sweeps", "fusion ratio",
                      "measured", "vs w=1"});
  for (const std::string family : {"random", "qft", "qcrank"}) {
    const auto qc = workload(family);
    double base = 0;
    for (unsigned w = 1; w <= 6; ++w) {
      sim::FusedEngine<float> engine({.fusion = {.max_width = w}});
      sim::StateVector<float> state(qc.num_qubits());
      bench::StageTimer timer("fusion_sweep.apply");
      engine.apply(qc, state);
      const double t = timer.seconds();
      if (w == 1) base = t;
      table.row({family, std::to_string(w),
                 std::to_string(engine.stats().sweeps),
                 strfmt("%.2f", static_cast<double>(engine.stats().gates) /
                                    static_cast<double>(
                                        engine.stats().sweeps)),
                 human_seconds(t), strfmt("%.2fx", base / t)});
    }
  }
  table.print();
  std::printf(
      "expected shape: sweeps drop steeply to w~4-5 then flatten (wider "
      "blocks cost 2^w matrix work per amplitude group) — why the paper "
      "picks 5.\n");
}

void report_isa_sweep() {
  bench::subheading("kernel ISA sweep (dense fused blocks, w=5)");
  const auto qc = workload("random");
  const sim::Isa prev = sim::active_isa();
  bench::Table table({"precision", "isa", "dense blocks", "measured",
                      "vs scalar"});
  for (const std::string precision : {"fp32", "fp64"}) {
    double base = 0;
    for (int i = 0; i < sim::kNumIsas; ++i) {
      const sim::Isa isa = static_cast<sim::Isa>(i);
      if (!sim::isa_supported(isa)) continue;
      sim::set_active_isa(isa);
      double t = 0;
      std::uint64_t dense = 0;
      if (precision == "fp32") {
        sim::FusedEngine<float> engine({.fusion = {.max_width = 5}});
        sim::StateVector<float> state(qc.num_qubits());
        bench::StageTimer timer(strfmt("isa_sweep.%s.%s", precision.c_str(),
                                       sim::isa_name(isa)));
        engine.apply(qc, state);
        t = timer.seconds();
        dense = engine.stats().dense_blocks;
      } else {
        sim::FusedEngine<double> engine({.fusion = {.max_width = 5}});
        sim::StateVector<double> state(qc.num_qubits());
        bench::StageTimer timer(strfmt("isa_sweep.%s.%s", precision.c_str(),
                                       sim::isa_name(isa)));
        engine.apply(qc, state);
        t = timer.seconds();
        dense = engine.stats().dense_blocks;
      }
      if (isa == sim::Isa::scalar) base = t;
      table.row({precision, sim::isa_name(isa), std::to_string(dense),
                 human_seconds(t), strfmt("%.2fx", base / t)});
    }
  }
  sim::set_active_isa(prev);
  table.print();
  std::printf(
      "expected shape: avx2 >= 2x scalar on dense sweeps (4 fp32 / 2 fp64 "
      "amplitudes per 256-bit op, complex mul via fmaddsub); sse2 lands "
      "between.\n");
}

void report_angle_threshold() {
  bench::subheading("negligible-angle approximation on QFT(20)");
  const auto exact = circuits::build_qft(20);
  bench::Table table({"threshold", "cp gates kept", "measured",
                      "fidelity"});
  sim::FusedEngine<double> ref_engine;
  // Probe state: superposition input so dropped phases matter.
  auto probe = [&](const qiskit::QuantumCircuit& qft) {
    qiskit::QuantumCircuit qc(20);
    for (int q = 0; q < 20; ++q) qc.h(q);
    qc.rz(0.37, 0);
    qc.compose(qft);
    return qc;
  };
  sim::FusedEngine<double> e0;
  const auto s0 = e0.run(probe(exact));
  for (double threshold : {0.0, M_PI / 512, M_PI / 64, M_PI / 8}) {
    const auto qft = circuits::build_qft(20, {.angle_threshold = threshold});
    sim::FusedEngine<double> engine;
    bench::StageTimer timer("angle_threshold.run");
    const auto s = engine.run(probe(qft));
    table.row({strfmt("%.4f", threshold),
               std::to_string(qft.count_ops().at("cp")),
               human_seconds(timer.seconds()),
               strfmt("%.6f", s0.fidelity(s))});
  }
  table.print();
  std::printf(
      "expected shape: aggressive thresholds cut gates O(n^2)->O(n log n) "
      "with fidelity staying near 1 until ~pi/8.\n");
}

/// Hardware-counter cross-check of the bandwidth-bound model: a fused
/// sweep should move ~kSweepBytesPerStateByte bytes per state byte
/// (read + write every amplitude), so the measured last-level traffic
/// (cache misses x 64B lines) per sweep should land near the model's
/// prediction. Wide dense blocks add matrix FLOPs, which shows up as
/// rising IPC, not rising traffic.
void report_perf_counters() {
  bench::subheading("hardware-counter cross-check vs perfmodel (fp32)");
  const bool was_enabled = obs::PerfCounters::enabled();
  obs::PerfCounters::set_enabled(true);
  if (!obs::PerfCounters::supported()) {
    obs::PerfCounters::set_enabled(was_enabled);
    std::printf(
        "hardware counters unavailable (perf_event_open denied or no PMU "
        "in this container) — skipping; run with CAP_PERFMON or "
        "kernel.perf_event_paranoid <= 2 to enable.\n");
    return;
  }
  const auto qc = workload("random");
  bench::Table table({"width", "IPC", "miss rate", "measured traffic",
                      "modeled traffic", "ratio"});
  for (unsigned w : {1u, 5u}) {
    sim::FusedEngine<float> engine({.fusion = {.max_width = w}});
    sim::StateVector<float> state(qc.num_qubits());
    engine.apply(qc, state);
    const sim::EngineStats& stats = engine.stats();
    const double state_bytes =
        static_cast<double>(state.size()) * sizeof(std::complex<float>);
    const double modeled = static_cast<double>(stats.sweeps) * state_bytes *
                           perfmodel::kSweepBytesPerStateByte;
    if (!stats.perf.valid) continue;
    const double measured =
        static_cast<double>(stats.perf.cache_misses) * 64.0;
    table.row({std::to_string(w), strfmt("%.2f", stats.perf.ipc()),
               strfmt("%.1f%%", stats.perf.cache_miss_rate() * 100),
               human_bytes(static_cast<std::uint64_t>(measured)),
               human_bytes(static_cast<std::uint64_t>(modeled)),
               strfmt("%.2f", measured / modeled)});
  }
  table.print();
  std::printf(
      "expected shape: traffic ratio stays O(1) across widths while the "
      "working set exceeds LLC (the sweep is bandwidth-bound, as the model "
      "assumes); well below 1 means the 16-qubit state fits in cache and "
      "the model's DRAM-traffic term is an upper bound here.\n");
  obs::PerfCounters::set_enabled(was_enabled);
}

void bm_fusion_width(benchmark::State& state) {
  const auto qc = workload("random");
  sim::FusedEngine<float> engine(
      {.fusion = {.max_width = static_cast<unsigned>(state.range(0))}});
  for (auto _ : state) {
    sim::StateVector<float> s(qc.num_qubits());
    engine.apply(qc, s);
    benchmark::DoNotOptimize(s.data());
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_fusion_width)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_fusion_sweep();
  report_isa_sweep();
  report_angle_threshold();
  report_perf_counters();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("ablation_fusion");
  return 0;
}
