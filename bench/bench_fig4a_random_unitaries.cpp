// Fig. 4a — random non-Clifford unitaries: Qiskit-CPU baseline vs Q-Gear
// on one A100 and on four A100s, for 'short' (100 CX-block) and 'long'
// (10,000 CX-block) unitaries at 28-34 qubits.
//
// Two report sections:
//   (1) modeled paper-scale series (the figure itself) — per-curve rows
//       with the memory walls the paper reports (CPU dies at 34, one
//       40 GB GPU at 32, 4 GPUs reach 34) and the ~400x speedup;
//   (2) measured local series at 14-20 qubits on this host — the same
//       engines run for real, demonstrating the exponential 2^n scaling
//       and the fused-engine advantage the model extrapolates.
// google-benchmark timers then measure the per-engine sweep kernels.

#include "bench/bench_util.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

namespace {

qiskit::QuantumCircuit blocks(unsigned n, std::uint64_t count) {
  return circuits::generate_random_circuit(
      {.num_qubits = n, .num_blocks = count, .measure = false, .seed = 4});
}

void report_paper_scale() {
  bench::heading(
      "Fig 4a (modeled, paper scale): random unitaries, 28-34 qubits");
  bench::Table table({"qubits", "blocks", "cpu-node(Aer)", "1x A100",
                      "4x A100", "speedup 1GPU"});
  for (std::uint64_t nblocks : {100ull, 10000ull}) {
    for (unsigned n = 28; n <= 34; ++n) {
      const auto qc = blocks(n, nblocks);
      const auto cpu = perfmodel::estimate_cpu(
          qc, {.precision = core::Precision::fp64});
      perfmodel::ClusterConfig one;
      one.include_container_start = false;
      const auto gpu1 = perfmodel::estimate_gpu(qc, one);
      perfmodel::ClusterConfig four = one;
      four.devices = 4;
      const auto gpu4 = perfmodel::estimate_gpu(qc, four);
      std::string speedup = "-";
      if (cpu.feasible && gpu1.feasible) {
        speedup = strfmt("%.0fx", cpu.total_s() / gpu1.total_s());
      }
      table.row({std::to_string(n), std::to_string(nblocks),
                 bench::time_cell(cpu.feasible, cpu.total_s(), "RAM wall"),
                 bench::time_cell(gpu1.feasible, gpu1.total_s(),
                                  "VRAM wall"),
                 bench::time_cell(gpu4.feasible, gpu4.total_s()),
                 speedup});
    }
  }
  table.print();
  std::printf(
      "expected shape: ~2^n growth; long/short ~100x; CPU infeasible at "
      "34; single GPU wall at 32; 4 GPUs reach 34; GPU speedup O(100x).\n");
}

void report_measured_local() {
  bench::heading(
      "Fig 4a (measured on this host): per-gate baseline vs fused engine");
  bench::Table table({"qubits", "blocks", "aer-style", "fused(w=3)",
                      "sweep reduction", "4-rank dist"});
  for (unsigned n = 14; n <= 20; n += 2) {
    const auto qc = blocks(n, 100);
    const core::Kernel kernel = core::Kernel::from_circuit(qc);

    core::Transformer cpu({.target = core::Target::cpu_aer,
                           .precision = core::Precision::fp32});
    // Width 3 is the host optimum (bench_ablation_fusion); the A100
    // model uses the paper's width 5 where sweeps are bandwidth-bound.
    core::Transformer gpu({.target = core::Target::nvidia,
                           .precision = core::Precision::fp32,
                           .fusion_width = 3});
    core::Transformer mgpu({.target = core::Target::nvidia_mgpu,
                            .precision = core::Precision::fp32,
                            .devices = 4});
    const auto rc = cpu.run(kernel);
    const auto rg = gpu.run(kernel);
    const auto rm = mgpu.run(kernel);
    table.row({std::to_string(n), "100", human_seconds(rc.wall_seconds),
               human_seconds(rg.wall_seconds),
               strfmt("%llux fewer sweeps",
                      static_cast<unsigned long long>(
                          rc.stats.sweeps /
                          std::max<std::uint64_t>(1, rg.stats.sweeps))),
               human_seconds(rm.wall_seconds)});
  }
  table.print();
  std::printf(
      "expected shape: both curves ~2^n. On this compute-bound single "
      "core, fused blocks trade memory sweeps for dense-matrix FLOPs, so "
      "wall time need not drop; on a bandwidth-bound A100 each sweep "
      "costs 2*state bytes of HBM traffic, and the roofline model turns "
      "the sweep reduction shown here into the paper-scale speedup "
      "above.\n");
}

void bm_aer_baseline(benchmark::State& state) {
  const auto qc = blocks(static_cast<unsigned>(state.range(0)), 50);
  core::Transformer t({.target = core::Target::cpu_aer,
                       .precision = core::Precision::fp32});
  const core::Kernel k = core::Kernel::from_circuit(qc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["qubits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_aer_baseline)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void bm_fused_engine(benchmark::State& state) {
  const auto qc = blocks(static_cast<unsigned>(state.range(0)), 50);
  core::Transformer t({.target = core::Target::nvidia,
                       .precision = core::Precision::fp32});
  const core::Kernel k = core::Kernel::from_circuit(qc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["qubits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_fused_engine)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_paper_scale();
  report_measured_local();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
