// Ablations — execution-mode and precision design choices DESIGN.md calls
// out:
//   * fp32 vs fp64 (Table 1 runs both): measured time and accuracy cost;
//   * mgpu (one circuit, many devices) vs mqpu (many circuits, one device
//     each) for a batch — the paper's Sec. 2.4 "parallel mode";
//   * encode/decode + qh5 overhead relative to simulation time (the
//     "minimal coding effort / constant conversion" claim);
//   * container warm vs cold job startup.

#include "bench/bench_util.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/platform/container.hpp"
#include "qgear/qh5/file.hpp"

using namespace qgear;

namespace {

void report_precision() {
  bench::heading("Ablation: fp32 vs fp64");
  bench::Table table({"qubits", "fp32", "fp64", "fp64/fp32",
                      "fp32 state err"});
  for (unsigned n : {14u, 16u, 18u}) {
    const auto qc = circuits::generate_random_circuit(
        {.num_qubits = n, .num_blocks = 200, .measure = false, .seed = 2});
    const core::Kernel k = core::Kernel::from_circuit(qc);
    core::Transformer t32({.target = core::Target::nvidia,
                           .precision = core::Precision::fp32});
    core::Transformer t64({.target = core::Target::nvidia,
                           .precision = core::Precision::fp64});
    bench::StageTimer w32("precision.fp32");
    const auto r32 = t32.run(k, {.return_state = true});
    const double s32 = w32.seconds();
    bench::StageTimer w64("precision.fp64");
    const auto r64 = t64.run(k, {.return_state = true});
    const double s64 = w64.seconds();
    double worst = 0;
    for (std::size_t i = 0; i < r32.state.size(); ++i) {
      worst = std::max(worst, std::abs(r32.state[i] - r64.state[i]));
    }
    table.row({std::to_string(n), human_seconds(s32), human_seconds(s64),
               strfmt("%.2fx", s64 / s32), strfmt("%.1e", worst)});
  }
  table.print();
  std::printf(
      "expected shape: fp64 ~2x the bytes -> ~1.5-2x the time; fp32 "
      "error ~1e-4 after 600 gates (why Table 1 uses fp32 for speed "
      "runs, fp64 for QCrank fidelity).\n");
}

void report_mgpu_vs_mqpu() {
  bench::heading(
      "Ablation: batch of 8 circuits — mgpu (serialized, 4 ranks each) "
      "vs mqpu (4-way circuit parallel)");
  std::vector<core::Kernel> kernels;
  for (std::uint64_t s = 0; s < 8; ++s) {
    kernels.push_back(
        core::Kernel::from_circuit(circuits::generate_random_circuit(
            {.num_qubits = 14, .num_blocks = 150, .measure = false,
             .seed = s})));
  }
  bench::Table table({"mode", "batch wall", "exchange bytes", "note"});
  {
    core::Transformer mgpu({.target = core::Target::nvidia_mgpu,
                            .precision = core::Precision::fp32,
                            .devices = 4});
    bench::StageTimer timer("modes.mgpu_batch");
    const auto results = mgpu.run_batch(kernels);
    std::uint64_t comm = 0;
    for (const auto& r : results) comm += r.comm_bytes;
    table.row({"mgpu x8 sequential", human_seconds(timer.seconds()),
               human_bytes(comm), "each circuit split over 4 ranks"});
  }
  {
    core::Transformer mqpu({.target = core::Target::nvidia_mqpu,
                            .precision = core::Precision::fp32,
                            .devices = 4});
    bench::StageTimer timer("modes.mqpu_batch");
    const auto results = mqpu.run_batch(kernels);
    std::uint64_t comm = 0;
    for (const auto& r : results) comm += r.comm_bytes;
    table.row({"mqpu 4-way parallel", human_seconds(timer.seconds()),
               human_bytes(comm), "whole circuits on separate devices"});
  }
  table.print();
  std::printf(
      "expected shape: mqpu needs ZERO exchange traffic (the paper's "
      "parallel mode wins for circuits that fit one device); wall times "
      "here share one host core, so the 4-way parallelism itself only "
      "pays off on real multi-device hardware.\n");
}

void report_encode_overhead() {
  bench::heading(
      "Ablation: Q-Gear conversion overhead vs simulation time");
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = 18, .num_blocks = 500, .measure = false, .seed = 9});
  bench::StageTimer enc_timer("overhead.encode_roundtrip");
  const core::GateTensor tensor = core::encode_circuits({&qc, 1});
  qh5::File f = qh5::File::create("ablation_modes.qh5");
  core::save_tensor(tensor, f.root().create_group("t"));
  f.flush();
  qh5::File g = qh5::File::open("ablation_modes.qh5");
  const core::Kernel kernel =
      core::Kernel::from_tensor(core::load_tensor(g.root().group("t")), 0);
  const double convert_s = enc_timer.seconds();

  core::Transformer t({.target = core::Target::nvidia,
                       .precision = core::Precision::fp32});
  bench::StageTimer sim_timer("overhead.simulate");
  t.run(kernel);
  const double sim_s = sim_timer.seconds();
  std::printf(
      "encode + qh5 round trip + decode: %s; simulation: %s — conversion "
      "is %.1f%% of one 18-qubit run (and amortizes across runs).\n",
      human_seconds(convert_s).c_str(), human_seconds(sim_s).c_str(),
      100.0 * convert_s / (convert_s + sim_s));
}

void report_container_startup() {
  bench::heading("Ablation: container startup, warm vs cold");
  platform::ContainerRuntime rt(perfmodel::podman_hpc());
  const auto img = platform::ContainerImage::nersc_podman_image();
  const auto cold = rt.launch(0, img);
  const auto warm = rt.launch(0, img);
  std::printf(
      "cold: %s (pulled %s) | warm: %s — the Fig. 4b straggler term.\n",
      human_seconds(cold.startup_seconds).c_str(),
      human_bytes(cold.bytes_pulled).c_str(),
      human_seconds(warm.startup_seconds).c_str());
}

void bm_precision(benchmark::State& state) {
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = 14, .num_blocks = 100, .measure = false, .seed = 2});
  const core::Kernel k = core::Kernel::from_circuit(qc);
  const bool fp64 = state.range(0) == 64;
  core::Transformer t({.target = core::Target::nvidia,
                       .precision = fp64 ? core::Precision::fp64
                                         : core::Precision::fp32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["bits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_precision)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_precision();
  report_mgpu_vs_mqpu();
  report_encode_overhead();
  report_container_startup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("ablation_modes");
  return 0;
}
