// Table 1 — the experiment configuration matrix, regenerated from the
// actual workload generators so every row is backed by a real circuit.
//
// For each experiment family the bench builds a representative circuit
// at the paper's parameters (or the largest feasible probe) and verifies
// the reported qubit counts, gate depths, and shot budgets.

#include "bench/bench_util.hpp"
#include "qgear/circuits/qcrank.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/core/transformer.hpp"

using namespace qgear;

namespace {

void report_table1() {
  bench::heading("Table 1: Q-Gear experiment matrix (regenerated)");
  bench::Table table({"task", "objective", "qubits", "max gate depth",
                      "shots", "precision", "input size"});

  // Random entangled circuits, speed-up analysis (Fig. 4a).
  {
    const auto qc = circuits::generate_random_circuit(
        {.num_qubits = 28, .num_blocks = 10000, .measure = false,
         .seed = 1});
    table.row({"random entangled", "speed-up analysis", "28-34",
               strfmt("%u (built: %u)", 10000u * 3, qc.depth()), "3,000",
               "fp32/fp64", "100/10k CX-block"});
  }
  // Random entangled circuits, scalability (Fig. 4b).
  {
    const auto qc = circuits::generate_random_circuit(
        {.num_qubits = 34, .num_blocks = 3000, .measure = false,
         .seed = 1});
    table.row({"random entangled", "scalability analysis", "42",
               strfmt("%u (built: %u)", 3000u * 3, qc.depth()), "10,000",
               "fp32", "3,000 CX-block"});
  }
  // QFT precision/performance (Fig. 4c).
  {
    const auto qft = circuits::build_qft(33);
    table.row({"QFT transform", "precision performance", "16-33",
               strfmt("%u (built: %zu gates)", qft.depth(), qft.size()),
               "100", "fp32/fp64", "65K-8B amplitudes"});
  }
  // Quantum image encoding (Fig. 5 / Table 2).
  {
    const auto configs = image::paper_image_table();
    const auto& biggest = configs.back();
    const circuits::QCrank codec(
        {.address_qubits = biggest.address_qubits,
         .data_qubits = biggest.data_qubits});
    const image::Image img = image::make_paper_image(biggest);
    const auto qc = codec.encode(
        std::vector<double>(img.pixels.begin(), img.pixels.end()));
    table.row({"quantum image encoding", "speed-up + reconstruction",
               "15-25", strfmt("%u (98k px circuit)", qc.depth()),
               "3M-98M", "fp64", "5K-98K pixels"});
  }
  table.print();
  std::printf(
      "hardware rows (from perfmodel specs): 32/64-core AMD EPYC + "
      "NVIDIA A100 + HPE Slingshot 11 — see bench_fig4* for their use.\n");
}

void bm_build_random_10k_blocks(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::generate_random_circuit(
        {.num_qubits = 34, .num_blocks = 10000, .measure = true,
         .seed = 7}));
  }
}
BENCHMARK(bm_build_random_10k_blocks)->Unit(benchmark::kMillisecond);

void bm_build_qft33(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::build_qft(33));
  }
}
BENCHMARK(bm_build_qft33)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  report_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
