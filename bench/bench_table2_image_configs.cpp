// Table 2 — quantum circuit configurations for the grayscale images:
// dimensions, gray pixels, address/data qubit split, and shot budgets
// (shots = 3000 * 2^m). Each row is validated against the QCrank codec:
// capacity == pixel count and cx count == pixel count.

#include "bench/bench_util.hpp"
#include "qgear/circuits/qcrank.hpp"

using namespace qgear;

namespace {

void report_table2() {
  bench::heading("Table 2: image -> circuit configurations (regenerated)");
  bench::Table table({"image", "dimensions", "gray pixels", "addr qubits",
                      "data qubits", "shots", "codec capacity",
                      "cx gates"});
  for (const auto& cfg : image::paper_image_table()) {
    const circuits::QCrank codec({.address_qubits = cfg.address_qubits,
                                  .data_qubits = cfg.data_qubits});
    // Build the real circuit to count entangling gates (== pixels).
    const image::Image img = image::make_paper_image(cfg);
    const auto qc = codec.encode(
        std::vector<double>(img.pixels.begin(), img.pixels.end()));
    table.row({cfg.name, strfmt("%ux%u", cfg.width, cfg.height),
               std::to_string(cfg.gray_pixels()),
               std::to_string(cfg.address_qubits),
               std::to_string(cfg.data_qubits),
               strfmt("%lluM", static_cast<unsigned long long>(
                                   cfg.shots / 1000000)),
               std::to_string(codec.capacity()),
               std::to_string(qc.num_2q_gates())});
  }
  table.print();
  std::printf("invariants: capacity == pixels == cx gates; shots == "
              "3000 * 2^addr.\n");
}

void bm_encode_zebra_15_3(benchmark::State& state) {
  // The largest Table 2 circuit (15 address + 3 data qubits, 98k gates).
  const auto cfg = image::paper_image_table().back();
  const circuits::QCrank codec({.address_qubits = cfg.address_qubits,
                                .data_qubits = cfg.data_qubits});
  const image::Image img = image::make_paper_image(cfg);
  const std::vector<double> values(img.pixels.begin(), img.pixels.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(values));
  }
  state.counters["pixels"] = static_cast<double>(cfg.gray_pixels());
}
BENCHMARK(bm_encode_zebra_15_3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
