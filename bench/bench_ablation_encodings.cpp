// Ablation — image/state encoding strategies.
//
// Compares the three encodings this library implements on equal pixel
// budgets:
//   * QCrank (paper's choice, App. D.3): m address + n_d data qubits,
//     one cx per pixel, depth ~2 * 2^m thanks to step-interleaved chains;
//   * FRQI (paper ref [34]): m address + 1 color qubit — fewer qubits,
//     n_d-fold worse depth;
//   * general state preparation (Möttönen, paper ref [27]): amplitude
//     encoding, fewest qubits but O(2^n) gates and no shot-efficient
//     readout.
// This quantifies why the paper's image pipeline uses QCrank.

#include "bench/bench_util.hpp"
#include "qgear/circuits/frqi.hpp"
#include "qgear/circuits/qcrank.hpp"
#include "qgear/circuits/state_prep.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/sim/fused.hpp"

using namespace qgear;

namespace {

std::vector<double> pixels(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(0.05, 0.95);
  return v;
}

void report_encoding_comparison() {
  bench::heading("Ablation: image encodings at equal pixel budgets");
  bench::Table table({"encoding", "pixels", "qubits", "cx gates", "depth",
                      "decode rms @ 3k shots/addr"});
  const std::size_t n_pix = 256;
  const auto values = pixels(n_pix, 7);

  // QCrank 6+4.
  {
    const circuits::QCrank codec({.address_qubits = 6, .data_qubits = 4});
    const auto qc = codec.encode(values);
    sim::FusedEngine<double> eng;
    std::vector<unsigned> measured;
    const auto state = eng.run(qc, &measured);
    Rng rng(1);
    const auto counts =
        sim::sample_counts(state, measured, 3000ull << 6, rng);
    const auto decoded = codec.decode_counts(counts);
    double sse = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sse += (decoded[i] - values[i]) * (decoded[i] - values[i]);
    }
    table.row({"QCrank (6+4)", std::to_string(n_pix),
               std::to_string(qc.num_qubits()),
               std::to_string(qc.num_2q_gates()),
               std::to_string(qc.depth()),
               strfmt("%.4f", std::sqrt(sse / n_pix))});
  }
  // FRQI 8+1.
  {
    const circuits::Frqi codec(8);
    const auto qc = codec.encode(values);
    sim::FusedEngine<double> eng;
    std::vector<unsigned> measured;
    const auto state = eng.run(qc, &measured);
    Rng rng(2);
    const auto counts =
        sim::sample_counts(state, measured, 3000ull << 8, rng);
    const auto decoded = codec.decode_counts(counts);
    double sse = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sse += (decoded[i] - values[i]) * (decoded[i] - values[i]);
    }
    table.row({"FRQI (8+1)", std::to_string(n_pix),
               std::to_string(qc.num_qubits()),
               std::to_string(qc.num_2q_gates()),
               std::to_string(qc.depth()),
               strfmt("%.4f", std::sqrt(sse / n_pix))});
  }
  // Amplitude encoding: 256 pixels in 8 qubits.
  {
    std::vector<std::complex<double>> amps(values.begin(), values.end());
    const auto qc = circuits::prepare_state(amps);
    table.row({"amplitude (Mottonen)", std::to_string(n_pix), "8",
               std::to_string(qc.num_2q_gates()),
               std::to_string(qc.depth()),
               "n/a (amplitudes, not probabilities)"});
  }
  table.print();
  std::printf(
      "expected shape: equal cx-per-pixel for QCrank/FRQI, but QCrank's "
      "interleaved chains give ~n_data-fold lower depth; amplitude "
      "encoding is qubit-minimal but needs O(2^n) gates and offers no "
      "per-pixel readout.\n");
}

void report_state_prep_cost() {
  bench::subheading("general state preparation cost (Mottonen, ref [27])");
  bench::Table table({"qubits", "rotations bound", "cx gates", "build+sim"});
  for (unsigned n : {4u, 8u, 12u}) {
    Rng rng(n);
    std::vector<std::complex<double>> amps(pow2(n));
    for (auto& a : amps) {
      a = std::complex<double>(rng.normal(), rng.normal());
    }
    bench::StageTimer timer("state_prep.build_and_sim");
    const auto qc = circuits::prepare_state(amps);
    sim::FusedEngine<double> eng;
    eng.run(qc);
    table.row({std::to_string(n),
               std::to_string(circuits::prepare_state_gate_bound(n)),
               std::to_string(qc.num_2q_gates()),
               human_seconds(timer.seconds())});
  }
  table.print();
  std::printf("expected shape: gate count ~2^(n+1) — exact dense-state "
              "preparation is exponential, which is why structured "
              "encodings (QCrank) matter.\n");
}

void bm_qcrank_encode(benchmark::State& state) {
  const circuits::QCrank codec({.address_qubits = 10, .data_qubits = 4});
  const auto values = pixels(codec.capacity(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(values));
  }
}
BENCHMARK(bm_qcrank_encode)->Unit(benchmark::kMillisecond);

void bm_state_prep_build(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::complex<double>> amps(
      pow2(static_cast<unsigned>(state.range(0))));
  for (auto& a : amps) a = std::complex<double>(rng.normal(), rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::prepare_state(amps));
  }
  state.counters["qubits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_state_prep_build)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_encoding_comparison();
  report_state_prep_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("ablation_encodings");
  return 0;
}
