// Fig. 6 — QCrank image encoding / reconstruction quality: for each image
// configuration, run the full encode -> simulate -> sample -> decode
// round trip and report the reconstruction correlation, residual error
// distribution, and PSNR (the panels of Fig. 6).
//
// Scale notes (documented substitution): the Finger configuration runs
// EXACTLY as in the paper (15 qubits, 3000 shots/address). The larger
// configurations keep their full circuit (every pixel's cx gate) but are
// sampled at a reduced shots-per-address budget so the bench finishes on
// one host core; a per-row "shots/addr" column records the budget, and
// the correlation-vs-shots sweep quantifies what the full budget buys.

#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"
#include "qgear/circuits/qcrank.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/transformer.hpp"

using namespace qgear;

namespace {

struct RoundTrip {
  image::ReconstructionMetrics metrics;
  double residual_p95 = 0.0;
  double seconds = 0.0;
};

RoundTrip run_roundtrip(const image::PaperImageConfig& cfg,
                        std::uint64_t shots_per_address) {
  const circuits::QCrank codec({.address_qubits = cfg.address_qubits,
                                .data_qubits = cfg.data_qubits});
  const image::Image img = image::make_paper_image(cfg);
  const auto qc = codec.encode(
      std::vector<double>(img.pixels.begin(), img.pixels.end()));

  bench::StageTimer timer("fig6.roundtrip");
  core::Transformer t({.target = core::Target::nvidia,
                       .precision = core::Precision::fp64});
  const std::uint64_t shots = shots_per_address << cfg.address_qubits;
  const auto result = t.run(qc, {.shots = shots});
  const auto decoded = codec.decode_counts(result.counts);

  RoundTrip rt;
  rt.seconds = timer.seconds();
  const image::Image back{cfg.width, cfg.height,
                          {decoded.begin(), decoded.end()}};
  rt.metrics = image::compare_images(img, back);
  // 95th-percentile residual (the paper's residual-error panel).
  std::vector<double> residuals(img.size());
  for (std::size_t i = 0; i < img.size(); ++i) {
    residuals[i] = std::abs(img.pixels[i] - back.pixels[i]);
  }
  std::nth_element(residuals.begin(),
                   residuals.begin() + static_cast<std::ptrdiff_t>(
                                           residuals.size() * 95 / 100),
                   residuals.end());
  rt.residual_p95 = residuals[residuals.size() * 95 / 100];
  return rt;
}

void report_reconstruction() {
  bench::heading(
      "Fig 6: QCrank reconstruction quality (full round trip)");
  bench::Table table({"image", "qubits", "shots/addr", "correlation",
                      "p95 |err|", "max |err|", "psnr", "wall"});
  const auto configs = image::paper_image_table();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& cfg = configs[i];
    if (cfg.total_qubits() > 19 || cfg.gray_pixels() > 30000) {
      table.row({cfg.name,
                 strfmt("%u+%u", cfg.address_qubits, cfg.data_qubits),
                 "-", "skipped: exceeds single-host bench budget",
                 "", "", "", ""});
      continue;
    }
    // Paper budget for Finger (15 qubits); reduced for the larger rows.
    const std::uint64_t per_addr = cfg.total_qubits() <= 15 ? 3000 : 100;
    const RoundTrip rt = run_roundtrip(cfg, per_addr);
    table.row({cfg.name,
               strfmt("%u+%u", cfg.address_qubits, cfg.data_qubits),
               std::to_string(per_addr),
               strfmt("%.5f", rt.metrics.correlation),
               strfmt("%.4f", rt.residual_p95),
               strfmt("%.4f", rt.metrics.max_abs_error),
               strfmt("%.1f dB", rt.metrics.psnr_db),
               human_seconds(rt.seconds)});
  }
  table.print();
  std::printf(
      "expected shape: correlation near 1 at the paper's 3000 "
      "shots/address; residuals shrink as shots grow (next sweep).\n");
}

void report_shots_sweep() {
  bench::subheading(
      "reconstruction error vs shots/address (Finger config)");
  const auto cfg = image::paper_image_table()[0];
  bench::Table table({"shots/addr", "correlation", "rms error"});
  for (std::uint64_t per_addr : {30ull, 300ull, 3000ull}) {
    const RoundTrip rt = run_roundtrip(cfg, per_addr);
    table.row({std::to_string(per_addr),
               strfmt("%.5f", rt.metrics.correlation),
               strfmt("%.5f", std::sqrt(rt.metrics.mse))});
  }
  table.print();
  std::printf("expected shape: rms error ~ 1/sqrt(shots).\n");
}

void bm_finger_roundtrip(benchmark::State& state) {
  const auto cfg = image::paper_image_table()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_roundtrip(cfg, 100));
  }
}
BENCHMARK(bm_finger_roundtrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_reconstruction();
  report_shots_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("fig6_qcrank_reconstruction");
  return 0;
}
