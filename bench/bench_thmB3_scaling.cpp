// Theorem B.3 — the claimed scaling separation: CPU-style per-gate
// simulation time grows exponentially with qubit count, while for a
// fixed qubit count the (parallel, fused) engine grows linearly in the
// gate count with a far smaller constant.
//
// Measured on this host: (1) time vs qubits at fixed gate count for both
// engines (both exponential in n — the theorem's "linear in N" reads as
// linear in *gates* given enough parallel resources, which we report as
// time-per-gate flatness); (2) time vs gate count at fixed n (linear).

#include "bench/bench_util.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/transformer.hpp"

using namespace qgear;

namespace {

double run_once(core::Target target, unsigned n, std::uint64_t blocks) {
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = n, .num_blocks = blocks, .measure = false,
       .seed = 11});
  // Width 3 is this host's optimum (see bench_ablation_fusion): on a
  // compute-bound core, wide blocks trade bandwidth for FLOPs. The GPU
  // model uses the paper's width 5, which is optimal when sweeps are
  // bandwidth-bound.
  core::Transformer t({.target = target,
                       .precision = core::Precision::fp32,
                       .fusion_width = 3});
  bench::StageTimer timer("thmB3.run_once");
  t.run(qc);
  return timer.seconds();
}

void report_qubit_scaling() {
  bench::heading("Thm B.3 (measured): time vs qubits, 100 CX blocks");
  bench::Table table({"qubits", "per-gate engine", "fused engine (w=3)",
                      "ratio"});
  for (unsigned n = 12; n <= 20; n += 2) {
    const double cpu = run_once(core::Target::cpu_aer, n, 100);
    const double gpu = run_once(core::Target::nvidia, n, 100);
    table.row({std::to_string(n), human_seconds(cpu), human_seconds(gpu),
               strfmt("%.1fx", cpu / gpu)});
  }
  table.print();
  std::printf(
      "expected shape: both engines grow ~2^n (state size) — the CPU "
      "half of Thm B.3. The per-gate engine's specialized kernels "
      "(diagonal multiplies, pair flips) already run at this host's "
      "single-core memory bandwidth, so generic fused matvecs cannot "
      "beat them on a scalar core (ratio < 1 here is expected); on an "
      "A100 the same sweeps are bandwidth-bound and fusion's sweep "
      "reduction converts 1:1 into speedup, which the roofline model "
      "applies.\n");
}

void report_gate_scaling() {
  bench::heading("Thm B.3 (measured): time vs gate count at 16 qubits");
  bench::Table table({"blocks", "fused engine", "time per block"});
  double base = 0;
  for (std::uint64_t blocks : {125ull, 250ull, 500ull, 1000ull}) {
    const double t = run_once(core::Target::nvidia, 16, blocks);
    if (base == 0) base = t / static_cast<double>(blocks);
    table.row({std::to_string(blocks), human_seconds(t),
               human_seconds(t / static_cast<double>(blocks))});
  }
  table.print();
  std::printf(
      "expected shape: time per block ~constant — linear scaling in the "
      "gate count (the GPU-side claim of Thm B.3).\n");
}

void bm_per_gate_engine(benchmark::State& state) {
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = static_cast<unsigned>(state.range(0)),
       .num_blocks = 50, .measure = false, .seed = 3});
  core::Transformer t({.target = core::Target::cpu_aer,
                       .precision = core::Precision::fp32});
  const core::Kernel k = core::Kernel::from_circuit(qc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
}
BENCHMARK(bm_per_gate_engine)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void bm_fused_engine_gates(benchmark::State& state) {
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = 14,
       .num_blocks = static_cast<std::uint64_t>(state.range(0)),
       .measure = false, .seed = 3});
  core::Transformer t({.target = core::Target::nvidia,
                       .precision = core::Precision::fp32});
  const core::Kernel k = core::Kernel::from_circuit(qc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.run(k));
  }
  state.counters["blocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_fused_engine_gates)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_qubit_scaling();
  report_gate_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("thmB3_scaling");
  return 0;
}
