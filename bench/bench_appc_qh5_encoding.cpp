// Appendix C — high-dimensional data management with the qh5 container:
//   * circuit -> tensor encoding time stays ~constant for a fixed tensor
//     size regardless of entanglement depth / gate structure;
//   * lossless compression recovers ~50% on structured circuit data
//     without hurting read-back.
//
// The paper's reference point: encoding N=1000 circuits with T=10^6 tensor
// slots took 2 minutes, independent of circuit complexity. We reproduce
// the *invariance* (and report this host's absolute rate).

#include "bench/bench_util.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/core/tensor.hpp"
#include "qgear/qh5/file.hpp"

using namespace qgear;

namespace {

// Builds a batch of `count` circuits of one structural family.
std::vector<qiskit::QuantumCircuit> make_batch(const std::string& family,
                                               std::size_t count) {
  std::vector<qiskit::QuantumCircuit> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (family == "shallow") {
      batch.push_back(circuits::generate_random_circuit(
          {.num_qubits = 8, .num_blocks = 40, .measure = true,
           .seed = i}));
    } else if (family == "deep") {
      batch.push_back(circuits::generate_random_circuit(
          {.num_qubits = 8, .num_blocks = 330, .measure = true,
           .seed = i}));
    } else {  // qft: highly structured, strongly entangled
      auto qc = circuits::build_qft(8 + i % 24);
      qc.set_name("qft" + std::to_string(i));
      batch.push_back(std::move(qc));
    }
  }
  return batch;
}

void report_encoding_invariance() {
  bench::heading(
      "App. C: tensor encoding time at fixed capacity, varying structure");
  // Fixed tensor size in the paper's regime: capacity well above any
  // circuit's gate count (they use T = 10^6 slots), so the capacity-bound
  // initialization dominates and encode time is ~independent of circuit
  // structure and entanglement depth.
  const std::uint32_t capacity = 5000;
  bench::Table table({"family", "circuits", "encode+store", "qh5 bytes",
                      "compression"});
  double min_t = 1e9, max_t = 0;
  for (const std::string family : {"shallow", "deep", "qft"}) {
    const auto batch = make_batch(family, 200);
    bench::StageTimer timer("qh5.encode_store");
    const core::GateTensor tensor =
        core::encode_circuits(batch, {.capacity = capacity});
    qh5::File f = qh5::File::create("appc_bench.qh5");
    core::save_tensor(tensor, f.root().create_group("t"));
    f.flush();
    const double t = timer.seconds();
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
    table.row({family, "200", human_seconds(t),
               human_bytes(f.stats().file_bytes),
               strfmt("%.2fx", f.stats().compression_ratio())});
  }
  table.print();
  std::printf(
      "encode-time spread across structures: %.1fx (expected ~constant; "
      "the tensor is fixed-shape so work is capacity-bound, App. C).\n",
      max_t / min_t);
}

void report_compression() {
  bench::subheading("compression by circuit family");
  for (const std::string family : {"deep", "shallow", "qft"}) {
    const auto batch = make_batch(family, 300);
    const core::GateTensor tensor = core::encode_circuits(batch);
    qh5::File f = qh5::File::create("appc_bench.qh5");
    core::save_tensor(tensor, f.root().create_group("t"));
    f.flush();
    qh5::File g = qh5::File::open("appc_bench.qh5");
    const core::GateTensor back = core::load_tensor(g.root().group("t"));
    std::printf(
        "  %-8s %s -> %s (%.0f%% saved), lossless reload %s\n",
        family.c_str(), human_bytes(f.stats().uncompressed_bytes).c_str(),
        human_bytes(f.stats().compressed_bytes).c_str(),
        100.0 * (1.0 - static_cast<double>(f.stats().compressed_bytes) /
                           static_cast<double>(
                               f.stats().uncompressed_bytes)),
        back == tensor ? "OK" : "MISMATCH");
  }
  std::printf(
      "expected shape: structured circuits (qft, shallow) compress well "
      "past the paper's ~50%%; adversarially random rotation angles "
      "(deep) bound the worst case.\n");
}

void bm_encode_batch(benchmark::State& state) {
  const auto batch = make_batch("deep", static_cast<std::size_t>(
                                            state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_circuits(batch));
  }
  state.counters["circuits"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_encode_batch)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void bm_qh5_flush(benchmark::State& state) {
  const auto batch = make_batch("deep", 100);
  const core::GateTensor tensor = core::encode_circuits(batch);
  for (auto _ : state) {
    qh5::File f = qh5::File::create("appc_bench.qh5");
    core::save_tensor(tensor, f.root().create_group("t"));
    f.flush();
    benchmark::DoNotOptimize(f.stats().file_bytes);
  }
}
BENCHMARK(bm_qh5_flush)->Unit(benchmark::kMillisecond);

void bm_qh5_open(benchmark::State& state) {
  const auto batch = make_batch("deep", 100);
  const core::GateTensor tensor = core::encode_circuits(batch);
  qh5::File f = qh5::File::create("appc_bench.qh5");
  core::save_tensor(tensor, f.root().create_group("t"));
  f.flush();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qh5::File::open("appc_bench.qh5"));
  }
}
BENCHMARK(bm_qh5_open)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability();
  report_encoding_invariance();
  report_compression();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("appc_qh5_encoding");
  return 0;
}
