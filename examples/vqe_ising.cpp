// Variational quantum eigensolver on a transverse-field Ising ring —
// the hybrid quantum-classical workload family the paper's introduction
// motivates (variational quantum algorithms, Sec. 1).
//
// A hardware-efficient ry+cx ansatz is optimized with coordinate descent
// (sequential single-parameter line search via parameter-shift-style
// probing), each energy evaluation running through the Q-Gear fused
// engine with exact expectation values.
//
// Run:  ./vqe_ising [num_qubits] [layers]

#include <cstdio>
#include <cstdlib>

#include "qgear/sim/fused.hpp"
#include "qgear/sim/observable.hpp"

using namespace qgear;

namespace {

qiskit::QuantumCircuit ansatz(unsigned n, unsigned layers,
                              const std::vector<double>& theta) {
  qiskit::QuantumCircuit qc(n, "hw_efficient");
  std::size_t p = 0;
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < n; ++q) qc.ry(theta.at(p++), static_cast<int>(q));
    for (unsigned q = 0; q + 1 < n; ++q) {
      qc.cx(static_cast<int>(q), static_cast<int>(q + 1));
    }
  }
  for (unsigned q = 0; q < n; ++q) qc.ry(theta.at(p++), static_cast<int>(q));
  return qc;
}

double energy(const sim::Observable& h, unsigned n, unsigned layers,
              const std::vector<double>& theta) {
  sim::FusedEngine<double> engine;
  const auto state = engine.run(ansatz(n, layers, theta));
  return sim::expectation(state, h);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned layers =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  const double J = 1.0, hx = 0.7;
  const sim::Observable hamiltonian = sim::Observable::ising_ring(n, J, hx);
  std::printf("TFIM ring: n=%u J=%.1f h=%.1f (%zu Pauli terms), ansatz "
              "layers=%u\n",
              n, J, hx, hamiltonian.size(), layers);

  const std::size_t num_params = static_cast<std::size_t>(n) * (layers + 1);
  std::vector<double> theta(num_params, 0.1);
  Rng rng(7);
  for (double& t : theta) t = rng.uniform(-0.3, 0.3);

  double best = energy(hamiltonian, n, layers, theta);
  std::printf("initial energy: %+.6f\n", best);

  // Coordinate descent with a 3-point quadratic fit per parameter
  // (rotation gates make the energy sinusoidal in each angle, so the
  // Rotosolve closed form applies).
  for (int sweep = 0; sweep < 6; ++sweep) {
    for (std::size_t p = 0; p < num_params; ++p) {
      const double t0 = theta[p];
      const double e0 = energy(hamiltonian, n, layers, theta);
      theta[p] = t0 + M_PI / 2;
      const double ep = energy(hamiltonian, n, layers, theta);
      theta[p] = t0 - M_PI / 2;
      const double em = energy(hamiltonian, n, layers, theta);
      // E(t) = a + b sin(t - t0 + phi): minimize in closed form.
      const double phi = std::atan2(2.0 * e0 - ep - em, ep - em);
      theta[p] = t0 - M_PI / 2 - phi;
      const double e_new = energy(hamiltonian, n, layers, theta);
      if (e_new > e0) theta[p] = t0;  // numerical guard
    }
    best = energy(hamiltonian, n, layers, theta);
    std::printf("sweep %d: energy %+.6f\n", sweep + 1, best);
  }

  // Compare against exact diagonal bound for small n via brute force over
  // the Z-basis (only exact when h=0; report it as a reference anchor).
  double zz_floor = 0.0;
  for (unsigned q = 0; q < n; ++q) zz_floor -= J;
  std::printf("converged energy %+.6f (ferromagnetic ZZ floor %+.2f, "
              "field h=%.1f lowers it further)\n",
              best, zz_floor, hx);
  return 0;
}
