// QCrank image round trip — the Fig. 5 / Fig. 6 workload, at a size this
// machine simulates exactly.
//
// Generates a synthetic grayscale image, encodes it with QCrank (one cx
// per pixel), simulates, samples at the paper's 3000-shots-per-address
// budget, decodes, and prints the Fig. 6 reconstruction metrics. Writes
// original.pgm / reconstructed.pgm so the result is visible.
//
// Run:  ./image_roundtrip [address_qubits] [data_qubits]

#include <cstdio>
#include <cstdlib>

#include "qgear/circuits/qcrank.hpp"
#include "qgear/core/transformer.hpp"

using namespace qgear;

int main(int argc, char** argv) {
  const unsigned m = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const unsigned d = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const circuits::QCrank codec(
      {.address_qubits = m, .data_qubits = d});

  // Image dimensions: one row per data qubit keeps the mapping obvious.
  const unsigned width = static_cast<unsigned>(pow2(m));
  const unsigned height = d;
  const image::Image original = image::make_synthetic(width, height, 7);
  std::printf("image %ux%u = %zu pixels -> %u qubits (%u addr + %u data)\n",
              width, height, original.size(), codec.total_qubits(), m, d);

  // Flatten in QCrank order: value(a, d) = pixel(x=a, y=d).
  std::vector<double> values(codec.capacity());
  for (std::uint64_t a = 0; a < pow2(m); ++a) {
    for (unsigned q = 0; q < d; ++q) {
      values[a * d + q] = original.at(static_cast<unsigned>(a), q);
    }
  }
  const qiskit::QuantumCircuit qc = codec.encode(values);
  std::printf("circuit: %zu gates (%zu cx = pixel count), depth %u\n",
              qc.size(), qc.num_2q_gates(), qc.depth());

  // Simulate + sample at the paper's budget: 3000 shots per address.
  const std::uint64_t shots = 3000ull * pow2(m);
  core::Transformer transformer({.target = core::Target::nvidia,
                                 .precision = core::Precision::fp64});
  const core::Result result = transformer.run(qc, {.shots = shots});
  std::printf("sampled %llu shots in %.2f s\n",
              static_cast<unsigned long long>(shots), result.wall_seconds);

  const std::vector<double> decoded = codec.decode_counts(result.counts);
  image::Image reconstructed{width, height,
                             std::vector<double>(original.size())};
  for (std::uint64_t a = 0; a < pow2(m); ++a) {
    for (unsigned q = 0; q < d; ++q) {
      reconstructed.at(static_cast<unsigned>(a), q) = decoded[a * d + q];
    }
  }

  const auto metrics = image::compare_images(original, reconstructed);
  std::printf("reconstruction: correlation=%.5f mse=%.3e max_err=%.4f "
              "psnr=%.1f dB\n",
              metrics.correlation, metrics.mse, metrics.max_abs_error,
              metrics.psnr_db);

  image::save_pgm(original, "original.pgm");
  image::save_pgm(reconstructed, "reconstructed.pgm");
  std::printf("wrote original.pgm and reconstructed.pgm\n");
  return 0;
}
