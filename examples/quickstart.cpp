// Quickstart: the full Q-Gear pipeline in one file.
//
//   1. Build a Qiskit-style circuit.
//   2. Encode it into the 3-D gate tensor (Sec. 2.1) and store it in a
//      qh5 container (Appendix C).
//   3. Reload, decode into a CUDA-Q-style kernel (Sec. 2.2).
//   4. Execute on the CPU baseline and the GPU-style targets and compare.
//
// Run:  ./quickstart

#include <cstdio>

#include "qgear/core/transformer.hpp"
#include "qgear/qh5/file.hpp"

using namespace qgear;

int main() {
  // 1. A 4-qubit GHZ-plus-rotations circuit through the fluent builder.
  qiskit::QuantumCircuit qc(4, "quickstart");
  qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  qc.ry(0.35, 2).rz(1.2, 3);
  qc.measure_all();
  std::printf("circuit '%s': %u qubits, %zu ops, depth %u\n",
              qc.name().c_str(), qc.num_qubits(), qc.size(), qc.depth());

  // 2. Encode -> qh5.
  const core::GateTensor tensor = core::encode_circuits({&qc, 1});
  std::printf("tensor: %u circuit(s), capacity %u, %llu bytes\n",
              tensor.num_circuits(), tensor.capacity(),
              static_cast<unsigned long long>(tensor.byte_size()));
  qh5::File file = qh5::File::create("quickstart.qh5");
  core::save_tensor(tensor, file.root().create_group("circuits"));
  file.flush();
  std::printf("wrote %s (%.1fx compression)\n", file.path().c_str(),
              file.stats().compression_ratio());

  // 3. Reload and decode into a kernel.
  qh5::File loaded = qh5::File::open("quickstart.qh5");
  const core::GateTensor restored =
      core::load_tensor(loaded.root().group("circuits"));
  const core::Kernel kernel = core::Kernel::from_tensor(restored, 0);

  // 4. Run on three targets and compare histograms.
  const core::RunOptions run{.shots = 4000};
  for (const core::Target target :
       {core::Target::cpu_aer, core::Target::nvidia,
        core::Target::nvidia_mgpu}) {
    core::TransformerOptions opts;
    opts.target = target;
    opts.precision = core::Precision::fp64;
    opts.devices = target == core::Target::nvidia_mgpu ? 4 : 1;
    core::Transformer transformer(opts);
    const core::Result result = transformer.run(kernel, run);

    std::printf("\ntarget %-12s sweeps=%llu comm=%llu B\n",
                core::target_name(target),
                static_cast<unsigned long long>(result.stats.sweeps),
                static_cast<unsigned long long>(result.comm_bytes));
    for (const auto& [key, count] : result.counts) {
      if (count < 100) continue;  // headline outcomes only
      std::printf("  |");
      for (unsigned q = 0; q < 4; ++q) std::printf("%u", unsigned(key >> q) & 1u);
      std::printf("> x %llu\n", static_cast<unsigned long long>(count));
    }
  }
  std::printf("\nquickstart done.\n");
  return 0;
}
