// Period finding with the QFT kernel — the workload family of Fig. 4c.
//
// Prepares a state with a hidden period r (amplitude on every r-th basis
// state), applies the QFT generator from Appendix D.2, samples, and reads
// the period off the spectral peaks. Demonstrates the kernel generator,
// the fused engine, and sampling on a domain problem.
//
// Run:  ./qft_period_finding [num_qubits] [period]

#include <cstdio>
#include <cstdlib>

#include "qgear/circuits/qft.hpp"
#include "qgear/core/transformer.hpp"

using namespace qgear;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  const std::uint64_t period =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 8;
  const std::uint64_t dim = pow2(n);
  QGEAR_CHECK_ARG(period >= 2 && period < dim, "period out of range");

  // Build the periodic state preparation manually: a comb over multiples
  // of `period` is the superposition QFT turns into peaks at k*dim/period.
  // We synthesize it by preparing the state vector directly through an
  // equivalent circuit: H-wall on the "counting" qubits of the comb is
  // only exact for powers of two, so for generality we inject amplitudes
  // via a fused engine run on a comb-preparation circuit built from
  // rotations. For this example a power-of-two period keeps it exact.
  QGEAR_CHECK_ARG(is_pow2(period), "this demo uses power-of-two periods");
  const unsigned comb_qubits = n - log2_exact(period);

  qiskit::QuantumCircuit qc(n, "period_finder");
  // |psi> = sum_j |j * period> : H on the top `comb_qubits` qubits of the
  // index (little-endian: multiples of `period` vary in the high bits).
  for (unsigned q = 0; q < comb_qubits; ++q) {
    qc.h(static_cast<int>(n - 1 - q));
  }
  qc.barrier();
  qc.compose(circuits::build_qft(n));
  qc.measure_all();

  core::Transformer transformer({.target = core::Target::nvidia,
                                 .precision = core::Precision::fp64});
  const core::Result result = transformer.run(qc, {.shots = 20000});

  std::printf("n=%u period=%llu: sampled %zu distinct outcomes\n", n,
              static_cast<unsigned long long>(period),
              result.counts.size());

  // QFT of a stride-`period` comb peaks exactly at multiples of
  // dim/period, spaced dim/period apart — so the smallest nonzero peak
  // key IS the spacing.
  const std::uint64_t peak_spacing = dim / period;
  const std::uint64_t threshold = 20000 / (2 * period);  // half a peak
  std::uint64_t spacing = 0;
  std::uint64_t best_key = 0, best_count = 0;
  for (const auto& [key, count] : result.counts) {
    if (count > best_count) {
      best_count = count;
      best_key = key;
    }
    if (count >= threshold && key != 0 && spacing == 0) spacing = key;
  }
  QGEAR_CHECK_ARG(spacing != 0, "no nonzero spectral peak found");
  std::printf(
      "strongest peak at %llu (hits=%llu); observed spacing %llu, "
      "expected %llu\n",
      static_cast<unsigned long long>(best_key),
      static_cast<unsigned long long>(best_count),
      static_cast<unsigned long long>(spacing),
      static_cast<unsigned long long>(peak_spacing));

  // Every sampled outcome should be a multiple of dim/period.
  std::uint64_t off_peak = 0;
  for (const auto& [key, count] : result.counts) {
    if (key % peak_spacing != 0) off_peak += count;
  }
  std::printf("off-peak probability: %.4f (expect ~0)\n",
              static_cast<double>(off_peak) / 20000.0);
  const std::uint64_t recovered = dim / spacing;
  std::printf("recovered period: %llu\n",
              static_cast<unsigned long long>(recovered));
  return 0;
}
