// Distributed (nvidia-mgpu-style) simulation demo.
//
// Runs the same random CX-block circuit single-device and across 2/4/8
// simulated devices, verifies the states agree, and reports the exact
// communication volume each configuration exchanged — the schedule the
// performance model prices at paper scale.
//
// Run:  ./distributed_sim [num_qubits] [blocks]

#include <cstdio>
#include <cstdlib>

#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

using namespace qgear;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const std::uint64_t blocks =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 200;

  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = n, .num_blocks = blocks, .measure = false, .seed = 3});
  std::printf("circuit: %u qubits, %llu CX blocks (%zu gates)\n", n,
              static_cast<unsigned long long>(blocks), qc.size());

  const core::Kernel kernel = core::Kernel::from_circuit(qc);
  const core::RunOptions run{.return_state = true};

  core::Transformer single({.target = core::Target::nvidia,
                            .precision = core::Precision::fp64});
  const core::Result ref = single.run(kernel, run);
  std::printf("\n%-8s %-12s %-14s %s\n", "devices", "wall", "comm bytes",
              "fidelity vs 1-device");

  for (int devices : {1, 2, 4, 8}) {
    core::Transformer t({.target = core::Target::nvidia_mgpu,
                         .precision = core::Precision::fp64,
                         .devices = devices});
    const core::Result r = t.run(kernel, run);
    std::complex<double> overlap(0, 0);
    for (std::size_t i = 0; i < r.state.size(); ++i) {
      overlap += std::conj(ref.state[i]) * r.state[i];
    }
    std::printf("%-8d %-12s %-14s %.12f\n", devices,
                human_seconds(r.wall_seconds).c_str(),
                human_bytes(r.comm_bytes).c_str(), std::norm(overlap));
  }

  // What would the same schedule cost at paper scale on A100s?
  std::printf("\npaper-scale projection (%u qubits -> 34 qubits, fp32):\n",
              n);
  const auto big = circuits::generate_random_circuit(
      {.num_qubits = 34, .num_blocks = blocks, .measure = false, .seed = 3});
  for (int devices : {4, 16, 64}) {
    perfmodel::ClusterConfig cfg;
    cfg.gpu = perfmodel::a100_80gb();
    cfg.devices = devices;
    cfg.include_container_start = false;
    const auto e = perfmodel::estimate_gpu(big, cfg);
    std::printf("  %4d x A100: compute %-10s comm %-10s (%s/device)\n",
                devices, human_seconds(e.compute_s).c_str(),
                human_seconds(e.comm_s).c_str(),
                human_bytes(e.comm_bytes_per_device).c_str());
  }
  return 0;
}
