// Containerized Slurm pipeline demo (paper Fig. 2c, Sec. 2.4, App. E).
//
// Submits a batch of random circuits through the simulated Podman + Slurm
// pipeline in both execution modes and prints per-job and cluster-level
// reports, including the warm-vs-cold container effect.
//
// Run:  ./pipeline_cluster

#include <cstdio>

#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/platform/pipeline.hpp"

using namespace qgear;

namespace {

void print_report(const char* title, const platform::PipelineReport& r) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-14s %-10s %-10s %-10s %s\n", "circuit", "startup",
              "queue", "run", "end-to-end");
  for (const auto& cj : r.circuits) {
    if (!cj.estimate.feasible) {
      std::printf("%-14s INFEASIBLE: %s\n", cj.circuit_name.c_str(),
                  cj.estimate.infeasible_reason.c_str());
      continue;
    }
    std::printf("%-14s %-10s %-10s %-10s %s\n", cj.circuit_name.c_str(),
                human_seconds(cj.container_startup_s).c_str(),
                human_seconds(cj.queue_wait_s).c_str(),
                human_seconds(cj.estimate.total_s()).c_str(),
                human_seconds(cj.end_to_end_s).c_str());
  }
  std::printf("makespan %s | GPU utilization %.1f%% | %llu done, %llu "
              "failed\n",
              human_seconds(r.makespan_s).c_str(),
              100.0 * r.utilization.gpu_busy_fraction,
              static_cast<unsigned long long>(r.utilization.completed),
              static_cast<unsigned long long>(r.utilization.failed));
}

}  // namespace

int main() {
  // Eight 28-qubit circuits — the Fig. 4a regime.
  std::vector<qiskit::QuantumCircuit> batch;
  for (std::uint64_t s = 0; s < 8; ++s) {
    auto qc = circuits::generate_random_circuit(
        {.num_qubits = 28, .num_blocks = 100, .measure = false, .seed = s});
    qc.set_name("rand28_" + std::to_string(s));
    batch.push_back(std::move(qc));
  }

  // Parallel (mqpu) mode: one GPU per circuit across 2 nodes (8 GPUs).
  platform::PipelineConfig parallel;
  parallel.mode = platform::PipelineMode::parallel;
  parallel.shots = 3000;
  print_report("parallel mode (8 circuits on 8 GPUs)",
               platform::run_pipeline(batch, parallel, /*gpu_nodes=*/2));

  // Distributed (mgpu) mode: each circuit over 8 GPUs, serialized.
  platform::PipelineConfig distributed = parallel;
  distributed.mode = platform::PipelineMode::distributed;
  distributed.cluster.devices = 8;
  print_report("distributed mode (each circuit on 8 GPUs)",
               platform::run_pipeline(batch, distributed, /*gpu_nodes=*/2));

  // Cold containers: same parallel run without pre-warming.
  platform::PipelineConfig cold = parallel;
  cold.prewarm_containers = false;
  print_report("parallel mode, cold image caches",
               platform::run_pipeline(batch, cold, /*gpu_nodes=*/2));
  return 0;
}
