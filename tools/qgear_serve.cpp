// qgear_serve — driver for the online simulation service: stands up a
// SimService and pushes a synthetic open-loop load through it, printing a
// human summary and (optionally) a qgear.serve.report/v1 JSON.
//
// Usage:
//   qgear_serve load [--workers N] [--queue-cap Q] [--tenant-cap C]
//                    [--rate HZ] [--jobs J] [--tenants T]
//                    [--dup-ratio D] [--hot-circuits H]
//                    [--qubits n] [--blocks B] [--qft-fraction F]
//                    [--deadline-ms MS] [--timeout-ms MS]
//                    [--cache on|off] [--cache-mb M] [--fusion W]
//                    [--precision fp32|fp64] [--seed S]
//                    [--backend NAME|auto] [--memory-budget-mb M]
//                    [--retries N] [--retry-backoff-ms MS]
//                    [--retry-budget B] [--checkpoint-every N]
//                    [--checkpoint-dir DIR] [--no-degrade]
//                    [--report out.json] [--trace-out trace.json]
//                    [--metrics-out metrics.json] [--log level]
//                    [--listen PORT] [--snapshot-prefix P]
//                    [--snapshot-period-s S] [--perf]
//
// Resilience (docs/RESILIENCE.md): --retries is total attempts per job
// (1 = never retry); --retry-budget caps retries per tenant;
// --checkpoint-every N checkpoints fused-path state every N blocks so
// retries resume. The QGEAR_FAULT_PLAN environment variable arms the
// deterministic fault injector (src/qgear/fault) for chaos runs, e.g.
//   QGEAR_FAULT_PLAN='seed=7;serve.worker=0.05;backend.oom=0.02'
//
// --listen starts the live HTTP exporter (obs/exporter.hpp): /metrics is
// Prometheus text, /snapshot and /trace are JSON, all computed from the
// live registry/tracer while the load runs. PORT 0 picks an ephemeral
// port; the bound port is printed either way. --snapshot-prefix writes
// periodic file snapshots for runs nobody scrapes. --perf turns on
// hardware-counter sampling around engine sweeps.
//
// SIGINT/SIGTERM flush the --trace-out/--metrics-out files through the
// same export path as a clean exit before terminating with 128+signo
// (obs/shutdown.hpp).
//
// The run drains the service before reporting, so a clean run always
// shows dropped_on_shutdown == 0 — the graceful-drain guarantee. CI's
// serve-smoke job validates the emitted report against
// docs/serve_report.schema.json.

#include <cstdio>
#include <map>
#include <string>

#include "qgear/common/log.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/fault/fault.hpp"
#include "qgear/obs/exporter.hpp"
#include "qgear/obs/json.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/perfcount.hpp"
#include "qgear/obs/shutdown.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/serve/loadgen.hpp"
#include "qgear/serve/service.hpp"
#include "qgear/sim/isa.hpp"
#include "qgear/sim/stats.hpp"

using namespace qgear;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      QGEAR_CHECK_ARG(starts_with(key, "--"), "expected --flag, got " + key);
      key = key.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);  // --key=value
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string opt(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoull(it->second);
  }

  double f64(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_load(const Args& args) {
  const std::string trace_out = args.opt("trace-out");
  const std::string metrics_out = args.opt("metrics-out");
  obs::Tracer& tracer = obs::Tracer::global();
  if (!trace_out.empty()) {
    tracer.clear();
    tracer.set_enabled(true);
  }
  if (args.has("perf")) obs::PerfCounters::set_enabled(true);

  // Interrupted runs still flush the same files a clean exit writes (the
  // watcher thread runs these callbacks, then _exit(128+signo)).
  obs::install_signal_flush();
  if (!trace_out.empty()) {
    obs::on_shutdown_flush([trace_out, &tracer] {
      tracer.write_trace_json(trace_out);
      std::printf("wrote %s: %llu span(s), %llu dropped\n", trace_out.c_str(),
                  static_cast<unsigned long long>(tracer.recorded()),
                  static_cast<unsigned long long>(tracer.dropped()));
    });
  }
  if (!metrics_out.empty()) {
    obs::on_shutdown_flush([metrics_out] {
      obs::write_text_file(metrics_out,
                           obs::Registry::global().snapshot().to_json());
      std::printf("wrote %s\n", metrics_out.c_str());
    });
  }

  obs::HttpExporter exporter;
  if (args.has("listen")) {
    obs::HttpExporter::Options eopts;
    eopts.port = static_cast<int>(args.u64("listen", 0));
    exporter.start(eopts);
    std::printf("live exporter on http://127.0.0.1:%d  "
                "(/metrics /snapshot /trace /healthz)\n",
                exporter.port());
    // Scrapers parse this line to find an ephemeral port; make it visible
    // immediately even when stdout is a (fully buffered) file.
    std::fflush(stdout);
  }
  obs::SnapshotWriter snapshots;
  if (args.has("snapshot-prefix")) {
    obs::SnapshotWriter::Options wopts;
    wopts.prefix = args.opt("snapshot-prefix");
    wopts.period_s = args.f64("snapshot-period-s", 10.0);
    snapshots.start(wopts);
  }

  serve::SimService::Options sopts;
  sopts.workers = static_cast<unsigned>(args.u64("workers", 0));
  sopts.scheduler.capacity =
      static_cast<std::size_t>(args.u64("queue-cap", 256));
  sopts.scheduler.per_tenant_inflight =
      static_cast<std::size_t>(args.u64("tenant-cap", 64));
  const std::string cache_mode = args.opt("cache", "on");
  QGEAR_CHECK_ARG(cache_mode == "on" || cache_mode == "off",
                  "--cache must be on or off");
  sopts.cache.enabled = cache_mode == "on";
  sopts.cache.max_bytes = args.u64("cache-mb", 256) << 20;
  sopts.fusion.max_width =
      static_cast<unsigned>(args.u64("fusion", 5));
  const std::string precision = args.opt("precision", "fp32");
  QGEAR_CHECK_ARG(precision == "fp32" || precision == "fp64",
                  "--precision must be fp32 or fp64");
  sopts.fp64 = precision == "fp64";
  sopts.backend = args.opt("backend", "fused");
  QGEAR_CHECK_ARG(
      sopts.backend == "auto" || sim::Backend::is_registered(sopts.backend),
      "--backend: unknown backend '" + sopts.backend + "' (use a registered "
      "backend or 'auto' to route per job)");
  sopts.memory_budget_bytes = args.u64("memory-budget-mb", 0) << 20;
  sopts.retry.max_attempts =
      static_cast<unsigned>(args.u64("retries", 1));
  QGEAR_CHECK_ARG(sopts.retry.max_attempts >= 1,
                  "--retries must be >= 1 (total attempts per job)");
  sopts.retry.backoff_ms = args.f64("retry-backoff-ms", 10.0);
  sopts.retry.tenant_retry_budget = args.u64("retry-budget", 0);
  sopts.checkpoint_every = args.u64("checkpoint-every", 0);
  sopts.checkpoint_dir = args.opt("checkpoint-dir");
  sopts.degrade_on_oom = !args.has("no-degrade");

  // Chaos runs: QGEAR_FAULT_PLAN arms the deterministic fault injector
  // for the whole load (fault.* counters land in --metrics-out).
  if (const auto plan = fault::FaultPlan::from_env()) {
    fault::FaultInjector::global().arm(*plan);
    std::printf("fault injector armed: %s\n", plan->to_string().c_str());
  }

  serve::LoadGenOptions lopts;
  lopts.total_jobs = args.u64("jobs", 400);
  lopts.arrival_rate_hz = args.f64("rate", 400.0);
  lopts.tenants = static_cast<unsigned>(args.u64("tenants", 4));
  lopts.duplicate_ratio = args.f64("dup-ratio", 0.5);
  lopts.hot_circuits = static_cast<unsigned>(args.u64("hot-circuits", 8));
  lopts.qubits = static_cast<unsigned>(args.u64("qubits", 10));
  lopts.blocks = args.u64("blocks", 120);
  lopts.qft_fraction = args.f64("qft-fraction", 0.25);
  lopts.queue_deadline_s = args.f64("deadline-ms", 0.0) / 1e3;
  lopts.timeout_s = args.f64("timeout-ms", 0.0) / 1e3;
  lopts.seed = args.u64("seed", 1);

  std::printf("kernel isa: %s; service: %s workers, queue %zu, "
              "cache %s (%s)\n",
              sim::isa_name(sim::active_isa()),
              sopts.workers == 0 ? "auto" : std::to_string(sopts.workers).c_str(),
              sopts.scheduler.capacity, sopts.cache.enabled ? "on" : "off",
              human_bytes(sopts.cache.max_bytes).c_str());

  serve::SimService svc(sopts);
  const serve::LoadGenReport report = serve::run_load(svc, lopts);
  std::printf("%s", report.summary().c_str());

  // Clean exit takes the same export path the signal watcher would:
  // fold engine stats, then run the registered flush callbacks once.
  if (!trace_out.empty()) tracer.set_enabled(false);
  sim::fold_stats(obs::Registry::global(), svc.folded_stats(),
                  "serve.engine");
  snapshots.stop();
  exporter.stop();
  obs::flush_now();
  const std::string report_out = args.opt("report");
  if (!report_out.empty()) {
    obs::write_text_file(report_out, report.to_json().dump());
    std::printf("wrote %s\n", report_out.c_str());
  }
  // Drain is part of run_load; a graceful run never drops jobs.
  return report.dropped_on_shutdown == 0 ? 0 : 1;
}

void print_usage() {
  std::printf(
      "qgear_serve <command> [flags]\n"
      "commands: load\n"
      "see the header of tools/qgear_serve.cpp for full flag reference.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv);
    if (args.has("log")) {
      log::set_level(log::parse_level(args.opt("log", "info")));
    }
    if (cmd == "load") return cmd_load(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    print_usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
