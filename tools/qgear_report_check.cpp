// Validates a bench report JSON against a schema file.
//
//   qgear_report_check <report.json> <schema.json>
//
// Implements the JSON-Schema subset the repo's schemas use: type (string
// or array of strings), const, enum, required, properties,
// additionalProperties (boolean or sub-schema), items, and the numeric
// bounds minimum / maximum. Exits 0 when the document validates, 1 with
// a path-qualified message otherwise — CI's bench-smoke job runs it on
// the report emitted via QGEAR_BENCH_REPORT and on the serve report
// emitted by `qgear_serve load --report`.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qgear/obs/json.hpp"

namespace {

using qgear::obs::JsonValue;

struct Failure {
  std::string path;
  std::string message;
};

std::string kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::null:
      return "null";
    case JsonValue::Kind::boolean:
      return "boolean";
    case JsonValue::Kind::number:
      return "number";
    case JsonValue::Kind::string:
      return "string";
    case JsonValue::Kind::array:
      return "array";
    case JsonValue::Kind::object:
      return "object";
  }
  return "unknown";
}

bool type_matches(const JsonValue& value, const std::string& type) {
  if (type == "object") return value.is_object();
  if (type == "array") return value.is_array();
  if (type == "string") return value.is_string();
  if (type == "number" || type == "integer") return value.is_number();
  if (type == "boolean") return value.is_bool();
  if (type == "null") return value.is_null();
  return false;
}

bool json_equal(const JsonValue& a, const JsonValue& b) {
  return a.dump() == b.dump();
}

void validate(const JsonValue& value, const JsonValue& schema,
              const std::string& path, std::vector<Failure>& failures) {
  if (!schema.is_object()) return;  // boolean/empty schema: accept

  if (const JsonValue* type = schema.find("type")) {
    bool ok = false;
    if (type->is_string()) {
      ok = type_matches(value, type->str());
    } else if (type->is_array()) {
      for (const JsonValue& t : type->array()) {
        if (t.is_string() && type_matches(value, t.str())) ok = true;
      }
    }
    if (!ok) {
      failures.push_back({path, "expected type " + type->dump() + ", got " +
                                    kind_name(value.kind())});
      return;  // further structural checks would only cascade
    }
  }

  if (const JsonValue* cst = schema.find("const")) {
    if (!json_equal(value, *cst)) {
      failures.push_back({path, "expected const " + cst->dump() + ", got " +
                                    value.dump()});
    }
  }

  if (const JsonValue* en = schema.find("enum")) {
    bool ok = false;
    for (const JsonValue& option : en->array()) {
      if (json_equal(value, option)) ok = true;
    }
    if (!ok) {
      failures.push_back({path, "value " + value.dump() + " not in enum " +
                                    en->dump()});
    }
  }

  if (value.is_number()) {
    const JsonValue* minimum = schema.find("minimum");
    if (minimum != nullptr && minimum->is_number() &&
        value.number() < minimum->number()) {
      failures.push_back({path, "value " + value.dump() +
                                    " below minimum " + minimum->dump()});
    }
    const JsonValue* maximum = schema.find("maximum");
    if (maximum != nullptr && maximum->is_number() &&
        value.number() > maximum->number()) {
      failures.push_back({path, "value " + value.dump() +
                                    " above maximum " + maximum->dump()});
    }
  }

  if (value.is_object()) {
    if (const JsonValue* required = schema.find("required")) {
      for (const JsonValue& key : required->array()) {
        if (value.find(key.str()) == nullptr) {
          failures.push_back({path, "missing required member \"" +
                                        key.str() + "\""});
        }
      }
    }
    const JsonValue* props = schema.find("properties");
    const JsonValue* extra = schema.find("additionalProperties");
    for (const auto& [key, member] : value.object()) {
      const std::string member_path = path + "." + key;
      const JsonValue* sub =
          props != nullptr ? props->find(key) : nullptr;
      if (sub != nullptr) {
        validate(member, *sub, member_path, failures);
      } else if (extra != nullptr) {
        if (extra->is_bool() && !extra->boolean()) {
          failures.push_back({member_path, "unexpected member"});
        } else if (extra->is_object()) {
          validate(member, *extra, member_path, failures);
        }
      }
    }
  }

  if (value.is_array()) {
    if (const JsonValue* items = schema.find("items")) {
      const auto& arr = value.array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        validate(arr[i], *items, path + "[" + std::to_string(i) + "]",
                 failures);
      }
    }
  }
}

JsonValue parse_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qgear_report_check: cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: qgear_report_check <report.json> <schema.json>\n");
    return 2;
  }
  JsonValue report;
  JsonValue schema;
  try {
    report = parse_file(argv[1]);
    schema = parse_file(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qgear_report_check: parse error: %s\n", e.what());
    return 1;
  }

  std::vector<Failure> failures;
  validate(report, schema, "$", failures);
  if (!failures.empty()) {
    for (const Failure& f : failures) {
      std::fprintf(stderr, "qgear_report_check: %s: %s\n", f.path.c_str(),
                   f.message.c_str());
    }
    std::fprintf(stderr, "qgear_report_check: %s FAILED (%zu problem%s)\n",
                 argv[1], failures.size(), failures.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("qgear_report_check: %s OK against %s\n", argv[1], argv[2]);
  return 0;
}
