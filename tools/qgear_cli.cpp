// qgear_cli — command-line driver for the Q-Gear pipeline, mirroring the
// paper's `run.py` entry point (App. E.3): generate workloads, encode
// them into qh5 gate tensors, execute on any target, and estimate
// paper-scale cluster runtimes.
//
// Usage:
//   qgear_cli gen-random  --qubits N --blocks B [--circuits C] [--seed S]
//                         --out circuits.qh5
//   qgear_cli gen-qft     --qubits N [--no-swaps] --out circuits.qh5
//   qgear_cli gen-ghz     --qubits N --out circuits.qh5
//   qgear_cli gen-image   --addr M --data D [--seed S] --out circuits.qh5
//   qgear_cli info        --in circuits.qh5
//   qgear_cli run         --in circuits.qh5 [--target nvidia|cpu-aer|
//                         nvidia-mgpu|nvidia-mqpu] [--devices R]
//                         [--shots S] [--precision fp32|fp64]
//                         [--fusion W] [--trace-out trace.json]
//                         [--metrics-out metrics.json]
//   qgear_cli run         --in circuits.qh5 --backend NAME [--shots S]
//                         [--seed S] [--mps-cutoff C] [--mps-max-bond B]
//                         [--dd-max-nodes N] [--dist-ranks R] [--fusion W]
//                         [--retries N] [--retry-backoff-ms MS]
//                         [--checkpoint-every N] [--report out.json]
//   qgear_cli run         --in circuits.qh5 --auto [--budget-mb M]
//                         [--max-error E] [--calibration cal.json]
//                         [--shots S] [--seed S] [--report out.json]
//   qgear_cli plan        --in circuits.qh5 [--budget-mb M]
//                         [--max-error E] [--time-budget-s T]
//                         [--calibration cal.json] [--report out.json]
//   qgear_cli calibrate   --out calibration.json [--repeats R]
//                         [--probe-qubits N] [--skip-suite]
//   qgear_cli diff-reports --a a.json --b b.json [--marginal-tol T]
//                         [--exp-tol T]
//   qgear_cli estimate    --in circuits.qh5 [--devices R] [--gpu 40|80]
//                         [--shots S] [--precision fp32|fp64]
//                         [--schedule] [--ranks-per-domain D]
//                         (--schedule prints the planned batched exchange
//                          schedule: per-batch rounds, peers, link tiers,
//                          and bytes per rank)
//   qgear_cli estimate    --in circuits.qh5 --backend NAME|all
//                         [--budget-mb M] [--max-error E]
//                         [--calibration cal.json] [--dd-max-nodes N]
//                         [--mps-cutoff C] [--mps-max-bond B]
//   qgear_cli qasm-export --in circuits.qh5 --index I --out circuit.qasm
//
// `run --backend` executes through the pluggable sim::Backend registry
// (reference | fused | dd | mps | dist; QGEAR_BACKEND sets the default
// when the flag's value is empty) and emits a qgear.backend.report/v1
// JSON with sampled counts and per-qubit Z expectations —
// `diff-reports` compares two such reports within tolerances, which is
// how CI checks cross-backend equivalence. Route-only members a report
// may carry (`precision`, `route`, rationale text) are deliberately
// ignored by the diff, so an autotuned run compares cleanly against a
// pinned-backend run.
//
// `run --auto` routes each circuit through route::plan (backend x
// precision x ISA x fusion width under --budget-mb / --max-error) and
// then executes the chosen placement; `plan` prints/exports the decision
// (qgear.route.report/v1) without executing; `calibrate` refreshes the
// router's time-model constants and measured lookup table.
//
// Flags accept both "--key value" and "--key=value". Observability:
// `--trace-out` records a Chrome Trace Event file (chrome://tracing /
// Perfetto) of the run, `--metrics-out` dumps the metrics registry as
// JSON, and `--log <level>` (or QGEAR_LOG) sets stderr verbosity.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qgear/circuits/qcrank.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/log.hpp"
#include "qgear/common/rng.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/comm/comm.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/dist/dist_backend.hpp"
#include "qgear/dist/remap.hpp"
#include "qgear/fault/fault.hpp"
#include "qgear/obs/json.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/shutdown.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/perfmodel/model.hpp"
#include "qgear/qh5/file.hpp"
#include "qgear/qiskit/qasm.hpp"
#include "qgear/qiskit/transpile.hpp"
#include "qgear/route/calibration.hpp"
#include "qgear/route/cost.hpp"
#include "qgear/route/route.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/isa.hpp"
#include "qgear/sim/observable.hpp"
#include "qgear/sim/stats.hpp"

using namespace qgear;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      QGEAR_CHECK_ARG(starts_with(key, "--"), "expected --flag, got " + key);
      key = key.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);  // --key=value
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Optional flag: empty string when absent.
  std::string opt(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? "" : it->second;
  }

  std::string str(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      QGEAR_CHECK_ARG(!fallback.empty() || key == "out" || key == "in",
                      "missing required flag --" + key);
      return fallback;
    }
    return it->second;
  }

  std::string required(const std::string& key) const {
    auto it = values_.find(key);
    QGEAR_CHECK_ARG(it != values_.end() && !it->second.empty(),
                    "missing required flag --" + key);
    return it->second;
  }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoull(it->second);
  }

  double f64(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

void save_circuits(const std::vector<qiskit::QuantumCircuit>& circs,
                   const std::string& path) {
  const core::GateTensor tensor = core::encode_circuits(circs);
  qh5::File file = qh5::File::create(path);
  core::save_tensor(tensor, file.root().create_group("circuits"));
  file.flush();
  std::printf("wrote %s: %u circuit(s), capacity %u, %s on disk "
              "(%.2fx compression)\n",
              path.c_str(), tensor.num_circuits(), tensor.capacity(),
              human_bytes(file.stats().file_bytes).c_str(),
              file.stats().compression_ratio());
}

core::GateTensor load_circuits(const std::string& path) {
  qh5::File file = qh5::File::open(path);
  return core::load_tensor(file.root().group("circuits"));
}

core::Precision parse_precision(const std::string& s) {
  if (s == "fp32") return core::Precision::fp32;
  if (s == "fp64") return core::Precision::fp64;
  throw InvalidArgument("unknown precision: " + s);
}

core::Target parse_target(const std::string& s) {
  if (s == "cpu-aer") return core::Target::cpu_aer;
  if (s == "nvidia") return core::Target::nvidia;
  if (s == "nvidia-mgpu") return core::Target::nvidia_mgpu;
  if (s == "nvidia-mqpu") return core::Target::nvidia_mqpu;
  throw InvalidArgument("unknown target: " + s);
}

int cmd_gen_random(const Args& args) {
  circuits::RandomBlocksOptions opts;
  opts.num_qubits = static_cast<unsigned>(args.u64("qubits", 10));
  opts.num_blocks = args.u64("blocks", 100);
  opts.seed = args.u64("seed", 1);
  const std::size_t count = args.u64("circuits", 1);
  std::vector<qiskit::QuantumCircuit> circs;
  for (std::size_t i = 0; i < count; ++i) {
    circuits::RandomBlocksOptions per = opts;
    per.seed = opts.seed + i;
    circs.push_back(circuits::generate_random_circuit(per));
  }
  save_circuits(circs, args.required("out"));
  return 0;
}

int cmd_gen_qft(const Args& args) {
  circuits::QftOptions opts;
  opts.do_swaps = !args.has("no-swaps");
  auto qc = circuits::build_qft(
      static_cast<unsigned>(args.u64("qubits", 10)), opts);
  qc.measure_all();
  save_circuits({qc}, args.required("out"));
  return 0;
}

int cmd_gen_ghz(const Args& args) {
  const unsigned n = static_cast<unsigned>(args.u64("qubits", 50));
  QGEAR_CHECK_ARG(n >= 2, "--qubits must be >= 2");
  qiskit::QuantumCircuit qc(n, strfmt("ghz%u", n));
  qc.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
  qc.measure_all();
  save_circuits({qc}, args.required("out"));
  return 0;
}

int cmd_gen_image(const Args& args) {
  const unsigned m = static_cast<unsigned>(args.u64("addr", 6));
  const unsigned d = static_cast<unsigned>(args.u64("data", 2));
  const circuits::QCrank codec({.address_qubits = m, .data_qubits = d});
  const image::Image img = image::make_synthetic(
      static_cast<unsigned>(pow2(m)), d, args.u64("seed", 7));
  const auto qc = codec.encode(
      std::vector<double>(img.pixels.begin(), img.pixels.end()));
  save_circuits({qc}, args.required("out"));
  return 0;
}

int cmd_info(const Args& args) {
  const core::GateTensor tensor = load_circuits(args.required("in"));
  std::printf("gate tensor: %u circuit(s), capacity %u, %s\n",
              tensor.num_circuits(), tensor.capacity(),
              human_bytes(tensor.byte_size()).c_str());
  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);
    std::printf("  [%u] '%s': %u qubits, %zu gates (%zu entangling), "
                "depth %u\n",
                c, qc.name().c_str(), qc.num_qubits(), qc.size(),
                qc.num_2q_gates(), qc.depth());
    if (args.has("verbose")) {
      std::printf("%s", qc.to_string(24).c_str());
    }
  }
  return 0;
}

sim::BackendOptions backend_options_from_args(const Args& args) {
  sim::BackendOptions bo;
  bo.fusion.max_width = static_cast<unsigned>(args.u64("fusion", 5));
  bo.dd.max_nodes = args.u64("dd-max-nodes", bo.dd.max_nodes);
  bo.mps.cutoff = args.f64("mps-cutoff", bo.mps.cutoff);
  bo.mps.max_bond =
      static_cast<std::size_t>(args.u64("mps-max-bond", bo.mps.max_bond));
  bo.dist_ranks = static_cast<unsigned>(args.u64("dist-ranks", 0));
  return bo;
}

route::Calibration calibration_from_args(const Args& args) {
  const std::string path = args.opt("calibration");
  return path.empty() ? route::Calibration::host_default()
                      : route::Calibration::load(path);
}

/// The --backend execution path: circuits run through the pluggable
/// registry and the results land in a qgear.backend.report/v1 document.
/// With --auto (or --backend auto) each circuit is first routed through
/// route::plan and executed on the chosen backend x precision x ISA x
/// fusion width; the decision is recorded in the per-circuit `route`
/// member.
int cmd_run_backend(const Args& args) {
  std::string name = args.opt("backend");
  const bool auto_route = args.has("auto") || name == "auto";
  if (name.empty() && !auto_route) name = sim::Backend::default_name();
  const sim::BackendOptions base = backend_options_from_args(args);
  const std::uint64_t shots = args.u64("shots", 0);
  const std::uint64_t seed = args.u64("seed", 12345);
  // Resilience (docs/RESILIENCE.md): transient failures replay the whole
  // circuit up to --retries attempts with exponential backoff; with
  // --auto an OutOfMemoryBudget instead re-plans with the failed backend
  // excluded (degraded fallback). --checkpoint-every is accepted for flag
  // parity with qgear_serve and echoed in the report; segment
  // checkpointing itself is a serve fused-path feature.
  const unsigned max_attempts = static_cast<unsigned>(args.u64("retries", 1));
  QGEAR_CHECK_ARG(max_attempts >= 1,
                  "--retries must be >= 1 (total attempts per circuit)");
  const double retry_backoff_ms = args.f64("retry-backoff-ms", 10.0);
  const std::uint64_t checkpoint_every = args.u64("checkpoint-every", 0);
  if (const auto plan = fault::FaultPlan::from_env()) {
    fault::FaultInjector::global().arm(*plan);
    std::printf("fault injector armed: %s\n", plan->to_string().c_str());
  }

  route::Budget budget;
  route::RouteOptions ropts;
  if (auto_route) {
    name = "auto";
    budget.memory_bytes = args.u64("budget-mb", 0) << 20;
    budget.max_error = args.f64("max-error", 1e-4);
    ropts.calibration = calibration_from_args(args);
    ropts.base = base;
  }

  obs::JsonValue report{obs::JsonValue::Object{}};
  report.set("schema", "qgear.backend.report/v1");
  report.set("backend", name);
  report.set("shots", shots);
  report.set("seed", seed);
  report.set("retries", max_attempts);
  report.set("checkpoint_every", checkpoint_every);
  obs::JsonValue circuits_json{obs::JsonValue::Array{}};

  const core::GateTensor tensor = load_circuits(args.required("in"));
  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);

    sim::BackendOptions bo = base;
    std::string exec_name = name;
    std::string precision = bo.fp32 ? "fp32" : "fp64";
    route::Placement placement;
    unsigned attempts = 1;
    bool degraded = false;
    std::vector<std::string> fallback_chain;
    std::unique_ptr<sim::Backend> backend;
    std::uint64_t mem_bytes = 0;
    std::vector<unsigned> measured;
    sim::Counts counts;
    std::vector<double> z(qc.num_qubits());
    double wall = 0;
    for (;;) {
      try {
        bo = base;
        exec_name = name;
        precision = bo.fp32 ? "fp32" : "fp64";
        if (auto_route) {
          route::RouteOptions attempt_opts = ropts;
          attempt_opts.exclude_backends = fallback_chain;
          placement = route::plan(qc, budget, attempt_opts);
          if (!placement.feasible) {
            std::fprintf(stderr, "[%u] %s: no feasible placement — %s\n", c,
                         qc.name().c_str(),
                         placement.rationale.empty()
                             ? "(no rationale)"
                             : placement.rationale.back().c_str());
            return 1;
          }
          const route::CandidateConfig& cfg = placement.choice.config;
          exec_name = cfg.backend;
          precision = cfg.precision;
          bo.fp32 = cfg.precision == "fp32";
          if (cfg.fusion_width > 0) bo.fusion.max_width = cfg.fusion_width;
          sim::set_active_isa(cfg.isa);
          for (const std::string& line : placement.rationale) {
            std::printf("[%u] %s: %s\n", c, qc.name().c_str(), line.c_str());
          }
        }
        backend = sim::Backend::create(exec_name, bo);
        mem_bytes = backend->memory_estimate(qc);

        WallTimer timer;
        backend->init_state(qc.num_qubits());
        measured.clear();
        backend->apply_circuit(qc, &measured);
        std::sort(measured.begin(), measured.end());
        measured.erase(std::unique(measured.begin(), measured.end()),
                       measured.end());

        counts.clear();
        if (shots > 0) {
          Rng rng(seed + c);
          counts = backend->sample(measured, shots, rng);
        }
        for (unsigned q = 0; q < qc.num_qubits(); ++q) {
          sim::PauliTerm term;
          term.ops.assign(q + 1, sim::Pauli::I);
          term.ops[q] = sim::Pauli::Z;
          z[q] = backend->expectation(term);
        }
        wall = timer.seconds();
        break;
      } catch (const OutOfMemoryBudget& e) {
        if (!auto_route) {
          std::fprintf(stderr, "[%u] %s: %s\n", c, qc.name().c_str(),
                       e.what());
          return 1;
        }
        std::printf("[%u] %s: backend %s out of memory budget (%s); "
                    "replanning without it\n",
                    c, qc.name().c_str(), exec_name.c_str(), e.what());
        fallback_chain.push_back(exec_name);
        degraded = true;
        // Bounded: each pass excludes one more backend; route::plan goes
        // infeasible (handled above) once the candidate space is empty.
      } catch (const InvalidArgument& e) {
        std::fprintf(stderr, "[%u] %s: %s\n", c, qc.name().c_str(), e.what());
        return 1;
      } catch (const FormatError& e) {
        std::fprintf(stderr, "[%u] %s: %s\n", c, qc.name().c_str(), e.what());
        return 1;
      } catch (const std::exception& e) {
        if (attempts >= max_attempts) {
          std::fprintf(stderr, "[%u] %s: failed after %u attempt(s): %s\n", c,
                       qc.name().c_str(), attempts, e.what());
          return 1;
        }
        const double backoff_ms =
            retry_backoff_ms * std::pow(2.0, static_cast<double>(attempts - 1));
        std::printf("[%u] %s: attempt %u failed (%s); retrying in %.0f ms\n",
                    c, qc.name().c_str(), attempts, e.what(), backoff_ms);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        ++attempts;
      }
    }

    std::printf("[%u] %s via %s/%s: %u qubits, %zu gates, %s wall, "
                "mem estimate %s\n",
                c, qc.name().c_str(), exec_name.c_str(), precision.c_str(),
                qc.num_qubits(), qc.size(), human_seconds(wall).c_str(),
                human_bytes(mem_bytes).c_str());

    obs::JsonValue cj{obs::JsonValue::Object{}};
    cj.set("name", qc.name());
    cj.set("qubits", qc.num_qubits());
    cj.set("gates", std::uint64_t{qc.size()});
    cj.set("memory_estimate_bytes", mem_bytes);
    cj.set("wall_seconds", wall);
    cj.set("attempts", attempts);
    if (degraded) {
      cj.set("degraded", true);
      obs::JsonValue fb{obs::JsonValue::Array{}};
      for (const std::string& b : fallback_chain) fb.push_back(b);
      fb.push_back(exec_name);
      cj.set("fallback_chain", std::move(fb));
    }
    if (auto_route) {
      cj.set("precision", precision);
      obs::JsonValue rj{obs::JsonValue::Object{}};
      rj.set("backend", exec_name);
      rj.set("precision", precision);
      rj.set("isa", sim::isa_name(placement.choice.config.isa));
      rj.set("fusion_width", placement.choice.config.fusion_width);
      rj.set("time_est_s", placement.choice.seconds);
      rj.set("memory_est_bytes", placement.choice.mem_bytes);
      obs::JsonValue why{obs::JsonValue::Array{}};
      for (const std::string& line : placement.rationale) why.push_back(line);
      rj.set("rationale", std::move(why));
      cj.set("route", std::move(rj));
    }
    obs::JsonValue mj{obs::JsonValue::Array{}};
    // Key-bit order: bit j of a counts key is the value of measured[j]
    // (all qubits ascending when the circuit has no measure ops).
    if (measured.empty()) {
      for (unsigned q = 0; q < qc.num_qubits(); ++q) mj.push_back(q);
    } else {
      for (unsigned q : measured) mj.push_back(q);
    }
    cj.set("measured", std::move(mj));
    obs::JsonValue counts_json{obs::JsonValue::Object{}};
    for (const auto& [key, count] : counts) {
      counts_json.set(strfmt("%llu", static_cast<unsigned long long>(key)),
                      count);
    }
    cj.set("counts", std::move(counts_json));
    obs::JsonValue zj{obs::JsonValue::Array{}};
    for (double v : z) zj.push_back(v);
    cj.set("z_expectations", std::move(zj));
    const sim::EngineStats& st = backend->stats();
    obs::JsonValue sj{obs::JsonValue::Object{}};
    sj.set("gates", st.gates);
    sj.set("sweeps", st.sweeps);
    sj.set("dd_nodes", st.dd_nodes);
    sj.set("mps_max_bond", st.mps_max_bond);
    sj.set("truncation_error", st.truncation_error);
    cj.set("stats", std::move(sj));
    circuits_json.push_back(std::move(cj));
  }
  report.set("circuits", std::move(circuits_json));

  const std::string report_out = args.opt("report");
  if (!report_out.empty()) {
    obs::write_text_file(report_out, report.dump());
    std::printf("wrote %s\n", report_out.c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  if (args.has("backend") || args.has("auto")) return cmd_run_backend(args);
  const std::string trace_out = args.opt("trace-out");
  const std::string metrics_out = args.opt("metrics-out");
  obs::Tracer& tracer = obs::Tracer::global();
  if (!trace_out.empty()) {
    tracer.clear();
    tracer.set_enabled(true);
  }
  // An interrupted run flushes the same files a clean exit writes
  // (engine stats folded so far are missing, spans/metrics are not).
  if (!trace_out.empty() || !metrics_out.empty()) {
    obs::install_signal_flush();
    if (!trace_out.empty()) {
      obs::on_shutdown_flush(
          [trace_out, &tracer] { tracer.write_trace_json(trace_out); });
    }
    if (!metrics_out.empty()) {
      obs::on_shutdown_flush([metrics_out] {
        obs::write_text_file(metrics_out,
                             obs::Registry::global().snapshot().to_json());
      });
    }
  }

  core::TransformerOptions opts;
  opts.target = parse_target(args.str("target", "nvidia"));
  opts.precision = parse_precision(args.str("precision", "fp32"));
  opts.devices = static_cast<int>(args.u64("devices", 1));
  opts.fusion_width = static_cast<unsigned>(args.u64("fusion", 5));
  const core::RunOptions run{.shots = args.u64("shots", 0)};
  std::printf("kernel isa: %s (best supported: %s; override with "
              "QGEAR_ISA=scalar|sse2|avx2)\n",
              sim::isa_name(sim::active_isa()),
              sim::isa_name(sim::best_supported_isa()));

  std::vector<core::Kernel> kernels;
  std::vector<core::Result> results;
  {
    // Scoped so every span (including this root) closes before export.
    obs::Span root(tracer, "cli.run", "cli");
    const core::GateTensor tensor = load_circuits(args.required("in"));
    core::Transformer transformer(opts);
    for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
      kernels.push_back(core::Kernel::from_tensor(tensor, c));
    }
    if (root.active()) {
      root.arg("circuits", std::uint64_t{kernels.size()});
      root.arg("target", args.str("target", "nvidia"));
    }
    results = transformer.run_batch(kernels, run);
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("[%zu] %s: %s wall, %llu sweeps, %s comm\n", i,
                kernels[i].name().c_str(),
                human_seconds(r.wall_seconds).c_str(),
                static_cast<unsigned long long>(r.stats.sweeps),
                human_bytes(r.comm_bytes).c_str());
    if (run.shots > 0) {
      std::size_t shown = 0;
      for (const auto& [key, count] : r.counts) {
        if (shown++ >= 8) {
          std::printf("    ... %zu more outcomes\n",
                      r.counts.size() - 8);
          break;
        }
        std::printf("    %llu: %llu\n",
                    static_cast<unsigned long long>(key),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  if (!trace_out.empty()) {
    tracer.set_enabled(false);
    tracer.write_trace_json(trace_out);
    std::printf("wrote %s: %llu span(s), %llu dropped\n", trace_out.c_str(),
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  if (!metrics_out.empty()) {
    auto& reg = obs::Registry::global();
    for (const auto& r : results) {
      sim::fold_stats(reg, r.stats, "engine");
    }
    const obs::RegistrySnapshot snap = reg.snapshot();
    obs::write_text_file(metrics_out, snap.to_json());
    std::printf("wrote %s: %zu counter(s), %zu gauge(s), %zu histogram(s)\n",
                metrics_out.c_str(), snap.counters.size(),
                snap.gauges.size(), snap.histograms.size());
  }
  return 0;
}

/// `qgear_cli plan` — routes every circuit in the tensor and prints the
/// decisions without executing anything. --report writes the combined
/// qgear.route.report/v1 document (docs/route_report.schema.json).
int cmd_plan(const Args& args) {
  route::Budget budget;
  budget.memory_bytes = args.u64("budget-mb", 0) << 20;
  budget.max_error = args.f64("max-error", 1e-4);
  budget.time_s = args.f64("time-budget-s", 0.0);
  route::RouteOptions ropts;
  ropts.calibration = calibration_from_args(args);
  ropts.base = backend_options_from_args(args);
  if (args.has("include-dist")) ropts.include_dist = true;

  const core::GateTensor tensor = load_circuits(args.required("in"));
  std::vector<std::string> names;
  std::vector<route::Placement> placements;
  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);
    route::Placement p = route::plan(qc, budget, ropts);
    std::printf("[%u] %s:\n", c, qc.name().c_str());
    for (const std::string& line : p.rationale) {
      std::printf("    %s\n", line.c_str());
    }
    if (args.has("verbose")) {
      for (const route::Candidate& alt : p.alternatives) {
        std::printf("    %-10s %s isa=%-6s w=%u  %10s  %10s%s%s\n",
                    alt.config.backend.c_str(), alt.config.precision.c_str(),
                    sim::isa_name(alt.config.isa), alt.config.fusion_width,
                    human_seconds(alt.seconds).c_str(),
                    human_bytes(alt.mem_bytes).c_str(),
                    alt.feasible ? "" : "  REJECTED: ",
                    alt.reject_reason.c_str());
      }
    }
    names.push_back(qc.name());
    placements.push_back(std::move(p));
  }

  const std::string report_out = args.opt("report");
  if (!report_out.empty()) {
    obs::write_text_file(
        report_out, route::make_report(names, placements, budget).dump());
    std::printf("wrote %s\n", report_out.c_str());
  }
  const bool all_feasible =
      std::all_of(placements.begin(), placements.end(),
                  [](const route::Placement& p) { return p.feasible; });
  return all_feasible ? 0 : 1;
}

/// Times one backend run (init + apply) of `qc`, best of `repeats`. Min,
/// not median: scheduler noise only adds time, and bench_route_sweep
/// measures candidates the same way, so the stored ratios stay
/// comparable to what the sweep observes.
double measure_backend_wall(const std::string& backend,
                            const sim::BackendOptions& bo,
                            const qiskit::QuantumCircuit& qc,
                            unsigned repeats) {
  double best = 0.0;
  for (unsigned r = 0; r < std::max(repeats, 1u); ++r) {
    auto b = sim::Backend::create(backend, bo);
    b->init_state(qc.num_qubits());
    WallTimer timer;
    std::vector<unsigned> measured;
    b->apply_circuit(qc, &measured);
    const double wall = timer.seconds();
    if (best == 0.0 || wall < best) best = wall;
    if (wall > 1.0) break;  // slow configs don't need noise suppression
  }
  return best;
}

/// `qgear_cli calibrate` — refreshes the router's time model for this
/// host and writes qgear.route.calibration/v1 JSON. Layer 1: sweep
/// bandwidth per precision (the fp32 number comes straight from the
/// perfmodel probe the GPU estimator already trusts). Layer 2: measured
/// wall times for the routing suite (qft12 / random12 / ghz40) on every
/// backend x precision where the pair is tractable, paired with the
/// analytic estimate so the cost model can learn a per-pair scale.
int cmd_calibrate(const Args& args) {
  const unsigned repeats = static_cast<unsigned>(args.u64("repeats", 3));
  const unsigned probe_qubits =
      static_cast<unsigned>(args.u64("probe-qubits", 18));

  route::Calibration calib;
  calib.source = "qgear_cli calibrate";
  calib.sweep_bw_fp32_bps =
      perfmodel::measure_local_sweep_bandwidth(probe_qubits, 40);
  {
    // fp64 bandwidth via a fused fp64 backend run of the same shape.
    const auto qc = circuits::generate_random_circuit(
        {.num_qubits = probe_qubits, .num_blocks = 40, .seed = 99});
    sim::BackendOptions bo;
    auto b = sim::Backend::create("fused", bo);
    b->init_state(probe_qubits);
    WallTimer timer;
    std::vector<unsigned> measured;
    b->apply_circuit(qc, &measured);
    const double seconds = timer.seconds();
    const double bytes = double(b->stats().sweeps) *
                         perfmodel::kSweepBytesPerStateByte *
                         std::ldexp(16.0, int(probe_qubits));
    calib.sweep_bw_fp64_bps = bytes / std::max(seconds, 1e-9);
  }
  std::printf("sweep bandwidth: fp32 %s/s, fp64 %s/s (%u-qubit probe)\n",
              human_bytes(std::uint64_t(calib.sweep_bw_fp32_bps)).c_str(),
              human_bytes(std::uint64_t(calib.sweep_bw_fp64_bps)).c_str(),
              probe_qubits);

  if (!args.has("skip-suite")) {
    // The measured suite: same circuits the CI route-smoke job runs.
    auto qft12 = circuits::build_qft(12, {});
    auto random12 = circuits::generate_random_circuit(
        {.num_qubits = 12, .num_blocks = 120, .seed = 1});
    qiskit::QuantumCircuit ghz40(40, "ghz40");
    ghz40.h(0);
    for (unsigned q = 0; q + 1 < 40; ++q) ghz40.cx(q, q + 1);

    struct SuiteRun {
      const char* label;
      const qiskit::QuantumCircuit* qc;
      const char* backend;
      const char* precision;
    };
    // Statevector pairs stop at 12 qubits; ghz40 is compact-engine
    // territory (2^40 amplitudes never fit), which is the point: the
    // table should teach the model where each engine family wins.
    const SuiteRun suite[] = {
        {"qft12", &qft12, "fused", "fp32"},
        {"qft12", &qft12, "fused", "fp64"},
        {"qft12", &qft12, "reference", "fp32"},
        {"qft12", &qft12, "reference", "fp64"},
        {"qft12", &qft12, "dd", "fp64"},
        {"qft12", &qft12, "mps", "fp64"},
        {"random12", &random12, "fused", "fp32"},
        {"random12", &random12, "fused", "fp64"},
        {"random12", &random12, "reference", "fp32"},
        {"random12", &random12, "reference", "fp64"},
        {"random12", &random12, "dd", "fp64"},
        {"random12", &random12, "mps", "fp64"},
        {"ghz40", &ghz40, "dd", "fp64"},
        {"ghz40", &ghz40, "mps", "fp64"},
    };
    // Analytic estimates are priced against the layer-1 constants only
    // (an empty measured table): the stored measured/analytic ratio must
    // be relative to the pure model, or scales would compound when the
    // cost model later re-applies the lookup table.
    route::Calibration layer1 = calib;
    layer1.measured.clear();
    for (const SuiteRun& run : suite) {
      sim::BackendOptions bo;
      bo.fp32 = std::string(run.precision) == "fp32";
      route::MeasuredPoint p;
      p.circuit = run.label;
      p.backend = run.backend;
      p.precision = run.precision;
      p.qubits = run.qc->num_qubits();
      p.gates = run.qc->size();
      p.measured_s = measure_backend_wall(run.backend, bo, *run.qc, repeats);
      p.analytic_s = route::time_estimate_for(run.backend, run.precision,
                                              qiskit::transpile(*run.qc),
                                              layer1, bo)
                         .seconds;
      std::printf("  %-9s %-10s %s: measured %s, analytic %s (x%.2f)\n",
                  p.circuit.c_str(), p.backend.c_str(), p.precision.c_str(),
                  human_seconds(p.measured_s).c_str(),
                  human_seconds(p.analytic_s).c_str(),
                  p.analytic_s > 0 ? p.measured_s / p.analytic_s : 0.0);
      calib.measured.push_back(std::move(p));
    }
  }

  const std::string out = args.str("out", "calibration.json");
  calib.save(out);
  std::printf("wrote %s (%zu measured point(s))\n", out.c_str(),
              calib.measured.size());
  return 0;
}

obs::JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  QGEAR_CHECK_ARG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::JsonValue::parse(buf.str());
}

/// Per-qubit P(bit = 1) marginals of a sampled counts object, in
/// measured-qubit order. Sampled marginals concentrate at 1/sqrt(shots),
/// unlike the joint empirical distribution, so they are the right
/// cross-backend comparison for wide-support circuits.
std::vector<double> sampled_marginals(const obs::JsonValue& circuit) {
  const auto& measured = circuit.at("measured").array();
  std::vector<double> ones(measured.size(), 0.0);
  double total = 0;
  for (const auto& [key, count] : circuit.at("counts").object()) {
    const std::uint64_t k = std::stoull(key);
    const double cnt = count.number();
    total += cnt;
    for (std::size_t j = 0; j < measured.size(); ++j) {
      if ((k >> j) & 1) ones[j] += cnt;
    }
  }
  if (total > 0) {
    for (double& v : ones) v /= total;
  }
  return ones;
}

/// Compares two qgear.backend.report/v1 documents circuit-by-circuit:
/// sampled per-qubit marginals within --marginal-tol and exact Z
/// expectations within --exp-tol. Exit 0 = equivalent.
int cmd_diff_reports(const Args& args) {
  const obs::JsonValue a = load_json(args.required("a"));
  const obs::JsonValue b = load_json(args.required("b"));
  QGEAR_CHECK_ARG(a.at("schema").str() == "qgear.backend.report/v1" &&
                      b.at("schema").str() == "qgear.backend.report/v1",
                  "diff-reports: expected qgear.backend.report/v1 inputs");
  const double marginal_tol = args.f64("marginal-tol", 0.05);
  const double exp_tol = args.f64("exp-tol", 0.02);
  const auto& ca = a.at("circuits").array();
  const auto& cb = b.at("circuits").array();
  if (ca.size() != cb.size()) {
    std::fprintf(stderr, "circuit count mismatch: %zu vs %zu\n", ca.size(),
                 cb.size());
    return 1;
  }
  int failures = 0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    const auto& x = ca[i];
    const auto& y = cb[i];
    const std::string cname = x.at("name").str();
    if (x.at("qubits").number() != y.at("qubits").number()) {
      std::fprintf(stderr, "[%zu] %s: qubit count mismatch\n", i,
                   cname.c_str());
      ++failures;
      continue;
    }
    double max_marg = 0;
    const bool have_counts = !x.at("counts").object().empty() &&
                             !y.at("counts").object().empty();
    if (have_counts) {
      const auto ma = sampled_marginals(x);
      const auto mb = sampled_marginals(y);
      QGEAR_CHECK_ARG(ma.size() == mb.size(),
                      "diff-reports: measured-qubit mismatch in " + cname);
      for (std::size_t j = 0; j < ma.size(); ++j) {
        max_marg = std::max(max_marg, std::abs(ma[j] - mb[j]));
      }
    }
    double max_exp = 0;
    const auto& za = x.at("z_expectations").array();
    const auto& zb = y.at("z_expectations").array();
    for (std::size_t j = 0; j < std::min(za.size(), zb.size()); ++j) {
      max_exp =
          std::max(max_exp, std::abs(za[j].number() - zb[j].number()));
    }
    const bool ok = max_marg <= marginal_tol && max_exp <= exp_tol;
    std::printf("[%zu] %s: max |dP1| %.4f (tol %.4f), max |d<Z>| %.4f "
                "(tol %.4f)%s -> %s\n",
                i, cname.c_str(), max_marg, marginal_tol, max_exp, exp_tol,
                have_counts ? "" : " [no counts]", ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "diff-reports: %d circuit(s) differ beyond "
                 "tolerance (%s vs %s)\n",
                 failures, a.at("backend").str().c_str(),
                 b.at("backend").str().c_str());
  }
  return failures == 0 ? 0 : 1;
}

int cmd_estimate(const Args& args) {
  if (args.has("backend")) {
    const core::GateTensor tensor = load_circuits(args.required("in"));
    const sim::BackendOptions bo = backend_options_from_args(args);
    const std::uint64_t budget = args.u64("budget-mb", 0) << 20;
    std::vector<std::string> names;
    const std::string sel = args.opt("backend");
    if (sel.empty() || sel == "all") {
      names = sim::Backend::available();
    } else {
      names = split(sel, ',');
    }
    const double max_error = args.f64("max-error", 1e-4);
    const route::Calibration calib = calibration_from_args(args);
    for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
      const auto qc = core::decode_circuit(tensor, c);
      const auto tqc = qiskit::transpile(qc);
      std::printf("[%u] %s (%u qubits, %zu gates):\n", c, qc.name().c_str(),
                  qc.num_qubits(), qc.size());
      std::printf("  %-10s %12s %12s %6s\n", "backend", "memory", "time",
                  "prec");
      for (const std::string& nm : names) {
        // Chosen precision per backend: fp32 where the engine supports
        // it and the propagated error stays inside --max-error. The
        // memory column is at that precision (the serve admission
        // currency), like perfmodel::estimate_backend_memory but
        // precision-aware.
        const auto e32 = route::time_estimate_for(nm, "fp32", tqc, calib, bo);
        const auto e64 = route::time_estimate_for(nm, "fp64", tqc, calib, bo);
        const bool pick32 = e32.supported && e32.error_bound <= max_error &&
                            e32.seconds <= e64.seconds;
        const auto& t = pick32 ? e32 : e64;
        const bool over = budget > 0 && t.mem_bytes > budget;
        std::printf("  %-10s %12s %12s %6s%s\n", nm.c_str(),
                    human_bytes(t.mem_bytes).c_str(),
                    human_seconds(t.seconds).c_str(),
                    pick32 ? "fp32" : "fp64",
                    over ? "  (over budget)" : "");
      }
    }
    return 0;
  }
  const core::GateTensor tensor = load_circuits(args.required("in"));
  perfmodel::ClusterConfig cfg;
  cfg.devices = static_cast<int>(args.u64("devices", 1));
  cfg.precision = parse_precision(args.str("precision", "fp32"));
  if (args.u64("gpu", 40) == 80) cfg.gpu = perfmodel::a100_80gb();
  const std::uint64_t shots = args.u64("shots", 0);
  const bool show_schedule = args.has("schedule");
  const comm::Topology topo{
      .ranks_per_domain =
          static_cast<unsigned>(args.u64("ranks-per-domain", 4))};

  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);
    const auto e = perfmodel::estimate_gpu(qc, cfg, shots);
    if (!e.feasible) {
      std::printf("[%u] %s: infeasible — %s\n", c, qc.name().c_str(),
                  e.infeasible_reason.c_str());
      continue;
    }
    std::printf("[%u] %s on %d x %s: total %s (compute %s, comm %s, "
                "sample %s, startup %s)\n",
                c, qc.name().c_str(), cfg.devices, cfg.gpu.name.c_str(),
                human_seconds(e.total_s()).c_str(),
                human_seconds(e.compute_s).c_str(),
                human_seconds(e.comm_s).c_str(),
                human_seconds(e.sample_s).c_str(),
                human_seconds(e.startup_s).c_str());
    if (!show_schedule || cfg.devices < 2) continue;
    // The batched exchange schedule the distributed engine would run:
    // peers/tiers shown from rank 0's perspective (every rank runs the
    // same rounds against its own XOR partners).
    const unsigned r = log2_exact(static_cast<std::uint64_t>(cfg.devices));
    const unsigned num_local = qc.num_qubits() - r;
    const std::size_t amp_b = core::amp_bytes(cfg.precision);
    const dist::RemapPlan plan = dist::plan_remap(qc, num_local);
    std::printf("  exchange schedule: %llu slab swap(s) in batches, "
                "%s ranks/domain\n",
                static_cast<unsigned long long>(plan.slab_swaps),
                topo.ranks_per_domain == 0
                    ? "all"
                    : std::to_string(topo.ranks_per_domain).c_str());
    std::size_t batch_no = 0;
    for (const dist::RemapSegment& seg : plan.segments) {
      if (seg.swaps.empty()) continue;
      std::vector<dist::SlabSwap> ps(seg.swaps);
      std::sort(ps.begin(), ps.end(),
                [](const dist::SlabSwap& a, const dist::SlabSwap& b) {
                  return a.local_phys < b.local_phys;
                });
      const unsigned k = static_cast<unsigned>(ps.size());
      const std::uint64_t per_round = (pow2(num_local) >> k) * amp_b;
      std::printf("  batch %zu: k=%u, %llu rounds, %s/rank/round\n",
                  batch_no++, k,
                  static_cast<unsigned long long>(pow2(k) - 1),
                  human_bytes(per_round).c_str());
      for (std::uint64_t d = 1; d < pow2(k); ++d) {
        std::uint64_t gmask = 0;
        for (unsigned i = 0; i < k; ++i) {
          if ((d >> i) & 1u) gmask |= pow2(ps[i].global_phys - num_local);
        }
        const int peer = static_cast<int>(gmask);  // rank 0's partner
        std::printf("    round %llu: peer ^%llu (rank0<->%d), %s, %s\n",
                    static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(gmask), peer,
                    comm::tier_name(topo.tier(0, peer)),
                    human_bytes(per_round).c_str());
      }
    }
  }
  return 0;
}

int cmd_qasm_export(const Args& args) {
  const core::GateTensor tensor = load_circuits(args.required("in"));
  const auto index = static_cast<std::uint32_t>(args.u64("index", 0));
  const auto qc = core::decode_circuit(tensor, index);
  qiskit::qasm::save(qc, args.required("out"));
  std::printf("wrote %s (%zu gates)\n", args.required("out").c_str(),
              qc.size());
  return 0;
}

void print_usage() {
  std::printf(
      "qgear_cli <command> [flags]\n"
      "commands: gen-random gen-qft gen-ghz gen-image info run plan "
      "calibrate diff-reports estimate qasm-export\n"
      "see the header of tools/qgear_cli.cpp for full flag reference.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  dist::register_dist_backend();  // make "dist" creatable by name
  try {
    const Args args(argc, argv);
    if (args.has("log")) log::set_level(log::parse_level(args.required("log")));
    if (cmd == "gen-random") return cmd_gen_random(args);
    if (cmd == "gen-qft") return cmd_gen_qft(args);
    if (cmd == "gen-ghz") return cmd_gen_ghz(args);
    if (cmd == "gen-image") return cmd_gen_image(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "calibrate") return cmd_calibrate(args);
    if (cmd == "diff-reports") return cmd_diff_reports(args);
    if (cmd == "estimate") return cmd_estimate(args);
    if (cmd == "qasm-export") return cmd_qasm_export(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    print_usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
