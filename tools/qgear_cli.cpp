// qgear_cli — command-line driver for the Q-Gear pipeline, mirroring the
// paper's `run.py` entry point (App. E.3): generate workloads, encode
// them into qh5 gate tensors, execute on any target, and estimate
// paper-scale cluster runtimes.
//
// Usage:
//   qgear_cli gen-random  --qubits N --blocks B [--circuits C] [--seed S]
//                         --out circuits.qh5
//   qgear_cli gen-qft     --qubits N [--no-swaps] --out circuits.qh5
//   qgear_cli gen-image   --addr M --data D [--seed S] --out circuits.qh5
//   qgear_cli info        --in circuits.qh5
//   qgear_cli run         --in circuits.qh5 [--target nvidia|cpu-aer|
//                         nvidia-mgpu|nvidia-mqpu] [--devices R]
//                         [--shots S] [--precision fp32|fp64]
//                         [--fusion W] [--trace-out trace.json]
//                         [--metrics-out metrics.json]
//   qgear_cli estimate    --in circuits.qh5 [--devices R] [--gpu 40|80]
//                         [--shots S] [--precision fp32|fp64]
//   qgear_cli qasm-export --in circuits.qh5 --index I --out circuit.qasm
//
// Flags accept both "--key value" and "--key=value". Observability:
// `--trace-out` records a Chrome Trace Event file (chrome://tracing /
// Perfetto) of the run, `--metrics-out` dumps the metrics registry as
// JSON, and `--log <level>` (or QGEAR_LOG) sets stderr verbosity.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "qgear/circuits/qcrank.hpp"
#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/log.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/core/transformer.hpp"
#include "qgear/obs/json.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/shutdown.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/perfmodel/model.hpp"
#include "qgear/qh5/file.hpp"
#include "qgear/qiskit/qasm.hpp"
#include "qgear/sim/isa.hpp"
#include "qgear/sim/stats.hpp"

using namespace qgear;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      QGEAR_CHECK_ARG(starts_with(key, "--"), "expected --flag, got " + key);
      key = key.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);  // --key=value
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Optional flag: empty string when absent.
  std::string opt(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? "" : it->second;
  }

  std::string str(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      QGEAR_CHECK_ARG(!fallback.empty() || key == "out" || key == "in",
                      "missing required flag --" + key);
      return fallback;
    }
    return it->second;
  }

  std::string required(const std::string& key) const {
    auto it = values_.find(key);
    QGEAR_CHECK_ARG(it != values_.end() && !it->second.empty(),
                    "missing required flag --" + key);
    return it->second;
  }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

void save_circuits(const std::vector<qiskit::QuantumCircuit>& circs,
                   const std::string& path) {
  const core::GateTensor tensor = core::encode_circuits(circs);
  qh5::File file = qh5::File::create(path);
  core::save_tensor(tensor, file.root().create_group("circuits"));
  file.flush();
  std::printf("wrote %s: %u circuit(s), capacity %u, %s on disk "
              "(%.2fx compression)\n",
              path.c_str(), tensor.num_circuits(), tensor.capacity(),
              human_bytes(file.stats().file_bytes).c_str(),
              file.stats().compression_ratio());
}

core::GateTensor load_circuits(const std::string& path) {
  qh5::File file = qh5::File::open(path);
  return core::load_tensor(file.root().group("circuits"));
}

core::Precision parse_precision(const std::string& s) {
  if (s == "fp32") return core::Precision::fp32;
  if (s == "fp64") return core::Precision::fp64;
  throw InvalidArgument("unknown precision: " + s);
}

core::Target parse_target(const std::string& s) {
  if (s == "cpu-aer") return core::Target::cpu_aer;
  if (s == "nvidia") return core::Target::nvidia;
  if (s == "nvidia-mgpu") return core::Target::nvidia_mgpu;
  if (s == "nvidia-mqpu") return core::Target::nvidia_mqpu;
  throw InvalidArgument("unknown target: " + s);
}

int cmd_gen_random(const Args& args) {
  circuits::RandomBlocksOptions opts;
  opts.num_qubits = static_cast<unsigned>(args.u64("qubits", 10));
  opts.num_blocks = args.u64("blocks", 100);
  opts.seed = args.u64("seed", 1);
  const std::size_t count = args.u64("circuits", 1);
  std::vector<qiskit::QuantumCircuit> circs;
  for (std::size_t i = 0; i < count; ++i) {
    circuits::RandomBlocksOptions per = opts;
    per.seed = opts.seed + i;
    circs.push_back(circuits::generate_random_circuit(per));
  }
  save_circuits(circs, args.required("out"));
  return 0;
}

int cmd_gen_qft(const Args& args) {
  circuits::QftOptions opts;
  opts.do_swaps = !args.has("no-swaps");
  auto qc = circuits::build_qft(
      static_cast<unsigned>(args.u64("qubits", 10)), opts);
  qc.measure_all();
  save_circuits({qc}, args.required("out"));
  return 0;
}

int cmd_gen_image(const Args& args) {
  const unsigned m = static_cast<unsigned>(args.u64("addr", 6));
  const unsigned d = static_cast<unsigned>(args.u64("data", 2));
  const circuits::QCrank codec({.address_qubits = m, .data_qubits = d});
  const image::Image img = image::make_synthetic(
      static_cast<unsigned>(pow2(m)), d, args.u64("seed", 7));
  const auto qc = codec.encode(
      std::vector<double>(img.pixels.begin(), img.pixels.end()));
  save_circuits({qc}, args.required("out"));
  return 0;
}

int cmd_info(const Args& args) {
  const core::GateTensor tensor = load_circuits(args.required("in"));
  std::printf("gate tensor: %u circuit(s), capacity %u, %s\n",
              tensor.num_circuits(), tensor.capacity(),
              human_bytes(tensor.byte_size()).c_str());
  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);
    std::printf("  [%u] '%s': %u qubits, %zu gates (%zu entangling), "
                "depth %u\n",
                c, qc.name().c_str(), qc.num_qubits(), qc.size(),
                qc.num_2q_gates(), qc.depth());
    if (args.has("verbose")) {
      std::printf("%s", qc.to_string(24).c_str());
    }
  }
  return 0;
}

int cmd_run(const Args& args) {
  const std::string trace_out = args.opt("trace-out");
  const std::string metrics_out = args.opt("metrics-out");
  obs::Tracer& tracer = obs::Tracer::global();
  if (!trace_out.empty()) {
    tracer.clear();
    tracer.set_enabled(true);
  }
  // An interrupted run flushes the same files a clean exit writes
  // (engine stats folded so far are missing, spans/metrics are not).
  if (!trace_out.empty() || !metrics_out.empty()) {
    obs::install_signal_flush();
    if (!trace_out.empty()) {
      obs::on_shutdown_flush(
          [trace_out, &tracer] { tracer.write_trace_json(trace_out); });
    }
    if (!metrics_out.empty()) {
      obs::on_shutdown_flush([metrics_out] {
        obs::write_text_file(metrics_out,
                             obs::Registry::global().snapshot().to_json());
      });
    }
  }

  core::TransformerOptions opts;
  opts.target = parse_target(args.str("target", "nvidia"));
  opts.precision = parse_precision(args.str("precision", "fp32"));
  opts.devices = static_cast<int>(args.u64("devices", 1));
  opts.fusion_width = static_cast<unsigned>(args.u64("fusion", 5));
  const core::RunOptions run{.shots = args.u64("shots", 0)};
  std::printf("kernel isa: %s (best supported: %s; override with "
              "QGEAR_ISA=scalar|sse2|avx2)\n",
              sim::isa_name(sim::active_isa()),
              sim::isa_name(sim::best_supported_isa()));

  std::vector<core::Kernel> kernels;
  std::vector<core::Result> results;
  {
    // Scoped so every span (including this root) closes before export.
    obs::Span root(tracer, "cli.run", "cli");
    const core::GateTensor tensor = load_circuits(args.required("in"));
    core::Transformer transformer(opts);
    for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
      kernels.push_back(core::Kernel::from_tensor(tensor, c));
    }
    if (root.active()) {
      root.arg("circuits", std::uint64_t{kernels.size()});
      root.arg("target", args.str("target", "nvidia"));
    }
    results = transformer.run_batch(kernels, run);
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("[%zu] %s: %s wall, %llu sweeps, %s comm\n", i,
                kernels[i].name().c_str(),
                human_seconds(r.wall_seconds).c_str(),
                static_cast<unsigned long long>(r.stats.sweeps),
                human_bytes(r.comm_bytes).c_str());
    if (run.shots > 0) {
      std::size_t shown = 0;
      for (const auto& [key, count] : r.counts) {
        if (shown++ >= 8) {
          std::printf("    ... %zu more outcomes\n",
                      r.counts.size() - 8);
          break;
        }
        std::printf("    %llu: %llu\n",
                    static_cast<unsigned long long>(key),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  if (!trace_out.empty()) {
    tracer.set_enabled(false);
    tracer.write_trace_json(trace_out);
    std::printf("wrote %s: %llu span(s), %llu dropped\n", trace_out.c_str(),
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  if (!metrics_out.empty()) {
    auto& reg = obs::Registry::global();
    for (const auto& r : results) {
      sim::fold_stats(reg, r.stats, "engine");
    }
    const obs::RegistrySnapshot snap = reg.snapshot();
    obs::write_text_file(metrics_out, snap.to_json());
    std::printf("wrote %s: %zu counter(s), %zu gauge(s), %zu histogram(s)\n",
                metrics_out.c_str(), snap.counters.size(),
                snap.gauges.size(), snap.histograms.size());
  }
  return 0;
}

int cmd_estimate(const Args& args) {
  const core::GateTensor tensor = load_circuits(args.required("in"));
  perfmodel::ClusterConfig cfg;
  cfg.devices = static_cast<int>(args.u64("devices", 1));
  cfg.precision = parse_precision(args.str("precision", "fp32"));
  if (args.u64("gpu", 40) == 80) cfg.gpu = perfmodel::a100_80gb();
  const std::uint64_t shots = args.u64("shots", 0);

  for (std::uint32_t c = 0; c < tensor.num_circuits(); ++c) {
    const auto qc = core::decode_circuit(tensor, c);
    const auto e = perfmodel::estimate_gpu(qc, cfg, shots);
    if (!e.feasible) {
      std::printf("[%u] %s: infeasible — %s\n", c, qc.name().c_str(),
                  e.infeasible_reason.c_str());
      continue;
    }
    std::printf("[%u] %s on %d x %s: total %s (compute %s, comm %s, "
                "sample %s, startup %s)\n",
                c, qc.name().c_str(), cfg.devices, cfg.gpu.name.c_str(),
                human_seconds(e.total_s()).c_str(),
                human_seconds(e.compute_s).c_str(),
                human_seconds(e.comm_s).c_str(),
                human_seconds(e.sample_s).c_str(),
                human_seconds(e.startup_s).c_str());
  }
  return 0;
}

int cmd_qasm_export(const Args& args) {
  const core::GateTensor tensor = load_circuits(args.required("in"));
  const auto index = static_cast<std::uint32_t>(args.u64("index", 0));
  const auto qc = core::decode_circuit(tensor, index);
  qiskit::qasm::save(qc, args.required("out"));
  std::printf("wrote %s (%zu gates)\n", args.required("out").c_str(),
              qc.size());
  return 0;
}

void print_usage() {
  std::printf(
      "qgear_cli <command> [flags]\n"
      "commands: gen-random gen-qft gen-image info run estimate "
      "qasm-export\n"
      "see the header of tools/qgear_cli.cpp for full flag reference.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv);
    if (args.has("log")) log::set_level(log::parse_level(args.required("log")));
    if (cmd == "gen-random") return cmd_gen_random(args);
    if (cmd == "gen-qft") return cmd_gen_qft(args);
    if (cmd == "gen-image") return cmd_gen_image(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "estimate") return cmd_estimate(args);
    if (cmd == "qasm-export") return cmd_qasm_export(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    print_usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
