// qgear_perf_diff — the perf-regression sentinel. Compares two
// performance reports of the same schema (qgear.bench.report/v1,
// qgear.serve.report/v1 or qgear.dist.report/v1) with noise-aware
// thresholds and exits non-zero when the current run regressed.
//
// Usage:
//   qgear_perf_diff baseline.json current.json
//       [--tolerance F]        relative slowdown allowed on time series
//                              (default 0.10; CI uses a generous value
//                              because shared runners are noisy)
//       [--count-tolerance F]  relative drift allowed on deterministic
//                              work counters (default 0 = exact)
//       [--min-seconds S]      ignore time series under this floor
//                              (default 1e-4)
//       [--fail-on-missing]    a baseline key absent from current fails
//       [--json out.json]      write qgear.perf_diff.report/v1
//
// Exit codes: 0 = within tolerance, 1 = regression detected, 2 = usage /
// unreadable or mismatched reports.

#include <cstdio>
#include <string>

#include "qgear/common/error.hpp"
#include "qgear/obs/json.hpp"
#include "qgear/obs/perfdiff.hpp"

using namespace qgear;

namespace {

void print_usage() {
  std::printf(
      "qgear_perf_diff <baseline.json> <current.json> [--tolerance F]\n"
      "  [--count-tolerance F] [--min-seconds S] [--fail-on-missing]\n"
      "  [--json out.json]\n"
      "see the header of tools/qgear_perf_diff.cpp for semantics.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, json_out;
  obs::PerfDiffOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      opts.time_tolerance = std::stod(value());
    } else if (arg == "--count-tolerance") {
      opts.count_tolerance = std::stod(value());
    } else if (arg == "--min-seconds") {
      opts.min_seconds = std::stod(value());
    } else if (arg == "--fail-on-missing") {
      opts.fail_on_missing = true;
    } else if (arg == "--json") {
      json_out = value();
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      print_usage();
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    print_usage();
    return 2;
  }

  try {
    const obs::JsonValue baseline =
        obs::JsonValue::parse(obs::read_text_file(baseline_path));
    const obs::JsonValue current =
        obs::JsonValue::parse(obs::read_text_file(current_path));
    const obs::PerfDiffResult result =
        obs::diff_reports(baseline, current, opts);
    std::printf("%s", result.summary().c_str());
    if (!json_out.empty()) {
      obs::write_text_file(json_out, result.to_json().dump());
      std::printf("wrote %s\n", json_out.c_str());
    }
    return result.regressed() ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
