// "Pennylane lightning.gpu"-style baseline (paper Fig. 4c / Discussion).
//
// The paper attributes Pennylane's slower QFT runtimes to one mechanism:
// before execution it must transpile high-level Python circuit
// representations into low-level kernels on every invocation, whereas
// Q-Gear maps circuits into kernels directly. This baseline therefore
// executes the *same* fused engine but pays a per-gate transpilation
// latency plus a container-init penalty — reproducing the gap's cause
// rather than its Python implementation.
#pragma once

#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/model.hpp"

namespace qgear::baselines {

struct PennylaneOverheadModel {
  /// Python-side per-gate lowering cost on each invocation.
  double per_gate_transpile_s = 120e-6;
  /// One-time framework/container initialization per run (the paper notes
  /// containerized Pennylane does not amortize its init).
  double framework_init_s = 4.0;
  /// Effective fusion width of the lightning.gpu path. The paper observes
  /// that containerized Pennylane "is not optimized for large-scale
  /// simulations"; shallower fusion means more amplitude sweeps per
  /// circuit, which is why its curve also *scales* worse than Q-Gear's
  /// in Fig. 4c, not just starts higher.
  unsigned fusion_width = 2;
};

struct PennylaneTiming {
  double engine_s = 0.0;     ///< actual (or modeled) state evolution
  double transpile_s = 0.0;  ///< modeled lowering overhead
  double init_s = 0.0;
  double total_s() const { return engine_s + transpile_s + init_s; }
};

/// Runs `qc` locally through the same engine Q-Gear uses and attaches the
/// modeled Pennylane overheads (for measured small-n comparisons).
PennylaneTiming run_pennylane_like(const qiskit::QuantumCircuit& qc,
                                   const core::TransformerOptions& engine,
                                   const PennylaneOverheadModel& model = {});

/// Paper-scale estimate: Q-Gear's GPU estimate plus the overhead terms.
perfmodel::Estimate estimate_pennylane(const qiskit::QuantumCircuit& qc,
                                       const perfmodel::ClusterConfig& cfg,
                                       std::uint64_t shots = 0,
                                       const PennylaneOverheadModel& model = {});

}  // namespace qgear::baselines
