#include "qgear/baselines/pennylane.hpp"

#include "qgear/common/timer.hpp"

namespace qgear::baselines {

namespace {
std::uint64_t countable_gates(const qiskit::QuantumCircuit& qc) {
  std::uint64_t gates = 0;
  for (const auto& inst : qc.instructions()) {
    if (inst.kind != qiskit::GateKind::barrier) ++gates;
  }
  return gates;
}
}  // namespace

PennylaneTiming run_pennylane_like(const qiskit::QuantumCircuit& qc,
                                   const core::TransformerOptions& engine,
                                   const PennylaneOverheadModel& model) {
  PennylaneTiming timing;
  core::Transformer transformer(engine);
  WallTimer timer;
  transformer.run(qc);
  timing.engine_s = timer.seconds();
  timing.transpile_s =
      model.per_gate_transpile_s * static_cast<double>(countable_gates(qc));
  timing.init_s = model.framework_init_s;
  return timing;
}

perfmodel::Estimate estimate_pennylane(const qiskit::QuantumCircuit& qc,
                                       const perfmodel::ClusterConfig& cfg,
                                       std::uint64_t shots,
                                       const PennylaneOverheadModel& model) {
  perfmodel::ClusterConfig penny_cfg = cfg;
  penny_cfg.fusion_width = model.fusion_width;
  perfmodel::Estimate e = perfmodel::estimate_gpu(qc, penny_cfg, shots);
  if (!e.feasible) return e;
  // Lowering overhead lands in the launch bucket; framework init in
  // startup.
  e.launch_s +=
      model.per_gate_transpile_s * static_cast<double>(countable_gates(qc));
  e.startup_s += model.framework_init_s;
  return e;
}

}  // namespace qgear::baselines
