// Element types supported by qh5 datasets, with C++ type mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace qgear::qh5 {

enum class DType : std::uint8_t {
  i8 = 0,
  u8 = 1,
  i16 = 2,
  i32 = 3,
  i64 = 4,
  u64 = 5,
  f32 = 6,
  f64 = 7,
};

/// Size in bytes of one element of `t`.
std::size_t dtype_size(DType t);

/// Human-readable name ("f64", ...).
std::string dtype_name(DType t);

/// True if the raw byte value encodes a valid DType.
bool dtype_valid(std::uint8_t raw);

/// Maps C++ scalar types to their DType tag.
template <typename T>
struct dtype_of;

template <> struct dtype_of<std::int8_t>   { static constexpr DType value = DType::i8; };
template <> struct dtype_of<std::uint8_t>  { static constexpr DType value = DType::u8; };
template <> struct dtype_of<std::int16_t>  { static constexpr DType value = DType::i16; };
template <> struct dtype_of<std::int32_t>  { static constexpr DType value = DType::i32; };
template <> struct dtype_of<std::int64_t>  { static constexpr DType value = DType::i64; };
template <> struct dtype_of<std::uint64_t> { static constexpr DType value = DType::u64; };
template <> struct dtype_of<float>         { static constexpr DType value = DType::f32; };
template <> struct dtype_of<double>        { static constexpr DType value = DType::f64; };

}  // namespace qgear::qh5
