// qh5 container file: serialization of a qh5 object tree with per-chunk
// lossless compression (see codec.hpp).
//
// Layout (all integers little-endian):
//   magic "QH5F" | u16 version | root group
//   group   := attrs | u32 n_groups   { str name | group }
//                     | u32 n_datasets { str name | dataset }
//   attrs   := u32 n { str name | u8 tag | payload }
//   dataset := u8 dtype | u8 ndim | u64 dims[ndim] | attrs
//              | u64 raw_bytes | u32 n_chunks { u64 packed_bytes | bytes }
//   str     := u32 len | bytes
#pragma once

#include <cstdint>
#include <string>

#include "qgear/qh5/node.hpp"

namespace qgear::qh5 {

/// Statistics from the most recent flush() or open().
struct FileStats {
  std::uint64_t uncompressed_bytes = 0;  ///< total dataset payload
  std::uint64_t compressed_bytes = 0;    ///< payload bytes on disk
  std::uint64_t file_bytes = 0;          ///< full file size
  double compression_ratio() const {
    return compressed_bytes == 0
               ? 1.0
               : static_cast<double>(uncompressed_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// A qh5 container bound to a filesystem path.
class File {
 public:
  /// Creates a new (empty) container; flush() writes it out.
  static File create(std::string path);

  /// Opens and fully parses an existing container.
  static File open(const std::string& path);

  /// Serializes the whole tree from scratch into a byte buffer.
  static std::vector<std::uint8_t> serialize(const Group& root);

  /// Parses a serialized buffer into a tree (throws FormatError).
  static Group deserialize(const std::uint8_t* data, std::size_t size);

  Group& root() { return root_; }
  const Group& root() const { return root_; }
  const std::string& path() const { return path_; }
  const FileStats& stats() const { return stats_; }

  /// Writes the tree to `path()` and refreshes stats().
  void flush();

  /// Chunk size used for compression (bytes of raw data per chunk).
  static constexpr std::size_t kChunkBytes = 64 * 1024;

 private:
  File() = default;

  std::string path_;
  Group root_;
  FileStats stats_;
};

}  // namespace qgear::qh5
