// Lossless chunk codec for qh5 datasets.
//
// Pipeline: byte-shuffle (per element-size transposition, groups equal
// significance bytes so runs form) followed by run-length encoding. This is
// the same idea as HDF5's shuffle+deflate filter chain, simplified to stay
// dependency-free. The codec never expands beyond a 1-byte-per-run-worst-
// case bound; chunks that would grow are stored raw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qgear::qh5 {

/// Compresses `raw` (elements of `elem_size` bytes). The output embeds the
/// mode byte (raw vs shuffled-RLE) so decompress needs only elem_size.
std::vector<std::uint8_t> compress_chunk(const std::uint8_t* raw,
                                         std::size_t size,
                                         std::size_t elem_size);

/// Inverse of compress_chunk. `expected_size` is the decoded byte count
/// (known from the dataset header); throws FormatError on malformed input.
std::vector<std::uint8_t> decompress_chunk(const std::uint8_t* packed,
                                           std::size_t size,
                                           std::size_t elem_size,
                                           std::size_t expected_size);

}  // namespace qgear::qh5
