#include "qgear/qh5/file.hpp"

#include <cstring>
#include <fstream>

#include "qgear/qh5/codec.hpp"

namespace qgear::qh5 {

namespace {

constexpr char kMagic[4] = {'Q', 'H', '5', 'F'};
constexpr std::uint16_t kVersion = 1;

constexpr std::uint8_t kAttrI64 = 0;
constexpr std::uint8_t kAttrF64 = 1;
constexpr std::uint8_t kAttrStr = 2;

// ---- writer ----------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t pos = out_.size();
    out_.resize(pos + sizeof(T));
    std::memcpy(out_.data() + pos, &v, sizeof(T));
  }

  void put_bytes(const std::uint8_t* data, std::size_t size) {
    out_.insert(out_.end(), data, data + size);
  }

  void put_str(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// ---- reader ----------------------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    QGEAR_CHECK_FORMAT(pos_ + sizeof(T) <= size_, "qh5: truncated file");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* get_bytes(std::size_t n) {
    QGEAR_CHECK_FORMAT(pos_ + n <= size_, "qh5: truncated file");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::string get_str() {
    const std::uint32_t len = get<std::uint32_t>();
    QGEAR_CHECK_FORMAT(len <= size_ - pos_, "qh5: truncated string");
    const std::uint8_t* p = get_bytes(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }

  bool at_end() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- tree serialization ----------------------------------------------

void write_attrs(Writer& w, const AttrHolder& holder) {
  const auto& attrs = holder.attrs();
  w.put<std::uint32_t>(static_cast<std::uint32_t>(attrs.size()));
  for (const auto& [name, value] : attrs) {
    w.put_str(name);
    if (std::holds_alternative<std::int64_t>(value)) {
      w.put<std::uint8_t>(kAttrI64);
      w.put<std::int64_t>(std::get<std::int64_t>(value));
    } else if (std::holds_alternative<double>(value)) {
      w.put<std::uint8_t>(kAttrF64);
      w.put<double>(std::get<double>(value));
    } else {
      w.put<std::uint8_t>(kAttrStr);
      w.put_str(std::get<std::string>(value));
    }
  }
}

void read_attrs(Reader& r, AttrHolder& holder) {
  const std::uint32_t n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = r.get_str();
    const std::uint8_t tag = r.get<std::uint8_t>();
    switch (tag) {
      case kAttrI64:
        holder.set_attr(name, r.get<std::int64_t>());
        break;
      case kAttrF64:
        holder.set_attr(name, r.get<double>());
        break;
      case kAttrStr:
        holder.set_attr(name, r.get_str());
        break;
      default:
        throw FormatError("qh5: unknown attribute tag");
    }
  }
}

void write_dataset(Writer& w, const Dataset& ds, FileStats& stats) {
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ds.dtype()));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ds.shape().size()));
  for (std::uint64_t d : ds.shape()) w.put<std::uint64_t>(d);
  write_attrs(w, ds);

  const std::vector<std::uint8_t>& raw = ds.raw();
  w.put<std::uint64_t>(raw.size());
  const std::size_t elem = dtype_size(ds.dtype());
  const std::size_t n_chunks =
      raw.empty() ? 0 : (raw.size() + File::kChunkBytes - 1) / File::kChunkBytes;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(n_chunks));
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * File::kChunkBytes;
    const std::size_t len = std::min(File::kChunkBytes, raw.size() - begin);
    const std::vector<std::uint8_t> packed =
        compress_chunk(raw.data() + begin, len, elem);
    w.put<std::uint64_t>(packed.size());
    w.put_bytes(packed.data(), packed.size());
    stats.compressed_bytes += packed.size();
  }
  stats.uncompressed_bytes += raw.size();
}

void read_dataset(Reader& r, Group& parent, const std::string& name,
                  FileStats& stats) {
  const std::uint8_t raw_dtype = r.get<std::uint8_t>();
  QGEAR_CHECK_FORMAT(dtype_valid(raw_dtype), "qh5: invalid dtype");
  const DType dtype = static_cast<DType>(raw_dtype);
  const std::uint8_t ndim = r.get<std::uint8_t>();
  QGEAR_CHECK_FORMAT(ndim >= 1 && ndim <= 32, "qh5: invalid rank");
  std::vector<std::uint64_t> shape(ndim);
  std::uint64_t elements = 1;
  for (auto& d : shape) {
    d = r.get<std::uint64_t>();
    // Guard untrusted shapes: bound each dimension and the running
    // product so a corrupted header can never trigger a huge allocation
    // or an overflowing element count.
    QGEAR_CHECK_FORMAT(d <= (std::uint64_t{1} << 48), "qh5: dimension too large");
    QGEAR_CHECK_FORMAT(elements <= (std::uint64_t{1} << 48) / std::max<std::uint64_t>(d, 1),
                       "qh5: element count overflows");
    elements *= d;
  }

  Dataset& ds = parent.create_dataset_raw(name, dtype, shape);
  read_attrs(r, ds);

  const std::uint64_t raw_bytes = r.get<std::uint64_t>();
  QGEAR_CHECK_FORMAT(raw_bytes == elements * dtype_size(dtype),
                     "qh5: dataset byte count does not match shape");
  const std::uint32_t n_chunks = r.get<std::uint32_t>();
  const std::uint64_t expected_chunks =
      raw_bytes == 0 ? 0
                     : (raw_bytes + File::kChunkBytes - 1) / File::kChunkBytes;
  QGEAR_CHECK_FORMAT(n_chunks == expected_chunks,
                     "qh5: chunk count does not match dataset size");
  std::vector<std::uint8_t>& out = ds.raw();
  out.clear();
  const std::size_t elem = dtype_size(dtype);
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t packed_size = r.get<std::uint64_t>();
    const std::uint8_t* packed = r.get_bytes(packed_size);
    const std::size_t remaining = raw_bytes - out.size();
    const std::size_t expected = std::min<std::size_t>(
        File::kChunkBytes, remaining);
    std::vector<std::uint8_t> chunk =
        decompress_chunk(packed, packed_size, elem, expected);
    out.insert(out.end(), chunk.begin(), chunk.end());
    stats.compressed_bytes += packed_size;
  }
  QGEAR_CHECK_FORMAT(out.size() == raw_bytes, "qh5: dataset data truncated");
  stats.uncompressed_bytes += raw_bytes;
}

void write_group(Writer& w, const Group& g, FileStats& stats) {
  write_attrs(w, g);
  const auto group_names = g.group_names();
  w.put<std::uint32_t>(static_cast<std::uint32_t>(group_names.size()));
  for (const auto& name : group_names) {
    w.put_str(name);
    write_group(w, g.group(name), stats);
  }
  const auto ds_names = g.dataset_names();
  w.put<std::uint32_t>(static_cast<std::uint32_t>(ds_names.size()));
  for (const auto& name : ds_names) {
    w.put_str(name);
    write_dataset(w, g.dataset(name), stats);
  }
}

void read_group(Reader& r, Group& g, FileStats& stats, int depth) {
  QGEAR_CHECK_FORMAT(depth <= 64, "qh5: group nesting too deep");
  read_attrs(r, g);
  const std::uint32_t n_groups = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_groups; ++i) {
    const std::string name = r.get_str();
    Group& child = g.create_group(name);
    read_group(r, child, stats, depth + 1);
  }
  const std::uint32_t n_datasets = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_datasets; ++i) {
    const std::string name = r.get_str();
    read_dataset(r, g, name, stats);
  }
}

}  // namespace

File File::create(std::string path) {
  File f;
  f.path_ = std::move(path);
  return f;
}

File File::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QGEAR_CHECK_ARG(in.good(), "qh5: cannot open file: " + path);
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  File f;
  f.path_ = path;

  Reader r(buf.data(), buf.size());
  char magic[4];
  std::memcpy(magic, r.get_bytes(4), 4);
  QGEAR_CHECK_FORMAT(std::memcmp(magic, kMagic, 4) == 0,
                     "qh5: bad magic (not a qh5 file)");
  const std::uint16_t version = r.get<std::uint16_t>();
  QGEAR_CHECK_FORMAT(version == kVersion, "qh5: unsupported version");
  read_group(r, f.root_, f.stats_, 0);
  QGEAR_CHECK_FORMAT(r.at_end(), "qh5: trailing bytes after root group");
  f.stats_.file_bytes = buf.size();
  return f;
}

std::vector<std::uint8_t> File::serialize(const Group& root) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.put_bytes(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
  w.put<std::uint16_t>(kVersion);
  FileStats ignored;
  write_group(w, root, ignored);
  return out;
}

Group File::deserialize(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  char magic[4];
  std::memcpy(magic, r.get_bytes(4), 4);
  QGEAR_CHECK_FORMAT(std::memcmp(magic, kMagic, 4) == 0,
                     "qh5: bad magic (not a qh5 buffer)");
  const std::uint16_t version = r.get<std::uint16_t>();
  QGEAR_CHECK_FORMAT(version == kVersion, "qh5: unsupported version");
  Group root;
  FileStats ignored;
  read_group(r, root, ignored, 0);
  QGEAR_CHECK_FORMAT(r.at_end(), "qh5: trailing bytes after root group");
  return root;
}

void File::flush() {
  QGEAR_CHECK_ARG(!path_.empty(), "qh5: file has no path");
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.put_bytes(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
  w.put<std::uint16_t>(kVersion);
  stats_ = FileStats{};
  write_group(w, root_, stats_);
  stats_.file_bytes = out.size();

  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  QGEAR_CHECK_ARG(os.good(), "qh5: cannot write file: " + path_);
  os.write(reinterpret_cast<const char*>(out.data()),
           static_cast<std::streamsize>(out.size()));
  QGEAR_CHECK_ARG(os.good(), "qh5: short write to " + path_);
}

}  // namespace qgear::qh5
