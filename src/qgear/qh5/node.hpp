// In-memory qh5 object tree: groups, datasets, attributes.
//
// Mirrors the HDF5 object model the paper relies on (Appendix C):
// hierarchical groups, typed N-dimensional datasets, and key/value
// attributes for metadata. Data lives uncompressed in memory; compression
// is applied per chunk at file-serialization time (see file.hpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "qgear/common/error.hpp"
#include "qgear/qh5/dtype.hpp"

namespace qgear::qh5 {

/// Attribute payloads: integers, reals, or short strings.
using AttrValue = std::variant<std::int64_t, double, std::string>;

/// Attribute map shared by groups and datasets.
class AttrHolder {
 public:
  void set_attr(const std::string& name, AttrValue value);
  bool has_attr(const std::string& name) const;
  const AttrValue& attr(const std::string& name) const;

  std::int64_t attr_i64(const std::string& name) const;
  double attr_f64(const std::string& name) const;
  const std::string& attr_str(const std::string& name) const;

  const std::map<std::string, AttrValue>& attrs() const { return attrs_; }

 private:
  std::map<std::string, AttrValue> attrs_;
};

/// A typed N-dimensional array. Element data is stored as little-endian
/// bytes; read<T>()/write<T>() require T to match the dataset dtype.
class Dataset : public AttrHolder {
 public:
  Dataset(DType dtype, std::vector<std::uint64_t> shape);

  DType dtype() const { return dtype_; }
  const std::vector<std::uint64_t>& shape() const { return shape_; }
  std::uint64_t element_count() const;
  std::uint64_t byte_size() const { return data_.size(); }
  const std::vector<std::uint8_t>& raw() const { return data_; }
  std::vector<std::uint8_t>& raw() { return data_; }

  /// Replaces the contents. values.size() must equal element_count().
  template <typename T>
  void write(std::span<const T> values) {
    QGEAR_CHECK_ARG(dtype_of<T>::value == dtype_,
                    "qh5: write element type does not match dataset dtype");
    QGEAR_CHECK_ARG(values.size() == element_count(),
                    "qh5: write size does not match dataset shape");
    data_.resize(values.size_bytes());
    std::memcpy(data_.data(), values.data(), values.size_bytes());
  }

  /// Reads the full dataset as a flat vector.
  template <typename T>
  std::vector<T> read() const {
    QGEAR_CHECK_ARG(dtype_of<T>::value == dtype_,
                    "qh5: read element type does not match dataset dtype");
    std::vector<T> out(element_count());
    QGEAR_ENSURES(out.size() * sizeof(T) == data_.size());
    std::memcpy(out.data(), data_.data(), data_.size());
    return out;
  }

 private:
  DType dtype_;
  std::vector<std::uint64_t> shape_;
  std::vector<std::uint8_t> data_;
};

/// A named collection of child groups and datasets.
class Group : public AttrHolder {
 public:
  Group() = default;
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;
  Group(Group&&) = default;
  Group& operator=(Group&&) = default;

  /// Creates a child group. Throws if the name exists or contains '/'.
  Group& create_group(const std::string& name);

  /// Creates a typed dataset and fills it with `values`.
  template <typename T>
  Dataset& create_dataset(const std::string& name,
                          std::vector<std::uint64_t> shape,
                          std::span<const T> values) {
    Dataset& ds = create_dataset_raw(name, dtype_of<T>::value,
                                     std::move(shape));
    ds.write<T>(values);
    return ds;
  }

  /// Creates an empty dataset of the given dtype/shape (filled later).
  Dataset& create_dataset_raw(const std::string& name, DType dtype,
                              std::vector<std::uint64_t> shape);

  bool has_group(const std::string& name) const;
  bool has_dataset(const std::string& name) const;

  Group& group(const std::string& name);
  const Group& group(const std::string& name) const;
  Dataset& dataset(const std::string& name);
  const Dataset& dataset(const std::string& name) const;

  /// Resolves a '/'-separated path ("circuits/0/gate_type").
  Dataset& dataset_at(const std::string& path);
  const Dataset& dataset_at(const std::string& path) const;

  std::vector<std::string> group_names() const;
  std::vector<std::string> dataset_names() const;

  /// Total uncompressed payload bytes in this subtree.
  std::uint64_t subtree_bytes() const;

 private:
  static void validate_name(const std::string& name);

  std::map<std::string, std::unique_ptr<Group>> groups_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
};

}  // namespace qgear::qh5
