#include "qgear/qh5/dtype.hpp"

#include "qgear/common/error.hpp"

namespace qgear::qh5 {

std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::i8:
    case DType::u8:
      return 1;
    case DType::i16:
      return 2;
    case DType::i32:
    case DType::f32:
      return 4;
    case DType::i64:
    case DType::u64:
    case DType::f64:
      return 8;
  }
  throw LogicViolation("dtype_size: unknown dtype");
}

std::string dtype_name(DType t) {
  switch (t) {
    case DType::i8: return "i8";
    case DType::u8: return "u8";
    case DType::i16: return "i16";
    case DType::i32: return "i32";
    case DType::i64: return "i64";
    case DType::u64: return "u64";
    case DType::f32: return "f32";
    case DType::f64: return "f64";
  }
  return "?";
}

bool dtype_valid(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(DType::f64);
}

}  // namespace qgear::qh5
