#include "qgear/qh5/codec.hpp"

#include "qgear/common/error.hpp"

namespace qgear::qh5 {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeShuffleRle = 1;

// Byte shuffle: for N elements of size S, output all byte-0s, then all
// byte-1s, ... Leftover tail bytes (size % elem_size) are appended verbatim.
std::vector<std::uint8_t> shuffle(const std::uint8_t* raw, std::size_t size,
                                  std::size_t elem_size) {
  std::vector<std::uint8_t> out(size);
  const std::size_t n = size / elem_size;
  std::size_t pos = 0;
  for (std::size_t b = 0; b < elem_size; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      out[pos++] = raw[i * elem_size + b];
    }
  }
  for (std::size_t i = n * elem_size; i < size; ++i) out[pos++] = raw[i];
  return out;
}

std::vector<std::uint8_t> unshuffle(const std::uint8_t* shuf,
                                    std::size_t size, std::size_t elem_size) {
  std::vector<std::uint8_t> out(size);
  const std::size_t n = size / elem_size;
  std::size_t pos = 0;
  for (std::size_t b = 0; b < elem_size; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i * elem_size + b] = shuf[pos++];
    }
  }
  for (std::size_t i = n * elem_size; i < size; ++i) out[i] = shuf[pos++];
  return out;
}

// RLE: pairs of (count, byte) with count in [1, 255].
void rle_encode(const std::vector<std::uint8_t>& in,
                std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t byte = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == byte && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
}

std::vector<std::uint8_t> rle_decode(const std::uint8_t* in, std::size_t size,
                                     std::size_t expected) {
  QGEAR_CHECK_FORMAT(size % 2 == 0, "qh5: RLE stream has odd length");
  std::vector<std::uint8_t> out;
  out.reserve(expected);
  for (std::size_t i = 0; i < size; i += 2) {
    const std::size_t run = in[i];
    QGEAR_CHECK_FORMAT(run >= 1, "qh5: RLE run of zero");
    QGEAR_CHECK_FORMAT(out.size() + run <= expected,
                       "qh5: RLE stream overflows chunk");
    out.insert(out.end(), run, in[i + 1]);
  }
  QGEAR_CHECK_FORMAT(out.size() == expected, "qh5: RLE stream truncated");
  return out;
}

}  // namespace

std::vector<std::uint8_t> compress_chunk(const std::uint8_t* raw,
                                         std::size_t size,
                                         std::size_t elem_size) {
  QGEAR_EXPECTS(elem_size >= 1);
  const std::vector<std::uint8_t> shuffled = shuffle(raw, size, elem_size);
  std::vector<std::uint8_t> packed;
  packed.reserve(size / 2 + 16);
  packed.push_back(kModeShuffleRle);
  rle_encode(shuffled, packed);
  if (packed.size() >= size + 1) {
    // Incompressible: store verbatim.
    packed.assign(1, kModeRaw);
    packed.insert(packed.end(), raw, raw + size);
  }
  return packed;
}

std::vector<std::uint8_t> decompress_chunk(const std::uint8_t* packed,
                                           std::size_t size,
                                           std::size_t elem_size,
                                           std::size_t expected_size) {
  QGEAR_CHECK_FORMAT(size >= 1, "qh5: empty chunk payload");
  const std::uint8_t mode = packed[0];
  if (mode == kModeRaw) {
    QGEAR_CHECK_FORMAT(size - 1 == expected_size,
                       "qh5: raw chunk size mismatch");
    return std::vector<std::uint8_t>(packed + 1, packed + size);
  }
  QGEAR_CHECK_FORMAT(mode == kModeShuffleRle, "qh5: unknown chunk mode");
  const std::vector<std::uint8_t> shuffled =
      rle_decode(packed + 1, size - 1, expected_size);
  return unshuffle(shuffled.data(), shuffled.size(), elem_size);
}

}  // namespace qgear::qh5
