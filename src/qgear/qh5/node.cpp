#include "qgear/qh5/node.hpp"

#include <cstring>

#include "qgear/common/strings.hpp"

namespace qgear::qh5 {

void AttrHolder::set_attr(const std::string& name, AttrValue value) {
  attrs_[name] = std::move(value);
}

bool AttrHolder::has_attr(const std::string& name) const {
  return attrs_.count(name) != 0;
}

const AttrValue& AttrHolder::attr(const std::string& name) const {
  auto it = attrs_.find(name);
  QGEAR_CHECK_ARG(it != attrs_.end(), "qh5: missing attribute '" + name + "'");
  return it->second;
}

std::int64_t AttrHolder::attr_i64(const std::string& name) const {
  const AttrValue& v = attr(name);
  QGEAR_CHECK_ARG(std::holds_alternative<std::int64_t>(v),
                  "qh5: attribute '" + name + "' is not an integer");
  return std::get<std::int64_t>(v);
}

double AttrHolder::attr_f64(const std::string& name) const {
  const AttrValue& v = attr(name);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  QGEAR_CHECK_ARG(std::holds_alternative<double>(v),
                  "qh5: attribute '" + name + "' is not numeric");
  return std::get<double>(v);
}

const std::string& AttrHolder::attr_str(const std::string& name) const {
  const AttrValue& v = attr(name);
  QGEAR_CHECK_ARG(std::holds_alternative<std::string>(v),
                  "qh5: attribute '" + name + "' is not a string");
  return std::get<std::string>(v);
}

Dataset::Dataset(DType dtype, std::vector<std::uint64_t> shape)
    : dtype_(dtype), shape_(std::move(shape)) {
  QGEAR_CHECK_ARG(!shape_.empty(), "qh5: dataset shape must be non-empty");
}

std::uint64_t Dataset::element_count() const {
  std::uint64_t n = 1;
  for (std::uint64_t d : shape_) n *= d;
  return n;
}

void Group::validate_name(const std::string& name) {
  QGEAR_CHECK_ARG(!name.empty(), "qh5: empty object name");
  QGEAR_CHECK_ARG(name.find('/') == std::string::npos,
                  "qh5: object name may not contain '/': " + name);
}

Group& Group::create_group(const std::string& name) {
  validate_name(name);
  QGEAR_CHECK_ARG(groups_.count(name) == 0 && datasets_.count(name) == 0,
                  "qh5: object '" + name + "' already exists");
  auto [it, inserted] = groups_.emplace(name, std::make_unique<Group>());
  QGEAR_ENSURES(inserted);
  return *it->second;
}

Dataset& Group::create_dataset_raw(const std::string& name, DType dtype,
                                   std::vector<std::uint64_t> shape) {
  validate_name(name);
  QGEAR_CHECK_ARG(groups_.count(name) == 0 && datasets_.count(name) == 0,
                  "qh5: object '" + name + "' already exists");
  auto [it, inserted] =
      datasets_.emplace(name, std::make_unique<Dataset>(dtype, std::move(shape)));
  QGEAR_ENSURES(inserted);
  return *it->second;
}

bool Group::has_group(const std::string& name) const {
  return groups_.count(name) != 0;
}

bool Group::has_dataset(const std::string& name) const {
  return datasets_.count(name) != 0;
}

Group& Group::group(const std::string& name) {
  auto it = groups_.find(name);
  QGEAR_CHECK_ARG(it != groups_.end(), "qh5: missing group '" + name + "'");
  return *it->second;
}

const Group& Group::group(const std::string& name) const {
  auto it = groups_.find(name);
  QGEAR_CHECK_ARG(it != groups_.end(), "qh5: missing group '" + name + "'");
  return *it->second;
}

Dataset& Group::dataset(const std::string& name) {
  auto it = datasets_.find(name);
  QGEAR_CHECK_ARG(it != datasets_.end(),
                  "qh5: missing dataset '" + name + "'");
  return *it->second;
}

const Dataset& Group::dataset(const std::string& name) const {
  auto it = datasets_.find(name);
  QGEAR_CHECK_ARG(it != datasets_.end(),
                  "qh5: missing dataset '" + name + "'");
  return *it->second;
}

Dataset& Group::dataset_at(const std::string& path) {
  return const_cast<Dataset&>(
      static_cast<const Group*>(this)->dataset_at(path));
}

const Dataset& Group::dataset_at(const std::string& path) const {
  const std::vector<std::string> parts = split(path, '/');
  QGEAR_CHECK_ARG(!parts.empty(), "qh5: empty dataset path");
  const Group* cur = this;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    cur = &cur->group(parts[i]);
  }
  return cur->dataset(parts.back());
}

std::vector<std::string> Group::group_names() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [name, g] : groups_) out.push_back(name);
  return out;
}

std::vector<std::string> Group::dataset_names() const {
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, d] : datasets_) out.push_back(name);
  return out;
}

std::uint64_t Group::subtree_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, d] : datasets_) total += d->byte_size();
  for (const auto& [name, g] : groups_) total += g->subtree_bytes();
  return total;
}

}  // namespace qgear::qh5
