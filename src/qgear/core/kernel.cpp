#include "qgear/core/kernel.hpp"

#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/transpile.hpp"

namespace qgear::core {

Kernel::Kernel(qiskit::QuantumCircuit qc)
    : circuit_(std::move(qc)),
      name_(circuit_.name()),
      num_qubits_(circuit_.num_qubits()),
      ops_(circuit_.instructions()) {
  for (const qiskit::Instruction& inst : ops_) {
    QGEAR_CHECK_ARG(qiskit::is_native_gate(inst.kind),
                    "kernel: non-native gate survived transpilation");
  }
}

Kernel Kernel::from_circuit(const qiskit::QuantumCircuit& qc) {
  obs::Span span(obs::Tracer::global(), "transpile", "core");
  if (span.active()) span.arg("circuit", qc.name());
  return Kernel(qiskit::to_native_basis(qc));
}

Kernel Kernel::from_tensor(const GateTensor& tensor, std::uint32_t index) {
  obs::Span span(obs::Tracer::global(), "transpile", "core");
  if (span.active()) span.arg("tensor_index", std::uint64_t{index});
  return Kernel(decode_circuit(tensor, index));
}

std::size_t Kernel::num_2q_gates() const { return circuit_.num_2q_gates(); }

std::vector<unsigned> Kernel::measured_qubits() const {
  std::vector<unsigned> out;
  for (const qiskit::Instruction& inst : ops_) {
    if (inst.kind == qiskit::GateKind::measure) {
      out.push_back(static_cast<unsigned>(inst.q0));
    }
  }
  return out;
}

}  // namespace qgear::core
