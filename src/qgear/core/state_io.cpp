#include "qgear/core/state_io.hpp"

#include <string>

namespace qgear::core {

namespace {
template <typename T>
const char* precision_tag() {
  return sizeof(T) == 4 ? "fp32" : "fp64";
}
}  // namespace

template <typename T>
void save_state(const sim::StateVector<T>& state, qh5::Group& group) {
  group.set_attr("format", std::string("qgear.state_vector"));
  group.set_attr("num_qubits", static_cast<std::int64_t>(state.num_qubits()));
  group.set_attr("precision", std::string(precision_tag<T>()));

  const std::uint64_t n = state.size();
  std::vector<T> re(n), im(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    re[i] = state[i].real();
    im[i] = state[i].imag();
  }
  group.create_dataset<T>("re", {n}, re);
  group.create_dataset<T>("im", {n}, im);
}

template <typename T>
sim::StateVector<T> load_state(const qh5::Group& group) {
  QGEAR_CHECK_FORMAT(group.has_attr("format") &&
                         group.attr_str("format") == "qgear.state_vector",
                     "state_io: group is not a state vector");
  QGEAR_CHECK_FORMAT(group.attr_str("precision") == precision_tag<T>(),
                     "state_io: stored precision does not match request");
  const auto num_qubits =
      static_cast<unsigned>(group.attr_i64("num_qubits"));
  sim::StateVector<T> state(num_qubits);
  const auto re = group.dataset("re").read<T>();
  const auto im = group.dataset("im").read<T>();
  QGEAR_CHECK_FORMAT(re.size() == state.size() && im.size() == state.size(),
                     "state_io: amplitude plane size mismatch");
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    state[i] = std::complex<T>(re[i], im[i]);
  }
  return state;
}

template void save_state<float>(const sim::StateVector<float>&,
                                qh5::Group&);
template void save_state<double>(const sim::StateVector<double>&,
                                 qh5::Group&);
template sim::StateVector<float> load_state<float>(const qh5::Group&);
template sim::StateVector<double> load_state<double>(const qh5::Group&);

}  // namespace qgear::core
