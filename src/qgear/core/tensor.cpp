#include "qgear/core/tensor.hpp"

#include <algorithm>

#include "qgear/common/strings.hpp"
#include "qgear/qiskit/transpile.hpp"

namespace qgear::core {

std::vector<std::uint8_t> one_hot_matrix() {
  std::vector<std::uint8_t> m(kNumTensorGates * kNumTensorGates, 0);
  for (int g = 0; g < kNumTensorGates; ++g) {
    m[static_cast<std::size_t>(g) * kNumTensorGates + g] = 1;
  }
  return m;
}

TensorGate tensor_gate_from_kind(qiskit::GateKind kind) {
  using qiskit::GateKind;
  switch (kind) {
    case GateKind::h: return TensorGate::h;
    case GateKind::ry: return TensorGate::ry;
    case GateKind::rz: return TensorGate::rz;
    case GateKind::cx: return TensorGate::cx;
    case GateKind::measure: return TensorGate::measure;
    case GateKind::rx: return TensorGate::rx;
    case GateKind::cp: return TensorGate::cp;
    default:
      throw InvalidArgument(
          std::string("tensor: gate '") + qiskit::gate_info(kind).name +
          "' is not in the native encoding set (transpile first)");
  }
}

qiskit::GateKind kind_from_tensor_gate(TensorGate g) {
  using qiskit::GateKind;
  switch (g) {
    case TensorGate::h: return GateKind::h;
    case TensorGate::ry: return GateKind::ry;
    case TensorGate::rz: return GateKind::rz;
    case TensorGate::cx: return GateKind::cx;
    case TensorGate::measure: return GateKind::measure;
    case TensorGate::rx: return GateKind::rx;
    case TensorGate::cp: return GateKind::cp;
  }
  throw FormatError("tensor: invalid gate category");
}

GateTensor::GateTensor(std::uint32_t num_circuits, std::uint32_t capacity)
    : num_circuits_(num_circuits), capacity_(capacity) {
  QGEAR_CHECK_ARG(num_circuits >= 1, "tensor: need at least one circuit");
  QGEAR_CHECK_ARG(capacity >= 1, "tensor: capacity must be positive");
  qubits_.assign(num_circuits, 0);
  gate_count_.assign(num_circuits, 0);
  names_.assign(num_circuits, "");
  const std::size_t slots =
      static_cast<std::size_t>(num_circuits) * capacity;
  gate_type_.assign(slots, kEmptySlot);
  control_.assign(slots, -1);
  target_.assign(slots, -1);
  param_.assign(slots, 0.0);
}

std::uint32_t GateTensor::circuit_qubits(std::uint32_t c) const {
  QGEAR_CHECK_ARG(c < num_circuits_, "tensor: circuit index out of range");
  return qubits_[c];
}

std::uint32_t GateTensor::circuit_gates(std::uint32_t c) const {
  QGEAR_CHECK_ARG(c < num_circuits_, "tensor: circuit index out of range");
  return gate_count_[c];
}

const std::string& GateTensor::circuit_name(std::uint32_t c) const {
  QGEAR_CHECK_ARG(c < num_circuits_, "tensor: circuit index out of range");
  return names_[c];
}

void GateTensor::set_circuit_meta(std::uint32_t c, std::uint32_t qubits,
                                  std::string name) {
  QGEAR_CHECK_ARG(c < num_circuits_, "tensor: circuit index out of range");
  qubits_[c] = qubits;
  names_[c] = std::move(name);
}

void GateTensor::push_gate(std::uint32_t c, TensorGate type,
                           std::int32_t control, std::int32_t target,
                           double param) {
  QGEAR_CHECK_ARG(c < num_circuits_, "tensor: circuit index out of range");
  QGEAR_CHECK_ARG(gate_count_[c] < capacity_,
                  "tensor: circuit exceeds tensor capacity (Lemma B.2)");
  const std::size_t s = slot(c, gate_count_[c]);
  gate_type_[s] = static_cast<std::int8_t>(type);
  control_[s] = control;
  target_[s] = target;
  param_[s] = param;
  ++gate_count_[c];
}

std::uint64_t GateTensor::byte_size() const {
  const std::uint64_t slots =
      static_cast<std::uint64_t>(num_circuits_) * capacity_;
  return slots * (sizeof(std::int8_t) + 2 * sizeof(std::int32_t) +
                  sizeof(double)) +
         num_circuits_ * 2 * sizeof(std::uint32_t);
}

GateTensor encode_circuits(std::span<const qiskit::QuantumCircuit> circuits,
                           EncodeOptions opts) {
  QGEAR_CHECK_ARG(!circuits.empty(), "encode: no circuits given");

  std::vector<qiskit::QuantumCircuit> native;
  native.reserve(circuits.size());
  for (const auto& qc : circuits) {
    native.push_back(opts.transpile ? qiskit::to_native_basis(qc) : qc);
  }

  // Lemma B.2 capacity: d >= max(|G|, |C|), counting encodable slots
  // (barriers carry no tensor entry).
  std::uint32_t max_gates = 0;
  for (const auto& qc : native) {
    std::uint32_t n = 0;
    for (const auto& inst : qc.instructions()) {
      if (inst.kind != qiskit::GateKind::barrier) ++n;
    }
    max_gates = std::max(max_gates, n);
  }
  const std::uint32_t auto_d =
      std::max<std::uint32_t>({max_gates, static_cast<std::uint32_t>(
                                              native.size()),
                               1});
  const std::uint32_t d = opts.capacity == 0 ? auto_d : opts.capacity;
  QGEAR_CHECK_ARG(d >= auto_d,
                  "encode: requested capacity violates Lemma B.2");

  GateTensor tensor(static_cast<std::uint32_t>(native.size()), d);
  for (std::uint32_t c = 0; c < native.size(); ++c) {
    const auto& qc = native[c];
    tensor.set_circuit_meta(c, qc.num_qubits(), qc.name());
    for (const auto& inst : qc.instructions()) {
      if (inst.kind == qiskit::GateKind::barrier) continue;
      const TensorGate g = tensor_gate_from_kind(inst.kind);
      const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
      if (info.num_qubits == 2) {
        tensor.push_gate(c, g, inst.q0, inst.q1, inst.param);
      } else {
        // Single-qubit gates store the qubit in the target plane; control
        // stays -1 (the paper's "control qubit indices" slot).
        tensor.push_gate(c, g, -1, inst.q0, inst.param);
      }
    }
  }
  return tensor;
}

qiskit::QuantumCircuit decode_circuit(const GateTensor& tensor,
                                      std::uint32_t index) {
  QGEAR_CHECK_ARG(index < tensor.num_circuits(),
                  "decode: circuit index out of range");
  const std::uint32_t nq = tensor.circuit_qubits(index);
  QGEAR_CHECK_FORMAT(nq >= 1 && nq <= 64, "decode: invalid qubit count");
  qiskit::QuantumCircuit qc(nq, tensor.circuit_name(index));
  for (std::uint32_t g = 0; g < tensor.circuit_gates(index); ++g) {
    const std::int8_t raw = tensor.gate_type(index, g);
    QGEAR_CHECK_FORMAT(raw >= 0 && raw < kNumTensorGates,
                       "decode: invalid gate category");
    const qiskit::GateKind kind =
        kind_from_tensor_gate(static_cast<TensorGate>(raw));
    const qiskit::GateInfo& info = qiskit::gate_info(kind);
    qiskit::Instruction inst;
    inst.kind = kind;
    inst.param = tensor.param(index, g);
    if (info.num_qubits == 2) {
      inst.q0 = tensor.control(index, g);
      inst.q1 = tensor.target(index, g);
    } else {
      inst.q0 = tensor.target(index, g);
      inst.q1 = -1;
    }
    try {
      qc.append(inst);
    } catch (const InvalidArgument& e) {
      throw FormatError(std::string("decode: invalid tensor slot: ") +
                        e.what());
    }
  }
  return qc;
}

void save_tensor(const GateTensor& tensor, qh5::Group& group) {
  group.set_attr("format", std::string("qgear.gate_tensor"));
  group.set_attr("version", std::int64_t{1});
  group.set_attr("num_circuits", static_cast<std::int64_t>(
                                     tensor.num_circuits()));
  group.set_attr("capacity", static_cast<std::int64_t>(tensor.capacity()));

  const std::uint64_t n = tensor.num_circuits();
  const std::uint64_t d = tensor.capacity();

  std::vector<std::int64_t> qubits(n), gates(n);
  std::vector<std::string> names(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    qubits[c] = tensor.circuit_qubits(c);
    gates[c] = tensor.circuit_gates(c);
    names[c] = tensor.circuit_name(c);
  }
  group.create_dataset<std::int64_t>("num_qubits", {n}, qubits);
  group.create_dataset<std::int64_t>("gate_count", {n}, gates);
  // Names are packed newline-separated (qh5 has no string datasets).
  std::string packed;
  for (std::uint32_t c = 0; c < n; ++c) {
    QGEAR_CHECK_ARG(names[c].find('\n') == std::string::npos,
                    "save_tensor: circuit name contains newline");
    packed += names[c];
    packed += '\n';
  }
  std::vector<std::uint8_t> name_bytes(packed.begin(), packed.end());
  if (name_bytes.empty()) name_bytes.push_back('\n');
  group.create_dataset<std::uint8_t>("names", {name_bytes.size()},
                                     name_bytes);

  group.create_dataset<std::int8_t>("gate_type", {n, d},
                                    tensor.gate_type_plane());
  group.create_dataset<std::int32_t>("control", {n, d},
                                     tensor.control_plane());
  group.create_dataset<std::int32_t>("target", {n, d},
                                     tensor.target_plane());
  group.create_dataset<double>("gate_param", {n, d}, tensor.param_plane());
}

GateTensor load_tensor(const qh5::Group& group) {
  QGEAR_CHECK_FORMAT(group.has_attr("format") &&
                         group.attr_str("format") == "qgear.gate_tensor",
                     "load_tensor: group is not a gate tensor");
  const auto n = static_cast<std::uint32_t>(group.attr_i64("num_circuits"));
  const auto d = static_cast<std::uint32_t>(group.attr_i64("capacity"));
  QGEAR_CHECK_FORMAT(n >= 1 && d >= 1, "load_tensor: bad shape attributes");

  const auto qubits = group.dataset("num_qubits").read<std::int64_t>();
  const auto gates = group.dataset("gate_count").read<std::int64_t>();
  QGEAR_CHECK_FORMAT(qubits.size() == n && gates.size() == n,
                     "load_tensor: metadata length mismatch");
  const auto name_bytes = group.dataset("names").read<std::uint8_t>();
  const std::vector<std::string> names =
      split(std::string(name_bytes.begin(), name_bytes.end()), '\n');

  const auto gate_type = group.dataset("gate_type").read<std::int8_t>();
  const auto control = group.dataset("control").read<std::int32_t>();
  const auto target = group.dataset("target").read<std::int32_t>();
  const auto param = group.dataset("gate_param").read<double>();
  const std::size_t slots = static_cast<std::size_t>(n) * d;
  QGEAR_CHECK_FORMAT(gate_type.size() == slots && control.size() == slots &&
                         target.size() == slots && param.size() == slots,
                     "load_tensor: plane size mismatch");

  GateTensor tensor(n, d);
  for (std::uint32_t c = 0; c < n; ++c) {
    QGEAR_CHECK_FORMAT(gates[c] >= 0 && gates[c] <= d,
                       "load_tensor: gate count exceeds capacity");
    tensor.set_circuit_meta(c, static_cast<std::uint32_t>(qubits[c]),
                            c < names.size() ? names[c] : "");
    for (std::uint32_t g = 0; g < static_cast<std::uint32_t>(gates[c]);
         ++g) {
      const std::size_t s = static_cast<std::size_t>(c) * d + g;
      QGEAR_CHECK_FORMAT(
          gate_type[s] >= 0 && gate_type[s] < kNumTensorGates,
          "load_tensor: invalid gate category in plane");
      tensor.push_gate(c, static_cast<TensorGate>(gate_type[s]), control[s],
                       target[s], param[s]);
    }
  }
  return tensor;
}

}  // namespace qgear::core
