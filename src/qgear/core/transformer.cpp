#include "qgear/core/transformer.hpp"

#include <atomic>
#include <numeric>
#include <thread>

#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/dist/runner.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/sim/fused.hpp"
#include "qgear/sim/reference.hpp"

namespace qgear::core {

const char* target_name(Target t) {
  switch (t) {
    case Target::cpu_aer: return "cpu-aer";
    case Target::nvidia: return "nvidia";
    case Target::nvidia_mgpu: return "nvidia-mgpu";
    case Target::nvidia_mqpu: return "nvidia-mqpu";
  }
  return "?";
}

const char* precision_name(Precision p) {
  return p == Precision::fp32 ? "fp32" : "fp64";
}

std::size_t amp_bytes(Precision p) {
  return p == Precision::fp32 ? sizeof(std::complex<float>)
                              : sizeof(std::complex<double>);
}

Transformer::Transformer(TransformerOptions opts) : opts_(opts) {
  QGEAR_CHECK_ARG(opts_.devices >= 1, "transformer: devices must be >= 1");
  if (opts_.target == Target::nvidia_mgpu) {
    QGEAR_CHECK_ARG(is_pow2(static_cast<std::uint64_t>(opts_.devices)),
                    "transformer: mgpu device count must be a power of two");
  }
  QGEAR_CHECK_ARG(opts_.fusion_width >= 1 && opts_.fusion_width <= 10,
                  "transformer: fusion width out of range");
  if (opts_.threads > 0) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
}

Transformer::~Transformer() = default;

std::uint64_t Transformer::required_bytes_per_device(
    unsigned num_qubits, const TransformerOptions& opts) {
  const std::uint64_t total = pow2(num_qubits) * amp_bytes(opts.precision);
  if (opts.target == Target::nvidia_mgpu) {
    return total / static_cast<std::uint64_t>(opts.devices);
  }
  return total;
}

void Transformer::check_memory(unsigned num_qubits) const {
  if (opts_.device_memory_bytes == 0) return;
  const std::uint64_t needed =
      required_bytes_per_device(num_qubits, opts_);
  if (needed > opts_.device_memory_bytes) {
    throw OutOfMemoryBudget(strfmt(
        "target %s: %u-qubit %s state needs %s per device, budget is %s",
        target_name(opts_.target), num_qubits,
        precision_name(opts_.precision), human_bytes(needed).c_str(),
        human_bytes(opts_.device_memory_bytes).c_str()));
  }
}

namespace {

template <typename T>
std::vector<std::complex<double>> widen(
    const std::vector<std::complex<T>>& amps) {
  std::vector<std::complex<double>> out(amps.size());
  for (std::size_t i = 0; i < amps.size(); ++i) {
    out[i] = std::complex<double>(amps[i]);
  }
  return out;
}

std::vector<unsigned> effective_measured(const Kernel& kernel) {
  std::vector<unsigned> measured = kernel.measured_qubits();
  if (measured.empty()) {
    measured.resize(kernel.num_qubits());
    std::iota(measured.begin(), measured.end(), 0u);
  }
  return measured;
}

}  // namespace

template <typename T>
Result Transformer::run_typed(const Kernel& kernel,
                              const RunOptions& run_opts) {
  Result result;
  obs::Span run_span(obs::Tracer::global(), "transformer.run", "core");
  if (run_span.active()) {
    run_span.arg("target", target_name(opts_.target));
    run_span.arg("kernel", kernel.name());
    run_span.arg("qubits", std::uint64_t{kernel.num_qubits()});
  }
  WallTimer timer;

  if (opts_.target == Target::nvidia_mgpu && opts_.devices > 1) {
    dist::RunOptions dopts;
    dopts.num_ranks = opts_.devices;
    dopts.shots = run_opts.shots;
    dopts.gather_state = run_opts.return_state;
    dopts.seed = opts_.seed;
    dopts.fusion_width = opts_.fusion_width;
    const dist::RunResult<T> dres =
        dist::run_distributed<T>(kernel.circuit(), dopts);
    if (run_opts.return_state) result.state = widen(dres.state);
    result.counts = dres.counts;
    result.measured = dres.measured;
    for (const auto& s : dres.rank_stats) {
      result.stats.sweeps += s.sweeps;
      result.stats.amp_ops += s.amp_ops;
      result.stats.fused_blocks += s.fused_blocks;
    }
    result.stats.gates = kernel.size();
    result.comm_bytes = dres.trace.total_bytes;
    result.wall_seconds = timer.seconds();
    result.stats.seconds = result.wall_seconds;
    return result;
  }

  sim::StateVector<T> state(kernel.num_qubits());
  std::vector<unsigned> measured;
  if (opts_.target == Target::cpu_aer) {
    // Aer-like baseline: strictly per-gate sweeps, no fusion.
    sim::ReferenceEngine<T> engine({.pool = pool_.get()});
    engine.apply(kernel.circuit(), state, &measured);
    result.stats = engine.stats();
  } else {
    typename sim::FusedEngine<T>::Options fopts;
    fopts.fusion.max_width = opts_.fusion_width;
    fopts.fusion.angle_threshold = opts_.angle_threshold;
    fopts.pool = pool_.get();
    sim::FusedEngine<T> engine(fopts);
    engine.apply(kernel.circuit(), state, &measured);
    result.stats = engine.stats();
  }

  if (measured.empty()) measured = effective_measured(kernel);
  result.measured = measured;
  if (run_opts.shots > 0) {
    Rng rng(opts_.seed);
    result.counts = sim::sample_counts(state, measured, run_opts.shots, rng);
  }
  if (run_opts.return_state) result.state = widen(state.amplitudes());
  result.wall_seconds = timer.seconds();
  return result;
}

Result Transformer::run(const Kernel& kernel, const RunOptions& run_opts) {
  check_memory(kernel.num_qubits());
  return opts_.precision == Precision::fp32
             ? run_typed<float>(kernel, run_opts)
             : run_typed<double>(kernel, run_opts);
}

Result Transformer::run(const qiskit::QuantumCircuit& qc,
                        const RunOptions& run_opts) {
  return run(Kernel::from_circuit(qc), run_opts);
}

double Transformer::expectation(const Kernel& kernel,
                                const sim::Observable& obs,
                                std::uint64_t shots) {
  QGEAR_CHECK_ARG(kernel.measured_qubits().empty(),
                  "expectation: kernel must not contain measurements");
  const Result r = run(kernel, {.shots = 0, .return_state = true});
  // Rehydrate the fp64 view into a state vector for the estimators.
  sim::StateVector<double> state(kernel.num_qubits());
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    state[i] = r.state[i];
  }
  if (shots == 0) {
    return sim::expectation(state, obs);
  }
  // Shot-based: allocate the budget evenly across non-identity terms.
  std::uint64_t active_terms = 0;
  for (const auto& term : obs.terms()) {
    if (!term.is_identity()) ++active_terms;
  }
  Rng rng(opts_.seed ^ 0xE57);
  double total = 0;
  const std::uint64_t per_term =
      active_terms == 0 ? 0 : std::max<std::uint64_t>(1, shots / active_terms);
  for (const auto& term : obs.terms()) {
    if (term.is_identity()) {
      total += term.coefficient;
    } else {
      total += sim::sampled_expectation(state, term, per_term, rng);
    }
  }
  return total;
}

std::vector<Result> Transformer::run_batch(std::span<const Kernel> kernels,
                                           const RunOptions& run_opts) {
  std::vector<Result> results(kernels.size());
  if (opts_.target != Target::nvidia_mqpu || opts_.devices <= 1 ||
      kernels.size() <= 1) {
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      results[i] = run(kernels[i], run_opts);
    }
    return results;
  }

  // mqpu parallel mode: each device is a worker thread draining a shared
  // queue of kernels (the paper's "simultaneous execution of multiple
  // smaller quantum circuits on separate GPUs").
  for (const Kernel& k : kernels) check_memory(k.num_qubits());
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(opts_.devices));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(opts_.devices));
  for (int d = 0; d < opts_.devices; ++d) {
    workers.emplace_back([&, d] {
      try {
        // Per-device single-GPU configuration (no shared pool).
        TransformerOptions device_opts = opts_;
        device_opts.target = Target::nvidia;
        device_opts.threads = 0;
        device_opts.seed = opts_.seed + static_cast<std::uint64_t>(d);
        Transformer device(device_opts);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= kernels.size()) break;
          results[i] = device.run(kernels[i], run_opts);
        }
      } catch (...) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
      }
    });
  }
  for (auto& t : workers) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace qgear::core
