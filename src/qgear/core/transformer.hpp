// The user-facing Q-Gear execution front-end.
//
// Mirrors the paper's CUDA-Q target selection:
//   cpu_aer     — Qiskit-Aer-style CPU baseline (per-gate sweeps, no fusion)
//   nvidia      — single-device fused engine (thread pool = SM warps)
//   nvidia_mgpu — one circuit distributed across `devices` ranks
//   nvidia_mqpu — circuit-level parallelism: a batch spread across devices
//
// Memory budgeting reproduces the paper's feasibility walls (40 GB A100 →
// 32-qubit fp32 ceiling; 4 GPUs → 34): a run whose state exceeds the
// per-device budget throws OutOfMemoryBudget.
#pragma once

#include <complex>
#include <memory>

#include "qgear/common/thread_pool.hpp"
#include "qgear/core/kernel.hpp"
#include "qgear/sim/observable.hpp"
#include "qgear/sim/sampler.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::core {

enum class Target { cpu_aer, nvidia, nvidia_mgpu, nvidia_mqpu };
enum class Precision { fp32, fp64 };

const char* target_name(Target t);
const char* precision_name(Precision p);
std::size_t amp_bytes(Precision p);

struct TransformerOptions {
  Target target = Target::nvidia;
  Precision precision = Precision::fp32;
  /// Device count for the mgpu/mqpu targets (power of two for mgpu).
  int devices = 1;
  /// Fusion width for the GPU-style engines (the paper uses 5).
  unsigned fusion_width = 5;
  /// Rotations below this magnitude are dropped (0 disables, App. D.2).
  double angle_threshold = 0.0;
  /// Per-device amplitude-memory budget; 0 disables the check. The paper's
  /// single A100 exposes 40 GB.
  std::uint64_t device_memory_bytes = 0;
  /// Worker threads for the single-device engines (0 = none/serial).
  unsigned threads = 0;
  std::uint64_t seed = 20240915;
};

struct RunOptions {
  std::uint64_t shots = 0;     ///< 0 = no sampling
  bool return_state = false;   ///< collect the full state vector
};

struct Result {
  /// Final state (fp64 view regardless of engine precision); only filled
  /// when RunOptions::return_state was set.
  std::vector<std::complex<double>> state;
  sim::Counts counts;
  std::vector<unsigned> measured;
  sim::EngineStats stats;
  /// Total bytes moved between devices (mgpu target only).
  std::uint64_t comm_bytes = 0;
  double wall_seconds = 0.0;
};

class Transformer {
 public:
  explicit Transformer(TransformerOptions opts = {});
  ~Transformer();

  Transformer(const Transformer&) = delete;
  Transformer& operator=(const Transformer&) = delete;

  const TransformerOptions& options() const { return opts_; }

  /// Executes one kernel on the configured target.
  Result run(const Kernel& kernel, const RunOptions& run_opts = {});

  /// Convenience: transpile + run a high-level circuit.
  Result run(const qiskit::QuantumCircuit& qc,
             const RunOptions& run_opts = {});

  /// Executes a batch. On nvidia_mqpu the kernels are spread across
  /// `devices` concurrent workers (the paper's parallel mode); other
  /// targets run them sequentially.
  std::vector<Result> run_batch(std::span<const Kernel> kernels,
                                const RunOptions& run_opts = {});

  /// Exact expectation <psi|H|psi> of an observable on the kernel's
  /// final state — the variational-workload primitive (Sec. 1). Runs on
  /// the configured target; shots > 0 switches to shot-based estimation
  /// with per-term basis rotations.
  double expectation(const Kernel& kernel, const sim::Observable& obs,
                     std::uint64_t shots = 0);

  /// State bytes one device must hold for an n-qubit run under `opts`
  /// (the mgpu target divides the state across devices).
  static std::uint64_t required_bytes_per_device(
      unsigned num_qubits, const TransformerOptions& opts);

 private:
  void check_memory(unsigned num_qubits) const;

  template <typename T>
  Result run_typed(const Kernel& kernel, const RunOptions& run_opts);

  TransformerOptions opts_;
  std::unique_ptr<ThreadPool> pool_;  // only when opts_.threads > 0
};

}  // namespace qgear::core
