// Q-Gear's circuit encoding (paper Sec. 2.1, Appendix B).
//
// A batch of circuits is stored as one fixed-shape 3-D tensor:
//   dim 1 — per-circuit metadata: circuit type/name, qubit count, gate count;
//   dim 2 — per-gate integer planes: gate category, control qubit index,
//           target qubit index (shape [num_circuits][capacity]);
//   dim 3 — the unified gate-parameter plane (same shape, doubles).
//
// Capacity d satisfies Lemma B.2: d >= max(|G|, |C|); unused slots carry
// the sentinel kEmptySlot. Gate categories follow the paper's one-hot
// matrix M = (h, ry, rz, cx, measure) (Eq. 8), extended with rx and cp
// (cr1), which the paper's own workloads require (App. D.1, D.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qgear/qh5/node.hpp"
#include "qgear/qiskit/circuit.hpp"

namespace qgear::core {

/// Gate categories of the tensor encoding, in one-hot matrix order.
enum class TensorGate : std::int8_t {
  h = 0,
  ry = 1,
  rz = 2,
  cx = 3,
  measure = 4,
  // Extensions beyond Eq. 8's canonical five:
  rx = 5,
  cp = 6,
};

constexpr int kNumTensorGates = 7;
constexpr std::int8_t kEmptySlot = -1;

/// Returns the one-hot encoding matrix M^T (Eq. 8) for the gate
/// categories: row g is the one-hot vector of category g.
std::vector<std::uint8_t> one_hot_matrix();

/// Maps a native-basis instruction kind to its tensor category.
TensorGate tensor_gate_from_kind(qiskit::GateKind kind);
qiskit::GateKind kind_from_tensor_gate(TensorGate g);

/// The fixed-shape gate tensor for a batch of circuits.
class GateTensor {
 public:
  GateTensor() = default;
  GateTensor(std::uint32_t num_circuits, std::uint32_t capacity);

  std::uint32_t num_circuits() const { return num_circuits_; }
  std::uint32_t capacity() const { return capacity_; }

  // ---- dim 1: per-circuit metadata ------------------------------------
  std::uint32_t circuit_qubits(std::uint32_t c) const;
  std::uint32_t circuit_gates(std::uint32_t c) const;
  const std::string& circuit_name(std::uint32_t c) const;
  void set_circuit_meta(std::uint32_t c, std::uint32_t qubits,
                        std::string name);

  // ---- dim 2/3: per-gate planes ----------------------------------------
  std::int8_t gate_type(std::uint32_t c, std::uint32_t g) const {
    return gate_type_[slot(c, g)];
  }
  std::int32_t control(std::uint32_t c, std::uint32_t g) const {
    return control_[slot(c, g)];
  }
  std::int32_t target(std::uint32_t c, std::uint32_t g) const {
    return target_[slot(c, g)];
  }
  double param(std::uint32_t c, std::uint32_t g) const {
    return param_[slot(c, g)];
  }

  /// Appends one gate to circuit c (next free slot). Throws when full.
  void push_gate(std::uint32_t c, TensorGate type, std::int32_t control,
                 std::int32_t target, double param);

  /// Raw plane access for persistence.
  const std::vector<std::int8_t>& gate_type_plane() const {
    return gate_type_;
  }
  const std::vector<std::int32_t>& control_plane() const { return control_; }
  const std::vector<std::int32_t>& target_plane() const { return target_; }
  const std::vector<double>& param_plane() const { return param_; }

  /// Total tensor bytes (all planes), the quantity Appendix C stores.
  std::uint64_t byte_size() const;

  bool operator==(const GateTensor&) const = default;

 private:
  std::size_t slot(std::uint32_t c, std::uint32_t g) const {
    QGEAR_EXPECTS(c < num_circuits_ && g < capacity_);
    return static_cast<std::size_t>(c) * capacity_ + g;
  }

  std::uint32_t num_circuits_ = 0;
  std::uint32_t capacity_ = 0;
  std::vector<std::uint32_t> qubits_;
  std::vector<std::uint32_t> gate_count_;
  std::vector<std::string> names_;
  std::vector<std::int8_t> gate_type_;
  std::vector<std::int32_t> control_;
  std::vector<std::int32_t> target_;
  std::vector<double> param_;
};

struct EncodeOptions {
  /// 0 = auto: the smallest d satisfying Lemma B.2.
  std::uint32_t capacity = 0;
  /// Rewrite non-native gates before encoding (off only when the caller
  /// guarantees native-basis input).
  bool transpile = true;
};

/// Encodes a batch of circuits into one gate tensor (Sec. 2.1).
GateTensor encode_circuits(std::span<const qiskit::QuantumCircuit> circuits,
                           EncodeOptions opts = {});

/// Reconstructs circuit `index` from the tensor. decode(encode(qc)) is
/// gate-for-gate identical for native-basis circuits.
qiskit::QuantumCircuit decode_circuit(const GateTensor& tensor,
                                      std::uint32_t index);

/// Persists the tensor into a qh5 group (Appendix C layout).
void save_tensor(const GateTensor& tensor, qh5::Group& group);

/// Loads a tensor previously written by save_tensor.
GateTensor load_tensor(const qh5::Group& group);

}  // namespace qgear::core
