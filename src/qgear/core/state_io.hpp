// State-vector checkpointing in qh5 containers.
//
// Multi-stage pipelines (App. E) evolve a circuit in one Slurm job and
// sample or extend it in another; that requires persisting 2^n amplitudes
// between jobs. States are stored as separate real/imaginary planes so
// the byte-shuffle compressor can exploit exponent locality.
#pragma once

#include "qgear/qh5/node.hpp"
#include "qgear/sim/state.hpp"

namespace qgear::core {

/// Writes `state` into `group` (datasets "re", "im" + metadata attrs).
template <typename T>
void save_state(const sim::StateVector<T>& state, qh5::Group& group);

/// Reads a state previously written by save_state. The stored precision
/// must match T exactly (no silent narrowing).
template <typename T>
sim::StateVector<T> load_state(const qh5::Group& group);

extern template void save_state<float>(const sim::StateVector<float>&,
                                       qh5::Group&);
extern template void save_state<double>(const sim::StateVector<double>&,
                                        qh5::Group&);
extern template sim::StateVector<float> load_state<float>(
    const qh5::Group&);
extern template sim::StateVector<double> load_state<double>(
    const qh5::Group&);

}  // namespace qgear::core
