// Kernel transformation (paper Sec. 2.2).
//
// A Kernel is the CUDA-Q-style executable form of a circuit: a validated
// native-basis operation list plus register metadata, decoded either from
// a high-level QuantumCircuit or directly from a GateTensor slot. Unlike
// a QuantumCircuit (arbitrary gate set, user-built), a Kernel is guaranteed
// ready for the engines: native gates only, qubit indices checked.
#pragma once

#include <string>
#include <vector>

#include "qgear/core/tensor.hpp"
#include "qgear/qiskit/circuit.hpp"

namespace qgear::core {

class Kernel {
 public:
  /// Builds a kernel from a circuit, transpiling to the native basis.
  static Kernel from_circuit(const qiskit::QuantumCircuit& qc);

  /// Decodes circuit `index` of a gate tensor into a kernel — the
  /// "decoding of transformed quantum circuits directly into CUDA
  /// kernels" step of Sec. 2.2.
  static Kernel from_tensor(const GateTensor& tensor, std::uint32_t index);

  const std::string& name() const { return name_; }
  unsigned num_qubits() const { return num_qubits_; }
  const std::vector<qiskit::Instruction>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// Number of entangling (two-qubit) operations.
  std::size_t num_2q_gates() const;

  /// Measured qubits in program order.
  std::vector<unsigned> measured_qubits() const;

  /// View as a circuit (for engines that consume circuits).
  const qiskit::QuantumCircuit& circuit() const { return circuit_; }

 private:
  explicit Kernel(qiskit::QuantumCircuit qc);

  qiskit::QuantumCircuit circuit_;
  std::string name_;
  unsigned num_qubits_;
  std::vector<qiskit::Instruction> ops_;
};

}  // namespace qgear::core
