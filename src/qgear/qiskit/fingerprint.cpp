#include "qgear/qiskit/fingerprint.hpp"

#include <bit>

namespace qgear::qiskit {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix_byte(std::uint64_t& h, std::uint8_t b) {
  h ^= b;
  h *= kFnvPrime;
}

// Little-endian byte order regardless of host endianness, so the
// fingerprint is a wire-stable value, not a process-local one.
inline void mix_u32(std::uint64_t& h, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) mix_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) mix_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

std::uint64_t circuit_fingerprint(const QuantumCircuit& qc) {
  std::uint64_t h = kFnvOffset;
  mix_u32(h, qc.num_qubits());
  for (const Instruction& inst : qc.instructions()) {
    mix_byte(h, static_cast<std::uint8_t>(inst.kind));
    mix_u32(h, static_cast<std::uint32_t>(inst.q0));
    mix_u32(h, static_cast<std::uint32_t>(inst.q1));
    mix_u64(h, std::bit_cast<std::uint64_t>(inst.param));
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return out;
}

}  // namespace qgear::qiskit
