#include "qgear/qiskit/gates.hpp"

#include <cmath>
#include <unordered_map>

#include "qgear/common/error.hpp"

namespace qgear::qiskit {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;

const GateInfo kInfos[] = {
    {"h", 1, 0, true},        // h
    {"x", 1, 0, true},        // x
    {"y", 1, 0, true},        // y
    {"z", 1, 0, true},        // z
    {"s", 1, 0, true},        // s
    {"sdg", 1, 0, true},      // sdg
    {"t", 1, 0, true},        // t
    {"tdg", 1, 0, true},      // tdg
    {"rx", 1, 1, true},       // rx
    {"ry", 1, 1, true},       // ry
    {"rz", 1, 1, true},       // rz
    {"p", 1, 1, true},        // p
    {"cx", 2, 0, true},       // cx
    {"cz", 2, 0, true},       // cz
    {"cp", 2, 1, true},       // cp (the paper's cr1)
    {"swap", 2, 0, true},     // swap
    {"measure", 1, 0, false}, // measure
    {"barrier", 0, 0, false}, // barrier
};
}  // namespace

const GateInfo& gate_info(GateKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  QGEAR_EXPECTS(idx < std::size(kInfos));
  return kInfos[idx];
}

GateKind gate_from_name(const std::string& name) {
  static const std::unordered_map<std::string, GateKind> table = [] {
    std::unordered_map<std::string, GateKind> t;
    for (std::size_t i = 0; i < std::size(kInfos); ++i) {
      t.emplace(kInfos[i].name, static_cast<GateKind>(i));
    }
    // cr1 is the paper's name for the controlled phase gate.
    t.emplace("cr1", GateKind::cp);
    return t;
  }();
  auto it = table.find(name);
  QGEAR_CHECK_ARG(it != table.end(), "unknown gate name: " + name);
  return it->second;
}

Mat2 gate_matrix_1q(GateKind kind, double param) {
  const cd i(0.0, 1.0);
  switch (kind) {
    case GateKind::h:
      return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
    case GateKind::x:
      return {0, 1, 1, 0};
    case GateKind::y:
      return {0, -i, i, 0};
    case GateKind::z:
      return {1, 0, 0, -1};
    case GateKind::s:
      return {1, 0, 0, i};
    case GateKind::sdg:
      return {1, 0, 0, -i};
    case GateKind::t:
      return {1, 0, 0, std::exp(i * (M_PI / 4))};
    case GateKind::tdg:
      return {1, 0, 0, std::exp(-i * (M_PI / 4))};
    case GateKind::rx: {
      const double c = std::cos(param / 2), s = std::sin(param / 2);
      return {cd(c, 0), cd(0, -s), cd(0, -s), cd(c, 0)};
    }
    case GateKind::ry: {
      const double c = std::cos(param / 2), s = std::sin(param / 2);
      return {cd(c, 0), cd(-s, 0), cd(s, 0), cd(c, 0)};
    }
    case GateKind::rz:
      return {std::exp(-i * (param / 2)), 0, 0, std::exp(i * (param / 2))};
    case GateKind::p:
      return {1, 0, 0, std::exp(i * param)};
    default:
      throw InvalidArgument("gate_matrix_1q: not a single-qubit unitary: " +
                            std::string(gate_info(kind).name));
  }
}

Mat2 controlled_target_matrix(GateKind kind, double param) {
  switch (kind) {
    case GateKind::cx:
      return gate_matrix_1q(GateKind::x, 0);
    case GateKind::cz:
      return gate_matrix_1q(GateKind::z, 0);
    case GateKind::cp:
      return gate_matrix_1q(GateKind::p, param);
    default:
      throw InvalidArgument("controlled_target_matrix: not a controlled gate");
  }
}

bool is_controlled_gate(GateKind kind) {
  return kind == GateKind::cx || kind == GateKind::cz || kind == GateKind::cp;
}

Mat4 gate_matrix_2q(GateKind kind, double param, unsigned q0, unsigned q1) {
  QGEAR_CHECK_ARG(q0 != q1,
                  "gate_matrix_2q: two-qubit gate needs distinct qubits");
  Mat4 u{};
  if (kind == GateKind::swap) {
    // out(hi, lo) = (in_lo, in_hi)
    for (unsigned ih = 0; ih < 2; ++ih) {
      for (unsigned il = 0; il < 2; ++il) {
        u[(2 * il + ih) * 4 + (2 * ih + il)] = cd(1, 0);
      }
    }
    return u;
  }
  QGEAR_CHECK_ARG(is_controlled_gate(kind),
                  "gate_matrix_2q: not a two-qubit unitary: " +
                      std::string(gate_info(kind).name));
  const Mat2 tm = controlled_target_matrix(kind, param);
  const bool control_is_hi = q0 > q1;
  for (unsigned cin = 0; cin < 2; ++cin) {
    for (unsigned tin = 0; tin < 2; ++tin) {
      const unsigned in_hi = control_is_hi ? cin : tin;
      const unsigned in_lo = control_is_hi ? tin : cin;
      const unsigned col = 2 * in_hi + in_lo;
      if (cin == 0) {
        u[col * 4 + col] = cd(1, 0);
        continue;
      }
      for (unsigned tout = 0; tout < 2; ++tout) {
        const unsigned out_hi = control_is_hi ? 1u : tout;
        const unsigned out_lo = control_is_hi ? tout : 1u;
        const unsigned row = 2 * out_hi + out_lo;
        u[row * 4 + col] = tm[tout * 2 + tin];
      }
    }
  }
  return u;
}

}  // namespace qgear::qiskit
