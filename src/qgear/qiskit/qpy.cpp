#include "qgear/qiskit/qpy.hpp"

#include <cstring>
#include <fstream>

#include "qgear/common/error.hpp"

namespace qgear::qiskit::qpy {

namespace {

constexpr char kMagic[4] = {'Q', 'P', 'Y', '1'};

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t pos = out.size();
  out.resize(pos + s.size());
  std::memcpy(out.data() + pos, s.data(), s.size());
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    QGEAR_CHECK_FORMAT(pos + sizeof(T) <= size, "qpy: truncated payload");
    T v;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_str() {
    const std::uint32_t len = get<std::uint32_t>();
    QGEAR_CHECK_FORMAT(pos + len <= size, "qpy: truncated string");
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> serialize(const std::vector<QuantumCircuit>& circs) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(circs.size()));
  for (const QuantumCircuit& qc : circs) {
    put_str(out, qc.name());
    put<std::uint32_t>(out, qc.num_qubits());
    put<std::uint64_t>(out, qc.size());
    for (const Instruction& inst : qc.instructions()) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(inst.kind));
      put<std::int32_t>(out, inst.q0);
      put<std::int32_t>(out, inst.q1);
      put<double>(out, inst.param);
    }
  }
  return out;
}

std::vector<QuantumCircuit> deserialize(const std::uint8_t* data,
                                        std::size_t size) {
  Cursor c{data, size};
  QGEAR_CHECK_FORMAT(size >= 4 && std::memcmp(data, kMagic, 4) == 0,
                     "qpy: bad magic");
  c.pos = 4;
  const std::uint32_t n = c.get<std::uint32_t>();
  // Each circuit record needs at least 16 bytes; reject counts the
  // payload cannot possibly hold before allocating anything.
  QGEAR_CHECK_FORMAT(static_cast<std::size_t>(n) <= size / 16 + 1,
                     "qpy: circuit count exceeds payload");
  std::vector<QuantumCircuit> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = c.get_str();
    const std::uint32_t nq = c.get<std::uint32_t>();
    QGEAR_CHECK_FORMAT(nq >= 1 && nq <= 64, "qpy: invalid qubit count");
    QuantumCircuit qc(nq, name);
    const std::uint64_t n_inst = c.get<std::uint64_t>();
    for (std::uint64_t k = 0; k < n_inst; ++k) {
      const std::uint8_t raw_kind = c.get<std::uint8_t>();
      QGEAR_CHECK_FORMAT(
          raw_kind <= static_cast<std::uint8_t>(GateKind::barrier),
          "qpy: invalid gate kind");
      Instruction inst;
      inst.kind = static_cast<GateKind>(raw_kind);
      inst.q0 = c.get<std::int32_t>();
      inst.q1 = c.get<std::int32_t>();
      inst.param = c.get<double>();
      try {
        qc.append(inst);
      } catch (const InvalidArgument& e) {
        throw FormatError(std::string("qpy: invalid instruction: ") +
                          e.what());
      }
    }
    out.push_back(std::move(qc));
  }
  QGEAR_CHECK_FORMAT(c.pos == size, "qpy: trailing bytes");
  return out;
}

void save(const std::vector<QuantumCircuit>& circs, const std::string& path) {
  const std::vector<std::uint8_t> buf = serialize(circs);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  QGEAR_CHECK_ARG(os.good(), "qpy: cannot write file: " + path);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
  QGEAR_CHECK_ARG(os.good(), "qpy: short write to " + path);
}

std::vector<QuantumCircuit> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QGEAR_CHECK_ARG(in.good(), "qpy: cannot open file: " + path);
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize(buf.data(), buf.size());
}

}  // namespace qgear::qiskit::qpy
