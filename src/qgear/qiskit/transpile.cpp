#include "qgear/qiskit/transpile.hpp"

#include <cmath>

#include "qgear/common/error.hpp"

namespace qgear::qiskit {

bool is_native_gate(GateKind kind) {
  switch (kind) {
    case GateKind::h:
    case GateKind::rx:
    case GateKind::ry:
    case GateKind::rz:
    case GateKind::cx:
    case GateKind::cp:
    case GateKind::measure:
    case GateKind::barrier:
      return true;
    default:
      return false;
  }
}

namespace {

// Emits the native-basis expansion of one instruction. All rewrites hold
// up to global phase (p(l) ~ rz(l), z ~ rz(pi), ...), which is irrelevant
// for state-vector simulation and sampling.
void emit_native(const Instruction& inst, QuantumCircuit& out) {
  const int q0 = inst.q0;
  const int q1 = inst.q1;
  switch (inst.kind) {
    case GateKind::h:
    case GateKind::rx:
    case GateKind::ry:
    case GateKind::rz:
    case GateKind::cx:
    case GateKind::cp:
    case GateKind::measure:
    case GateKind::barrier:
      out.append(inst);
      return;
    case GateKind::x:
      out.rx(M_PI, q0);
      return;
    case GateKind::y:
      out.ry(M_PI, q0);
      return;
    case GateKind::z:
      out.rz(M_PI, q0);
      return;
    case GateKind::s:
      out.rz(M_PI / 2, q0);
      return;
    case GateKind::sdg:
      out.rz(-M_PI / 2, q0);
      return;
    case GateKind::t:
      out.rz(M_PI / 4, q0);
      return;
    case GateKind::tdg:
      out.rz(-M_PI / 4, q0);
      return;
    case GateKind::p:
      out.rz(inst.param, q0);
      return;
    case GateKind::cz:
      out.h(q1);
      out.cx(q0, q1);
      out.h(q1);
      return;
    case GateKind::swap:
      out.cx(q0, q1);
      out.cx(q1, q0);
      out.cx(q0, q1);
      return;
  }
  throw LogicViolation("emit_native: unhandled gate kind");
}

// Two rotations about the same axis merge by angle addition.
bool is_mergeable_rotation(GateKind kind) {
  return kind == GateKind::rx || kind == GateKind::ry ||
         kind == GateKind::rz || kind == GateKind::p;
}

bool is_self_inverse(GateKind kind) {
  switch (kind) {
    case GateKind::h:
    case GateKind::x:
    case GateKind::y:
    case GateKind::z:
    case GateKind::cx:
    case GateKind::cz:
    case GateKind::swap:
      return true;
    default:
      return false;
  }
}

// One optimization sweep over the instruction list; returns true if it
// changed anything. Uses a per-qubit "last unitary touching this qubit"
// index so commuting-through is not attempted (correct but conservative).
bool sweep(std::vector<Instruction>& ops, const OptimizeOptions& opts,
           unsigned num_qubits) {
  bool changed = false;
  std::vector<Instruction> out;
  out.reserve(ops.size());
  // last[q] = index into `out` of the most recent instruction on qubit q,
  // or -1. An instruction can only fuse with its predecessor if that
  // predecessor is the latest instruction on *all* of its qubits.
  std::vector<std::ptrdiff_t> last(num_qubits, -1);

  auto touch = [&](const Instruction& inst, std::ptrdiff_t idx) {
    const GateInfo& info = gate_info(inst.kind);
    if (info.num_qubits >= 1) last[inst.q0] = idx;
    if (info.num_qubits == 2) last[inst.q1] = idx;
  };

  for (const Instruction& inst : ops) {
    if (inst.kind == GateKind::barrier) {
      out.push_back(inst);
      std::fill(last.begin(), last.end(),
                static_cast<std::ptrdiff_t>(out.size()) - 1);
      continue;
    }
    const GateInfo& info = gate_info(inst.kind);

    // Drop negligible rotations outright.
    if (opts.merge_rotations && is_mergeable_rotation(inst.kind) &&
        std::abs(inst.param) <= opts.angle_epsilon) {
      changed = true;
      continue;
    }

    std::ptrdiff_t prev_idx = info.num_qubits >= 1 ? last[inst.q0] : -1;
    if (info.num_qubits == 2 && last[inst.q1] != prev_idx) prev_idx = -1;

    if (prev_idx >= 0) {
      Instruction& prev = out[static_cast<std::size_t>(prev_idx)];
      const bool same_qubits = prev.q0 == inst.q0 && prev.q1 == inst.q1;
      // Rotation merging.
      if (opts.merge_rotations && same_qubits && prev.kind == inst.kind &&
          (is_mergeable_rotation(inst.kind) || inst.kind == GateKind::cp)) {
        // `prev` must still be the latest op on all its qubits — guaranteed
        // because prev_idx matched every qubit of inst and they coincide.
        prev.param += inst.param;
        changed = true;
        if (std::abs(prev.param) <= opts.angle_epsilon) {
          // Became identity: remove and invalidate indices referring to it.
          out.erase(out.begin() + prev_idx);
          for (auto& l : last) {
            if (l == prev_idx) l = -1;
            else if (l > prev_idx) --l;
          }
        }
        continue;
      }
      // Self-inverse cancellation (identical gate twice in a row). For cz
      // and swap the operand order is irrelevant.
      const bool symmetric =
          inst.kind == GateKind::cz || inst.kind == GateKind::swap;
      const bool qubits_match =
          same_qubits ||
          (symmetric && prev.q0 == inst.q1 && prev.q1 == inst.q0);
      if (opts.cancel_self_inverse && prev.kind == inst.kind &&
          qubits_match && is_self_inverse(inst.kind)) {
        out.erase(out.begin() + prev_idx);
        for (auto& l : last) {
          if (l == prev_idx) l = -1;
          else if (l > prev_idx) --l;
        }
        changed = true;
        continue;
      }
    }

    out.push_back(inst);
    if (info.unitary || inst.kind == GateKind::measure) {
      touch(inst, static_cast<std::ptrdiff_t>(out.size()) - 1);
    }
  }
  ops = std::move(out);
  return changed;
}

}  // namespace

QuantumCircuit to_native_basis(const QuantumCircuit& qc) {
  QuantumCircuit out(qc.num_qubits(), qc.name());
  for (const Instruction& inst : qc.instructions()) {
    emit_native(inst, out);
  }
  return out;
}

QuantumCircuit optimize(const QuantumCircuit& qc, OptimizeOptions opts) {
  QuantumCircuit out = qc;
  std::vector<Instruction> ops = out.instructions();
  // Iterate to fixpoint: each sweep only shrinks the list, so this
  // terminates in at most |ops| sweeps.
  while (sweep(ops, opts, qc.num_qubits())) {
  }
  QuantumCircuit rebuilt(qc.num_qubits(), qc.name());
  for (const Instruction& inst : ops) rebuilt.append(inst);
  return rebuilt;
}

QuantumCircuit transpile(const QuantumCircuit& qc, OptimizeOptions opts) {
  return optimize(to_native_basis(qc), opts);
}

}  // namespace qgear::qiskit
