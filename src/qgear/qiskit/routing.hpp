// Qubit routing for constrained connectivity.
//
// The paper's kernels "represent transpiled pulse-like gates constrained
// by native QPU specifications" (Sec. 2.2) — on hardware, two-qubit gates
// only exist between coupled qubits. This pass inserts SWAPs so every
// two-qubit gate acts on an adjacent pair of a coupling map, tracking the
// logical->physical layout (a SABRE-style greedy router with
// shortest-path swap chains).
#pragma once

#include <cstdint>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::qiskit {

/// Undirected coupling graph over physical qubits.
class CouplingMap {
 public:
  explicit CouplingMap(unsigned num_qubits);

  /// Common topologies.
  static CouplingMap linear(unsigned num_qubits);
  static CouplingMap ring(unsigned num_qubits);
  static CouplingMap grid(unsigned rows, unsigned cols);
  static CouplingMap full(unsigned num_qubits);

  unsigned num_qubits() const { return num_qubits_; }
  void add_edge(unsigned a, unsigned b);
  bool connected(unsigned a, unsigned b) const;
  const std::vector<unsigned>& neighbors(unsigned q) const;

  /// BFS shortest path between two physical qubits (inclusive endpoints).
  /// Throws if the graph is disconnected between them.
  std::vector<unsigned> shortest_path(unsigned from, unsigned to) const;

 private:
  unsigned num_qubits_;
  std::vector<std::vector<unsigned>> adj_;
};

/// Result of routing: the physical circuit plus the final layout.
struct RoutingResult {
  QuantumCircuit circuit;             ///< physical-qubit circuit
  std::vector<unsigned> final_layout; ///< logical qubit -> physical qubit
  std::size_t swaps_inserted = 0;
};

/// Routes `qc` onto `map`. The initial layout is identity; measurements
/// follow their logical qubit. The routed circuit is equivalent to the
/// input up to the final layout permutation.
RoutingResult route(const QuantumCircuit& qc, const CouplingMap& map);

}  // namespace qgear::qiskit
