// Transpiler passes.
//
// Q-Gear's tensor encoding works over the paper's native gate set
// M = (h, ry, rz, cx, measure) extended with the gates its own workloads
// need (rx for random unitaries, cp/cr1 for QFT). `to_native_basis`
// rewrites any circuit into that set, up to global phase; `optimize`
// performs the standard peephole cleanups (rotation merging, self-inverse
// cancellation, zero-angle elimination).
#pragma once

#include "qgear/qiskit/circuit.hpp"

namespace qgear::qiskit {

/// Gates the Q-Gear tensor encoding accepts directly (Sec. 2.1 / Eq. 8,
/// extended as described above).
bool is_native_gate(GateKind kind);

/// Rewrites every non-native gate into native ones. The result implements
/// the same unitary up to a global phase.
QuantumCircuit to_native_basis(const QuantumCircuit& qc);

/// Options for the peephole optimizer.
struct OptimizeOptions {
  bool merge_rotations = true;      ///< rz(a)rz(b) -> rz(a+b), etc.
  bool cancel_self_inverse = true;  ///< h h -> id, cx cx -> id, ...
  double angle_epsilon = 1e-12;     ///< rotations below this are dropped
};

/// Runs peephole optimization to a fixpoint. Preserves the unitary exactly
/// (rotation merging is exact; only |angle| <= angle_epsilon is dropped).
QuantumCircuit optimize(const QuantumCircuit& qc, OptimizeOptions opts = {});

/// Convenience: to_native_basis followed by optimize.
QuantumCircuit transpile(const QuantumCircuit& qc, OptimizeOptions opts = {});

}  // namespace qgear::qiskit
