#include "qgear/qiskit/routing.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "qgear/common/error.hpp"

namespace qgear::qiskit {

CouplingMap::CouplingMap(unsigned num_qubits)
    : num_qubits_(num_qubits), adj_(num_qubits) {
  QGEAR_CHECK_ARG(num_qubits >= 1, "coupling: need at least one qubit");
}

CouplingMap CouplingMap::linear(unsigned num_qubits) {
  CouplingMap map(num_qubits);
  for (unsigned q = 0; q + 1 < num_qubits; ++q) map.add_edge(q, q + 1);
  return map;
}

CouplingMap CouplingMap::ring(unsigned num_qubits) {
  QGEAR_CHECK_ARG(num_qubits >= 3, "coupling: ring needs >= 3 qubits");
  CouplingMap map = linear(num_qubits);
  map.add_edge(num_qubits - 1, 0);
  return map;
}

CouplingMap CouplingMap::grid(unsigned rows, unsigned cols) {
  CouplingMap map(rows * cols);
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      const unsigned q = r * cols + c;
      if (c + 1 < cols) map.add_edge(q, q + 1);
      if (r + 1 < rows) map.add_edge(q, q + cols);
    }
  }
  return map;
}

CouplingMap CouplingMap::full(unsigned num_qubits) {
  CouplingMap map(num_qubits);
  for (unsigned a = 0; a < num_qubits; ++a) {
    for (unsigned b = a + 1; b < num_qubits; ++b) map.add_edge(a, b);
  }
  return map;
}

void CouplingMap::add_edge(unsigned a, unsigned b) {
  QGEAR_CHECK_ARG(a < num_qubits_ && b < num_qubits_ && a != b,
                  "coupling: invalid edge");
  if (!connected(a, b)) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
}

bool CouplingMap::connected(unsigned a, unsigned b) const {
  QGEAR_CHECK_ARG(a < num_qubits_ && b < num_qubits_, "coupling: bad qubit");
  return std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end();
}

const std::vector<unsigned>& CouplingMap::neighbors(unsigned q) const {
  QGEAR_CHECK_ARG(q < num_qubits_, "coupling: bad qubit");
  return adj_[q];
}

std::vector<unsigned> CouplingMap::shortest_path(unsigned from,
                                                 unsigned to) const {
  QGEAR_CHECK_ARG(from < num_qubits_ && to < num_qubits_,
                  "coupling: bad qubit");
  if (from == to) return {from};
  std::vector<int> parent(num_qubits_, -1);
  std::deque<unsigned> queue = {from};
  parent[from] = static_cast<int>(from);
  while (!queue.empty()) {
    const unsigned cur = queue.front();
    queue.pop_front();
    for (unsigned next : adj_[cur]) {
      if (parent[next] != -1) continue;
      parent[next] = static_cast<int>(cur);
      if (next == to) {
        std::vector<unsigned> path = {to};
        unsigned walk = to;
        while (walk != from) {
          walk = static_cast<unsigned>(parent[walk]);
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  throw InvalidArgument("coupling: qubits are not connected");
}

RoutingResult route(const QuantumCircuit& qc, const CouplingMap& map) {
  QGEAR_CHECK_ARG(map.num_qubits() >= qc.num_qubits(),
                  "routing: coupling map smaller than circuit");

  // layout[logical] = physical; inverse[physical] = logical (or -1).
  std::vector<unsigned> layout(qc.num_qubits());
  std::iota(layout.begin(), layout.end(), 0u);

  RoutingResult result{QuantumCircuit(map.num_qubits(), qc.name() + "_routed"),
                       {},
                       0};
  QuantumCircuit& out = result.circuit;

  auto swap_physical = [&](unsigned pa, unsigned pb) {
    out.swap(static_cast<int>(pa), static_cast<int>(pb));
    ++result.swaps_inserted;
    // Update the logical->physical layout.
    for (unsigned& p : layout) {
      if (p == pa) {
        p = pb;
      } else if (p == pb) {
        p = pa;
      }
    }
  };

  for (const Instruction& inst : qc.instructions()) {
    if (inst.kind == GateKind::barrier) {
      out.barrier();
      continue;
    }
    const GateInfo& info = gate_info(inst.kind);
    if (info.num_qubits <= 1) {
      Instruction moved = inst;
      moved.q0 = static_cast<int>(layout[inst.q0]);
      out.append(moved);
      continue;
    }
    // Two-qubit gate: walk the operands together along the shortest path.
    unsigned pa = layout[inst.q0];
    unsigned pb = layout[inst.q1];
    if (!map.connected(pa, pb)) {
      const std::vector<unsigned> path = map.shortest_path(pa, pb);
      QGEAR_ENSURES(path.size() >= 3);
      // Swap the first operand down the path until adjacent to the second.
      for (std::size_t step = 0; step + 2 < path.size(); ++step) {
        swap_physical(path[step], path[step + 1]);
      }
      pa = layout[inst.q0];
      pb = layout[inst.q1];
      QGEAR_ENSURES(map.connected(pa, pb));
    }
    Instruction moved = inst;
    moved.q0 = static_cast<int>(pa);
    moved.q1 = static_cast<int>(pb);
    out.append(moved);
  }
  result.final_layout = layout;
  return result;
}

}  // namespace qgear::qiskit
