#include "qgear/qiskit/circuit.hpp"

#include <algorithm>
#include <cstdio>

#include "qgear/common/error.hpp"

namespace qgear::qiskit {

QuantumCircuit::QuantumCircuit(unsigned num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  QGEAR_CHECK_ARG(num_qubits >= 1, "circuit needs at least one qubit");
  QGEAR_CHECK_ARG(num_qubits <= 64, "circuits above 64 qubits unsupported");
}

void QuantumCircuit::check_qubit(int q) const {
  QGEAR_CHECK_ARG(q >= 0 && static_cast<unsigned>(q) < num_qubits_,
                  "qubit index out of range");
}

QuantumCircuit& QuantumCircuit::add1(GateKind kind, int q) {
  check_qubit(q);
  ops_.push_back({kind, q, -1, 0.0});
  return *this;
}

QuantumCircuit& QuantumCircuit::add1p(GateKind kind, double param, int q) {
  check_qubit(q);
  ops_.push_back({kind, q, -1, param});
  return *this;
}

QuantumCircuit& QuantumCircuit::add2(GateKind kind, int q0, int q1) {
  check_qubit(q0);
  check_qubit(q1);
  QGEAR_CHECK_ARG(q0 != q1, "two-qubit gate needs distinct qubits");
  ops_.push_back({kind, q0, q1, 0.0});
  return *this;
}

QuantumCircuit& QuantumCircuit::cp(double lambda, int c, int t) {
  check_qubit(c);
  check_qubit(t);
  QGEAR_CHECK_ARG(c != t, "two-qubit gate needs distinct qubits");
  ops_.push_back({GateKind::cp, c, t, lambda});
  return *this;
}

QuantumCircuit& QuantumCircuit::measure_all() {
  for (unsigned q = 0; q < num_qubits_; ++q) measure(static_cast<int>(q));
  return *this;
}

QuantumCircuit& QuantumCircuit::barrier() {
  ops_.push_back({GateKind::barrier, -1, -1, 0.0});
  return *this;
}

QuantumCircuit& QuantumCircuit::append(const Instruction& inst) {
  const GateInfo& info = gate_info(inst.kind);
  if (info.num_qubits >= 1) check_qubit(inst.q0);
  if (info.num_qubits == 2) {
    check_qubit(inst.q1);
    QGEAR_CHECK_ARG(inst.q0 != inst.q1,
                    "two-qubit gate needs distinct qubits");
  }
  ops_.push_back(inst);
  return *this;
}

QuantumCircuit& QuantumCircuit::compose(const QuantumCircuit& other) {
  QGEAR_CHECK_ARG(other.num_qubits_ == num_qubits_,
                  "compose: qubit counts differ");
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  return *this;
}

namespace {
Instruction invert(const Instruction& inst) {
  Instruction out = inst;
  switch (inst.kind) {
    case GateKind::h:
    case GateKind::x:
    case GateKind::y:
    case GateKind::z:
    case GateKind::cx:
    case GateKind::cz:
    case GateKind::swap:
    case GateKind::barrier:
      return out;  // self-inverse
    case GateKind::s:
      out.kind = GateKind::sdg;
      return out;
    case GateKind::sdg:
      out.kind = GateKind::s;
      return out;
    case GateKind::t:
      out.kind = GateKind::tdg;
      return out;
    case GateKind::tdg:
      out.kind = GateKind::t;
      return out;
    case GateKind::rx:
    case GateKind::ry:
    case GateKind::rz:
    case GateKind::p:
    case GateKind::cp:
      out.param = -inst.param;
      return out;
    case GateKind::measure:
      throw InvalidArgument("inverse: circuit contains measurements");
  }
  throw LogicViolation("invert: unhandled gate kind");
}
}  // namespace

QuantumCircuit QuantumCircuit::inverse() const {
  QuantumCircuit out(num_qubits_, name_ + "_dg");
  out.ops_.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    out.ops_.push_back(invert(*it));
  }
  return out;
}

unsigned QuantumCircuit::depth() const {
  std::vector<unsigned> level(num_qubits_, 0);
  for (const Instruction& inst : ops_) {
    if (inst.kind == GateKind::barrier) {
      const unsigned top = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), top);
      continue;
    }
    const GateInfo& info = gate_info(inst.kind);
    unsigned start = level[inst.q0];
    if (info.num_qubits == 2) start = std::max(start, level[inst.q1]);
    level[inst.q0] = start + 1;
    if (info.num_qubits == 2) level[inst.q1] = start + 1;
  }
  return *std::max_element(level.begin(), level.end());
}

std::map<std::string, std::size_t> QuantumCircuit::count_ops() const {
  std::map<std::string, std::size_t> counts;
  for (const Instruction& inst : ops_) {
    ++counts[gate_info(inst.kind).name];
  }
  return counts;
}

std::size_t QuantumCircuit::num_2q_gates() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const Instruction& inst) {
        return gate_info(inst.kind).num_qubits == 2;
      }));
}

std::string QuantumCircuit::to_string(std::size_t max_lines) const {
  std::string out = name_ + " (" + std::to_string(num_qubits_) +
                    " qubits, " + std::to_string(ops_.size()) + " ops)\n";
  std::size_t lines = 0;
  for (const Instruction& inst : ops_) {
    if (max_lines > 0 && lines >= max_lines) {
      out += "  ... " + std::to_string(ops_.size() - lines) +
             " more instructions\n";
      break;
    }
    const GateInfo& info = gate_info(inst.kind);
    out += "  ";
    out += info.name;
    if (info.num_params == 1) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "(%.4f)", inst.param);
      out += buf;
    }
    if (info.num_qubits >= 1) out += " q" + std::to_string(inst.q0);
    if (info.num_qubits == 2) out += ", q" + std::to_string(inst.q1);
    out += "\n";
    ++lines;
  }
  return out;
}

std::size_t QuantumCircuit::num_measurements() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const Instruction& inst) {
        return inst.kind == GateKind::measure;
      }));
}

}  // namespace qgear::qiskit
