#include "qgear/qiskit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "qgear/common/error.hpp"
#include "qgear/common/strings.hpp"

namespace qgear::qiskit::qasm {

namespace {

const char* qasm_gate_name(GateKind kind) {
  // OpenQASM 2 standard-library names; cp is cu1 there.
  switch (kind) {
    case GateKind::cp: return "cu1";
    default: return gate_info(kind).name;
  }
}

// ---- angle expression parser ------------------------------------------
// Supports: float literals, `pi`, unary minus, * / + - with the usual
// precedence, and parentheses. Enough for Qiskit-exported QASM.
class AngleParser {
 public:
  explicit AngleParser(const std::string& text) : text_(text) {}

  double parse() {
    const double v = expr();
    skip_ws();
    QGEAR_CHECK_FORMAT(pos_ == text_.size(),
                       "qasm: trailing characters in angle: " + text_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double v = term();
    for (;;) {
      if (eat('+')) {
        v += term();
      } else if (eat('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      if (eat('*')) {
        v *= factor();
      } else if (eat('/')) {
        const double d = factor();
        QGEAR_CHECK_FORMAT(d != 0.0, "qasm: division by zero in angle");
        v /= d;
      } else {
        return v;
      }
    }
  }

  double factor() {
    skip_ws();
    if (eat('-')) return -factor();
    if (eat('+')) return factor();
    if (eat('(')) {
      const double v = expr();
      QGEAR_CHECK_FORMAT(eat(')'), "qasm: missing ')' in angle");
      return v;
    }
    skip_ws();
    QGEAR_CHECK_FORMAT(pos_ < text_.size(), "qasm: empty angle factor");
    if (std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      std::string word;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        word += text_[pos_++];
      }
      QGEAR_CHECK_FORMAT(word == "pi", "qasm: unknown symbol: " + word);
      return M_PI;
    }
    std::size_t consumed = 0;
    double v = 0;
    try {
      v = std::stod(text_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      throw FormatError("qasm: bad numeric literal in angle: " + text_);
    }
    pos_ += consumed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- statement tokenizing ----------------------------------------------

struct Statement {
  std::string gate;     // mnemonic
  std::string params;   // inside (...) if present
  std::vector<std::string> operands;
};

// "cu1(pi/4) q[0],q[2]" -> {gate, params, operands}.
Statement parse_statement(const std::string& stmt) {
  Statement out;
  std::size_t i = 0;
  while (i < stmt.size() &&
         (std::isalnum(static_cast<unsigned char>(stmt[i])) ||
          stmt[i] == '_')) {
    out.gate += stmt[i++];
  }
  QGEAR_CHECK_FORMAT(!out.gate.empty(), "qasm: empty statement");
  while (i < stmt.size() && std::isspace(static_cast<unsigned char>(stmt[i])))
    ++i;
  if (i < stmt.size() && stmt[i] == '(') {
    int depth = 1;
    ++i;
    while (i < stmt.size() && depth > 0) {
      if (stmt[i] == '(') ++depth;
      if (stmt[i] == ')') {
        --depth;
        if (depth == 0) break;
      }
      out.params += stmt[i++];
    }
    QGEAR_CHECK_FORMAT(depth == 0, "qasm: unbalanced parentheses");
    ++i;  // closing ')'
  }
  std::string rest = stmt.substr(std::min(i, stmt.size()));
  for (std::string& op : split(rest, ',')) {
    // Trim whitespace.
    std::size_t b = op.find_first_not_of(" \t");
    std::size_t e = op.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out.operands.push_back(op.substr(b, e - b + 1));
  }
  return out;
}

// "q[3]" -> 3 (register name must match `reg`).
int parse_operand(const std::string& op, const std::string& reg) {
  const std::size_t lb = op.find('[');
  const std::size_t rb = op.find(']');
  QGEAR_CHECK_FORMAT(lb != std::string::npos && rb != std::string::npos &&
                         rb > lb + 0,
                     "qasm: malformed operand: " + op);
  QGEAR_CHECK_FORMAT(op.substr(0, lb) == reg,
                     "qasm: unknown register in operand: " + op);
  const std::string idx = op.substr(lb + 1, rb - lb - 1);
  try {
    return std::stoi(idx);
  } catch (const std::exception&) {
    throw FormatError("qasm: bad index in operand: " + op);
  }
}

}  // namespace

std::string to_qasm(const QuantumCircuit& qc) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "// " << qc.name() << "\n";
  os << "qreg q[" << qc.num_qubits() << "];\n";
  os << "creg c[" << qc.num_qubits() << "];\n";
  for (const Instruction& inst : qc.instructions()) {
    if (inst.kind == GateKind::barrier) {
      os << "barrier q;\n";
      continue;
    }
    if (inst.kind == GateKind::measure) {
      os << "measure q[" << inst.q0 << "] -> c[" << inst.q0 << "];\n";
      continue;
    }
    const GateInfo& info = gate_info(inst.kind);
    os << qasm_gate_name(inst.kind);
    if (info.num_params == 1) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "(%.17g)", inst.param);
      os << buf;
    }
    os << " q[" << inst.q0 << "]";
    if (info.num_qubits == 2) os << ",q[" << inst.q1 << "]";
    os << ";\n";
  }
  return os.str();
}

QuantumCircuit from_qasm(const std::string& text) {
  // Strip comments, split on ';'.
  std::string clean;
  clean.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    }
    if (i < text.size()) clean += text[i];
  }

  std::vector<std::string> stmts;
  for (std::string& raw : split(clean, ';')) {
    std::string s;
    for (char c : raw) {
      if (c == '\n' || c == '\r' || c == '\t') c = ' ';
      s += c;
    }
    const std::size_t b = s.find_first_not_of(' ');
    if (b == std::string::npos) continue;
    const std::size_t e = s.find_last_not_of(' ');
    stmts.push_back(s.substr(b, e - b + 1));
  }
  QGEAR_CHECK_FORMAT(!stmts.empty() && starts_with(stmts[0], "OPENQASM"),
                     "qasm: missing OPENQASM header");

  std::string qreg_name;
  unsigned num_qubits = 0;
  std::vector<Instruction> pending;

  for (std::size_t i = 1; i < stmts.size(); ++i) {
    const std::string& stmt = stmts[i];
    if (starts_with(stmt, "include")) continue;
    if (starts_with(stmt, "creg")) continue;
    if (starts_with(stmt, "qreg")) {
      QGEAR_CHECK_FORMAT(qreg_name.empty(),
                         "qasm: multiple quantum registers unsupported");
      const std::size_t lb = stmt.find('[');
      const std::size_t rb = stmt.find(']');
      QGEAR_CHECK_FORMAT(lb != std::string::npos && rb != std::string::npos,
                         "qasm: malformed qreg");
      std::string name = stmt.substr(4, lb - 4);
      // Trim.
      const std::size_t b = name.find_first_not_of(' ');
      const std::size_t e = name.find_last_not_of(' ');
      QGEAR_CHECK_FORMAT(b != std::string::npos, "qasm: unnamed qreg");
      qreg_name = name.substr(b, e - b + 1);
      try {
        num_qubits = static_cast<unsigned>(
            std::stoul(stmt.substr(lb + 1, rb - lb - 1)));
      } catch (const std::exception&) {
        throw FormatError("qasm: bad qreg size");
      }
      QGEAR_CHECK_FORMAT(num_qubits >= 1 && num_qubits <= 64,
                         "qasm: qreg size out of range");
      continue;
    }
    QGEAR_CHECK_FORMAT(!qreg_name.empty(),
                       "qasm: gate before qreg declaration");

    if (starts_with(stmt, "measure")) {
      // "measure q[i] -> c[j]".
      const std::size_t arrow = stmt.find("->");
      QGEAR_CHECK_FORMAT(arrow != std::string::npos,
                         "qasm: malformed measure");
      std::string src = stmt.substr(7, arrow - 7);
      const std::size_t b = src.find_first_not_of(' ');
      const std::size_t e = src.find_last_not_of(' ');
      QGEAR_CHECK_FORMAT(b != std::string::npos, "qasm: malformed measure");
      const int q = parse_operand(src.substr(b, e - b + 1), qreg_name);
      pending.push_back({GateKind::measure, q, -1, 0.0});
      continue;
    }
    if (starts_with(stmt, "barrier")) {
      pending.push_back({GateKind::barrier, -1, -1, 0.0});
      continue;
    }

    const Statement parsed = parse_statement(stmt);
    GateKind kind;
    if (parsed.gate == "cu1") {
      kind = GateKind::cp;
    } else {
      try {
        kind = gate_from_name(parsed.gate);
      } catch (const InvalidArgument& e) {
        throw FormatError(std::string("qasm: ") + e.what());
      }
    }
    const GateInfo& info = gate_info(kind);
    QGEAR_CHECK_FORMAT(parsed.operands.size() == info.num_qubits,
                       "qasm: wrong operand count for " + parsed.gate);
    Instruction inst;
    inst.kind = kind;
    inst.q0 = parse_operand(parsed.operands[0], qreg_name);
    if (info.num_qubits == 2) {
      inst.q1 = parse_operand(parsed.operands[1], qreg_name);
    }
    if (info.num_params == 1) {
      QGEAR_CHECK_FORMAT(!parsed.params.empty(),
                         "qasm: missing angle for " + parsed.gate);
      inst.param = AngleParser(parsed.params).parse();
    } else {
      QGEAR_CHECK_FORMAT(parsed.params.empty(),
                         "qasm: unexpected parameter for " + parsed.gate);
    }
    pending.push_back(inst);
  }

  QGEAR_CHECK_FORMAT(num_qubits >= 1, "qasm: no qreg declared");
  QuantumCircuit qc(num_qubits, "qasm_import");
  for (const Instruction& inst : pending) {
    try {
      qc.append(inst);
    } catch (const InvalidArgument& e) {
      throw FormatError(std::string("qasm: ") + e.what());
    }
  }
  return qc;
}

void save(const QuantumCircuit& qc, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  QGEAR_CHECK_ARG(os.good(), "qasm: cannot write " + path);
  os << to_qasm(qc);
  QGEAR_CHECK_ARG(os.good(), "qasm: short write to " + path);
}

QuantumCircuit load(const std::string& path) {
  std::ifstream in(path);
  QGEAR_CHECK_ARG(in.good(), "qasm: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return from_qasm(ss.str());
}

}  // namespace qgear::qiskit::qasm
