// Stable content hash of a circuit — the key for compilation caches.
//
// The fingerprint covers exactly what compilation consumes: the qubit
// count and the ordered instruction stream (gate kind, operand qubits,
// exact parameter bits). Circuit name and construction history are
// excluded, so two circuits that compile identically fingerprint
// identically. The hash (FNV-1a 64 over an explicit little-endian byte
// stream) is deterministic across runs, platforms, and compilers, which
// makes fingerprints safe to persist or exchange between processes.
//
// Parameters are hashed by their IEEE-754 bit pattern: any perturbation
// of an angle — down to the last ulp, or the sign of zero — produces a
// different fingerprint. Semantically equal but structurally different
// circuits (e.g. rz(a)·rz(b) vs rz(a+b)) hash differently by design;
// canonicalize via qiskit::transpile first if that matters.
#pragma once

#include <cstdint>
#include <string>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::qiskit {

/// 64-bit content hash of `qc` (qubit count + ordered instructions).
std::uint64_t circuit_fingerprint(const QuantumCircuit& qc);

/// Fixed-width lowercase hex rendering ("8f3a...", 16 chars).
std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace qgear::qiskit
