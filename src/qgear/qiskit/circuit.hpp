// QuantumCircuit: the high-level, Qiskit-like circuit IR that Q-Gear
// consumes. Circuits are ordered gate lists over a fixed qubit register,
// built through a fluent gate API.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qgear/common/error.hpp"
#include "qgear/qiskit/gates.hpp"

namespace qgear::qiskit {

/// One gate application. For two-qubit gates q0 is the control (or first
/// swap operand) and q1 the target; single-qubit gates use q0 only
/// (q1 == -1). `param` is the rotation angle where applicable.
struct Instruction {
  GateKind kind = GateKind::h;
  int q0 = 0;
  int q1 = -1;
  double param = 0.0;

  bool operator==(const Instruction&) const = default;
};

class QuantumCircuit {
 public:
  explicit QuantumCircuit(unsigned num_qubits, std::string name = "circuit");

  unsigned num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Instruction>& instructions() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  // ---- gate builders -------------------------------------------------
  QuantumCircuit& h(int q) { return add1(GateKind::h, q); }
  QuantumCircuit& x(int q) { return add1(GateKind::x, q); }
  QuantumCircuit& y(int q) { return add1(GateKind::y, q); }
  QuantumCircuit& z(int q) { return add1(GateKind::z, q); }
  QuantumCircuit& s(int q) { return add1(GateKind::s, q); }
  QuantumCircuit& sdg(int q) { return add1(GateKind::sdg, q); }
  QuantumCircuit& t(int q) { return add1(GateKind::t, q); }
  QuantumCircuit& tdg(int q) { return add1(GateKind::tdg, q); }
  QuantumCircuit& rx(double theta, int q) { return add1p(GateKind::rx, theta, q); }
  QuantumCircuit& ry(double theta, int q) { return add1p(GateKind::ry, theta, q); }
  QuantumCircuit& rz(double theta, int q) { return add1p(GateKind::rz, theta, q); }
  QuantumCircuit& p(double lambda, int q) { return add1p(GateKind::p, lambda, q); }
  QuantumCircuit& cx(int c, int t) { return add2(GateKind::cx, c, t); }
  QuantumCircuit& cz(int c, int t) { return add2(GateKind::cz, c, t); }
  QuantumCircuit& cp(double lambda, int c, int t);
  /// Alias matching the paper's QFT kernel naming (Appendix D.2).
  QuantumCircuit& cr1(double lambda, int c, int t) { return cp(lambda, c, t); }
  QuantumCircuit& swap(int a, int b) { return add2(GateKind::swap, a, b); }
  QuantumCircuit& measure(int q) { return add1(GateKind::measure, q); }
  QuantumCircuit& measure_all();
  QuantumCircuit& barrier();

  /// Appends a pre-built instruction (validated).
  QuantumCircuit& append(const Instruction& inst);

  /// Appends every instruction of `other` (qubit counts must match).
  QuantumCircuit& compose(const QuantumCircuit& other);

  /// Appends the adjoint of this circuit's unitary part (reversed order,
  /// inverted gates). Throws if the circuit contains measurements.
  QuantumCircuit inverse() const;

  // ---- analysis --------------------------------------------------------
  /// Circuit depth: longest chain of instructions over shared qubits
  /// (barriers synchronize all qubits, measurements count).
  unsigned depth() const;

  /// Gate-count histogram by mnemonic.
  std::map<std::string, std::size_t> count_ops() const;

  /// Number of two-qubit (entangling) gates.
  std::size_t num_2q_gates() const;

  /// Number of measure instructions.
  std::size_t num_measurements() const;

  /// Human-readable listing: one instruction per line, e.g.
  /// "ry(0.5000) q2" / "cx q0, q3". `max_lines` truncates long circuits
  /// with an ellipsis summary (0 = unlimited).
  std::string to_string(std::size_t max_lines = 0) const;

  bool operator==(const QuantumCircuit&) const = default;

 private:
  QuantumCircuit& add1(GateKind kind, int q);
  QuantumCircuit& add1p(GateKind kind, double param, int q);
  QuantumCircuit& add2(GateKind kind, int q0, int q1);
  void check_qubit(int q) const;

  unsigned num_qubits_;
  std::string name_;
  std::vector<Instruction> ops_;
};

}  // namespace qgear::qiskit
