// Gate library for the Qiskit-like circuit front-end.
//
// Qubit convention is little-endian (qubit k is bit k of the amplitude
// index), matching Qiskit. Single-qubit gates have an exact 2x2 unitary;
// two-qubit gates are either controlled-1q (cx, cz, cp) or swap.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <string>

namespace qgear::qiskit {

using cd = std::complex<double>;

enum class GateKind : std::uint8_t {
  h = 0,
  x,
  y,
  z,
  s,
  sdg,
  t,
  tdg,
  rx,
  ry,
  rz,
  p,     // phase gate; the paper's cr1 is its controlled version (cp)
  cx,
  cz,
  cp,
  swap,
  measure,
  barrier,
};

/// Static metadata for a gate kind.
struct GateInfo {
  const char* name;       ///< OpenQASM-style mnemonic
  unsigned num_qubits;    ///< 1 or 2 (0 for barrier)
  unsigned num_params;    ///< 0 or 1
  bool unitary;           ///< false for measure/barrier
};

const GateInfo& gate_info(GateKind kind);

/// Parses a mnemonic ("cx", "ry", ...). Throws InvalidArgument if unknown.
GateKind gate_from_name(const std::string& name);

/// Row-major 2x2 unitary {u00, u01, u10, u11}.
using Mat2 = std::array<cd, 4>;

/// The 2x2 matrix of a single-qubit gate (param ignored for fixed gates).
Mat2 gate_matrix_1q(GateKind kind, double param);

/// For controlled two-qubit gates (cx, cz, cp): the 2x2 applied to the
/// target when the control is |1>. Throws for swap.
Mat2 controlled_target_matrix(GateKind kind, double param);

/// Row-major 4x4 unitary {u[row*4+col]}.
using Mat4 = std::array<cd, 16>;

/// The 4x4 matrix of a two-qubit gate over the ordered basis index
/// 2*bit(q_hi) + bit(q_lo), where q_hi = max(q0, q1) and q_lo =
/// min(q0, q1). `q0` is the control (or first swap operand), `q1` the
/// target — the same operand convention as Instruction. Shared by the
/// decision-diagram and MPS engines, which both need the gate as an
/// explicit position-ordered matrix.
Mat4 gate_matrix_2q(GateKind kind, double param, unsigned q0, unsigned q1);

/// True for cx / cz / cp.
bool is_controlled_gate(GateKind kind);

}  // namespace qgear::qiskit
