// OpenQASM 2.0 interchange for the supported gate set.
//
// Qiskit users exchange circuits as QASM at least as often as QPY; a
// release-quality Q-Gear needs both. The exporter emits standard-header
// QASM 2.0; the importer accepts the gate set this library implements
// (including cu1, OpenQASM's name for the paper's cr1/cp), with
// parenthesized constant-expression angles such as `pi/4` or `3*pi/2`.
#pragma once

#include <string>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::qiskit::qasm {

/// Serializes the circuit as OpenQASM 2.0 text.
std::string to_qasm(const QuantumCircuit& qc);

/// Parses OpenQASM 2.0 text. Throws FormatError on anything outside the
/// supported subset (one quantum register, one classical register,
/// gates from this library's set).
QuantumCircuit from_qasm(const std::string& text);

/// File convenience wrappers.
void save(const QuantumCircuit& qc, const std::string& path);
QuantumCircuit load(const std::string& path);

}  // namespace qgear::qiskit::qasm
