// QPY-like binary circuit serialization (stands in for Qiskit's QPY files,
// which the paper's encoder reads — Sec. 2.1).
//
// Layout (little-endian):
//   magic "QPY1" | u32 n_circuits
//   circuit := str name | u32 num_qubits | u64 n_instructions
//              { u8 kind | i32 q0 | i32 q1 | f64 param }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::qiskit::qpy {

/// Serializes circuits to a byte buffer.
std::vector<std::uint8_t> serialize(const std::vector<QuantumCircuit>& circs);

/// Parses a byte buffer (throws FormatError on malformed input).
std::vector<QuantumCircuit> deserialize(const std::uint8_t* data,
                                        std::size_t size);

/// File convenience wrappers.
void save(const std::vector<QuantumCircuit>& circs, const std::string& path);
std::vector<QuantumCircuit> load(const std::string& path);

}  // namespace qgear::qiskit::qpy
