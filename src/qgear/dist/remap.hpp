// Communication-avoiding global↔local qubit remapping for the distributed
// engine — the cuQuantum index-bit-swap analogue.
//
// The baseline schedule pays one pairwise slab exchange per non-diagonal
// gate on a global qubit (full slab for 1q unitaries, half for cx with a
// local control). A slab *swap* — exchanging index bit l (local) with
// index bit g (global) — costs only half a slab, after which every gate
// on the swapped-in qubit runs communication-free. The planner scans the
// instruction stream with a lookahead window, swaps a global qubit into a
// local slot whenever the upcoming exchange bytes it would trigger exceed
// the swap cost, and rewrites the stream into physical-qubit segments a
// rank can execute under the local fusion planner. Logical swap gates are
// elided entirely: a swap is just a relabeling of the live
// logical→physical map, costing zero communication and zero sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::dist {

struct RemapOptions {
  /// Instructions scanned ahead of an exchange-triggering gate when
  /// weighing a swap against the residual per-gate schedule.
  unsigned lookahead = 96;
  /// Absorb logical swap gates into the qubit map (zero cost) instead of
  /// executing them.
  bool elide_swaps = true;
  /// Widest index-bit-swap batch one segment boundary may carry. A batch
  /// of k swaps executes as one exchange of slab*(2^k-1)/2^k bytes per
  /// rank (2^k-1 rounds), so the marginal comm cost of the i-th swap is
  /// 2^(1-i) half-slab units; the cap keeps the slab groups coarse enough
  /// to chunk. 1 = one swap at a time (the pre-batching schedule).
  unsigned max_batch = 4;
};

/// One slab shuffle: exchange index bit `local_phys` with `global_phys`.
/// Every rank gathers the half-slab whose bit `local_phys` differs from
/// its own global bit and trades it with the partner rank across global
/// bit `global_phys` — half-slab bytes per rank.
struct SlabSwap {
  unsigned local_phys = 0;
  unsigned global_phys = 0;

  bool operator==(const SlabSwap&) const = default;
};

/// A run of physical-qubit instructions preceded by the slab swaps that
/// establish its layout. Measure instructions keep their *logical* qubit
/// (sampling resolves them through the final map); everything else is
/// rewritten to physical ids.
struct RemapSegment {
  std::vector<SlabSwap> swaps;
  std::vector<qiskit::Instruction> insts;
};

struct RemapPlan {
  unsigned num_qubits = 0;
  unsigned num_local = 0;
  std::vector<RemapSegment> segments;
  /// Final logical→physical map after all swaps and elisions.
  std::vector<unsigned> logical_to_physical;
  std::uint64_t slab_swaps = 0;        ///< paid slab shuffles
  std::uint64_t elided_swap_gates = 0; ///< swap gates absorbed into the map

  bool identity_map() const {
    for (unsigned q = 0; q < logical_to_physical.size(); ++q) {
      if (logical_to_physical[q] != q) return false;
    }
    return true;
  }
};

/// Plans a communication-avoiding schedule for `qc` over a slab layout
/// with `num_local` local qubits (1 <= num_local <= qc.num_qubits()).
/// The plan is deterministic: every rank computes the same plan from the
/// same circuit, so tag allocation stays uniform.
RemapPlan plan_remap(const qiskit::QuantumCircuit& qc, unsigned num_local,
                     RemapOptions opts = {});

/// Total bytes every rank together would exchange executing `plan`
/// (slab swaps plus residual per-gate exchanges) — comparable to
/// CommTrace::total_bytes of a remapped run without sampling/gather.
std::uint64_t plan_exchange_bytes_total(const RemapPlan& plan,
                                        std::size_t amp_bytes);

/// Same total for the baseline per-gate schedule of `qc` (what
/// apply_circuit / apply_circuit_fused record in the CommTrace).
std::uint64_t schedule_exchange_bytes_total(const qiskit::QuantumCircuit& qc,
                                            unsigned num_local,
                                            std::size_t amp_bytes);

}  // namespace qgear::dist
