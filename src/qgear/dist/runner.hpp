// SPMD driver for the distributed engine: spins up a rank-per-thread
// World, evolves the partitioned state, optionally samples shots with a
// distributed multinomial, and returns the results plus the exact
// communication trace (which perfmodel prices at paper scale).
#pragma once

#include <mutex>
#include <numeric>
#include <optional>

#include "qgear/comm/comm.hpp"
#include "qgear/dist/dist_state.hpp"
#include "qgear/dist/remap.hpp"
#include "qgear/obs/context.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/sim/sampler.hpp"

namespace qgear::dist {

struct RunOptions {
  int num_ranks = 4;            ///< must be a power of two
  std::uint64_t shots = 0;      ///< 0 = no sampling
  bool gather_state = false;    ///< collect the full state (small n only)
  std::uint64_t seed = 12345;   ///< sampling seed
  /// Fuse local-qubit gate runs into blocked sweeps (0 = per-gate).
  unsigned fusion_width = 0;
  /// Execute the communication-avoiding remapped schedule (dist/remap):
  /// global qubits are swapped into local slots ahead of gate runs and
  /// logical swap gates dissolve into the qubit map. Implies fused local
  /// segments (fusion_width 0 runs width-1 blocks).
  bool remap = false;
  /// Worker threads per rank for local sweeps and exchange updates
  /// (0 = scalar loops). Total threads = num_ranks * threads_per_rank.
  unsigned threads_per_rank = 0;
  /// Chunk size in bytes for pipelined slab exchanges. 0 = auto: derived
  /// per exchange from the message size and the rank pair's interconnect
  /// tier (small messages go one-shot, inter-node transfers chunk finer).
  std::uint64_t exchange_chunk_bytes = 0;
  /// Trace correlation id for the whole run. 0 = adopt the caller's
  /// ambient obs::TraceContext, or start a fresh trace. Every rank's spans
  /// are tagged with this id plus the rank, so a single request exports as
  /// one merged timeline with one lane per rank.
  std::uint64_t trace_id = 0;
  /// Ranks sharing one NVLink domain (comm::Topology); pairs in different
  /// domains are inter-node. Mirrors perfmodel's gpus_per_node. 0 = one
  /// flat domain.
  unsigned ranks_per_domain = 4;
  /// Resilient slab exchanges (timeout_s > 0): offset-framed chunks with
  /// receive timeouts and bounded re-sends — the path the comm fault
  /// hooks attach to.
  comm::ResilienceOptions exchange_resilience = {};
};

/// Per-rank observability summary of one distributed run (meaningful when
/// tracing was enabled; zeros otherwise except exchange_bytes, which comes
/// from the exact comm trace and is always populated).
struct RankObsSummary {
  std::uint64_t exchange_bytes = 0;  ///< bytes this rank *sent*
  std::uint64_t spans = 0;           ///< spans recorded under this rank
  double span_seconds = 0.0;         ///< summed span durations (nested incl.)
  /// Slab-exchange payload sent per interconnect tier (excludes
  /// sampling/gather traffic, which is tierless collective plumbing).
  std::uint64_t nvlink_bytes = 0;
  std::uint64_t internode_bytes = 0;
};

template <typename T>
struct RunResult {
  /// Full final state (only when gather_state was set).
  std::vector<std::complex<T>> state;
  /// Aggregated measurement histogram (key = packed measured bits).
  sim::Counts counts;
  /// Measured qubits in program order.
  std::vector<unsigned> measured;
  /// Exact point-to-point transfer log of the run.
  comm::CommTrace trace;
  /// Per-rank engine statistics (index = rank).
  std::vector<sim::EngineStats> rank_stats;
  /// Per-rank exchange bytes and span accounting (index = rank).
  std::vector<RankObsSummary> rank_obs;
  /// Trace id every span of this run carries (export one merged timeline
  /// with Tracer::write_trace_json(path, trace_id)).
  std::uint64_t trace_id = 0;
  double norm = 0.0;
  /// Bytes the circuit itself exchanged (trace snapshot before sampling
  /// and gather traffic).
  std::uint64_t circuit_exchange_bytes = 0;
  /// Slab swaps the remap plan paid / swap gates it absorbed (remap only).
  std::uint64_t remap_slab_swaps = 0;
  std::uint64_t remap_elided_swaps = 0;
};

/// Distributed multinomial sampling: rank weights are the local norm of
/// each slab; the root partitions the shot budget across ranks by their
/// weight, each rank samples its local alias table, and results merge at
/// the root keyed by the *logical* basis index bits of the measured
/// qubits (resolved through the state's qubit map after remapped runs).
template <typename T>
sim::Counts sample_distributed(DistStateVector<T>& state,
                               comm::Communicator& comm,
                               const std::vector<unsigned>& measured,
                               std::uint64_t shots, std::uint64_t seed);

/// Runs `qc` across opts.num_ranks SPMD ranks and returns the merged
/// result (state/counts live at rank 0's view of the world).
template <typename T>
RunResult<T> run_distributed(const qiskit::QuantumCircuit& qc,
                             const RunOptions& opts);

// ---- implementation ----------------------------------------------------

template <typename T>
sim::Counts sample_distributed(DistStateVector<T>& state,
                               comm::Communicator& comm,
                               const std::vector<unsigned>& measured,
                               std::uint64_t shots, std::uint64_t seed) {
  obs::Span span(obs::Tracer::global(), "dist.sample", "dist");
  if (span.active()) {
    span.arg("rank", std::uint64_t{unsigned(comm.rank())});
    span.arg("shots", shots);
  }
  // Reserved collective tags, disjoint from the op tag space by
  // construction (kSamplerTagBase >= kOpTagLimit).
  constexpr int kWeightTag = kSamplerTagBase;
  constexpr int kBudgetTag = kSamplerTagBase + 1;
  constexpr int kCountsTag = kSamplerTagBase + 2;

  const int rank = comm.rank();
  const int size = comm.size();
  const double local_weight = state.local_norm();

  // Root collects rank weights and draws the per-rank multinomial split.
  std::vector<std::uint64_t> budget(size, 0);
  if (rank == 0) {
    std::vector<double> weights(size);
    weights[0] = local_weight;
    for (int src = 1; src < size; ++src) {
      weights[src] = comm.recv_vec<double>(src, kWeightTag).at(0);
    }
    Rng rng(seed);
    const sim::AliasSampler rank_sampler(weights);
    for (std::uint64_t s = 0; s < shots; ++s) {
      ++budget[rank_sampler.sample(rng)];
    }
    for (int dst = 1; dst < size; ++dst) {
      const std::vector<std::uint64_t> one = {budget[dst]};
      comm.send_vec<std::uint64_t>(dst, kBudgetTag, one);
    }
  } else {
    const std::vector<double> w = {local_weight};
    comm.send_vec<double>(0, kWeightTag, w);
    budget[rank] = comm.recv_vec<std::uint64_t>(0, kBudgetTag).at(0);
  }

  // Sample locally; keys are packed from the *full* index (local bits plus
  // this rank's global bits), reading each measured logical qubit at its
  // current physical position.
  const std::uint64_t my_shots = budget[rank];
  sim::Counts local_counts;
  if (my_shots > 0) {
    std::vector<double> probs(state.local_size());
    for (std::uint64_t i = 0; i < probs.size(); ++i) {
      probs[i] = std::norm(state.local_amps()[i]);
    }
    const sim::AliasSampler sampler(probs);
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (rank + 1)));
    const std::uint64_t rank_bits = static_cast<std::uint64_t>(rank)
                                    << state.local_qubits();
    std::vector<unsigned> positions(measured.size());
    for (std::size_t j = 0; j < measured.size(); ++j) {
      positions[j] = state.physical_qubit(measured[j]);
    }
    for (std::uint64_t s = 0; s < my_shots; ++s) {
      const std::uint64_t full = rank_bits | sampler.sample(rng);
      std::uint64_t key = 0;
      for (std::size_t j = 0; j < positions.size(); ++j) {
        key |= ((full >> positions[j]) & 1u) << j;
      }
      ++local_counts[key];
    }
  }

  // Merge at root as (key, count) pairs.
  if (rank == 0) {
    sim::Counts merged = std::move(local_counts);
    for (int src = 1; src < size; ++src) {
      const auto pairs = comm.recv_vec<std::uint64_t>(src, kCountsTag);
      QGEAR_CHECK_FORMAT(pairs.size() % 2 == 0,
                         "dist: malformed counts payload");
      for (std::size_t i = 0; i < pairs.size(); i += 2) {
        merged[pairs[i]] += pairs[i + 1];
      }
    }
    return merged;
  }
  std::vector<std::uint64_t> pairs;
  pairs.reserve(local_counts.size() * 2);
  for (const auto& [key, count] : local_counts) {
    pairs.push_back(key);
    pairs.push_back(count);
  }
  comm.send_vec<std::uint64_t>(0, kCountsTag, pairs);
  return {};
}

template <typename T>
RunResult<T> run_distributed(const qiskit::QuantumCircuit& qc,
                             const RunOptions& opts) {
  QGEAR_CHECK_ARG(opts.num_ranks >= 1 && is_pow2(opts.num_ranks),
                  "dist: num_ranks must be a power of two");
  // Resolve the run's trace context: explicit id > ambient > fresh. The
  // driver span stays on the host lane (rank -1); each SPMD thread below
  // re-scopes the same trace_id with its own rank.
  obs::TraceContext run_ctx;
  if (opts.trace_id != 0) {
    run_ctx.trace_id = opts.trace_id;
  } else if (obs::TraceContext::current().valid()) {
    run_ctx = obs::TraceContext::current();
    run_ctx.rank = -1;
  } else {
    run_ctx = obs::TraceContext::generate();
  }
  obs::ContextScope run_scope(run_ctx);
  obs::Span run_span(obs::Tracer::global(), "dist.run", "dist");
  if (run_span.active()) {
    run_span.arg("ranks", std::uint64_t{unsigned(opts.num_ranks)});
    run_span.arg("qubits", std::uint64_t{qc.num_qubits()});
  }
  const unsigned num_local =
      qc.num_qubits() -
      log2_exact(static_cast<std::uint64_t>(opts.num_ranks));

  // Planned once, outside the SPMD region: the plan is deterministic, so
  // sharing one instance keeps every rank's tag sequence identical.
  std::optional<RemapPlan> plan;
  if (opts.remap) plan.emplace(plan_remap(qc, num_local));

  comm::World world(opts.num_ranks);
  world.set_topology({.ranks_per_domain = opts.ranks_per_domain});
  RunResult<T> result;
  result.rank_stats.resize(opts.num_ranks);
  result.rank_obs.resize(opts.num_ranks);
  std::mutex result_mutex;
  std::uint64_t circuit_bytes = 0;

  world.run([&](comm::Communicator& c) {
    obs::TraceContext rank_ctx = run_ctx;
    rank_ctx.rank = c.rank();
    obs::ContextScope rank_scope(rank_ctx);
    obs::Span rank_span(obs::Tracer::global(), "dist.rank", "dist");
    if (rank_span.active()) {
      rank_span.arg("rank", std::uint64_t{unsigned(c.rank())});
    }
    std::optional<ThreadPool> pool;
    if (opts.threads_per_rank > 0) pool.emplace(opts.threads_per_rank);
    DistStateVector<T> state(qc.num_qubits(), c);
    state.set_pool(pool ? &*pool : nullptr);
    state.set_exchange_chunk_elems(opts.exchange_chunk_bytes /
                                   sizeof(std::complex<T>));
    state.set_exchange_resilience(opts.exchange_resilience);
    std::vector<unsigned> measured;
    if (plan) {
      state.apply_circuit_remapped(*plan, std::max(opts.fusion_width, 1u),
                                   &measured);
    } else if (opts.fusion_width > 0) {
      state.apply_circuit_fused(qc, opts.fusion_width, &measured);
    } else {
      state.apply_circuit(qc, &measured);
    }
    // Snapshot the circuit's exchange bytes before sampling/gather add
    // their own traffic. Between the two barriers no rank can be sending,
    // so the trace is quiescent while rank 0 reads it.
    c.barrier();
    if (c.rank() == 0) circuit_bytes = world.trace().total_bytes;
    c.barrier();
    if (measured.empty() && opts.shots > 0) {
      // Implicit full measurement, matching the single-device engines.
      measured.resize(qc.num_qubits());
      std::iota(measured.begin(), measured.end(), 0u);
    }
    const double norm = state.norm();

    sim::Counts counts;
    if (opts.shots > 0) {
      counts = sample_distributed(state, c, measured, opts.shots, opts.seed);
    }
    std::vector<std::complex<T>> full;
    if (opts.gather_state) full = state.gather(0);

    std::lock_guard<std::mutex> lock(result_mutex);
    result.rank_stats[c.rank()] = state.stats();
    result.rank_obs[c.rank()].nvlink_bytes =
        state.exchange_tier_bytes(comm::Tier::nvlink);
    result.rank_obs[c.rank()].internode_bytes =
        state.exchange_tier_bytes(comm::Tier::internode);
    if (c.rank() == 0) {
      result.state = std::move(full);
      result.counts = std::move(counts);
      result.measured = std::move(measured);
      result.norm = norm;
    }
  });
  result.trace = world.trace();
  result.circuit_exchange_bytes = circuit_bytes;
  result.trace_id = run_ctx.trace_id;
  if (plan) {
    result.remap_slab_swaps = plan->slab_swaps;
    result.remap_elided_swaps = plan->elided_swap_gates;
  }

  // Per-rank observability rollup: exchange bytes come from the exact comm
  // trace (sender-attributed); span accounting folds the ring buffer's
  // records for this run's trace_id. Sampling/gather traffic is included
  // in exchange_bytes — this summarizes the whole request.
  for (const comm::TraceEntry& e : result.trace.entries) {
    if (e.src >= 0 && e.src < opts.num_ranks) {
      result.rank_obs[e.src].exchange_bytes += e.bytes;
    }
  }
  if (obs::Tracer::global().enabled()) {
    for (const obs::SpanRecord& rec : obs::Tracer::global().snapshot()) {
      if (rec.trace_id != run_ctx.trace_id) continue;
      if (rec.rank < 0 || rec.rank >= opts.num_ranks) continue;
      ++result.rank_obs[rec.rank].spans;
      result.rank_obs[rec.rank].span_seconds += rec.dur_us * 1e-6;
    }
  }

  auto& reg = obs::Registry::global();
  reg.counter("dist.runs").add();
  reg.counter("dist.exchange_bytes").add(result.trace.total_bytes);
  reg.counter("dist.messages").add(result.trace.entries.size());
  if (plan) {
    reg.counter("dist.remap_swaps").add(plan->slab_swaps);
    const std::uint64_t baseline = schedule_exchange_bytes_total(
        qc, num_local, sizeof(std::complex<T>));
    if (baseline > circuit_bytes) {
      reg.counter("dist.exchange_bytes_saved").add(baseline - circuit_bytes);
    }
  }
  sim::EngineStats merged;
  for (const auto& s : result.rank_stats) merged += s;
  reg.counter("dist.sweeps").add(merged.sweeps);
  reg.counter("dist.amp_ops").add(merged.amp_ops);
  return result;
}

}  // namespace qgear::dist
