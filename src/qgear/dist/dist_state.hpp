// Distributed state-vector engine — the 'nvidia-mgpu' analogue.
//
// With R = 2^r ranks, rank p owns the 2^(n-r) amplitudes whose top r index
// bits equal p: qubits 0..n-r-1 are "local", qubits n-r..n-1 are "global".
// Gates touching only local qubits (or any diagonal gate) run without
// communication; a non-diagonal gate on a global qubit exchanges slab
// data pairwise between the two ranks that differ in that bit — exactly
// the communication schedule the performance model prices at paper scale.
//
// Three mechanisms keep the hot path fast (see docs/DISTRIBUTED.md):
// slab swaps that trade a global index bit for a local one so upcoming
// gates run communication-free (apply_circuit_remapped, planned by
// dist/remap), chunked exchanges that overlap the 2x2 update of chunk k
// with the delivery of chunk k+1, and a ThreadPool threaded through every
// local sweep and exchange update loop.
//
// Tags: every collective gate application uses a fresh sequence number, so
// concurrent slabs in flight can never be mismatched. Op tags live in
// [0, kOpTagLimit); the runner's sampler tags start at kSamplerTagBase so
// the two spaces can never collide. Chunks of one exchange share the
// exchange's tag: per-pair FIFO ordering keeps them in sequence.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <cstring>
#include <span>

#include "qgear/comm/comm.hpp"
#include "qgear/common/bits.hpp"
#include "qgear/common/thread_pool.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/dist/remap.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/apply.hpp"
#include "qgear/sim/fused.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::dist {

/// Payload bytes moved over each interconnect tier by slab exchanges
/// (cached registry references; first call takes the registry mutex).
inline obs::Counter& exchange_tier_counter(comm::Tier t) {
  static obs::Counter& nv =
      obs::Registry::global().counter("dist.exchange.tier_bytes.nvlink");
  static obs::Counter& in =
      obs::Registry::global().counter("dist.exchange.tier_bytes.internode");
  return t == comm::Tier::nvlink ? nv : in;
}

/// Exclusive upper bound of the per-op tag space. DistStateVector::next_tag
/// wraps below this.
inline constexpr int kOpTagLimit = 1 << 28;
/// First tag reserved for the runner's sampling/gather collectives.
inline constexpr int kSamplerTagBase = 1 << 28;
static_assert(kSamplerTagBase >= kOpTagLimit,
              "sampler tags must not overlap op tags");

/// Communication cost of one instruction under this engine's schedule:
/// bytes each participating rank exchanges with its partner. Used by the
/// perfmodel to price paper-scale runs with the *same* schedule the real
/// engine executes. `amp_bytes` = sizeof(std::complex<T>).
std::uint64_t exchange_bytes_for(const qiskit::Instruction& inst,
                                 unsigned num_qubits, unsigned num_local,
                                 std::size_t amp_bytes);

template <typename T>
class DistStateVector {
 public:
  using amp_t = std::complex<T>;

  DistStateVector(unsigned num_qubits, comm::Communicator& comm)
      : num_qubits_(num_qubits),
        comm_(&comm),
        rank_(comm.rank()) {
    QGEAR_CHECK_ARG(is_pow2(static_cast<std::uint64_t>(comm.size())),
                    "dist: rank count must be a power of two");
    global_qubits_ = log2_exact(static_cast<std::uint64_t>(comm.size()));
    QGEAR_CHECK_ARG(num_qubits_ >= global_qubits_ + 1,
                    "dist: need more qubits than log2(ranks)");
    local_qubits_ = num_qubits_ - global_qubits_;
    amps_.assign(pow2(local_qubits_), amp_t(0, 0));
    if (rank_ == 0) amps_[0] = amp_t(1, 0);
  }

  unsigned num_qubits() const { return num_qubits_; }
  unsigned local_qubits() const { return local_qubits_; }
  unsigned global_qubits() const { return global_qubits_; }
  int rank() const { return rank_; }
  std::uint64_t local_size() const { return amps_.size(); }
  const std::vector<amp_t>& local_amps() const { return amps_; }
  std::vector<amp_t>& local_amps() { return amps_; }
  const sim::EngineStats& stats() const { return stats_; }

  /// Worker pool for local sweeps and exchange update loops (not owned;
  /// nullptr = scalar loops). Every rank needs its own pool.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Splits slab exchanges into chunks of this many amplitudes so the 2x2
  /// update of chunk k overlaps delivery of chunk k+1. 0 = auto: the chunk
  /// size is derived per exchange from the message size and the partner's
  /// interconnect tier (comm::auto_chunk_bytes; small messages go one-shot).
  void set_exchange_chunk_elems(std::uint64_t elems) {
    exchange_chunk_elems_ = elems;
  }
  std::uint64_t exchange_chunk_elems() const { return exchange_chunk_elems_; }

  /// Runs slab exchanges over the fault-tolerant framed protocol when
  /// timeout_s > 0 (receive timeouts, bounded re-sends, DONE handshake).
  /// Also the path the comm_delay/comm_drop fault hooks attach to.
  void set_exchange_resilience(comm::ResilienceOptions res) {
    exchange_resilience_ = res;
  }

  /// Payload bytes this rank sent on slab exchanges over tier `t`.
  std::uint64_t exchange_tier_bytes(comm::Tier t) const {
    return tier_bytes_[static_cast<std::size_t>(t)];
  }

  /// Batched index-bit swap: exchanges local index bit local_phys with
  /// global bit global_phys for every pair at once, in one pass over the
  /// state. The slab splits into 2^k groups by the batch's local bits;
  /// round d > 0 trades group b^d (b = this rank's global-bit pattern over
  /// the batch) with the rank differing in exactly the global bits set in
  /// d, so per-rank traffic is slab*(2^k-1)/2^k — vs k half-slabs for
  /// sequential swaps. Rounds post NVLink-domain peers first; `overlap` is
  /// invoked whenever no chunk is ready and should do one unit of
  /// amplitude-free work, returning false when it has nothing left.
  /// `tag` must be allocated uniformly across ranks.
  void exchange_index_bit_swap(std::span<const SlabSwap> swaps, int tag,
                               const std::function<bool()>& overlap = {});

  /// Physical index-bit position currently holding logical qubit q.
  /// Identity until apply_circuit_remapped installs a plan's final map.
  unsigned physical_qubit(unsigned q) const {
    QGEAR_EXPECTS(q < num_qubits_);
    return l2p_.empty() ? q : l2p_[q];
  }
  /// Final logical→physical map; empty means identity.
  const std::vector<unsigned>& qubit_map() const { return l2p_; }

  /// Value of this rank's global bit for global qubit q (q >= local_qubits).
  unsigned global_bit(unsigned q) const {
    QGEAR_EXPECTS(q >= local_qubits_ && q < num_qubits_);
    return static_cast<unsigned>(rank_ >> (q - local_qubits_)) & 1u;
  }

  /// Applies one instruction; collects measure targets into `measured`.
  void apply(const qiskit::Instruction& inst,
             std::vector<unsigned>* measured = nullptr);

  /// Applies a whole circuit in order, gate by gate.
  void apply_circuit(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured = nullptr) {
    QGEAR_CHECK_ARG(qc.num_qubits() == num_qubits_,
                    "dist: circuit qubit count mismatch");
    obs::Span span(obs::Tracer::global(), "dist.apply_circuit", "dist");
    if (span.active()) span.arg("rank", std::uint64_t{unsigned(rank_)});
    WallTimer timer;
    for (const qiskit::Instruction& inst : qc.instructions()) {
      apply(inst, measured);
    }
    stats_.seconds += timer.seconds();
  }

  /// Applies a circuit with gate fusion over local-qubit segments:
  /// maximal runs of unitaries touching only local qubits execute as
  /// fused blocks (one slab sweep each), while instructions involving
  /// global qubits keep the exact per-gate exchange schedule — the same
  /// communication volume as apply_circuit, fewer local sweeps.
  void apply_circuit_fused(const qiskit::QuantumCircuit& qc,
                           unsigned fusion_width,
                           std::vector<unsigned>* measured = nullptr);

  /// Executes a communication-avoiding RemapPlan (see dist/remap.hpp):
  /// slab swaps re-base the layout between segments, each segment's
  /// physical-qubit instructions run under the fusion planner, and logical
  /// swap gates have already been absorbed into the plan's qubit map. The
  /// plan's final logical→physical map is installed so gather() and
  /// physical_qubit() resolve logical indices afterwards. The plan must
  /// come from plan_remap on every rank (it is deterministic), so tag
  /// allocation stays uniform.
  void apply_circuit_remapped(const RemapPlan& plan, unsigned fusion_width,
                              std::vector<unsigned>* measured = nullptr);

  /// Sum of local |amp|^2.
  double local_norm() const {
    double total = 0;
    for (const amp_t& a : amps_) total += std::norm(a);
    return total;
  }

  /// Global norm (collective: every rank must call).
  double norm() { return comm_->allreduce_sum(local_norm()); }

  /// Gathers the full state at `root` (collective), in *logical* qubit
  /// order: when a remapped run left a non-identity qubit map, the root
  /// permutes the physical-layout state through it. Other ranks get {}.
  std::vector<amp_t> gather(int root = 0) {
    const int tag = next_tag();
    if (rank_ != root) {
      comm_->template send_vec<amp_t>(root, tag, amps_);
      return {};
    }
    std::vector<amp_t> full(pow2(num_qubits_));
    std::copy(amps_.begin(), amps_.end(),
              full.begin() + static_cast<std::ptrdiff_t>(
                                 amps_.size() * static_cast<std::uint64_t>(
                                                    rank_)));
    for (int src = 0; src < comm_->size(); ++src) {
      if (src == root) continue;
      const std::vector<amp_t> slab = comm_->template recv_vec<amp_t>(src, tag);
      QGEAR_CHECK_FORMAT(slab.size() == amps_.size(),
                         "dist: gathered slab size mismatch");
      std::copy(slab.begin(), slab.end(),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   amps_.size() *
                                   static_cast<std::uint64_t>(src)));
    }
    if (l2p_.empty()) return full;
    std::vector<amp_t> logical(full.size());
    for (std::uint64_t p = 0; p < full.size(); ++p) {
      std::uint64_t l = 0;
      for (unsigned q = 0; q < num_qubits_; ++q) {
        l |= ((p >> l2p_[q]) & 1u) << q;
      }
      logical[l] = full[p];
    }
    return logical;
  }

 private:
  int next_tag() {
    return static_cast<int>(op_seq_++ %
                            static_cast<std::uint64_t>(kOpTagLimit));
  }

  // The dispatch body of apply(); `tag` must have been allocated
  // uniformly across ranks.
  void apply_with_tag(const qiskit::Instruction& inst, int tag,
                      std::vector<unsigned>* measured);

  void apply_local(const qiskit::Instruction& inst,
                   std::vector<unsigned>* measured) {
    const unsigned sweeps = sim::apply_instruction(
        amps_.data(), local_qubits_, inst, pool_, measured);
    stats_.sweeps += sweeps;
    stats_.amp_ops += sweeps * amps_.size();
  }

  // Runs fn(begin, end) over [0, count), on the pool when one is set.
  void sweep(std::uint64_t count,
             const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
    if (pool_ != nullptr) {
      pool_->parallel_for(0, count, fn);
    } else {
      fn(0, count);
    }
  }

  bool is_local(unsigned q) const { return q < local_qubits_; }

  // Full-slab pairwise exchange + 2x2 update for a non-diagonal 1q gate on
  // a global qubit. `tag` must be allocated uniformly across ranks.
  void exchange_apply_1q(unsigned q, const qiskit::Mat2& gate, int tag);

  // cx/controlled-U with local control, global target: exchanges only the
  // control=1 half of the slab.
  void exchange_apply_controlled_local_control(unsigned control,
                                               unsigned target,
                                               const qiskit::Mat2& gate,
                                               int tag);

  // Chunk size (in amplitudes) for one exchange leg with `partner`:
  // explicit override, or auto-derived from the message size and tier.
  // 0 = one-shot.
  std::uint64_t chunk_elems_for(std::uint64_t msg_elems, int partner) const {
    if (exchange_chunk_elems_ != 0) return exchange_chunk_elems_;
    return comm::auto_chunk_bytes(msg_elems * sizeof(amp_t),
                                  comm_->tier_to(partner)) /
           sizeof(amp_t);
  }

  // Attributes `bytes` sent to `partner` to its interconnect tier.
  void note_tier_bytes(int partner, std::uint64_t bytes) {
    const comm::Tier t = comm_->tier_to(partner);
    tier_bytes_[static_cast<std::size_t>(t)] += bytes;
    exchange_tier_counter(t).add(bytes);
  }

  unsigned num_qubits_;
  unsigned local_qubits_ = 0;
  unsigned global_qubits_ = 0;
  comm::Communicator* comm_;
  int rank_;
  std::vector<amp_t> amps_;
  std::uint64_t op_seq_ = 0;
  std::uint64_t exchange_chunk_elems_ = 0;
  comm::ResilienceOptions exchange_resilience_;
  std::uint64_t tier_bytes_[comm::kNumTiers] = {0, 0};
  ThreadPool* pool_ = nullptr;
  std::vector<unsigned> l2p_;  // empty = identity
  sim::EngineStats stats_;
};

// ---- implementation ----------------------------------------------------

template <typename T>
void DistStateVector<T>::exchange_apply_1q(unsigned q,
                                           const qiskit::Mat2& gate,
                                           int tag) {
  const unsigned gbit = q - local_qubits_;
  const int partner = rank_ ^ (1 << gbit);
  const unsigned my_bit = global_bit(q);
  const auto m = sim::to_precision<T>(gate);
  note_tier_bytes(partner, amps_.size() * sizeof(amp_t));
  comm_->template sendrecv_chunked<amp_t>(
      partner, tag, std::span<const amp_t>(amps_),
      chunk_elems_for(amps_.size(), partner),
      [&](std::uint64_t off, std::span<const amp_t> theirs) {
        obs::Span chunk(obs::Tracer::global(), "dist.exchange_chunk",
                        "dist");
        if (chunk.active()) {
          chunk.arg("offset", off);
          chunk.arg("amps", std::uint64_t{theirs.size()});
        }
        sweep(theirs.size(), [&](std::uint64_t b, std::uint64_t e) {
          if (my_bit == 0) {
            for (std::uint64_t k = b; k < e; ++k) {
              amps_[off + k] = m[0] * amps_[off + k] + m[1] * theirs[k];
            }
          } else {
            for (std::uint64_t k = b; k < e; ++k) {
              amps_[off + k] = m[2] * theirs[k] + m[3] * amps_[off + k];
            }
          }
        });
      });
  ++stats_.sweeps;
  stats_.amp_ops += amps_.size();
}

template <typename T>
void DistStateVector<T>::exchange_apply_controlled_local_control(
    unsigned control, unsigned target, const qiskit::Mat2& gate, int tag) {
  const unsigned gbit = target - local_qubits_;
  const int partner = rank_ ^ (1 << gbit);
  const unsigned my_bit = global_bit(target);
  const std::uint64_t cstride = pow2(control);

  // Gather the control=1 half (local indices with the control bit set).
  const std::uint64_t half = amps_.size() / 2;
  std::vector<amp_t> mine(half);
  sweep(half, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t k = b; k < e; ++k) {
      mine[k] = amps_[insert_zero_bit(k, control) | cstride];
    }
  });
  const auto m = sim::to_precision<T>(gate);
  note_tier_bytes(partner, mine.size() * sizeof(amp_t));
  comm_->template sendrecv_chunked<amp_t>(
      partner, tag, std::span<const amp_t>(mine),
      chunk_elems_for(mine.size(), partner),
      [&](std::uint64_t off, std::span<const amp_t> theirs) {
        obs::Span chunk(obs::Tracer::global(), "dist.exchange_chunk",
                        "dist");
        if (chunk.active()) {
          chunk.arg("offset", off);
          chunk.arg("amps", std::uint64_t{theirs.size()});
        }
        sweep(theirs.size(), [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t k = b; k < e; ++k) {
            const std::uint64_t i =
                insert_zero_bit(off + k, control) | cstride;
            amps_[i] = my_bit == 0
                           ? m[0] * mine[off + k] + m[1] * theirs[k]
                           : m[2] * theirs[k] + m[3] * mine[off + k];
          }
        });
      });
  ++stats_.sweeps;
  stats_.amp_ops += half;
}

template <typename T>
void DistStateVector<T>::exchange_index_bit_swap(
    std::span<const SlabSwap> swaps, int tag,
    const std::function<bool()>& overlap) {
  QGEAR_CHECK_ARG(!swaps.empty(), "dist: empty index-bit-swap batch");
  std::vector<SlabSwap> ps(swaps.begin(), swaps.end());
  std::sort(ps.begin(), ps.end(),
            [](const SlabSwap& a, const SlabSwap& b) {
              return a.local_phys < b.local_phys;
            });
  const unsigned k = static_cast<unsigned>(ps.size());
  QGEAR_CHECK_ARG(k <= local_qubits_ && k <= global_qubits_,
                  "dist: index-bit-swap batch wider than the layout");
  for (unsigned i = 0; i < k; ++i) {
    QGEAR_CHECK_ARG(ps[i].local_phys < local_qubits_ &&
                        ps[i].global_phys >= local_qubits_ &&
                        ps[i].global_phys < num_qubits_,
                    "dist: index-bit-swap pair out of range");
    QGEAR_CHECK_ARG(i == 0 || ps[i].local_phys != ps[i - 1].local_phys,
                    "dist: duplicate local bit in index-bit-swap batch");
    for (unsigned j = 0; j < i; ++j) {
      QGEAR_CHECK_ARG(ps[j].global_phys != ps[i].global_phys,
                      "dist: duplicate global bit in index-bit-swap batch");
    }
  }
  obs::Span span(obs::Tracer::global(), "dist.exchange_batch", "dist");
  if (span.active()) {
    span.arg("rank", std::uint64_t{unsigned(rank_)});
    span.arg("pairs", std::uint64_t{k});
  }

  // b = this rank's global-bit pattern over the batch. Post-swap, the
  // amplitudes in local group v (batch local bits = v) of this rank are
  // the pre-swap group-b amplitudes of the rank whose pattern is v: round
  // d > 0 therefore trades group b^d, element for element, with the rank
  // differing in exactly the global bits set in d. Group b stays put.
  std::uint64_t b = 0;
  for (unsigned i = 0; i < k; ++i) {
    b |= static_cast<std::uint64_t>(global_bit(ps[i].global_phys)) << i;
  }
  const std::uint64_t groups = pow2(k);
  const std::uint64_t group_size = amps_.size() >> k;

  // Local index of element j in group v: insert the bits of v at the
  // batch's local positions (ascending). The planner favors low local
  // slots, so consecutive j walk nearly consecutive idx — the per-group
  // gather/scatter passes below stay cache-friendly.
  auto expand = [&](std::uint64_t j, std::uint64_t v) {
    std::uint64_t idx = j;
    for (unsigned i = 0; i < k; ++i) {
      idx = insert_zero_bit(idx, ps[i].local_phys) |
            (static_cast<std::uint64_t>((v >> i) & 1u) << ps[i].local_phys);
    }
    return idx;
  };

  std::vector<std::vector<amp_t>> bufs(groups);
  std::vector<comm::ExchangeRound> rounds;
  std::vector<std::uint64_t> group_of_round;
  rounds.reserve(groups - 1);
  group_of_round.reserve(groups - 1);
  for (std::uint64_t d = 1; d < groups; ++d) {
    const std::uint64_t v = b ^ d;
    std::vector<amp_t>& buf = bufs[d];
    buf.resize(group_size);
    sweep(group_size, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t j = lo; j < hi; ++j) buf[j] = amps_[expand(j, v)];
    });
    std::uint64_t gmask = 0;
    for (unsigned i = 0; i < k; ++i) {
      if ((d >> i) & 1u) gmask |= pow2(ps[i].global_phys - local_qubits_);
    }
    rounds.push_back(
        {.peer = rank_ ^ static_cast<int>(gmask),
         .send = {reinterpret_cast<const std::uint8_t*>(buf.data()),
                  buf.size() * sizeof(amp_t)},
         .recv_bytes = group_size * sizeof(amp_t),
         .chunk_bytes = exchange_chunk_elems_ * sizeof(amp_t)});
    group_of_round.push_back(v);
  }

  comm::BatchExchange ex(*comm_, tag, std::move(rounds),
                         exchange_resilience_);
  std::vector<amp_t> scratch;
  const auto consume = [&](std::size_t r, std::uint64_t off_bytes,
                           std::span<const std::uint8_t> payload) {
    QGEAR_CHECK_FORMAT(off_bytes % sizeof(amp_t) == 0 &&
                           payload.size() % sizeof(amp_t) == 0,
                       "dist: exchange chunk not amplitude-aligned");
    obs::Span chunk(obs::Tracer::global(), "dist.exchange_chunk", "dist");
    if (chunk.active()) {
      chunk.arg("offset", off_bytes);
      chunk.arg("amps", std::uint64_t{payload.size() / sizeof(amp_t)});
    }
    const std::uint64_t v = group_of_round[r];
    const std::uint64_t j0 = off_bytes / sizeof(amp_t);
    const std::uint64_t cnt = payload.size() / sizeof(amp_t);
    // Scatter straight from the wire buffer when it is amplitude-aligned
    // (the unframed fast path always is); bounce through scratch only for
    // the framed resilient layout.
    const amp_t* src = nullptr;
    if (reinterpret_cast<std::uintptr_t>(payload.data()) %
            alignof(amp_t) == 0) {
      src = reinterpret_cast<const amp_t*>(payload.data());
    } else {
      scratch.resize(cnt);
      std::memcpy(scratch.data(), payload.data(), payload.size());
      src = scratch.data();
    }
    sweep(cnt, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t j = lo; j < hi; ++j) {
        amps_[expand(j0 + j, v)] = src[j];
      }
    });
  };
  ex.post();
  while (!ex.done()) {
    if (ex.poll(consume)) continue;
    // Nothing landed: hide amplitude-free work in the exchange tail.
    if (overlap && overlap()) continue;
    ex.wait(consume);
  }
  for (std::size_t t = 0; t < comm::kNumTiers; ++t) {
    const std::uint64_t sent =
        ex.sent_tier_bytes(static_cast<comm::Tier>(t));
    if (sent == 0) continue;
    tier_bytes_[t] += sent;
    exchange_tier_counter(static_cast<comm::Tier>(t)).add(sent);
  }
  ++stats_.sweeps;
  stats_.amp_ops += amps_.size() - group_size;
}

template <typename T>
void DistStateVector<T>::apply(const qiskit::Instruction& inst,
                               std::vector<unsigned>* measured) {
  // Allocated on every rank for every instruction, so matched exchanges
  // always agree on the tag even when only a subset of ranks communicates.
  apply_with_tag(inst, next_tag(), measured);
}

template <typename T>
void DistStateVector<T>::apply_with_tag(const qiskit::Instruction& inst,
                                        int tag,
                                        std::vector<unsigned>* measured) {
  using qiskit::GateKind;
  ++stats_.gates;

  switch (inst.kind) {
    case GateKind::barrier:
      return;
    case GateKind::measure:
      if (measured != nullptr) {
        measured->push_back(static_cast<unsigned>(inst.q0));
      }
      return;

    // Diagonal single-qubit gates never communicate: a global qubit just
    // selects one of the two diagonal factors for the whole slab.
    case GateKind::z:
    case GateKind::s:
    case GateKind::sdg:
    case GateKind::t:
    case GateKind::tdg:
    case GateKind::rz:
    case GateKind::p: {
      const unsigned q = static_cast<unsigned>(inst.q0);
      if (is_local(q)) {
        apply_local(inst, measured);
        return;
      }
      const qiskit::Mat2 g = qiskit::gate_matrix_1q(inst.kind, inst.param);
      const std::complex<T> factor(global_bit(q) ? g[3] : g[0]);
      sweep(amps_.size(), [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) amps_[i] *= factor;
      });
      ++stats_.sweeps;
      stats_.amp_ops += amps_.size();
      return;
    }

    // Diagonal two-qubit gates (cz, cp) are likewise communication-free.
    case GateKind::cz:
    case GateKind::cp: {
      const unsigned c = static_cast<unsigned>(inst.q0);
      const unsigned t = static_cast<unsigned>(inst.q1);
      const std::complex<T> phase(
          qiskit::controlled_target_matrix(inst.kind, inst.param)[3]);
      if (is_local(c) && is_local(t)) {
        apply_local(inst, measured);
        return;
      }
      // Drop the condition on any global bit this rank fails.
      if (!is_local(c) && global_bit(c) == 0) return;
      if (!is_local(t) && global_bit(t) == 0) return;
      std::uint64_t mask = 0;
      if (is_local(c)) mask |= pow2(c);
      if (is_local(t)) mask |= pow2(t);
      sweep(amps_.size(), [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) {
          if ((i & mask) == mask) amps_[i] *= phase;
        }
      });
      ++stats_.sweeps;
      stats_.amp_ops += amps_.size();
      return;
    }

    case GateKind::cx: {
      const unsigned c = static_cast<unsigned>(inst.q0);
      const unsigned t = static_cast<unsigned>(inst.q1);
      const qiskit::Mat2 x = qiskit::gate_matrix_1q(GateKind::x, 0);
      if (is_local(c) && is_local(t)) {
        apply_local(inst, measured);
      } else if (!is_local(c) && is_local(t)) {
        // Global control: ranks with control bit 1 flip the target locally.
        if (global_bit(c) == 1) {
          sim::apply_x(amps_.data(), local_qubits_, t);
          ++stats_.sweeps;
          stats_.amp_ops += amps_.size();
        }
      } else if (is_local(c)) {
        exchange_apply_controlled_local_control(c, t, x, tag);
      } else {
        // Both global: ranks with control bit 1 pair-exchange on target.
        if (global_bit(c) == 1) exchange_apply_1q(t, x, tag);
      }
      return;
    }

    case GateKind::swap: {
      // Swaps beyond the local boundary decompose into three cx, each
      // handled by the cases above.
      const unsigned a = static_cast<unsigned>(inst.q0);
      const unsigned b = static_cast<unsigned>(inst.q1);
      if (is_local(a) && is_local(b)) {
        apply_local(inst, measured);
        return;
      }
      apply({GateKind::cx, inst.q0, inst.q1, 0.0}, measured);
      apply({GateKind::cx, inst.q1, inst.q0, 0.0}, measured);
      apply({GateKind::cx, inst.q0, inst.q1, 0.0}, measured);
      stats_.gates -= 3;  // count the swap once, not as three gates
      return;
    }

    default: {
      // Non-diagonal single-qubit unitaries (h, x, y, rx, ry).
      const unsigned q = static_cast<unsigned>(inst.q0);
      if (is_local(q)) {
        apply_local(inst, measured);
        return;
      }
      exchange_apply_1q(q, qiskit::gate_matrix_1q(inst.kind, inst.param),
                        tag);
      return;
    }
  }
}

template <typename T>
void DistStateVector<T>::apply_circuit_fused(
    const qiskit::QuantumCircuit& qc, unsigned fusion_width,
    std::vector<unsigned>* measured) {
  QGEAR_CHECK_ARG(qc.num_qubits() == num_qubits_,
                  "dist: circuit qubit count mismatch");
  QGEAR_CHECK_ARG(fusion_width >= 1, "dist: fusion width must be >= 1");
  obs::Span span(obs::Tracer::global(), "dist.apply_circuit_fused", "dist");
  if (span.active()) span.arg("rank", std::uint64_t{unsigned(rank_)});
  WallTimer timer;
  const unsigned width = std::min(fusion_width, local_qubits_);

  qiskit::QuantumCircuit segment(local_qubits_, "local_segment");
  auto flush = [&] {
    if (segment.empty()) return;
    const sim::FusionPlan plan =
        sim::plan_fusion(segment, {.max_width = width});
    for (const sim::FusedBlock& block : plan.blocks) {
      sim::apply_fused_block(amps_.data(), local_qubits_, block, pool_);
      switch (block.kernel_class) {
        case sim::KernelClass::diagonal:
          ++stats_.diag_blocks;
          break;
        case sim::KernelClass::permutation:
          ++stats_.perm_blocks;
          break;
        case sim::KernelClass::dense:
          ++stats_.dense_blocks;
          break;
      }
      ++stats_.sweeps;
      ++stats_.fused_blocks;
      stats_.amp_ops += amps_.size();
    }
    stats_.gates += plan.input_gates;
    segment = qiskit::QuantumCircuit(local_qubits_, "local_segment");
  };

  for (const qiskit::Instruction& inst : qc.instructions()) {
    // Tags stay uniform across ranks: one per instruction, always.
    const int tag = next_tag();
    const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
    const bool local_unitary =
        info.unitary && info.num_qubits >= 1 &&
        static_cast<unsigned>(inst.q0) < local_qubits_ &&
        (info.num_qubits < 2 ||
         static_cast<unsigned>(inst.q1) < local_qubits_);
    if (local_unitary) {
      segment.append(inst);
      continue;
    }
    flush();
    apply_with_tag(inst, tag, measured);
  }
  flush();
  stats_.seconds += timer.seconds();
}

template <typename T>
void DistStateVector<T>::apply_circuit_remapped(
    const RemapPlan& plan, unsigned fusion_width,
    std::vector<unsigned>* measured) {
  QGEAR_CHECK_ARG(plan.num_qubits == num_qubits_,
                  "dist: plan qubit count mismatch");
  QGEAR_CHECK_ARG(plan.num_local == local_qubits_,
                  "dist: plan local qubit count mismatch");
  QGEAR_CHECK_ARG(fusion_width >= 1, "dist: fusion width must be >= 1");
  obs::Span span(obs::Tracer::global(), "dist.apply_circuit_remapped",
                 "dist");
  if (span.active()) {
    span.arg("rank", std::uint64_t{unsigned(rank_)});
    span.arg("slab_swaps", plan.slab_swaps);
  }
  WallTimer timer;
  const unsigned width = std::min(fusion_width, local_qubits_);

  auto run_blocks = [&](const sim::FusionPlan& fplan) {
    for (const sim::FusedBlock& block : fplan.blocks) {
      sim::apply_fused_block(amps_.data(), local_qubits_, block, pool_);
      switch (block.kernel_class) {
        case sim::KernelClass::diagonal:
          ++stats_.diag_blocks;
          break;
        case sim::KernelClass::permutation:
          ++stats_.perm_blocks;
          break;
        case sim::KernelClass::dense:
          ++stats_.dense_blocks;
          break;
      }
      ++stats_.sweeps;
      ++stats_.fused_blocks;
      stats_.amp_ops += amps_.size();
    }
    stats_.gates += fplan.input_gates;
  };

  for (const RemapSegment& seg : plan.segments) {
    // Partition the segment into maximal local-unitary runs (fused) and
    // the non-local instructions between them. A run marker (run >= 0)
    // stands where the run executes; non-local instructions carry inst.
    struct Item {
      int run = -1;
      const qiskit::Instruction* inst = nullptr;
    };
    std::vector<qiskit::QuantumCircuit> runs;
    std::vector<Item> items;
    bool open = false;
    for (const qiskit::Instruction& inst : seg.insts) {
      const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
      const bool local_unitary =
          info.unitary && info.num_qubits >= 1 &&
          static_cast<unsigned>(inst.q0) < local_qubits_ &&
          (info.num_qubits < 2 ||
           static_cast<unsigned>(inst.q1) < local_qubits_);
      if (local_unitary) {
        if (!open) {
          runs.emplace_back(local_qubits_, "local_segment");
          items.push_back({static_cast<int>(runs.size()) - 1, nullptr});
          open = true;
        }
        runs.back().append(inst);
      } else {
        items.push_back({-1, &inst});
        open = false;
      }
    }

    // Fusion planning is pure compute over the instruction stream (the
    // expensive part is building each block's matrix) and never touches
    // the amplitudes — so it doubles as the overlap work hidden in the
    // exchange tail below.
    std::vector<sim::FusionPlan> fplans(runs.size());
    std::size_t built = 0;
    const auto build_next = [&]() -> bool {
      if (built >= runs.size()) return false;
      fplans[built] = sim::plan_fusion(runs[built], {.max_width = width});
      ++built;
      return true;
    };

    if (!seg.swaps.empty()) {
      // One tag covers the whole batch (allocated on every rank).
      const int tag = next_tag();
      exchange_index_bit_swap(seg.swaps, tag, build_next);
    }
    for (const Item& item : items) {
      if (item.run >= 0) {
        while (built <= static_cast<std::size_t>(item.run)) build_next();
        run_blocks(fplans[item.run]);
        // Tags stay uniform across ranks: one per instruction, always.
        for (std::size_t g = 0; g < runs[item.run].size(); ++g) next_tag();
        continue;
      }
      const int tag = next_tag();
      apply_with_tag(*item.inst, tag, measured);
    }
  }
  l2p_ = plan.logical_to_physical;
  stats_.seconds += timer.seconds();
}

}  // namespace qgear::dist
