#include "qgear/dist/dist_backend.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "qgear/common/error.hpp"
#include "qgear/dist/runner.hpp"
#include "qgear/sim/state.hpp"

namespace qgear::dist {

namespace {

class DistBackend final : public sim::Backend {
 public:
  explicit DistBackend(const sim::BackendOptions& o) : opts_(o) {}

  std::string name() const override { return "dist"; }

  void init_state(unsigned num_qubits) override {
    const unsigned ranks = resolved_ranks();
    QGEAR_CHECK_ARG(num_qubits >= 1, "dist: need at least one qubit");
    QGEAR_CHECK_ARG((std::uint64_t{1} << std::min(num_qubits, 32u)) >= ranks,
                    "dist: more ranks than amplitudes");
    circuit_.emplace(num_qubits);
    stats_.reset();
  }

  unsigned num_qubits() const override {
    return circuit_ ? circuit_->num_qubits() : 0;
  }

  void apply_circuit(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured) override {
    require_state();
    circuit_->compose(qc);
    if (measured != nullptr) {
      for (const qiskit::Instruction& inst : qc.instructions()) {
        if (inst.kind == qiskit::GateKind::measure) {
          measured->push_back(static_cast<unsigned>(inst.q0));
        }
      }
    }
  }

  sim::Counts sample(const std::vector<unsigned>& measured_qubits,
                     std::uint64_t shots, Rng& rng) override {
    require_state();
    // Replay with the requested qubits as the program's measurements so
    // keys pack exactly like the in-process backends (bit j = qubit
    // measured_qubits[j]); empty = implicit full measurement.
    qiskit::QuantumCircuit qc = unitary_part();
    for (unsigned q : measured_qubits) qc.measure(static_cast<int>(q));
    RunOptions ro = run_options();
    ro.shots = shots;
    ro.seed = rng();
    RunResult<double> result = run_distributed<double>(qc, ro);
    fold_rank_stats(result);
    return std::move(result.counts);
  }

  double expectation(const sim::PauliTerm& term) override {
    return sim::expectation(gathered_state(), term);
  }
  double expectation(const sim::Observable& obs) override {
    return sim::expectation(gathered_state(), obs);
  }

  std::uint64_t memory_estimate(
      const qiskit::QuantumCircuit& qc) const override {
    // Still a dense statevector — just partitioned. Cluster-wide bytes.
    constexpr std::uint64_t kAmpBytes = sizeof(std::complex<double>);
    const unsigned n = qc.num_qubits();
    if (n >= 60) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << n) * kAmpBytes;
  }

  const sim::EngineStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

 private:
  void require_state() const {
    QGEAR_CHECK_ARG(circuit_.has_value(),
                    "dist: init_state must precede use");
  }

  unsigned resolved_ranks() const {
    unsigned r = opts_.dist_ranks != 0 ? opts_.dist_ranks : 4;
    // Round down to a power of two (run_distributed requires it).
    while ((r & (r - 1)) != 0) r &= r - 1;
    return std::max(1u, r);
  }

  RunOptions run_options() const {
    RunOptions ro;
    ro.num_ranks = static_cast<int>(resolved_ranks());
    ro.fusion_width = opts_.fusion.max_width;
    ro.threads_per_rank = opts_.dist_threads_per_rank;
    return ro;
  }

  /// The accumulated circuit without its measure instructions (sampling
  /// re-adds the qubits the caller asks for).
  qiskit::QuantumCircuit unitary_part() const {
    qiskit::QuantumCircuit qc(circuit_->num_qubits(), circuit_->name());
    for (const qiskit::Instruction& inst : circuit_->instructions()) {
      if (inst.kind != qiskit::GateKind::measure) qc.append(inst);
    }
    return qc;
  }

  sim::StateVector<double> gathered_state() {
    require_state();
    const unsigned n = circuit_->num_qubits();
    QGEAR_CHECK_ARG(n <= 28,
                    "dist: expectation gathers the full state (n <= 28)");
    RunOptions ro = run_options();
    ro.gather_state = true;
    RunResult<double> result = run_distributed<double>(unitary_part(), ro);
    fold_rank_stats(result);
    sim::StateVector<double> state(n);
    QGEAR_ENSURES(result.state.size() == state.size());
    std::copy(result.state.begin(), result.state.end(), state.data());
    return state;
  }

  void fold_rank_stats(const RunResult<double>& result) {
    for (const sim::EngineStats& s : result.rank_stats) stats_ += s;
  }

  sim::BackendOptions opts_;
  std::optional<qiskit::QuantumCircuit> circuit_;
  sim::EngineStats stats_;
};

}  // namespace

void register_dist_backend() {
  sim::Backend::register_backend("dist", [](const sim::BackendOptions& o) {
    return std::unique_ptr<sim::Backend>(new DistBackend(o));
  });
}

}  // namespace qgear::dist
