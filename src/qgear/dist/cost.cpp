#include "qgear/dist/dist_state.hpp"

namespace qgear::dist {

std::uint64_t exchange_bytes_for(const qiskit::Instruction& inst,
                                 unsigned num_qubits, unsigned num_local,
                                 std::size_t amp_bytes) {
  using qiskit::GateKind;
  QGEAR_EXPECTS(num_local <= num_qubits);
  const std::uint64_t slab_bytes = pow2(num_local) * amp_bytes;
  const auto local = [num_local](int q) {
    return static_cast<unsigned>(q) < num_local;
  };

  switch (inst.kind) {
    case GateKind::barrier:
    case GateKind::measure:
    // Diagonal gates never communicate.
    case GateKind::z:
    case GateKind::s:
    case GateKind::sdg:
    case GateKind::t:
    case GateKind::tdg:
    case GateKind::rz:
    case GateKind::p:
    case GateKind::cz:
    case GateKind::cp:
      return 0;
    case GateKind::cx:
      if (local(inst.q1)) return 0;          // target local: no exchange
      if (local(inst.q0)) return slab_bytes / 2;  // control=1 half only
      return slab_bytes;                     // both global, full slab
    case GateKind::swap: {
      if (local(inst.q0) && local(inst.q1)) return 0;
      // Decomposed into three cx by the engine.
      std::uint64_t total = 0;
      total += exchange_bytes_for({GateKind::cx, inst.q0, inst.q1, 0.0},
                                  num_qubits, num_local, amp_bytes);
      total += exchange_bytes_for({GateKind::cx, inst.q1, inst.q0, 0.0},
                                  num_qubits, num_local, amp_bytes);
      total += exchange_bytes_for({GateKind::cx, inst.q0, inst.q1, 0.0},
                                  num_qubits, num_local, amp_bytes);
      return total;
    }
    default:
      // Non-diagonal single-qubit gates.
      return local(inst.q0) ? 0 : slab_bytes;
  }
}

}  // namespace qgear::dist
