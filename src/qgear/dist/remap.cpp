#include "qgear/dist/remap.hpp"

#include <algorithm>
#include <complex>

#include "qgear/common/bits.hpp"
#include "qgear/dist/dist_state.hpp"

namespace qgear::dist {

namespace {

using qiskit::GateKind;
using qiskit::Instruction;

bool is_diagonal_1q(GateKind k) {
  switch (k) {
    case GateKind::z:
    case GateKind::s:
    case GateKind::sdg:
    case GateKind::t:
    case GateKind::tdg:
    case GateKind::rz:
    case GateKind::p:
      return true;
    default:
      return false;
  }
}

// Does a physical-qubit instruction trigger a pairwise exchange under the
// baseline schedule? Mirrors exchange_bytes_for's case analysis.
bool triggers_exchange(const Instruction& inst, unsigned num_local) {
  switch (inst.kind) {
    case GateKind::barrier:
    case GateKind::measure:
    case GateKind::cz:
    case GateKind::cp:
      return false;
    case GateKind::cx:
      return static_cast<unsigned>(inst.q1) >= num_local;
    case GateKind::swap:
      return static_cast<unsigned>(inst.q0) >= num_local ||
             static_cast<unsigned>(inst.q1) >= num_local;
    default:
      return !is_diagonal_1q(inst.kind) &&
             static_cast<unsigned>(inst.q0) >= num_local;
  }
}

// Exchange cost, in half-slab units per rank, that a *logical* instruction
// would pay if logical qubit `q` sat on a global slot: 2 for a full-slab
// 1q exchange, 1 for the half-slab cx path. Swap gates are elided by the
// planner and weigh nothing.
int exchange_weight(const Instruction& inst, unsigned q) {
  switch (inst.kind) {
    case GateKind::cx:
      return static_cast<unsigned>(inst.q1) == q ? 1 : 0;
    case GateKind::barrier:
    case GateKind::measure:
    case GateKind::cz:
    case GateKind::cp:
    case GateKind::swap:
      return 0;
    default:
      return !is_diagonal_1q(inst.kind) &&
                     static_cast<unsigned>(inst.q0) == q
                 ? 2
                 : 0;
  }
}

// Total bytes across all ranks for one baseline per-gate exchange:
// per-rank bytes times the number of participating ranks (all ranks for
// 1q exchanges and local-control cx; the control=1 half of the ranks for
// global-control cx). swap decomposes into three cx like the engine.
std::uint64_t baseline_bytes_total(const Instruction& inst,
                                   unsigned num_qubits, unsigned num_local,
                                   std::size_t amp_bytes,
                                   std::uint64_t ranks) {
  if (inst.kind == GateKind::swap) {
    std::uint64_t total = 0;
    total += baseline_bytes_total({GateKind::cx, inst.q0, inst.q1, 0.0},
                                  num_qubits, num_local, amp_bytes, ranks);
    total += baseline_bytes_total({GateKind::cx, inst.q1, inst.q0, 0.0},
                                  num_qubits, num_local, amp_bytes, ranks);
    total += baseline_bytes_total({GateKind::cx, inst.q0, inst.q1, 0.0},
                                  num_qubits, num_local, amp_bytes, ranks);
    return total;
  }
  const std::uint64_t per_rank =
      exchange_bytes_for(inst, num_qubits, num_local, amp_bytes);
  if (per_rank == 0) return 0;
  std::uint64_t participants = ranks;
  if (inst.kind == GateKind::cx &&
      static_cast<unsigned>(inst.q0) >= num_local &&
      static_cast<unsigned>(inst.q1) >= num_local) {
    participants = ranks / 2;
  }
  return per_rank * participants;
}

}  // namespace

namespace {

/// One greedy planning pass with a fixed batch-width cap. The greedy
/// width interacts with the whole downstream schedule (each extra evicts
/// a local qubit whose later gates then pay per-gate), so plan_remap
/// prices several caps and keeps the cheapest.
RemapPlan plan_remap_width(const qiskit::QuantumCircuit& qc,
                           unsigned num_local, RemapOptions opts) {
  const unsigned n = qc.num_qubits();
  RemapPlan plan;
  plan.num_qubits = n;
  plan.num_local = num_local;

  std::vector<unsigned> l2p(n), p2l(n);
  for (unsigned q = 0; q < n; ++q) l2p[q] = p2l[q] = q;

  const auto& ops = qc.instructions();
  RemapSegment cur;
  auto flush_segment = [&] {
    if (cur.swaps.empty() && cur.insts.empty()) return;
    plan.segments.push_back(std::move(cur));
    cur = RemapSegment{};
  };

  // Rewrites a logical instruction into physical qubit ids. Measures keep
  // their logical qubit: the engine reports logical measure targets and
  // sampling resolves them through the final map.
  auto rewrite = [&](Instruction inst) {
    if (inst.kind == GateKind::measure || inst.kind == GateKind::barrier) {
      return inst;
    }
    inst.q0 = static_cast<int>(l2p[static_cast<unsigned>(inst.q0)]);
    if (inst.q1 >= 0) {
      inst.q1 = static_cast<int>(l2p[static_cast<unsigned>(inst.q1)]);
    }
    return inst;
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == GateKind::swap && opts.elide_swaps) {
      const unsigned a = static_cast<unsigned>(ops[i].q0);
      const unsigned b = static_cast<unsigned>(ops[i].q1);
      std::swap(p2l[l2p[a]], p2l[l2p[b]]);
      std::swap(l2p[a], l2p[b]);
      ++plan.elided_swap_gates;
      continue;
    }

    Instruction inst = rewrite(ops[i]);
    if (num_local < n && triggers_exchange(inst, num_local)) {
      // The qubit whose global position forces the exchange: the gate
      // target for cx, the operand itself for 1q unitaries.
      const unsigned offender_phys = static_cast<unsigned>(
          inst.kind == GateKind::cx ? inst.q1 : inst.q0);
      const unsigned offender = p2l[offender_phys];

      // Benefit of making the offender local, in half-slab units per
      // rank, over the lookahead window (a lone slab swap costs 1 unit).
      const std::size_t window =
          std::min(ops.size(), i + std::size_t{opts.lookahead});
      int saved = 0;
      for (std::size_t j = i; j < window; ++j) {
        saved += exchange_weight(ops[j], offender);
      }

      if (saved > 1) {
        // The batched exchange moves slab*(2^k-1)/2^k per rank, so the
        // marginal cost of the i-th swap added to the batch is 2^(1-i)
        // half-slab units: the trigger pays the full unit, every further
        // global qubit with any upcoming exchange weight rides along
        // almost free. Batch width is capped so groups stay coarse.
        const unsigned max_batch = std::min(
            {opts.max_batch, num_local, n - num_local});

        // Window weight per logical qubit, and Belady slot ranking: the
        // local slots whose qubits go longest without needing locality
        // themselves; ties resolve to the lowest slot.
        const auto window_weight = [&](unsigned q) {
          int w = 0;
          for (std::size_t j = i; j < window; ++j) {
            w += exchange_weight(ops[j], q);
          }
          return w;
        };
        std::vector<std::pair<std::size_t, unsigned>> slots;
        slots.reserve(num_local);
        for (unsigned slot = 0; slot < num_local; ++slot) {
          const unsigned lq = p2l[slot];
          std::size_t need = window;
          for (std::size_t j = i + 1; j < window; ++j) {
            if (exchange_weight(ops[j], lq) > 0) {
              need = j;
              break;
            }
          }
          slots.push_back({need, slot});
        }
        std::stable_sort(slots.begin(), slots.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });

        std::vector<unsigned> batch = {offender};
        if (max_batch > 1) {
          // Other globally-placed qubits ranked by their window weight.
          std::vector<std::pair<int, unsigned>> extras;
          for (unsigned q = 0; q < n; ++q) {
            if (q == offender || l2p[q] < num_local) continue;
            const int w = window_weight(q);
            if (w > 0) extras.push_back({w, q});
          }
          std::stable_sort(extras.begin(), extras.end(),
                           [](const auto& a, const auto& b) {
                             return a.first > b.first;
                           });
          for (const auto& [w, q] : extras) {
            if (batch.size() >= max_batch) break;
            batch.push_back(q);
          }
        }
        const unsigned k = static_cast<unsigned>(batch.size());

        // A slab swap re-bases the layout: pending instructions must run
        // on the old layout first, so the batch opens a new segment.
        if (!cur.insts.empty()) flush_segment();
        for (unsigned m = 0; m < k; ++m) {
          const unsigned victim = slots[m].second;
          const unsigned gphys = l2p[batch[m]];
          cur.swaps.push_back({victim, gphys});
          ++plan.slab_swaps;
          std::swap(p2l[victim], p2l[gphys]);
          l2p[p2l[victim]] = victim;
          l2p[p2l[gphys]] = gphys;
        }
        inst = rewrite(ops[i]);
      }
    }
    cur.insts.push_back(inst);
  }
  flush_segment();
  plan.logical_to_physical = std::move(l2p);
  return plan;
}

}  // namespace

RemapPlan plan_remap(const qiskit::QuantumCircuit& qc, unsigned num_local,
                     RemapOptions opts) {
  const unsigned n = qc.num_qubits();
  QGEAR_CHECK_ARG(num_local >= 1 && num_local <= n,
                  "remap: local qubit count out of range");
  QGEAR_CHECK_ARG(opts.max_batch >= 1, "remap: max_batch must be >= 1");
  // Greedy widening is not monotone: a wider batch (or longer window)
  // changes every later layout decision, and sometimes for the worse.
  // Plan once per width cap up to the requested maximum — at the full
  // and half lookahead — and keep the plan the cost model prices
  // cheapest (ties go to the earlier, narrower candidate — coarser slab
  // groups chunk better). Every rank computes the same winner, so tags
  // stay uniform.
  const unsigned cap =
      num_local < n ? std::min({opts.max_batch, num_local, n - num_local})
                    : 1;
  RemapPlan best;
  std::uint64_t best_bytes = 0;
  bool have_best = false;
  for (const unsigned look : {opts.lookahead, opts.lookahead / 2}) {
    if (look < 2 || (have_best && look == opts.lookahead)) continue;
    for (unsigned width = 1; width <= cap; ++width) {
      RemapOptions wopts = opts;
      wopts.lookahead = look;
      wopts.max_batch = width;
      RemapPlan plan = plan_remap_width(qc, num_local, wopts);
      const std::uint64_t bytes =
          plan_exchange_bytes_total(plan, sizeof(std::complex<double>));
      if (!have_best || bytes < best_bytes) {
        best = std::move(plan);
        best_bytes = bytes;
        have_best = true;
      }
    }
  }
  if (!have_best) best = plan_remap_width(qc, num_local, opts);
  return best;
}

std::uint64_t plan_exchange_bytes_total(const RemapPlan& plan,
                                        std::size_t amp_bytes) {
  const std::uint64_t ranks = pow2(plan.num_qubits - plan.num_local);
  const std::uint64_t slab = pow2(plan.num_local) * amp_bytes;
  std::uint64_t total = 0;
  for (const RemapSegment& seg : plan.segments) {
    // A k-wide batch executes as one exchange: every rank keeps 1 of its
    // 2^k slab groups and trades the rest, slab*(2^k-1)/2^k bytes each
    // (k = 1 degenerates to the classic half-slab swap).
    if (!seg.swaps.empty()) {
      const unsigned k = static_cast<unsigned>(seg.swaps.size());
      total += ranks * ((slab >> k) * (pow2(k) - 1));
    }
    for (const qiskit::Instruction& inst : seg.insts) {
      total += baseline_bytes_total(inst, plan.num_qubits, plan.num_local,
                                    amp_bytes, ranks);
    }
  }
  return total;
}

std::uint64_t schedule_exchange_bytes_total(const qiskit::QuantumCircuit& qc,
                                            unsigned num_local,
                                            std::size_t amp_bytes) {
  const unsigned n = qc.num_qubits();
  QGEAR_CHECK_ARG(num_local >= 1 && num_local <= n,
                  "remap: local qubit count out of range");
  const std::uint64_t ranks = pow2(n - num_local);
  std::uint64_t total = 0;
  for (const qiskit::Instruction& inst : qc.instructions()) {
    total += baseline_bytes_total(inst, n, num_local, amp_bytes, ranks);
  }
  return total;
}

}  // namespace qgear::dist
