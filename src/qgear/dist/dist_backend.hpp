// Distributed statevector as a sim::Backend.
//
// qgear_dist layers above qgear_sim, so the backend cannot self-register
// from the sim registry's translation unit — call register_dist_backend()
// once at program start (the CLI tools and dist tests do) and "dist"
// becomes creatable like any other name:
//
//   qgear::dist::register_dist_backend();
//   auto be = qgear::sim::Backend::create("dist", opts);
//
// Semantics are replay-based: apply_circuit accumulates the composed
// circuit, and each sample()/expectation() call replays it through
// run_distributed across BackendOptions::dist_ranks SPMD ranks. That
// keeps the one-shot SPMD driver untouched while conforming to the
// incremental Backend lifecycle.
#pragma once

#include "qgear/sim/backend.hpp"

namespace qgear::dist {

/// Registers the "dist" backend factory with sim::Backend. Idempotent.
void register_dist_backend();

}  // namespace qgear::dist
