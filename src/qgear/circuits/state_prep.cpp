#include "qgear/circuits/state_prep.hpp"

#include <cmath>
#include <numeric>

#include "qgear/circuits/ucr.hpp"
#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::circuits {

qiskit::QuantumCircuit prepare_state(
    std::span<const std::complex<double>> amplitudes) {
  QGEAR_CHECK_ARG(is_pow2(amplitudes.size()) && amplitudes.size() >= 2,
                  "prepare_state: need 2^n amplitudes, n >= 1");
  const unsigned n = log2_exact(amplitudes.size());

  std::vector<std::complex<double>> current(amplitudes.begin(),
                                            amplitudes.end());
  double norm2 = 0;
  for (const auto& a : current) norm2 += std::norm(a);
  QGEAR_CHECK_ARG(norm2 > 0, "prepare_state: zero state vector");
  const double inv_norm = 1.0 / std::sqrt(norm2);
  for (auto& a : current) a *= inv_norm;

  // Disentangler D with D|psi> = |0...0>: per round k, equalize the pair
  // phases with UCRz, rotate the pair magnitudes onto the first component
  // with UCRy, both targeting qubit k and controlled by qubits k+1..n-1.
  qiskit::QuantumCircuit disentangler(n, "state_prep_dg");
  for (unsigned k = 0; k < n; ++k) {
    const std::uint64_t pairs = current.size() / 2;
    std::vector<double> gamma(pairs);  // rz angles
    std::vector<double> beta(pairs);   // ry angles
    std::vector<std::complex<double>> next(pairs);
    for (std::uint64_t a = 0; a < pairs; ++a) {
      const std::complex<double> x = current[2 * a];
      const std::complex<double> y = current[2 * a + 1];
      const double ax = std::abs(x);
      const double ay = std::abs(y);
      const double px = ax > 0 ? std::arg(x) : 0.0;
      const double py = ay > 0 ? std::arg(y) : 0.0;
      // Rz(px - py) maps both components to the common phase (px+py)/2.
      gamma[a] = px - py;
      // Ry(-beta) with tan(beta/2) = |y|/|x| zeroes the second component.
      beta[a] = 2.0 * std::atan2(ay, ax);
      const double r = std::sqrt(ax * ax + ay * ay);
      const double mu = (ax > 0 || ay > 0) ? (px + py) / 2.0 : 0.0;
      next[a] = std::polar(r, mu);
    }
    std::vector<unsigned> controls(n - 1 - k);
    std::iota(controls.begin(), controls.end(), k + 1);
    // D applies Rz first, then Ry.
    append_ucr(disentangler, qiskit::GateKind::rz, controls,
               static_cast<int>(k), gamma);
    for (double& b : beta) b = -b;
    append_ucr(disentangler, qiskit::GateKind::ry, controls,
               static_cast<int>(k), beta);
    current = std::move(next);
  }
  // current is now a single complex of magnitude 1 (a global phase).

  qiskit::QuantumCircuit prep = disentangler.inverse();
  prep.set_name("state_prep");
  return prep;
}

std::uint64_t prepare_state_gate_bound(unsigned num_qubits) {
  // Each round k emits two UCRs of 2^(n-1-k) rotations each (plus the
  // same number of cx when controls exist); summed: 2 * (2^n - 1).
  return 2 * (pow2(num_qubits) - 1);
}

}  // namespace qgear::circuits
