// Quantum Fourier Transform kernel generator (paper Appendix D.2).
//
// A Hadamard layer interleaved with controlled phase (cr1) gates whose
// angles halve with distance, plus optional output bit-reversal swaps and
// the paper's negligible-angle approximation knob.
#pragma once

#include <complex>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::circuits {

struct QftOptions {
  /// Append the bit-reversal swap network so outputs land in natural
  /// order. Off matches the paper's "QFT circuit reverse activation" flag.
  bool do_swaps = true;
  /// Build the inverse QFT instead.
  bool inverse = false;
  /// Drop cr1 gates with |angle| below this (0 keeps everything); the
  /// paper uses this approximation to cut execution overhead.
  double angle_threshold = 0.0;
};

/// Builds the n-qubit QFT circuit.
qiskit::QuantumCircuit build_qft(unsigned num_qubits, QftOptions opts = {});

/// Analytic QFT of basis state |x>: amplitude k is
/// exp(2*pi*i*x*k / 2^n) / sqrt(2^n). Used as the test oracle.
std::vector<std::complex<double>> qft_of_basis_state(unsigned num_qubits,
                                                     std::uint64_t x);

/// Exact cr1-gate count of the full n-qubit QFT: n(n-1)/2.
std::uint64_t qft_cp_gate_count(unsigned num_qubits);

}  // namespace qgear::circuits
