// FRQI — Flexible Representation of Quantum Images (Le, Dong, Hirota
// 2011; the paper's ref [34]), implemented as the comparison image
// encoding to QCrank.
//
// FRQI stores 2^m pixels in m address qubits + ONE color qubit:
//   |I> = 2^{-m/2} sum_a (cos t_a |0> + sin t_a |1>) |a>,  t = (pi/2) p.
// Structurally it is QCrank with a single data qubit and a different
// angle map — same cx-per-pixel cost, but no data-qubit parallelism, so
// its circuit depth is ~n_data times worse for equal pixel budgets
// (tested in test_frqi.cpp; this is QCrank's headline advantage).
#pragma once

#include <span>

#include "qgear/image/image.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/sampler.hpp"

namespace qgear::circuits {

class Frqi {
 public:
  explicit Frqi(unsigned address_qubits);

  unsigned address_qubits() const { return address_qubits_; }
  unsigned total_qubits() const { return address_qubits_ + 1; }
  std::uint64_t capacity() const;

  /// Encodes `values` (each in [0,1]; size 2^m). Appends measure-all.
  qiskit::QuantumCircuit encode(std::span<const double> values) const;

  /// Recovers values from a measure-all histogram: for each address,
  /// p = (2/pi) * asin(sqrt(P(color=1|a))).
  std::vector<double> decode_counts(const sim::Counts& counts) const;

 private:
  unsigned address_qubits_;
};

}  // namespace qgear::circuits
