#include "qgear/circuits/qcrank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qgear/circuits/ucr.hpp"
#include "qgear/common/bits.hpp"

namespace qgear::circuits {

QCrank::QCrank(QCrankOptions opts) : opts_(opts) {
  QGEAR_CHECK_ARG(opts_.address_qubits >= 1 && opts_.address_qubits <= 20,
                  "qcrank: address qubits out of range");
  QGEAR_CHECK_ARG(opts_.data_qubits >= 1, "qcrank: need data qubits");
  QGEAR_CHECK_ARG(total_qubits() <= 34, "qcrank: too many qubits");
}

std::uint64_t QCrank::capacity() const {
  return pow2(opts_.address_qubits) * opts_.data_qubits;
}

std::vector<double> QCrank::ucry_angles(std::span<const double> alphas) {
  return ucr_angles(alphas);
}

void QCrank::append_ucry(qiskit::QuantumCircuit& qc, unsigned m, int target,
                         std::span<const double> alphas,
                         std::uint64_t start) {
  std::vector<unsigned> controls(m);
  std::iota(controls.begin(), controls.end(), 0u);
  append_ucr(qc, qiskit::GateKind::ry, controls, target, alphas, start);
}

qiskit::QuantumCircuit QCrank::encode(std::span<const double> values) const {
  QGEAR_CHECK_ARG(values.size() == capacity(),
                  "qcrank: value count must equal capacity");
  const unsigned m = opts_.address_qubits;
  const std::uint64_t addresses = pow2(m);

  qiskit::QuantumCircuit qc(total_qubits(),
                            "qcrank_a" + std::to_string(m) + "_d" +
                                std::to_string(opts_.data_qubits));
  for (unsigned q = 0; q < m; ++q) qc.h(static_cast<int>(q));

  // One UCRy plan per data qubit. The control-wire assignment is rotated
  // per chain — chain d's Gray walk uses control qubit (ruler(j)+d) mod m
  // at step j — so at every step concurrent chains hit DISTINCT address
  // qubits; emitting the chains step-interleaved then puts each step's
  // disjoint (control, target) cx pairs in one circuit layer. This is
  // QCrank's "high parallelism in the execution of the CX gate". The
  // angle vector is re-indexed to match the permuted address wiring.
  std::vector<UcrPlan> plans(opts_.data_qubits);
  std::vector<double> alphas(addresses);
  for (unsigned d = 0; d < opts_.data_qubits; ++d) {
    for (std::uint64_t a = 0; a < addresses; ++a) {
      const double p = values[a * opts_.data_qubits + d];
      QGEAR_CHECK_ARG(p >= 0.0 && p <= 1.0,
                      "qcrank: values must lie in [0, 1]");
      const double v = 2.0 * p - 1.0;
      alphas[a] = std::acos(std::clamp(v, -1.0, 1.0));
    }
    const unsigned rot = d % m;
    std::vector<unsigned> controls(m);
    for (unsigned j = 0; j < m; ++j) controls[j] = (j + rot) % m;
    std::vector<double> rotated(addresses);
    for (std::uint64_t a = 0; a < addresses; ++a) {
      std::uint64_t b = 0;
      for (unsigned j = 0; j < m; ++j) {
        b |= ((a >> controls[j]) & 1u) << j;
      }
      rotated[b] = alphas[a];
    }
    plans[d] = plan_ucr(controls, rotated);
  }
  for (std::uint64_t step = 0; step < addresses; ++step) {
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      qc.ry(plans[d].thetas[step], static_cast<int>(m + d));
    }
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      qc.cx(static_cast<int>(plans[d].cx_controls[step]),
            static_cast<int>(m + d));
    }
  }
  qc.measure_all();
  return qc;
}

std::vector<double> QCrank::decode_counts(const sim::Counts& counts) const {
  const unsigned m = opts_.address_qubits;
  const std::uint64_t addresses = pow2(m);
  const std::uint64_t addr_mask = addresses - 1;

  std::vector<std::uint64_t> total(addresses, 0);
  std::vector<std::uint64_t> ones(addresses * opts_.data_qubits, 0);
  for (const auto& [key, count] : counts) {
    const std::uint64_t a = key & addr_mask;
    total[a] += count;
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      if (test_bit(key, m + d)) {
        ones[a * opts_.data_qubits + d] += count;
      }
    }
  }

  std::vector<double> values(capacity(), 0.5);
  for (std::uint64_t a = 0; a < addresses; ++a) {
    if (total[a] == 0) continue;  // unobserved address: no information
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      const double p1 = static_cast<double>(ones[a * opts_.data_qubits + d]) /
                        static_cast<double>(total[a]);
      const double v = 1.0 - 2.0 * p1;
      values[a * opts_.data_qubits + d] = std::clamp((v + 1.0) / 2.0, 0.0,
                                                     1.0);
    }
  }
  return values;
}

std::vector<double> QCrank::decode_state(
    std::span<const std::complex<double>> state) const {
  QGEAR_CHECK_ARG(state.size() == pow2(total_qubits()),
                  "qcrank: state size mismatch");
  const unsigned m = opts_.address_qubits;
  const std::uint64_t addresses = pow2(m);
  const std::uint64_t addr_mask = addresses - 1;

  std::vector<double> total(addresses, 0.0);
  std::vector<double> ones(addresses * opts_.data_qubits, 0.0);
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    const double p = std::norm(state[i]);
    if (p == 0.0) continue;
    const std::uint64_t a = i & addr_mask;
    total[a] += p;
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      if (test_bit(i, m + d)) ones[a * opts_.data_qubits + d] += p;
    }
  }

  std::vector<double> values(capacity(), 0.5);
  for (std::uint64_t a = 0; a < addresses; ++a) {
    if (total[a] <= 0.0) continue;
    for (unsigned d = 0; d < opts_.data_qubits; ++d) {
      const double p1 = ones[a * opts_.data_qubits + d] / total[a];
      const double v = 1.0 - 2.0 * p1;
      values[a * opts_.data_qubits + d] = std::clamp((v + 1.0) / 2.0, 0.0,
                                                     1.0);
    }
  }
  return values;
}

qiskit::QuantumCircuit encode_image(const image::Image& img,
                                    const QCrankOptions& opts) {
  const QCrank codec(opts);
  QGEAR_CHECK_ARG(img.size() == codec.capacity(),
                  "qcrank: image pixel count must equal codec capacity");
  return codec.encode(img.pixels);
}

image::Image decode_to_image(std::span<const double> values, unsigned width,
                             unsigned height) {
  QGEAR_CHECK_ARG(values.size() ==
                      static_cast<std::size_t>(width) * height,
                  "qcrank: value count does not match image dimensions");
  image::Image img{width, height, {values.begin(), values.end()}};
  return img;
}

}  // namespace qgear::circuits
