// Uniformly controlled rotations (Möttönen et al., the paper's ref [27]).
//
// UCR(axis, alphas) applies R_axis(alpha_a) to a target qubit, selected
// by the basis state |a> of a control register. The Gray-code
// decomposition costs exactly 2^m rotations + 2^m cx for m controls —
// the primitive behind QCrank, FRQI and general state preparation.
#pragma once

#include <span>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::circuits {

/// Appends UCR_axis(alphas) to `qc`. `controls` lists the control qubits
/// in ascending address-bit order (bit j of the address a = controls[j]);
/// axis must be ry or rz. alphas.size() == 2^controls.size(); zero
/// controls degenerate to a plain rotation.
///
/// `start` rotates the Gray-code walk to begin at step `start` of the
/// cycle (angles are re-solved so the net operator is identical). QCrank
/// assigns each data qubit a different start so concurrent chains use
/// different control qubits at the same time step and the cx layers
/// interleave — the source of its depth advantage over FRQI.
void append_ucr(qiskit::QuantumCircuit& qc, qiskit::GateKind axis,
                std::span<const unsigned> controls, int target,
                std::span<const double> alphas, std::uint64_t start = 0);

/// The materialized gate sequence of one UCR: step j applies
/// R(thetas[j]) on the target followed by cx(cx_controls[j], target).
/// Callers that interleave several UCR chains (QCrank) emit the steps of
/// all chains round-robin so disjoint (control, target) pairs land in
/// the same circuit layer.
struct UcrPlan {
  std::vector<double> thetas;
  std::vector<unsigned> cx_controls;  ///< physical control qubit per step
};

UcrPlan plan_ucr(std::span<const unsigned> controls,
                 std::span<const double> alphas, std::uint64_t start = 0);

/// The Walsh/Gray angle transform shared by every UCR instance:
/// theta_i = 2^-m * sum_a (-1)^{popcount(a & gray(i))} alpha_a.
std::vector<double> ucr_angles(std::span<const double> alphas);

}  // namespace qgear::circuits
