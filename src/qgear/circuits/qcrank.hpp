// QCrank quantum image encoding (paper Appendix D.3; Balewski et al. 2024).
//
// Layout: qubits [0, m) are address qubits, qubits [m, m + n_data) are
// data qubits. The circuit puts the address register into uniform
// superposition, then applies one uniformly-controlled Ry (UCRy) per data
// qubit, decomposed into 2^m ry + 2^m cx pairs via the Gray-code /
// Walsh-transform construction — so the entangling-gate count equals the
// pixel count, the property Fig. 5 keys on.
//
// Value map: pixel p in [0,1] -> v = 2p - 1 in [-1,1] -> angle
// alpha = arccos(v). Measuring data qubit d given address a estimates
// P(1|a) = (1 - v)/2, so v_hat = 1 - 2 P_hat.
// Pixel order: value(a, d) = values[a * n_data + d].
#pragma once

#include <complex>
#include <span>

#include "qgear/image/image.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/sampler.hpp"

namespace qgear::circuits {

struct QCrankOptions {
  unsigned address_qubits = 4;  ///< m
  unsigned data_qubits = 2;
};

class QCrank {
 public:
  explicit QCrank(QCrankOptions opts);

  unsigned address_qubits() const { return opts_.address_qubits; }
  unsigned data_qubits() const { return opts_.data_qubits; }
  unsigned total_qubits() const {
    return opts_.address_qubits + opts_.data_qubits;
  }
  /// Pixels one circuit stores: 2^m * n_data.
  std::uint64_t capacity() const;

  /// Builds the encoding circuit for `values` (each in [0,1]; size must
  /// equal capacity()). Appends measure-all.
  qiskit::QuantumCircuit encode(std::span<const double> values) const;

  /// Recovers values from a measurement histogram (keys = measure-all
  /// packing: bit q of the key is qubit q). Addresses that received no
  /// shots decode to 0.5 (no information).
  std::vector<double> decode_counts(const sim::Counts& counts) const;

  /// Noise-free decode straight from the final state vector.
  std::vector<double> decode_state(
      std::span<const std::complex<double>> state) const;

  /// The Gray-code UCRy rotation angles for target angle vector `alphas`
  /// (size 2^m). Exposed for tests: theta = 2^-m * WHT(alpha) in Gray
  /// order.
  static std::vector<double> ucry_angles(std::span<const double> alphas);

  /// Appends UCRy(alphas) controlled on qubits [0, m), targeting
  /// `target`. `start` rotates the Gray walk (see ucr.hpp); QCrank gives
  /// every data qubit a distinct start so their cx layers interleave.
  static void append_ucry(qiskit::QuantumCircuit& qc, unsigned m,
                          int target, std::span<const double> alphas,
                          std::uint64_t start = 0);

 private:
  QCrankOptions opts_;
};

/// Flattens an image into QCrank value order for `config` and encodes it.
/// The image pixel count must equal the config capacity.
qiskit::QuantumCircuit encode_image(const image::Image& img,
                                    const QCrankOptions& opts);

/// Rebuilds an image from decoded values.
image::Image decode_to_image(std::span<const double> values, unsigned width,
                             unsigned height);

}  // namespace qgear::circuits
