// Random non-Clifford CX-block circuits (paper Appendix D.1).
//
// Each block applies two random single-qubit rotations (a paired ry/rz)
// followed by an entangling cx on a randomly drawn qubit pair — the
// workload behind Fig. 4a ("short" = 100 blocks, "long" = 10,000 blocks)
// and Fig. 4b (3,000 blocks).
#pragma once

#include <utility>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/core/tensor.hpp"
#include "qgear/qiskit/circuit.hpp"

namespace qgear::circuits {

struct RandomBlocksOptions {
  unsigned num_qubits = 4;
  std::uint64_t num_blocks = 100;  ///< CX blocks (paper: 100 / 3k / 10k)
  bool measure = true;             ///< append measure-all
  std::uint64_t seed = 1;
};

/// Draws `count` ordered qubit pairs (control, target), control != target,
/// uniformly with replacement — the paper's random_qubit_pairs.
std::vector<std::pair<int, int>> random_qubit_pairs(unsigned num_qubits,
                                                    std::size_t count,
                                                    Rng& rng);

/// Builds one random CX-block circuit (Algorithm 1).
qiskit::QuantumCircuit generate_random_circuit(
    const RandomBlocksOptions& opts);

/// Builds a batch of random circuits and encodes them into one gate tensor
/// — the paper's generate_random_gateList.
core::GateTensor generate_random_gate_list(std::size_t num_circuits,
                                           const RandomBlocksOptions& opts);

}  // namespace qgear::circuits
