// Arbitrary state preparation (Möttönen et al. 2004 — the paper's ref
// [27], "quantum circuits for general multiqubit gates").
//
// Builds a circuit C with C|0...0> = |psi> (up to global phase) for any
// target amplitude vector, via the disentangling construction: uniformly
// controlled Rz (phase equalization) and Ry (magnitude rotation) per
// qubit, each decomposed with the Gray-code UCR primitive. Gate cost is
// O(2^n), the known optimum for exact dense states.
#pragma once

#include <complex>
#include <span>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::circuits {

/// Builds the preparation circuit for `amplitudes` (size 2^n, n >= 1).
/// The vector is normalized internally; an all-zero vector is rejected.
/// The result satisfies |<psi|C|0>|^2 == 1.
qiskit::QuantumCircuit prepare_state(
    std::span<const std::complex<double>> amplitudes);

/// Exact rotation/cx gate count of prepare_state for n qubits:
/// 2 * (2^n - 1) rotations and the matching cx chains.
std::uint64_t prepare_state_gate_bound(unsigned num_qubits);

}  // namespace qgear::circuits
