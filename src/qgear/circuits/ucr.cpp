#include "qgear/circuits/ucr.hpp"

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::circuits {

namespace {
std::uint64_t gray(std::uint64_t i) { return i ^ (i >> 1); }
}  // namespace

std::vector<double> ucr_angles(std::span<const double> alphas) {
  QGEAR_CHECK_ARG(is_pow2(alphas.size()), "ucr: need 2^m angles");
  const unsigned m = log2_exact(alphas.size());
  std::vector<double> w(alphas.begin(), alphas.end());
  // Fast Walsh-Hadamard butterfly.
  for (unsigned bit = 0; bit < m; ++bit) {
    const std::uint64_t stride = pow2(bit);
    for (std::uint64_t i = 0; i < w.size(); i += 2 * stride) {
      for (std::uint64_t j = i; j < i + stride; ++j) {
        const double a = w[j];
        const double b = w[j + stride];
        w[j] = a + b;
        w[j + stride] = a - b;
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(pow2(m));
  std::vector<double> theta(w.size());
  for (std::uint64_t i = 0; i < w.size(); ++i) {
    theta[i] = scale * w[gray(i)];
  }
  return theta;
}

void append_ucr(qiskit::QuantumCircuit& qc, qiskit::GateKind axis,
                std::span<const unsigned> controls, int target,
                std::span<const double> alphas, std::uint64_t start) {
  using qiskit::GateKind;
  QGEAR_CHECK_ARG(axis == GateKind::ry || axis == GateKind::rz,
                  "ucr: axis must be ry or rz");
  const unsigned m = static_cast<unsigned>(controls.size());
  QGEAR_CHECK_ARG(alphas.size() == pow2(m), "ucr: angle count != 2^m");
  for (unsigned c : controls) {
    QGEAR_CHECK_ARG(static_cast<int>(c) != target,
                    "ucr: target cannot be a control");
  }

  auto rotate = [&](double theta) {
    if (axis == GateKind::ry) {
      qc.ry(theta, target);
    } else {
      qc.rz(theta, target);
    }
  };

  if (m == 0) {
    rotate(alphas[0]);
    return;
  }
  const UcrPlan plan = plan_ucr(controls, alphas, start);
  for (std::size_t j = 0; j < plan.thetas.size(); ++j) {
    rotate(plan.thetas[j]);
    qc.cx(static_cast<int>(plan.cx_controls[j]), target);
  }
}

UcrPlan plan_ucr(std::span<const unsigned> controls,
                 std::span<const double> alphas, std::uint64_t start) {
  const unsigned m = static_cast<unsigned>(controls.size());
  QGEAR_CHECK_ARG(m >= 1, "ucr plan: need at least one control");
  QGEAR_CHECK_ARG(alphas.size() == pow2(m), "ucr: angle count != 2^m");
  const std::uint64_t count = pow2(m);
  start &= count - 1;

  // Walsh transform W[b] = sum_a (-1)^{<a,b>} alpha_a (before the Gray
  // reindexing that ucr_angles applies).
  std::vector<double> w(alphas.begin(), alphas.end());
  for (unsigned bit = 0; bit < m; ++bit) {
    const std::uint64_t stride = pow2(bit);
    for (std::uint64_t i = 0; i < w.size(); i += 2 * stride) {
      for (std::uint64_t j = i; j < i + stride; ++j) {
        const double a = w[j];
        const double b = w[j + stride];
        w[j] = a + b;
        w[j + stride] = a - b;
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(count);

  // Rotated Gray walk: at step j we sit at cycle position i = start + j.
  // The cx mask accumulated before rotation j is gray(i) ^ gray(start),
  // so the angle solves to scale * W[gray(i) ^ gray(start)]. The control
  // bit after rotation j links gray(i) to gray(i+1) (cyclically).
  UcrPlan plan;
  plan.thetas.resize(count);
  plan.cx_controls.resize(count);
  const std::uint64_t g0 = gray(start);
  for (std::uint64_t j = 0; j < count; ++j) {
    const std::uint64_t i = (start + j) & (count - 1);
    const std::uint64_t next = (i + 1) & (count - 1);
    plan.thetas[j] = scale * w[gray(i) ^ g0];
    const std::uint64_t diff = gray(i) ^ gray(next);
    plan.cx_controls[j] = controls[log2_exact(diff)];
  }
  return plan;
}

}  // namespace qgear::circuits
