#include "qgear/circuits/random_blocks.hpp"

#include <cmath>

namespace qgear::circuits {

std::vector<std::pair<int, int>> random_qubit_pairs(unsigned num_qubits,
                                                    std::size_t count,
                                                    Rng& rng) {
  QGEAR_CHECK_ARG(num_qubits >= 2, "random_qubit_pairs: need >= 2 qubits");
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int c = static_cast<int>(rng.uniform_u64(num_qubits));
    int t = c;
    while (t == c) t = static_cast<int>(rng.uniform_u64(num_qubits));
    pairs.emplace_back(c, t);
  }
  return pairs;
}

qiskit::QuantumCircuit generate_random_circuit(
    const RandomBlocksOptions& opts) {
  QGEAR_CHECK_ARG(opts.num_qubits >= 2,
                  "generate_random_circuit: need >= 2 qubits");
  Rng rng(opts.seed);
  qiskit::QuantumCircuit qc(opts.num_qubits,
                            "cxblock_n" + std::to_string(opts.num_qubits) +
                                "_b" + std::to_string(opts.num_blocks));
  const auto pairs =
      random_qubit_pairs(opts.num_qubits, opts.num_blocks, rng);
  for (const auto& [c, t] : pairs) {
    // Two random paired rotations, theta ~ U[0, 2pi] (Algorithm 1), then
    // the entangling gate.
    qc.ry(rng.uniform(0, 2 * M_PI), c);
    qc.rz(rng.uniform(0, 2 * M_PI), t);
    qc.cx(c, t);
  }
  if (opts.measure) qc.measure_all();
  return qc;
}

core::GateTensor generate_random_gate_list(std::size_t num_circuits,
                                           const RandomBlocksOptions& opts) {
  QGEAR_CHECK_ARG(num_circuits >= 1,
                  "generate_random_gate_list: need >= 1 circuit");
  std::vector<qiskit::QuantumCircuit> batch;
  batch.reserve(num_circuits);
  for (std::size_t i = 0; i < num_circuits; ++i) {
    RandomBlocksOptions per = opts;
    per.seed = opts.seed + i;
    batch.push_back(generate_random_circuit(per));
  }
  // Circuits are already native-basis; skip re-transpilation.
  return core::encode_circuits(batch, {.transpile = false});
}

}  // namespace qgear::circuits
