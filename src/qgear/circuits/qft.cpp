#include "qgear/circuits/qft.hpp"

#include <cmath>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::circuits {

qiskit::QuantumCircuit build_qft(unsigned num_qubits, QftOptions opts) {
  QGEAR_CHECK_ARG(num_qubits >= 1, "qft: need at least one qubit");
  qiskit::QuantumCircuit qc(num_qubits,
                            std::string(opts.inverse ? "iqft" : "qft") +
                                std::to_string(num_qubits));
  // Standard little-endian construction: process qubits high to low; each
  // cr1 angle is pi / 2^(distance).
  for (int j = static_cast<int>(num_qubits) - 1; j >= 0; --j) {
    qc.h(j);
    for (int k = j - 1; k >= 0; --k) {
      const double angle = M_PI / static_cast<double>(pow2(j - k));
      if (opts.angle_threshold > 0 && std::abs(angle) < opts.angle_threshold) {
        continue;  // the paper's negligible-rotation approximation
      }
      qc.cr1(angle, k, j);
    }
  }
  if (opts.do_swaps) {
    for (unsigned i = 0; i < num_qubits / 2; ++i) {
      qc.swap(static_cast<int>(i), static_cast<int>(num_qubits - 1 - i));
    }
  }
  if (opts.inverse) {
    return qc.inverse();
  }
  return qc;
}

std::vector<std::complex<double>> qft_of_basis_state(unsigned num_qubits,
                                                     std::uint64_t x) {
  const std::uint64_t dim = pow2(num_qubits);
  QGEAR_CHECK_ARG(x < dim, "qft oracle: basis state out of range");
  std::vector<std::complex<double>> amps(dim);
  const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::uint64_t k = 0; k < dim; ++k) {
    const double phase = 2.0 * M_PI * static_cast<double>(x) *
                         static_cast<double>(k) / static_cast<double>(dim);
    amps[k] = std::polar(norm, phase);
  }
  return amps;
}

std::uint64_t qft_cp_gate_count(unsigned num_qubits) {
  return static_cast<std::uint64_t>(num_qubits) * (num_qubits - 1) / 2;
}

}  // namespace qgear::circuits
