#include "qgear/circuits/frqi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qgear/circuits/ucr.hpp"
#include "qgear/common/bits.hpp"

namespace qgear::circuits {

Frqi::Frqi(unsigned address_qubits) : address_qubits_(address_qubits) {
  QGEAR_CHECK_ARG(address_qubits >= 1 && address_qubits <= 24,
                  "frqi: address qubits out of range");
}

std::uint64_t Frqi::capacity() const { return pow2(address_qubits_); }

qiskit::QuantumCircuit Frqi::encode(std::span<const double> values) const {
  QGEAR_CHECK_ARG(values.size() == capacity(),
                  "frqi: value count must equal capacity");
  qiskit::QuantumCircuit qc(total_qubits(),
                            "frqi_a" + std::to_string(address_qubits_));
  for (unsigned q = 0; q < address_qubits_; ++q) qc.h(static_cast<int>(q));

  // UCRy rotates the color qubit by 2*t_a (our Ry(theta) rotates by
  // theta/2 in the Bloch half-angle convention: Ry(2t)|0> =
  // cos t |0> + sin t |1>).
  std::vector<double> alphas(values.size());
  for (std::size_t a = 0; a < values.size(); ++a) {
    const double p = values[a];
    QGEAR_CHECK_ARG(p >= 0.0 && p <= 1.0, "frqi: values must be in [0,1]");
    alphas[a] = 2.0 * (M_PI / 2.0) * p;
  }
  std::vector<unsigned> controls(address_qubits_);
  std::iota(controls.begin(), controls.end(), 0u);
  append_ucr(qc, qiskit::GateKind::ry, controls,
             static_cast<int>(address_qubits_), alphas);
  qc.measure_all();
  return qc;
}

std::vector<double> Frqi::decode_counts(const sim::Counts& counts) const {
  const std::uint64_t addresses = capacity();
  const std::uint64_t addr_mask = addresses - 1;
  std::vector<std::uint64_t> total(addresses, 0), ones(addresses, 0);
  for (const auto& [key, count] : counts) {
    const std::uint64_t a = key & addr_mask;
    total[a] += count;
    if (test_bit(key, address_qubits_)) ones[a] += count;
  }
  std::vector<double> values(addresses, 0.5);
  for (std::uint64_t a = 0; a < addresses; ++a) {
    if (total[a] == 0) continue;
    const double p1 = static_cast<double>(ones[a]) /
                      static_cast<double>(total[a]);
    // P(1|a) = sin^2(t_a), t = (pi/2) p.
    const double t = std::asin(std::sqrt(std::clamp(p1, 0.0, 1.0)));
    values[a] = std::clamp(t / (M_PI / 2.0), 0.0, 1.0);
  }
  return values;
}

}  // namespace qgear::circuits
