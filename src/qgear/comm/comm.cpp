#include "qgear/comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <thread>

#include "qgear/fault/fault.hpp"
#include "qgear/obs/metrics.hpp"

namespace qgear::comm {

namespace {

// Cached metric references (first lookup takes the registry mutex).
obs::Counter& messages_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.messages");
  return c;
}

obs::Counter& bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.bytes");
  return c;
}

obs::Counter& barriers_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.barriers");
  return c;
}

obs::Histogram& barrier_wait_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("comm.barrier_wait_us");
  return h;
}

obs::Counter& chunks_dropped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.chunks_dropped");
  return c;
}

obs::Counter& chunks_resent_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.chunks_resent");
  return c;
}

obs::Counter& resend_requests_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.resend_requests");
  return c;
}

obs::Counter& chunk_timeouts_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.chunk_timeouts");
  return c;
}

// Resilient-exchange control plane. Control messages ride a tag derived
// from the data tag: negative, below the broadcast tag (-42), so they
// never collide with op tags [0, 2^28), sampler tags (>= 2^28), or
// broadcasts. Layout: [u8 opcode][u64 offset].
constexpr std::uint8_t kCtrlResend = 1;
constexpr std::uint8_t kCtrlDone = 2;

int ctrl_tag_for(int tag) { return -tag - 100; }

std::vector<std::uint8_t> encode_ctrl(std::uint8_t opcode,
                                      std::uint64_t offset) {
  std::vector<std::uint8_t> msg(1 + sizeof(offset));
  msg[0] = opcode;
  std::memcpy(msg.data() + 1, &offset, sizeof(offset));
  return msg;
}

/// Microsecond stopwatch for wait-time histograms.
class WaitTimer {
 public:
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

// ---- Topology ----------------------------------------------------------

const char* tier_name(Tier t) {
  return t == Tier::nvlink ? "nvlink" : "internode";
}

std::uint64_t auto_chunk_bytes(std::uint64_t message_bytes, Tier tier) {
  // Below this, framing and per-chunk mailbox traffic cost more than any
  // pipelining buys back.
  constexpr std::uint64_t kOneShotLimit = 64ull << 10;
  if (message_bytes <= kOneShotLimit) return 0;
  if (tier == Tier::nvlink) {
    // Fast links: few large chunks keep per-message overhead negligible
    // while still letting receivers start early.
    return std::clamp<std::uint64_t>(message_bytes / 4, 256ull << 10,
                                     4ull << 20);
  }
  // Slow links: more, smaller chunks so the receive pipeline stays fed and
  // re-sends (resilient path) retransmit less.
  return std::clamp<std::uint64_t>(message_bytes / 8, 128ull << 10,
                                   1ull << 20);
}

// ---- Communicator ------------------------------------------------------

int Communicator::size() const { return world_->size(); }

const Topology& Communicator::topology() const { return world_->topology(); }

void Communicator::send(int dest, int tag,
                        std::span<const std::uint8_t> data) {
  QGEAR_CHECK_ARG(dest >= 0 && dest < size(), "comm: destination out of range");
  QGEAR_CHECK_ARG(dest != rank_, "comm: self-send is not supported");
  world_->deliver(rank_, dest, tag, data);
  bytes_sent_ += data.size();
  messages_counter().add();
  bytes_counter().add(data.size());
}

std::vector<std::uint8_t> Communicator::recv(int src, int tag) {
  QGEAR_CHECK_ARG(src >= 0 && src < size(), "comm: source out of range");
  QGEAR_CHECK_ARG(src != rank_, "comm: self-receive is not supported");
  return world_->take(src, rank_, tag);
}

std::vector<std::uint8_t> Communicator::sendrecv(
    int peer, int tag, std::span<const std::uint8_t> data) {
  // Buffered sends make matched sendrecv pairs deadlock-free.
  send(peer, tag, data);
  return recv(peer, tag);
}

bool Communicator::try_recv(int src, int tag,
                            std::vector<std::uint8_t>& out) {
  QGEAR_CHECK_ARG(src >= 0 && src < size(), "comm: source out of range");
  QGEAR_CHECK_ARG(src != rank_, "comm: self-receive is not supported");
  return world_->try_take(src, rank_, tag, out);
}

void Communicator::send_chunk_framed(int peer, int tag, std::uint64_t offset,
                                     std::span<const std::uint8_t> payload) {
  fault::maybe_delay(fault::Site::comm_delay);
  if (fault::should_inject(fault::Site::comm_drop)) {
    // Model a lost packet: the message is never delivered. The peer's
    // receive timeout + re-send request recovers it.
    chunks_dropped_counter().add();
    return;
  }
  std::vector<std::uint8_t> msg(sizeof(offset) + payload.size());
  std::memcpy(msg.data(), &offset, sizeof(offset));
  std::memcpy(msg.data() + sizeof(offset), payload.data(), payload.size());
  send(peer, tag, msg);
}

void Communicator::sendrecv_chunked_resilient(
    int peer, int tag, std::span<const std::uint8_t> data,
    std::uint64_t chunk_bytes, const ResilienceOptions& resilience,
    const std::function<void(std::uint64_t, std::span<const std::uint8_t>)>&
        consume) {
  QGEAR_CHECK_ARG(peer >= 0 && peer < size() && peer != rank_,
                  "comm: resilient exchange peer out of range");
  QGEAR_CHECK_ARG(tag >= 0 && tag < std::numeric_limits<int>::max() - 100,
                  "comm: resilient exchange needs a non-negative tag");
  const std::uint64_t n = data.size();
  if (chunk_bytes == 0 || chunk_bytes > n) chunk_bytes = n;
  const std::uint64_t num_chunks =
      (n == 0) ? 0 : (n + chunk_bytes - 1) / chunk_bytes;
  const int ctrl = ctrl_tag_for(tag);
  const auto timeout = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(resilience.timeout_s));

  auto chunk_at = [&](std::uint64_t idx) {
    const std::uint64_t off = idx * chunk_bytes;
    return data.subspan(off, std::min(chunk_bytes, n - off));
  };
  for (std::uint64_t idx = 0; idx < num_chunks; ++idx) {
    send_chunk_framed(peer, tag, idx * chunk_bytes, chunk_at(idx));
  }

  std::vector<bool> have(num_chunks, false);
  std::uint64_t have_count = 0;
  std::vector<unsigned> resends(num_chunks, 0);
  bool sent_done = false;
  bool peer_done = false;
  unsigned idle_timeouts = 0;
  auto deadline = std::chrono::steady_clock::now() + timeout;

  while (have_count < num_chunks || !peer_done) {
    if (have_count == num_chunks && !sent_done) {
      send(peer, ctrl, encode_ctrl(kCtrlDone, 0));
      sent_done = true;
    }
    std::vector<std::uint8_t> msg;
    int got_tag = 0;
    if (!world_->take_any_until(peer, rank_, tag, ctrl, deadline, msg,
                                &got_tag)) {
      chunk_timeouts_counter().add();
      if (have_count == num_chunks) {
        // Everything here; just waiting for the peer's DONE. The peer is
        // either still computing or still recovering chunks from us (its
        // re-send requests land on the ctrl tag and reset this counter).
        if (++idle_timeouts > resilience.max_resends) {
          throw CommError("comm: timed out waiting for peer " +
                          std::to_string(peer) +
                          " to finish resilient exchange");
        }
        deadline = std::chrono::steady_clock::now() + timeout;
        continue;
      }
      // Ask the peer to re-send every chunk still missing.
      for (std::uint64_t idx = 0; idx < num_chunks; ++idx) {
        if (have[idx]) continue;
        if (resends[idx] >= resilience.max_resends) {
          throw CommError(
              "comm: chunk at offset " + std::to_string(idx * chunk_bytes) +
              " from rank " + std::to_string(peer) + " lost after " +
              std::to_string(resilience.max_resends) + " re-send requests");
        }
        ++resends[idx];
        resend_requests_counter().add();
        send(peer, ctrl, encode_ctrl(kCtrlResend, idx * chunk_bytes));
      }
      deadline = std::chrono::steady_clock::now() + timeout;
      continue;
    }
    idle_timeouts = 0;
    deadline = std::chrono::steady_clock::now() + timeout;
    if (got_tag == tag) {
      QGEAR_CHECK_FORMAT(msg.size() >= sizeof(std::uint64_t),
                         "comm: resilient chunk shorter than its frame");
      std::uint64_t offset = 0;
      std::memcpy(&offset, msg.data(), sizeof(offset));
      QGEAR_CHECK_FORMAT(offset < n && offset % chunk_bytes == 0,
                         "comm: resilient chunk offset out of range");
      const std::uint64_t idx = offset / chunk_bytes;
      const std::uint64_t expect = std::min(chunk_bytes, n - offset);
      QGEAR_CHECK_FORMAT(msg.size() - sizeof(offset) == expect,
                         "comm: resilient chunk size mismatch");
      if (have[idx]) continue;  // duplicate from a crossed re-send
      have[idx] = true;
      ++have_count;
      consume(offset,
              {msg.data() + sizeof(offset), msg.size() - sizeof(offset)});
    } else {
      QGEAR_CHECK_FORMAT(msg.size() == 1 + sizeof(std::uint64_t),
                         "comm: malformed resilient control message");
      std::uint64_t offset = 0;
      std::memcpy(&offset, msg.data() + 1, sizeof(offset));
      switch (msg[0]) {
        case kCtrlDone:
          peer_done = true;
          break;
        case kCtrlResend: {
          QGEAR_CHECK_FORMAT(offset < n && offset % chunk_bytes == 0,
                             "comm: re-send request offset out of range");
          chunks_resent_counter().add();
          send_chunk_framed(peer, tag, offset, chunk_at(offset / chunk_bytes));
          break;
        }
        default:
          throw FormatError("comm: unknown resilient control opcode");
      }
    }
  }
  // The loop exits without announcing completion when the peer's DONE
  // arrived before our own last chunk did: the final receive satisfies
  // both exit conditions at once. The peer is still waiting for our DONE.
  if (!sent_done) send(peer, ctrl, encode_ctrl(kCtrlDone, 0));
}

void Communicator::barrier() {
  const WaitTimer wait;
  barriers_counter().add();
  std::unique_lock<std::mutex> lock(world_->mutex_);
  world_->check_alive(rank_);
  const std::uint64_t gen = world_->barrier_generation_;
  const int live = size() - static_cast<int>(std::count(
                                world_->failed_.begin(),
                                world_->failed_.end(), true));
  if (++world_->barrier_waiting_ >= live) {
    world_->barrier_waiting_ = 0;
    ++world_->barrier_generation_;
    world_->cv_.notify_all();
    barrier_wait_hist().observe(wait.elapsed_us());
    return;
  }
  world_->cv_.wait(lock, [&] {
    return world_->barrier_generation_ != gen || world_->failed_[rank_];
  });
  if (world_->failed_[rank_]) throw CommError("comm: rank failed in barrier");
  barrier_wait_hist().observe(wait.elapsed_us());
}

double Communicator::allreduce_sum(double local) {
  std::unique_lock<std::mutex> lock(world_->mutex_);
  world_->check_alive(rank_);
  const std::uint64_t gen = world_->reduce_generation_;
  world_->reduce_accum_ += local;
  if (++world_->reduce_count_ >= size()) {
    world_->reduce_result_ = world_->reduce_accum_;
    world_->reduce_accum_ = 0.0;
    world_->reduce_count_ = 0;
    ++world_->reduce_generation_;
    world_->cv_.notify_all();
    return world_->reduce_result_;
  }
  world_->cv_.wait(lock, [&] {
    return world_->reduce_generation_ != gen || world_->failed_[rank_];
  });
  if (world_->failed_[rank_])
    throw CommError("comm: rank failed in allreduce");
  return world_->reduce_result_;
}

void Communicator::broadcast(std::vector<std::uint8_t>& data, int root) {
  QGEAR_CHECK_ARG(root >= 0 && root < size(), "comm: root out of range");
  constexpr int kBcastTag = -42;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag);
  }
}

// ---- BatchExchange -----------------------------------------------------

BatchExchange::BatchExchange(Communicator& comm, int tag,
                             std::vector<ExchangeRound> rounds,
                             ResilienceOptions resilience)
    : comm_(comm),
      tag_(tag),
      ctrl_(ctrl_tag_for(tag)),
      rounds_(std::move(rounds)),
      resilience_(resilience),
      resilient_(resilience.timeout_s > 0.0) {
  QGEAR_CHECK_ARG(tag >= 0 && tag < std::numeric_limits<int>::max() - 100,
                  "comm: batch exchange needs a non-negative tag");
  st_.resize(rounds_.size());
  peer_of_.reserve(rounds_.size());
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    const ExchangeRound& round = rounds_[r];
    QGEAR_CHECK_ARG(round.peer >= 0 && round.peer < comm_.size() &&
                        round.peer != comm_.rank(),
                    "comm: batch exchange peer out of range");
    QGEAR_CHECK_ARG(!round.send.empty() && round.recv_bytes > 0,
                    "comm: batch exchange round must move data both ways");
    for (std::size_t q = 0; q < r; ++q) {
      QGEAR_CHECK_ARG(rounds_[q].peer != round.peer,
                      "comm: batch exchange peers must be distinct");
    }
    RoundState& st = st_[r];
    // Both sides must resolve the same chunk size for a leg; deriving from
    // max(send, recv) is symmetric under the swap of perspective, and the
    // tier is symmetric by construction.
    std::uint64_t cb = round.chunk_bytes;
    if (cb == 0) {
      cb = auto_chunk_bytes(
          std::max<std::uint64_t>(round.send.size(), round.recv_bytes),
          comm_.tier_to(round.peer));
    }
    if (cb == 0) {
      cb = std::max<std::uint64_t>(round.send.size(), round.recv_bytes);
    }
    st.chunk_bytes = cb;
    st.num_chunks = (round.recv_bytes + cb - 1) / cb;
    st.have.assign(st.num_chunks, false);
    if (resilient_) {
      st.resends.assign(st.num_chunks, 0);
    } else {
      st.peer_done = true;  // the lossless path has no DONE handshake
    }
    peer_of_.push_back(round.peer);
  }
  order_.resize(rounds_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return round_tier(a) < round_tier(b);
                   });
}

void BatchExchange::send_chunk(std::size_t r, std::uint64_t offset) {
  const ExchangeRound& round = rounds_[r];
  const std::uint64_t len =
      std::min<std::uint64_t>(st_[r].chunk_bytes, round.send.size() - offset);
  const std::span<const std::uint8_t> payload = round.send.subspan(offset, len);
  if (resilient_) {
    comm_.send_chunk_framed(round.peer, tag_, offset, payload);
  } else {
    // Unframed: per-pair FIFO delivery keeps chunks in order on the
    // lossless path, so the receiver tracks the offset itself and the
    // wire carries payload bytes only (the trace stays frame-free).
    comm_.send(round.peer, tag_, payload);
  }
  tier_bytes_[static_cast<std::size_t>(round_tier(r))] += len;
}

void BatchExchange::post() {
  QGEAR_EXPECTS(!posted_);
  posted_ = true;
  for (const std::size_t r : order_) {
    const std::uint64_t n = rounds_[r].send.size();
    for (std::uint64_t off = 0; off < n; off += st_[r].chunk_bytes) {
      send_chunk(r, off);
    }
  }
}

bool BatchExchange::process(std::size_t r, int got_tag,
                            std::vector<std::uint8_t>& msg,
                            const ConsumeFn& consume) {
  RoundState& st = st_[r];
  const ExchangeRound& round = rounds_[r];
  if (got_tag == tag_) {
    std::uint64_t offset = 0;
    std::size_t header = 0;
    if (resilient_) {
      QGEAR_CHECK_FORMAT(msg.size() >= sizeof(std::uint64_t),
                         "comm: exchange chunk shorter than its frame");
      std::memcpy(&offset, msg.data(), sizeof(offset));
      header = sizeof(offset);
    } else {
      // Unframed chunks arrive in per-pair FIFO order; the cursor is the
      // offset.
      offset = st.next_offset;
    }
    QGEAR_CHECK_FORMAT(
        offset < round.recv_bytes && offset % st.chunk_bytes == 0,
        "comm: exchange chunk offset out of range");
    const std::uint64_t idx = offset / st.chunk_bytes;
    const std::uint64_t expect =
        std::min<std::uint64_t>(st.chunk_bytes, round.recv_bytes - offset);
    QGEAR_CHECK_FORMAT(msg.size() - header == expect,
                       "comm: exchange chunk size mismatch");
    if (st.have[idx]) return false;  // duplicate from a crossed re-send
    st.have[idx] = true;
    ++st.have_count;
    if (!resilient_) st.next_offset = offset + expect;
    consume(r, offset, {msg.data() + header, msg.size() - header});
    maybe_send_done(r);
    return true;
  }
  QGEAR_CHECK_FORMAT(msg.size() == 1 + sizeof(std::uint64_t),
                     "comm: malformed exchange control message");
  std::uint64_t offset = 0;
  std::memcpy(&offset, msg.data() + 1, sizeof(offset));
  switch (msg[0]) {
    case kCtrlDone:
      st.peer_done = true;
      break;
    case kCtrlResend: {
      QGEAR_CHECK_FORMAT(
          offset < round.send.size() && offset % st.chunk_bytes == 0,
          "comm: re-send request offset out of range");
      chunks_resent_counter().add();
      send_chunk(r, offset);
      break;
    }
    default:
      throw FormatError("comm: unknown exchange control opcode");
  }
  return false;
}

void BatchExchange::maybe_send_done(std::size_t r) {
  RoundState& st = st_[r];
  if (!resilient_ || st.sent_done || st.have_count < st.num_chunks) return;
  comm_.send(peer_of_[r], ctrl_, encode_ctrl(kCtrlDone, 0));
  st.sent_done = true;
}

void BatchExchange::request_missing(std::size_t r) {
  RoundState& st = st_[r];
  for (std::uint64_t idx = 0; idx < st.num_chunks; ++idx) {
    if (st.have[idx]) continue;
    if (st.resends[idx] >= resilience_.max_resends) {
      throw CommError(
          "comm: chunk at offset " + std::to_string(idx * st.chunk_bytes) +
          " from rank " + std::to_string(peer_of_[r]) + " lost after " +
          std::to_string(resilience_.max_resends) + " re-send requests");
    }
    ++st.resends[idx];
    resend_requests_counter().add();
    comm_.send(peer_of_[r], ctrl_, encode_ctrl(kCtrlResend,
                                               idx * st.chunk_bytes));
  }
}

bool BatchExchange::poll(const ConsumeFn& consume) {
  QGEAR_EXPECTS(posted_);
  bool consumed = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t r = 0; r < rounds_.size(); ++r) {
      std::vector<std::uint8_t> msg;
      if (comm_.try_recv(peer_of_[r], tag_, msg)) {
        consumed |= process(r, tag_, msg, consume);
        progress = true;
      }
      if (resilient_ && comm_.try_recv(peer_of_[r], ctrl_, msg)) {
        process(r, ctrl_, msg, consume);
        progress = true;
      }
    }
  }
  return consumed;
}

void BatchExchange::wait(const ConsumeFn& consume) {
  QGEAR_EXPECTS(posted_);
  if (done()) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      (resilient_ ? std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(resilience_.timeout_s))
                  : std::chrono::steady_clock::duration(
                        std::chrono::hours(1)));
  std::vector<std::uint8_t> msg;
  int got_src = 0;
  int got_tag = 0;
  if (comm_.world_->take_from_set(peer_of_, comm_.rank(), tag_, ctrl_,
                                  deadline, msg, &got_src, &got_tag)) {
    idle_timeouts_ = 0;
    for (std::size_t r = 0; r < peer_of_.size(); ++r) {
      if (peer_of_[r] == got_src) {
        process(r, got_tag, msg, consume);
        return;
      }
    }
    throw LogicViolation("comm: exchange message from unexpected rank");
  }
  chunk_timeouts_counter().add();
  if (!resilient_) {
    throw CommError("comm: batch exchange stalled (no resilience enabled)");
  }
  bool missing = false;
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    if (st_[r].have_count < st_[r].num_chunks) {
      request_missing(r);
      missing = true;
    }
  }
  if (!missing && ++idle_timeouts_ > resilience_.max_resends) {
    // Everything here; peers are either still computing or recovering
    // chunks from us, but the budget for silent waits is spent.
    throw CommError(
        "comm: timed out waiting for peers to finish batch exchange");
  }
}

void BatchExchange::finish(const ConsumeFn& consume) {
  QGEAR_EXPECTS(posted_);
  while (!done()) {
    if (poll(consume)) continue;
    wait(consume);
  }
}

bool BatchExchange::done() const {
  for (const RoundState& st : st_) {
    if (st.have_count < st.num_chunks || !st.peer_done) return false;
  }
  return true;
}

// ---- World -------------------------------------------------------------

World::World(int size) : size_(size) {
  QGEAR_CHECK_ARG(size >= 1, "comm: world size must be >= 1");
  mailboxes_.resize(static_cast<std::size_t>(size) * size);
  failed_.assign(size, false);
}

void World::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(size_);
  std::vector<std::exception_ptr> errors(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      Communicator c(this, r);
      try {
        fn(c);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that might be waiting on this rank forever.
        inject_failure(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void World::execute(int size, const std::function<void(Communicator&)>& fn) {
  World w(size);
  w.run(fn);
}

void World::inject_failure(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  QGEAR_CHECK_ARG(rank >= 0 && rank < size_, "comm: rank out of range");
  failed_[rank] = true;
  // Release a barrier that is now satisfiable with fewer live ranks.
  const int live = size_ - static_cast<int>(std::count(
                               failed_.begin(), failed_.end(), true));
  if (barrier_waiting_ > 0 && barrier_waiting_ >= live) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
  }
  cv_.notify_all();
}

void World::clear_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.entries.clear();
  trace_.total_bytes = 0;
}

void World::deliver(int src, int dst, int tag,
                    std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_alive(src);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  box.queue.push_back({tag, {data.begin(), data.end()}});
  trace_.record(src, dst, data.size(), tag);
  cv_.notify_all();
}

std::vector<std::uint8_t> World::take(int src, int dst, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [tag](const Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      std::vector<std::uint8_t> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    if (failed_[src]) {
      throw CommError("comm: receive from failed rank " +
                      std::to_string(src));
    }
    cv_.wait(lock);
    if (failed_[dst]) throw CommError("comm: receiving rank failed");
  }
}

bool World::take_any_until(int src, int dst, int tag_a, int tag_b,
                           std::chrono::steady_clock::time_point deadline,
                           std::vector<std::uint8_t>& out, int* got_tag) {
  return take_from_set({&src, 1}, dst, tag_a, tag_b, deadline, out, nullptr,
                       got_tag);
}

bool World::take_from_set(std::span<const int> srcs, int dst, int tag_a,
                          int tag_b,
                          std::chrono::steady_clock::time_point deadline,
                          std::vector<std::uint8_t>& out, int* got_src,
                          int* got_tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_alive(dst);
  auto scan = [&]() -> bool {
    for (const int src : srcs) {
      Mailbox& box = mailbox(src, dst);
      auto it = std::find_if(box.queue.begin(), box.queue.end(),
                             [tag_a, tag_b](const Message& m) {
                               return m.tag == tag_a || m.tag == tag_b;
                             });
      if (it == box.queue.end()) continue;
      out = std::move(it->data);
      if (got_src != nullptr) *got_src = src;
      if (got_tag != nullptr) *got_tag = it->tag;
      box.queue.erase(it);
      return true;
    }
    return false;
  };
  for (;;) {
    if (scan()) return true;
    for (const int src : srcs) {
      if (failed_[src]) {
        throw CommError("comm: receive from failed rank " +
                        std::to_string(src));
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: a message may have raced the deadline.
      return scan();
    }
    if (failed_[dst]) throw CommError("comm: receiving rank failed");
  }
}

bool World::try_take(int src, int dst, int tag,
                     std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_alive(src);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [tag](const Message& m) { return m.tag == tag; });
  if (it == box.queue.end()) return false;
  out = std::move(it->data);
  box.queue.erase(it);
  return true;
}

void World::check_alive(int rank) const {
  if (failed_[rank]) {
    throw CommError("comm: rank " + std::to_string(rank) + " has failed");
  }
}

}  // namespace qgear::comm
