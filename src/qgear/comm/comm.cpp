#include "qgear/comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "qgear/obs/metrics.hpp"

namespace qgear::comm {

namespace {

// Cached metric references (first lookup takes the registry mutex).
obs::Counter& messages_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.messages");
  return c;
}

obs::Counter& bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.bytes");
  return c;
}

obs::Counter& barriers_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.barriers");
  return c;
}

obs::Histogram& barrier_wait_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("comm.barrier_wait_us");
  return h;
}

/// Microsecond stopwatch for wait-time histograms.
class WaitTimer {
 public:
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

// ---- Communicator ------------------------------------------------------

int Communicator::size() const { return world_->size(); }

void Communicator::send(int dest, int tag,
                        std::span<const std::uint8_t> data) {
  QGEAR_CHECK_ARG(dest >= 0 && dest < size(), "comm: destination out of range");
  QGEAR_CHECK_ARG(dest != rank_, "comm: self-send is not supported");
  world_->deliver(rank_, dest, tag, data);
  bytes_sent_ += data.size();
  messages_counter().add();
  bytes_counter().add(data.size());
}

std::vector<std::uint8_t> Communicator::recv(int src, int tag) {
  QGEAR_CHECK_ARG(src >= 0 && src < size(), "comm: source out of range");
  QGEAR_CHECK_ARG(src != rank_, "comm: self-receive is not supported");
  return world_->take(src, rank_, tag);
}

std::vector<std::uint8_t> Communicator::sendrecv(
    int peer, int tag, std::span<const std::uint8_t> data) {
  // Buffered sends make matched sendrecv pairs deadlock-free.
  send(peer, tag, data);
  return recv(peer, tag);
}

bool Communicator::try_recv(int src, int tag,
                            std::vector<std::uint8_t>& out) {
  QGEAR_CHECK_ARG(src >= 0 && src < size(), "comm: source out of range");
  QGEAR_CHECK_ARG(src != rank_, "comm: self-receive is not supported");
  return world_->try_take(src, rank_, tag, out);
}

void Communicator::barrier() {
  const WaitTimer wait;
  barriers_counter().add();
  std::unique_lock<std::mutex> lock(world_->mutex_);
  world_->check_alive(rank_);
  const std::uint64_t gen = world_->barrier_generation_;
  const int live = size() - static_cast<int>(std::count(
                                world_->failed_.begin(),
                                world_->failed_.end(), true));
  if (++world_->barrier_waiting_ >= live) {
    world_->barrier_waiting_ = 0;
    ++world_->barrier_generation_;
    world_->cv_.notify_all();
    barrier_wait_hist().observe(wait.elapsed_us());
    return;
  }
  world_->cv_.wait(lock, [&] {
    return world_->barrier_generation_ != gen || world_->failed_[rank_];
  });
  if (world_->failed_[rank_]) throw CommError("comm: rank failed in barrier");
  barrier_wait_hist().observe(wait.elapsed_us());
}

double Communicator::allreduce_sum(double local) {
  std::unique_lock<std::mutex> lock(world_->mutex_);
  world_->check_alive(rank_);
  const std::uint64_t gen = world_->reduce_generation_;
  world_->reduce_accum_ += local;
  if (++world_->reduce_count_ >= size()) {
    world_->reduce_result_ = world_->reduce_accum_;
    world_->reduce_accum_ = 0.0;
    world_->reduce_count_ = 0;
    ++world_->reduce_generation_;
    world_->cv_.notify_all();
    return world_->reduce_result_;
  }
  world_->cv_.wait(lock, [&] {
    return world_->reduce_generation_ != gen || world_->failed_[rank_];
  });
  if (world_->failed_[rank_])
    throw CommError("comm: rank failed in allreduce");
  return world_->reduce_result_;
}

void Communicator::broadcast(std::vector<std::uint8_t>& data, int root) {
  QGEAR_CHECK_ARG(root >= 0 && root < size(), "comm: root out of range");
  constexpr int kBcastTag = -42;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv(root, kBcastTag);
  }
}

// ---- World -------------------------------------------------------------

World::World(int size) : size_(size) {
  QGEAR_CHECK_ARG(size >= 1, "comm: world size must be >= 1");
  mailboxes_.resize(static_cast<std::size_t>(size) * size);
  failed_.assign(size, false);
}

void World::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(size_);
  std::vector<std::exception_ptr> errors(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      Communicator c(this, r);
      try {
        fn(c);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that might be waiting on this rank forever.
        inject_failure(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void World::execute(int size, const std::function<void(Communicator&)>& fn) {
  World w(size);
  w.run(fn);
}

void World::inject_failure(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  QGEAR_CHECK_ARG(rank >= 0 && rank < size_, "comm: rank out of range");
  failed_[rank] = true;
  // Release a barrier that is now satisfiable with fewer live ranks.
  const int live = size_ - static_cast<int>(std::count(
                               failed_.begin(), failed_.end(), true));
  if (barrier_waiting_ > 0 && barrier_waiting_ >= live) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
  }
  cv_.notify_all();
}

void World::clear_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.entries.clear();
  trace_.total_bytes = 0;
}

void World::deliver(int src, int dst, int tag,
                    std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_alive(src);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  box.queue.push_back({tag, {data.begin(), data.end()}});
  trace_.record(src, dst, data.size(), tag);
  cv_.notify_all();
}

std::vector<std::uint8_t> World::take(int src, int dst, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [tag](const Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      std::vector<std::uint8_t> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    if (failed_[src]) {
      throw CommError("comm: receive from failed rank " +
                      std::to_string(src));
    }
    cv_.wait(lock);
    if (failed_[dst]) throw CommError("comm: receiving rank failed");
  }
}

bool World::try_take(int src, int dst, int tag,
                     std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_alive(src);
  check_alive(dst);
  Mailbox& box = mailbox(src, dst);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [tag](const Message& m) { return m.tag == tag; });
  if (it == box.queue.end()) return false;
  out = std::move(it->data);
  box.queue.erase(it);
  return true;
}

void World::check_alive(int rank) const {
  if (failed_[rank]) {
    throw CommError("comm: rank " + std::to_string(rank) + " has failed");
  }
}

}  // namespace qgear::comm
