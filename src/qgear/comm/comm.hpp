// In-process MPI-like message passing.
//
// The paper distributes the state vector over GPUs with CUDA-aware Cray
// MPICH. We reproduce the subset the distributed engine needs — ranked
// SPMD execution, tagged point-to-point messages with per-pair FIFO
// ordering, sendrecv, barrier, broadcast and allreduce — as an in-process
// library: each rank is a thread, each (src,dst) pair a mailbox.
//
// Every transfer is recorded in a CommTrace so the interconnect performance
// model (src/qgear/perfmodel) can price the exact communication schedule a
// run produced.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "qgear/common/error.hpp"

namespace qgear::comm {

/// Raised when a peer rank was marked failed (failure-injection tests) or a
/// collective is used inconsistently.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// One recorded point-to-point transfer.
struct TraceEntry {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  int tag = 0;
};

/// Aggregated transfer log for one World.
struct CommTrace {
  std::vector<TraceEntry> entries;
  std::uint64_t total_bytes = 0;

  void record(int src, int dst, std::uint64_t bytes, int tag) {
    entries.push_back({src, dst, bytes, tag});
    total_bytes += bytes;
  }
};

class World;
class BatchExchange;

/// Interconnect tier of a rank pair. Mirrors the hierarchy the
/// performance model prices (NVLink domain inside a node vs inter-node
/// Slingshot), surfaced to the *real* schedule so exchanges can order and
/// chunk transfers per tier.
enum class Tier : int { nvlink = 0, internode = 1 };
inline constexpr std::size_t kNumTiers = 2;

const char* tier_name(Tier t);

/// Static rank-to-domain map: ranks [k*ranks_per_domain,
/// (k+1)*ranks_per_domain) share one NVLink domain. ranks_per_domain == 0
/// (or 1 domain covering everything) treats every pair as in-domain.
struct Topology {
  unsigned ranks_per_domain = 0;

  Tier tier(int a, int b) const {
    if (ranks_per_domain == 0) return Tier::nvlink;
    return static_cast<unsigned>(a) / ranks_per_domain ==
                   static_cast<unsigned>(b) / ranks_per_domain
               ? Tier::nvlink
               : Tier::internode;
  }
};

/// Default chunk size for a pipelined transfer of `message_bytes` over
/// `tier`. Small messages return 0 (send in one piece: framing/pipelining
/// overhead would dominate); large ones pick a chunk that keeps a few
/// chunks in flight, smaller across the slower inter-node tier so the
/// pipeline stays fed without oversized store-and-forward hops.
std::uint64_t auto_chunk_bytes(std::uint64_t message_bytes, Tier tier);

/// Tunables for the fault-tolerant chunked exchange. timeout_s <= 0
/// selects the legacy lossless path (no framing, no fault hooks).
struct ResilienceOptions {
  double timeout_s = 0.0;   ///< per-wait receive deadline (seconds)
  unsigned max_resends = 3; ///< per-chunk re-send budget before CommError
};

/// Per-rank handle; all operations are called from that rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send (buffered: copies and returns).
  void send(int dest, int tag, std::span<const std::uint8_t> data);

  /// Blocking receive of the next message from `src` with `tag`.
  std::vector<std::uint8_t> recv(int src, int tag);

  /// Simultaneous exchange with `peer` (deadlock-free for matched calls).
  std::vector<std::uint8_t> sendrecv(int peer, int tag,
                                     std::span<const std::uint8_t> data);

  /// Typed conveniences.
  template <typename T>
  void send_vec(int dest, int tag, std::span<const T> values) {
    send(dest, tag,
         {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size_bytes()});
  }

  template <typename T>
  std::vector<T> recv_vec(int src, int tag) {
    const std::vector<std::uint8_t> raw = recv(src, tag);
    QGEAR_CHECK_FORMAT(raw.size() % sizeof(T) == 0,
                       "comm: message size not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  std::vector<T> sendrecv_vec(int peer, int tag, std::span<const T> values) {
    const std::vector<std::uint8_t> raw = sendrecv(
        peer, tag,
        {reinterpret_cast<const std::uint8_t*>(values.data()),
         values.size_bytes()});
    QGEAR_CHECK_FORMAT(raw.size() % sizeof(T) == 0,
                       "comm: message size not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Non-blocking receive: if a message from `src` with `tag` is already
  /// queued, moves it into `out` and returns true; otherwise returns false
  /// immediately. Lets pipelined callers drain ready chunks between
  /// compute steps instead of blocking.
  bool try_recv(int src, int tag, std::vector<std::uint8_t>& out);

  /// Chunked, pipelined exchange with `peer`: `values` is split into
  /// chunks of `chunk_elems` elements, every chunk is posted up front
  /// (sends are buffered and return immediately), then the peer's chunks
  /// are received in order and handed to `consume(offset, chunk)` one at a
  /// time — so the caller's compute on chunk k overlaps the delivery of
  /// chunk k+1, and no full-slab receive buffer is ever materialized.
  /// chunk_elems == 0 (or >= values.size()) degenerates to one sendrecv.
  /// Chunks of one exchange share `tag`: per-pair FIFO ordering keeps them
  /// in sequence, and the next exchange uses a fresh tag.
  template <typename T, typename Fn>
  void sendrecv_chunked(int peer, int tag, std::span<const T> values,
                        std::uint64_t chunk_elems, Fn&& consume) {
    const std::uint64_t n = values.size();
    if (chunk_elems == 0 || chunk_elems >= n) {
      const std::vector<T> theirs = sendrecv_vec<T>(peer, tag, values);
      QGEAR_CHECK_FORMAT(theirs.size() == n,
                         "comm: chunked exchange size mismatch");
      consume(std::uint64_t{0}, std::span<const T>(theirs));
      return;
    }
    for (std::uint64_t off = 0; off < n; off += chunk_elems) {
      send_vec<T>(peer, tag,
                  values.subspan(off, std::min(chunk_elems, n - off)));
    }
    for (std::uint64_t off = 0; off < n; off += chunk_elems) {
      const std::vector<T> chunk = recv_vec<T>(peer, tag);
      QGEAR_CHECK_FORMAT(chunk.size() == std::min(chunk_elems, n - off),
                         "comm: chunked exchange chunk size mismatch");
      consume(off, std::span<const T>(chunk));
    }
  }

  /// Fault-tolerant variant of sendrecv_chunked: every data chunk is
  /// framed with its byte offset, receives wait at most
  /// `resilience.timeout_s` before requesting a bounded re-send from the
  /// peer, and the exchange ends with a DONE handshake so each side keeps
  /// servicing re-send requests until its peer has everything. Chunks may
  /// arrive (and be consumed) out of order — `consume(offset, chunk)`
  /// must tolerate any order. Dropped/stalled chunks come from the fault
  /// injector (fault::Site::comm_drop / comm_delay), which only hooks
  /// this resilient path. timeout_s <= 0 falls back to the legacy
  /// in-order path above.
  template <typename T, typename Fn>
  void sendrecv_chunked(int peer, int tag, std::span<const T> values,
                        std::uint64_t chunk_elems, Fn&& consume,
                        const ResilienceOptions& resilience) {
    if (resilience.timeout_s <= 0.0) {
      sendrecv_chunked<T>(peer, tag, values, chunk_elems,
                          std::forward<Fn>(consume));
      return;
    }
    const std::uint64_t n = values.size();
    const std::uint64_t chunk_bytes =
        (chunk_elems == 0 || chunk_elems >= n) ? values.size_bytes()
                                               : chunk_elems * sizeof(T);
    sendrecv_chunked_resilient(
        peer, tag,
        {reinterpret_cast<const std::uint8_t*>(values.data()),
         values.size_bytes()},
        chunk_bytes, resilience,
        [&](std::uint64_t off_bytes, std::span<const std::uint8_t> payload) {
          QGEAR_CHECK_FORMAT(off_bytes % sizeof(T) == 0 &&
                                 payload.size() % sizeof(T) == 0,
                             "comm: resilient chunk not element-aligned");
          // Copy out of the frame: payload alignment inside the framed
          // message is not guaranteed to match T.
          std::vector<T> chunk(payload.size() / sizeof(T));
          std::memcpy(chunk.data(), payload.data(), payload.size());
          consume(off_bytes / sizeof(T), std::span<const T>(chunk));
        });
  }

  /// Synchronizes all live ranks.
  void barrier();

  /// Sum-reduction of one double across ranks; every rank gets the total.
  double allreduce_sum(double local);

  /// Root's buffer is copied to every rank.
  void broadcast(std::vector<std::uint8_t>& data, int root);

  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// The world's rank-to-domain topology (set before the SPMD region).
  const Topology& topology() const;

  /// Interconnect tier between this rank and `peer`.
  Tier tier_to(int peer) const { return topology().tier(rank_, peer); }

 private:
  friend class World;
  friend class BatchExchange;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  /// Byte-level engine behind the resilient sendrecv_chunked overload.
  void sendrecv_chunked_resilient(
      int peer, int tag, std::span<const std::uint8_t> data,
      std::uint64_t chunk_bytes, const ResilienceOptions& resilience,
      const std::function<void(std::uint64_t,
                               std::span<const std::uint8_t>)>& consume);

  /// Sends one offset-framed data chunk, applying the comm_delay /
  /// comm_drop fault hooks (a dropped chunk is simply never delivered).
  void send_chunk_framed(int peer, int tag, std::uint64_t offset,
                         std::span<const std::uint8_t> payload);

  World* world_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
};

/// One pairwise leg of a BatchExchange: `send` goes to `peer`, and
/// `recv_bytes` bytes are expected back from it. The send span must stay
/// alive until the exchange finishes (resilient re-sends read from it).
/// chunk_bytes == 0 derives the chunk size from the message size and the
/// pair's tier (auto_chunk_bytes).
struct ExchangeRound {
  int peer = -1;
  std::span<const std::uint8_t> send;
  std::uint64_t recv_bytes = 0;
  std::uint64_t chunk_bytes = 0;
};

/// Multi-peer scheduled exchange: every round is posted up front —
/// NVLink-domain rounds first and wide, inter-node rounds chunk-pipelined
/// behind them — and incoming chunks are drained from any peer in any
/// order. The non-blocking poll() lets the caller interleave compute with
/// the tail of the exchange (compute/comm overlap); finish() drives the
/// exchange to completion.
///
/// With resilience enabled (timeout_s > 0) every leg runs the PR-9
/// offset-framed protocol: receive timeouts trigger bounded re-send
/// requests, and each leg ends with a DONE handshake so re-send requests
/// are serviced until the peer has everything. The comm_delay/comm_drop
/// fault hooks apply only on this resilient path.
class BatchExchange {
 public:
  /// consume(round, offset_bytes, payload): chunks arrive in any order,
  /// across rounds; offset_bytes is the chunk's position in the peer's
  /// recv_bytes stream.
  using ConsumeFn = std::function<void(
      std::size_t, std::uint64_t, std::span<const std::uint8_t>)>;

  /// Rounds must target distinct peers (one message stream per peer).
  BatchExchange(Communicator& comm, int tag, std::vector<ExchangeRound> rounds,
                ResilienceOptions resilience = {});

  /// Posts every round's chunks, intra-domain rounds first. Buffered
  /// sends return immediately; call poll()/wait()/finish() to drain.
  void post();

  /// Drains every chunk already queued without blocking. Returns true if
  /// at least one data chunk was consumed.
  bool poll(const ConsumeFn& consume);

  /// Blocks until at least one message arrives (consuming it) or — on the
  /// resilient path — a receive deadline passes, in which case missing
  /// chunks are re-requested. No-op when already done.
  void wait(const ConsumeFn& consume);

  /// Drives the exchange to completion: drains all chunks and, when
  /// resilient, completes the per-peer DONE handshakes.
  void finish(const ConsumeFn& consume);

  /// All expected chunks consumed (and, when resilient, all peers done).
  bool done() const;

  /// Payload bytes this rank sent over `t` links, re-sends included.
  std::uint64_t sent_tier_bytes(Tier t) const {
    return tier_bytes_[static_cast<std::size_t>(t)];
  }

  std::size_t num_rounds() const { return rounds_.size(); }
  const ExchangeRound& round(std::size_t i) const { return rounds_[i]; }
  Tier round_tier(std::size_t i) const {
    return comm_.tier_to(rounds_[i].peer);
  }
  /// Resolved chunk size for round i (after auto-derivation).
  std::uint64_t round_chunk_bytes(std::size_t i) const {
    return st_[i].chunk_bytes;
  }

 private:
  struct RoundState {
    std::uint64_t chunk_bytes = 0;   ///< resolved (never 0 unless empty)
    std::uint64_t num_chunks = 0;
    std::uint64_t have_count = 0;
    std::vector<bool> have;          ///< incoming chunk bitmap
    std::vector<unsigned> resends;   ///< per-chunk re-send requests issued
    std::uint64_t next_offset = 0;   ///< in-order cursor (lossless path)
    bool sent_done = false;
    bool peer_done = false;
  };

  void send_chunk(std::size_t r, std::uint64_t offset);
  /// Handles one received message (data or ctrl). Returns true for data.
  bool process(std::size_t r, int got_tag, std::vector<std::uint8_t>& msg,
               const ConsumeFn& consume);
  void maybe_send_done(std::size_t r);
  void request_missing(std::size_t r);

  Communicator& comm_;
  int tag_;
  int ctrl_;
  std::vector<ExchangeRound> rounds_;
  std::vector<RoundState> st_;
  std::vector<std::size_t> order_;     ///< posting order, NVLink first
  std::vector<int> peer_of_;           ///< round -> peer (srcs for waits)
  ResilienceOptions resilience_;
  bool resilient_ = false;
  bool posted_ = false;
  unsigned idle_timeouts_ = 0;
  std::uint64_t tier_bytes_[kNumTiers] = {0, 0};
};

/// Owns the mailboxes and synchronization state for a fixed rank count.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Runs fn as an SPMD program: one thread per rank. Exceptions from any
  /// rank are rethrown (the first one) after all threads join.
  void run(const std::function<void(Communicator&)>& fn);

  /// Convenience: construct a World and run in one call.
  static void execute(int size, const std::function<void(Communicator&)>& fn);

  /// Marks a rank failed: blocking operations involving it throw CommError.
  void inject_failure(int rank);

  /// Sets the rank-to-domain topology. Call before run(): the SPMD region
  /// reads it without locking.
  void set_topology(Topology t) { topology_ = t; }
  const Topology& topology() const { return topology_; }

  const CommTrace& trace() const { return trace_; }
  void clear_trace();

 private:
  friend class Communicator;
  friend class BatchExchange;

  struct Message {
    int tag;
    std::vector<std::uint8_t> data;
  };

  struct Mailbox {
    std::deque<Message> queue;
  };

  Mailbox& mailbox(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) * size_ + dst];
  }

  void deliver(int src, int dst, int tag,
               std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> take(int src, int dst, int tag);
  bool try_take(int src, int dst, int tag, std::vector<std::uint8_t>& out);
  /// Waits until `deadline` for a message from src matching tag_a or
  /// tag_b; returns false on timeout. `*got_tag` reports which matched.
  bool take_any_until(int src, int dst, int tag_a, int tag_b,
                      std::chrono::steady_clock::time_point deadline,
                      std::vector<std::uint8_t>& out, int* got_tag);
  /// Multi-source variant: waits for a message from any rank in `srcs`
  /// matching tag_a or tag_b. `*got_src` reports which peer delivered.
  bool take_from_set(std::span<const int> srcs, int dst, int tag_a, int tag_b,
                     std::chrono::steady_clock::time_point deadline,
                     std::vector<std::uint8_t>& out, int* got_src,
                     int* got_tag);
  void check_alive(int rank) const;

  int size_;
  std::vector<Mailbox> mailboxes_;
  std::vector<bool> failed_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;

  // Reusable counting barrier.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Allreduce scratch.
  double reduce_accum_ = 0.0;
  int reduce_count_ = 0;
  double reduce_result_ = 0.0;
  std::uint64_t reduce_generation_ = 0;

  Topology topology_;
  CommTrace trace_;
};

}  // namespace qgear::comm
