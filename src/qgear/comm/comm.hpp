// In-process MPI-like message passing.
//
// The paper distributes the state vector over GPUs with CUDA-aware Cray
// MPICH. We reproduce the subset the distributed engine needs — ranked
// SPMD execution, tagged point-to-point messages with per-pair FIFO
// ordering, sendrecv, barrier, broadcast and allreduce — as an in-process
// library: each rank is a thread, each (src,dst) pair a mailbox.
//
// Every transfer is recorded in a CommTrace so the interconnect performance
// model (src/qgear/perfmodel) can price the exact communication schedule a
// run produced.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "qgear/common/error.hpp"

namespace qgear::comm {

/// Raised when a peer rank was marked failed (failure-injection tests) or a
/// collective is used inconsistently.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// One recorded point-to-point transfer.
struct TraceEntry {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  int tag = 0;
};

/// Aggregated transfer log for one World.
struct CommTrace {
  std::vector<TraceEntry> entries;
  std::uint64_t total_bytes = 0;

  void record(int src, int dst, std::uint64_t bytes, int tag) {
    entries.push_back({src, dst, bytes, tag});
    total_bytes += bytes;
  }
};

class World;

/// Tunables for the fault-tolerant chunked exchange. timeout_s <= 0
/// selects the legacy lossless path (no framing, no fault hooks).
struct ResilienceOptions {
  double timeout_s = 0.0;   ///< per-wait receive deadline (seconds)
  unsigned max_resends = 3; ///< per-chunk re-send budget before CommError
};

/// Per-rank handle; all operations are called from that rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send (buffered: copies and returns).
  void send(int dest, int tag, std::span<const std::uint8_t> data);

  /// Blocking receive of the next message from `src` with `tag`.
  std::vector<std::uint8_t> recv(int src, int tag);

  /// Simultaneous exchange with `peer` (deadlock-free for matched calls).
  std::vector<std::uint8_t> sendrecv(int peer, int tag,
                                     std::span<const std::uint8_t> data);

  /// Typed conveniences.
  template <typename T>
  void send_vec(int dest, int tag, std::span<const T> values) {
    send(dest, tag,
         {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size_bytes()});
  }

  template <typename T>
  std::vector<T> recv_vec(int src, int tag) {
    const std::vector<std::uint8_t> raw = recv(src, tag);
    QGEAR_CHECK_FORMAT(raw.size() % sizeof(T) == 0,
                       "comm: message size not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  std::vector<T> sendrecv_vec(int peer, int tag, std::span<const T> values) {
    const std::vector<std::uint8_t> raw = sendrecv(
        peer, tag,
        {reinterpret_cast<const std::uint8_t*>(values.data()),
         values.size_bytes()});
    QGEAR_CHECK_FORMAT(raw.size() % sizeof(T) == 0,
                       "comm: message size not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Non-blocking receive: if a message from `src` with `tag` is already
  /// queued, moves it into `out` and returns true; otherwise returns false
  /// immediately. Lets pipelined callers drain ready chunks between
  /// compute steps instead of blocking.
  bool try_recv(int src, int tag, std::vector<std::uint8_t>& out);

  /// Chunked, pipelined exchange with `peer`: `values` is split into
  /// chunks of `chunk_elems` elements, every chunk is posted up front
  /// (sends are buffered and return immediately), then the peer's chunks
  /// are received in order and handed to `consume(offset, chunk)` one at a
  /// time — so the caller's compute on chunk k overlaps the delivery of
  /// chunk k+1, and no full-slab receive buffer is ever materialized.
  /// chunk_elems == 0 (or >= values.size()) degenerates to one sendrecv.
  /// Chunks of one exchange share `tag`: per-pair FIFO ordering keeps them
  /// in sequence, and the next exchange uses a fresh tag.
  template <typename T, typename Fn>
  void sendrecv_chunked(int peer, int tag, std::span<const T> values,
                        std::uint64_t chunk_elems, Fn&& consume) {
    const std::uint64_t n = values.size();
    if (chunk_elems == 0 || chunk_elems >= n) {
      const std::vector<T> theirs = sendrecv_vec<T>(peer, tag, values);
      QGEAR_CHECK_FORMAT(theirs.size() == n,
                         "comm: chunked exchange size mismatch");
      consume(std::uint64_t{0}, std::span<const T>(theirs));
      return;
    }
    for (std::uint64_t off = 0; off < n; off += chunk_elems) {
      send_vec<T>(peer, tag,
                  values.subspan(off, std::min(chunk_elems, n - off)));
    }
    for (std::uint64_t off = 0; off < n; off += chunk_elems) {
      const std::vector<T> chunk = recv_vec<T>(peer, tag);
      QGEAR_CHECK_FORMAT(chunk.size() == std::min(chunk_elems, n - off),
                         "comm: chunked exchange chunk size mismatch");
      consume(off, std::span<const T>(chunk));
    }
  }

  /// Fault-tolerant variant of sendrecv_chunked: every data chunk is
  /// framed with its byte offset, receives wait at most
  /// `resilience.timeout_s` before requesting a bounded re-send from the
  /// peer, and the exchange ends with a DONE handshake so each side keeps
  /// servicing re-send requests until its peer has everything. Chunks may
  /// arrive (and be consumed) out of order — `consume(offset, chunk)`
  /// must tolerate any order. Dropped/stalled chunks come from the fault
  /// injector (fault::Site::comm_drop / comm_delay), which only hooks
  /// this resilient path. timeout_s <= 0 falls back to the legacy
  /// in-order path above.
  template <typename T, typename Fn>
  void sendrecv_chunked(int peer, int tag, std::span<const T> values,
                        std::uint64_t chunk_elems, Fn&& consume,
                        const ResilienceOptions& resilience) {
    if (resilience.timeout_s <= 0.0) {
      sendrecv_chunked<T>(peer, tag, values, chunk_elems,
                          std::forward<Fn>(consume));
      return;
    }
    const std::uint64_t n = values.size();
    const std::uint64_t chunk_bytes =
        (chunk_elems == 0 || chunk_elems >= n) ? values.size_bytes()
                                               : chunk_elems * sizeof(T);
    sendrecv_chunked_resilient(
        peer, tag,
        {reinterpret_cast<const std::uint8_t*>(values.data()),
         values.size_bytes()},
        chunk_bytes, resilience,
        [&](std::uint64_t off_bytes, std::span<const std::uint8_t> payload) {
          QGEAR_CHECK_FORMAT(off_bytes % sizeof(T) == 0 &&
                                 payload.size() % sizeof(T) == 0,
                             "comm: resilient chunk not element-aligned");
          // Copy out of the frame: payload alignment inside the framed
          // message is not guaranteed to match T.
          std::vector<T> chunk(payload.size() / sizeof(T));
          std::memcpy(chunk.data(), payload.data(), payload.size());
          consume(off_bytes / sizeof(T), std::span<const T>(chunk));
        });
  }

  /// Synchronizes all live ranks.
  void barrier();

  /// Sum-reduction of one double across ranks; every rank gets the total.
  double allreduce_sum(double local);

  /// Root's buffer is copied to every rank.
  void broadcast(std::vector<std::uint8_t>& data, int root);

  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  /// Byte-level engine behind the resilient sendrecv_chunked overload.
  void sendrecv_chunked_resilient(
      int peer, int tag, std::span<const std::uint8_t> data,
      std::uint64_t chunk_bytes, const ResilienceOptions& resilience,
      const std::function<void(std::uint64_t,
                               std::span<const std::uint8_t>)>& consume);

  /// Sends one offset-framed data chunk, applying the comm_delay /
  /// comm_drop fault hooks (a dropped chunk is simply never delivered).
  void send_chunk_framed(int peer, int tag, std::uint64_t offset,
                         std::span<const std::uint8_t> payload);

  World* world_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
};

/// Owns the mailboxes and synchronization state for a fixed rank count.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Runs fn as an SPMD program: one thread per rank. Exceptions from any
  /// rank are rethrown (the first one) after all threads join.
  void run(const std::function<void(Communicator&)>& fn);

  /// Convenience: construct a World and run in one call.
  static void execute(int size, const std::function<void(Communicator&)>& fn);

  /// Marks a rank failed: blocking operations involving it throw CommError.
  void inject_failure(int rank);

  const CommTrace& trace() const { return trace_; }
  void clear_trace();

 private:
  friend class Communicator;

  struct Message {
    int tag;
    std::vector<std::uint8_t> data;
  };

  struct Mailbox {
    std::deque<Message> queue;
  };

  Mailbox& mailbox(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) * size_ + dst];
  }

  void deliver(int src, int dst, int tag,
               std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> take(int src, int dst, int tag);
  bool try_take(int src, int dst, int tag, std::vector<std::uint8_t>& out);
  /// Waits until `deadline` for a message from src matching tag_a or
  /// tag_b; returns false on timeout. `*got_tag` reports which matched.
  bool take_any_until(int src, int dst, int tag_a, int tag_b,
                      std::chrono::steady_clock::time_point deadline,
                      std::vector<std::uint8_t>& out, int* got_tag);
  void check_alive(int rank) const;

  int size_;
  std::vector<Mailbox> mailboxes_;
  std::vector<bool> failed_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;

  // Reusable counting barrier.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Allreduce scratch.
  double reduce_accum_ = 0.0;
  int reduce_count_ = 0;
  double reduce_result_ = 0.0;
  std::uint64_t reduce_generation_ = 0;

  CommTrace trace_;
};

}  // namespace qgear::comm
