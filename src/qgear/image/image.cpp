#include "qgear/image/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "qgear/common/rng.hpp"

namespace qgear::image {

Image make_synthetic(unsigned width, unsigned height, std::uint64_t seed) {
  QGEAR_CHECK_ARG(width >= 1 && height >= 1, "image: empty dimensions");
  Rng rng(seed);
  Image img{width, height,
            std::vector<double>(static_cast<std::size_t>(width) * height)};

  // Base: diagonal gradient with a seeded orientation.
  const double gx = rng.uniform(0.4, 1.0);
  const double gy = rng.uniform(0.4, 1.0);

  // A few random soft discs and stripe bands.
  struct Disc {
    double cx, cy, r, gain;
  };
  std::vector<Disc> discs;
  for (int i = 0; i < 4; ++i) {
    discs.push_back({rng.uniform(0, width), rng.uniform(0, height),
                     rng.uniform(0.1, 0.35) * std::min(width, height),
                     rng.uniform(-0.5, 0.5)});
  }
  const double stripe_period = rng.uniform(8.0, 24.0);
  const double stripe_gain = rng.uniform(0.05, 0.2);

  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      double v = 0.5 * (gx * x / width + gy * y / height);
      for (const Disc& d : discs) {
        const double dx = x - d.cx, dy = y - d.cy;
        const double dist2 = dx * dx + dy * dy;
        v += d.gain * std::exp(-dist2 / (2 * d.r * d.r));
      }
      v += stripe_gain * std::sin(2 * M_PI * x / stripe_period);
      img.at(x, y) = std::clamp(v, 0.0, 1.0);
    }
  }
  return img;
}

void save_pgm(const Image& img, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  QGEAR_CHECK_ARG(os.good(), "image: cannot write " + path);
  os << "P5\n" << img.width << " " << img.height << "\n255\n";
  for (double v : img.pixels) {
    const int byte = static_cast<int>(
        std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
    os.put(static_cast<char>(byte));
  }
  QGEAR_CHECK_ARG(os.good(), "image: short write to " + path);
}

Image load_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QGEAR_CHECK_ARG(in.good(), "image: cannot open " + path);
  std::string magic;
  in >> magic;
  QGEAR_CHECK_FORMAT(magic == "P5", "image: not a binary PGM file");
  unsigned width = 0, height = 0;
  int maxval = 0;
  in >> width >> height >> maxval;
  QGEAR_CHECK_FORMAT(width >= 1 && height >= 1 && maxval == 255,
                     "image: unsupported PGM header");
  in.get();  // single whitespace after header
  Image img{width, height,
            std::vector<double>(static_cast<std::size_t>(width) * height)};
  for (double& v : img.pixels) {
    const int byte = in.get();
    QGEAR_CHECK_FORMAT(byte != EOF, "image: truncated PGM payload");
    v = byte / 255.0;
  }
  return img;
}

std::vector<PaperImageConfig> paper_image_table() {
  // Table 2 verbatim: shots = 3000 * 2^m.
  return {
      {"Finger", 64, 80, 10, 5, 3'072'000},
      {"Shoes", 128, 128, 11, 8, 6'144'000},
      {"Building", 192, 128, 12, 6, 12'288'000},
      {"Zebra", 384, 256, 13, 12, 24'576'000},
      {"Zebra", 384, 256, 14, 6, 49'152'000},
      {"Zebra", 384, 256, 15, 3, 98'304'000},
  };
}

Image make_paper_image(const PaperImageConfig& config) {
  // Seed by name so the three Zebra rows share one image.
  std::uint64_t seed = 0xC0FFEE;
  for (char c : config.name) seed = seed * 131 + static_cast<unsigned char>(c);
  return make_synthetic(config.width, config.height, seed);
}

ReconstructionMetrics compare_images(const Image& original,
                                     const Image& reconstructed) {
  QGEAR_CHECK_ARG(original.width == reconstructed.width &&
                      original.height == reconstructed.height,
                  "image: dimension mismatch");
  const std::size_t n = original.size();
  QGEAR_CHECK_ARG(n > 0, "image: empty image");

  double sum_a = 0, sum_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_a += original.pixels[i];
    sum_b += reconstructed.pixels[i];
  }
  const double mean_a = sum_a / static_cast<double>(n);
  const double mean_b = sum_b / static_cast<double>(n);

  double cov = 0, var_a = 0, var_b = 0, sse = 0, worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = original.pixels[i] - mean_a;
    const double db = reconstructed.pixels[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
    const double err = original.pixels[i] - reconstructed.pixels[i];
    sse += err * err;
    worst = std::max(worst, std::abs(err));
  }

  ReconstructionMetrics m;
  m.correlation = (var_a > 0 && var_b > 0)
                      ? cov / std::sqrt(var_a * var_b)
                      : (sse == 0 ? 1.0 : 0.0);
  m.mse = sse / static_cast<double>(n);
  m.max_abs_error = worst;
  m.psnr_db = m.mse > 0 ? 10.0 * std::log10(1.0 / m.mse) : 99.0;
  return m;
}

}  // namespace qgear::image
