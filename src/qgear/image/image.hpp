// Grayscale images for the QCrank experiments.
//
// The paper encodes four real photographs (Finger/Shoes/Building/Zebra,
// Table 2). Those files are not redistributable, so we generate
// deterministic synthetic images with the same dimensions — QCrank only
// consumes pixel values, so the circuits, qubit counts and shot budgets
// are identical (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/common/error.hpp"

namespace qgear::image {

/// Row-major grayscale image; pixel values in [0, 1].
struct Image {
  unsigned width = 0;
  unsigned height = 0;
  std::vector<double> pixels;

  std::size_t size() const { return pixels.size(); }
  double& at(unsigned x, unsigned y) {
    QGEAR_EXPECTS(x < width && y < height);
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  double at(unsigned x, unsigned y) const {
    QGEAR_EXPECTS(x < width && y < height);
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
};

/// Deterministic synthetic grayscale image: smooth gradients plus circles
/// and stripes, so reconstructions have visible structure to correlate.
Image make_synthetic(unsigned width, unsigned height, std::uint64_t seed);

/// Binary PGM (P5, 8-bit) writer/reader.
void save_pgm(const Image& img, const std::string& path);
Image load_pgm(const std::string& path);

/// One Table 2 row: image -> qubit/shot configuration.
struct PaperImageConfig {
  std::string name;
  unsigned width;
  unsigned height;
  unsigned address_qubits;  ///< m
  unsigned data_qubits;
  std::uint64_t shots;      ///< s * 2^m with s = 3000
  std::uint64_t gray_pixels() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  unsigned total_qubits() const { return address_qubits + data_qubits; }
};

/// The six rows of Table 2 (Zebra appears with three qubit splits).
std::vector<PaperImageConfig> paper_image_table();

/// Synthetic stand-in for a Table 2 image (seeded by its row).
Image make_paper_image(const PaperImageConfig& config);

/// Reconstruction quality metrics (Fig. 6's panels).
struct ReconstructionMetrics {
  double correlation = 0.0;   ///< Pearson correlation of pixel values
  double mse = 0.0;           ///< mean squared error
  double max_abs_error = 0.0;
  double psnr_db = 0.0;       ///< peak signal-to-noise ratio (peak = 1.0)
};

ReconstructionMetrics compare_images(const Image& original,
                                     const Image& reconstructed);

}  // namespace qgear::image
