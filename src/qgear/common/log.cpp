#include "qgear/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace qgear::log {

namespace {
std::atomic<Level> g_level{Level::warn};
std::mutex g_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO";
    case Level::warn: return "WARN";
    case Level::error: return "ERROR";
    case Level::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

void write(Level lvl, const std::string& msg) {
  if (lvl < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[qgear %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace qgear::log
