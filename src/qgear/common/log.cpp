#include "qgear/common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "qgear/common/error.hpp"
#include "qgear/obs/json.hpp"

namespace qgear::log {

namespace {
std::atomic<Level> g_level{Level::warn};
std::mutex g_mutex;            // guards the sinks, not the level
std::FILE* g_json_sink = nullptr;
std::once_flag g_env_once;

const char* level_name(Level level) {
  switch (level) {
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO";
    case Level::warn: return "WARN";
    case Level::error: return "ERROR";
    case Level::off: return "OFF";
  }
  return "?";
}

/// "2026-08-05T12:34:56.789Z" (UTC), plus the epoch milliseconds.
std::string timestamp(std::uint64_t* epoch_ms = nullptr) {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  if (epoch_ms != nullptr) *epoch_ms = static_cast<std::uint64_t>(ms);
  const std::time_t secs = static_cast<std::time_t>(ms / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms % 1000));
  return buf;
}

void ensure_env_init() { std::call_once(g_env_once, init_from_env); }

}  // namespace

Level parse_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return Level::debug;
  if (lower == "info") return Level::info;
  if (lower == "warn" || lower == "warning") return Level::warn;
  if (lower == "error") return Level::error;
  if (lower == "off" || lower == "none") return Level::off;
  throw InvalidArgument("log: unknown level '" + name + "'");
}

void init_from_env() {
  if (const char* env = std::getenv("QGEAR_LOG")) {
    try {
      g_level.store(parse_level(env));
    } catch (const InvalidArgument&) {
      std::fprintf(stderr, "[qgear WARN] ignoring invalid QGEAR_LOG=%s\n",
                   env);
    }
  }
  if (const char* path = std::getenv("QGEAR_LOG_JSON")) {
    if (path[0] != '\0') set_json_sink(path);
  }
}

void set_json_sink(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_json_sink != nullptr) {
    std::fclose(g_json_sink);
    g_json_sink = nullptr;
  }
  if (path.empty()) return;
  g_json_sink = std::fopen(path.c_str(), "ab");
  if (g_json_sink == nullptr) {
    std::fprintf(stderr, "[qgear WARN] cannot open log sink %s\n",
                 path.c_str());
  }
}

void close_json_sink() { set_json_sink(""); }

void set_level(Level level) {
  ensure_env_init();  // so a later first write cannot clobber this choice
  g_level.store(level);
}

Level level() {
  ensure_env_init();
  return g_level.load();
}

void write(Level lvl, const std::string& msg) {
  ensure_env_init();
  if (lvl < g_level.load()) return;

  std::uint64_t epoch_ms = 0;
  const std::string ts = timestamp(&epoch_ms);

  // Format the full record up front and emit it with one fwrite per sink,
  // so lines from concurrent threads never interleave.
  std::string line;
  line.reserve(ts.size() + msg.size() + 24);
  line += "[qgear ";
  line += level_name(lvl);
  line += ' ';
  line += ts;
  line += "] ";
  line += msg;
  line += '\n';

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  if (g_json_sink != nullptr) {
    std::string rec;
    rec.reserve(msg.size() + 64);
    rec += "{\"ts\":\"";
    rec += ts;
    rec += "\",\"ts_ms\":";
    rec += std::to_string(epoch_ms);
    rec += ",\"level\":\"";
    rec += level_name(lvl);
    rec += "\",\"msg\":\"";
    rec += obs::json_escape(msg);
    rec += "\"}\n";
    std::fwrite(rec.data(), 1, rec.size(), g_json_sink);
    std::fflush(g_json_sink);
  }
}

}  // namespace qgear::log
