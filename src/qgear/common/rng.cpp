#include "qgear/common/rng.hpp"

#include <cmath>

#include "qgear/common/error.hpp"

namespace qgear {

namespace {
constexpr unsigned __int128 kMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (static_cast<unsigned __int128>(stream) << 1) | 1;
  state_ = 0;
  (*this)();
  state_ += static_cast<unsigned __int128>(seed);
  (*this)();
}

Rng::result_type Rng::operator()() {
  state_ = state_ * kMultiplier + inc_;
  // XSL-RR output function.
  const std::uint64_t xored =
      static_cast<std::uint64_t>(state_ >> 64) ^
      static_cast<std::uint64_t>(state_);
  const unsigned rot = static_cast<unsigned>(state_ >> 122);
  return (xored >> rot) | (xored << ((64u - rot) & 63u));
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  QGEAR_EXPECTS(bound > 0);
  // Lemire's rejection method for unbiased bounded integers.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split() {
  return Rng((*this)(), (*this)());
}

}  // namespace qgear
