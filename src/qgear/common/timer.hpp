// Wall-clock timing used by benches and the calibration pass.
#pragma once

#include <chrono>

namespace qgear {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qgear
