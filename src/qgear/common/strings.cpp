#include "qgear/common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace qgear {

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, units[unit]);
  }
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[32];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.2f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
  }
  return buf;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, delim)) out.push_back(item);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace qgear
