// Small string/formatting helpers shared by benches and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qgear {

/// "1.50 GB", "320 MB", "42 B" — 1024-based units.
std::string human_bytes(std::uint64_t bytes);

/// "1.2 s", "340 ms", "12 us" — scales to the dominant unit.
std::string human_seconds(double seconds);

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char delim);

/// Joins with a delimiter.
std::string join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// printf-style formatting into std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace qgear
