// Error handling primitives for qgear.
//
// All recoverable failures throw qgear::Error (invalid user input, bad
// files, resource exhaustion). Programming-contract violations use
// QGEAR_EXPECTS / QGEAR_ENSURES, which also throw so tests can assert on
// them, but carry file:line context for debugging.
#pragma once

#include <stdexcept>
#include <string>

namespace qgear {

/// Base exception for all qgear failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Input supplied by the caller violated a documented requirement.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A file or serialized payload was malformed or truncated.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// A simulation would exceed the configured memory budget.
class OutOfMemoryBudget : public Error {
 public:
  explicit OutOfMemoryBudget(const std::string& what) : Error(what) {}
};

/// Internal invariant violated (a bug in qgear itself).
class LogicViolation : public Error {
 public:
  explicit LogicViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract_failure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg);
}  // namespace detail

}  // namespace qgear

/// Precondition check: throws qgear::LogicViolation when violated.
#define QGEAR_EXPECTS(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::qgear::detail::throw_contract_failure("Precondition", #cond,       \
                                              __FILE__, __LINE__, "");     \
  } while (false)

/// Postcondition check: throws qgear::LogicViolation when violated.
#define QGEAR_ENSURES(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::qgear::detail::throw_contract_failure("Postcondition", #cond,      \
                                              __FILE__, __LINE__, "");     \
  } while (false)

/// Validates user-facing input; throws qgear::InvalidArgument with `msg`.
#define QGEAR_CHECK_ARG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) throw ::qgear::InvalidArgument(msg);                       \
  } while (false)

/// Validates serialized data; throws qgear::FormatError with `msg`.
#define QGEAR_CHECK_FORMAT(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) throw ::qgear::FormatError(msg);                           \
  } while (false)
