// Minimal leveled logger. Benches and the platform simulators use it to
// narrate pipeline stages; tests silence it via set_level(Level::off).
//
// Environment control (read once, lazily, before the first write; an
// explicit set_level()/set_json_sink() call always wins afterwards):
//   QGEAR_LOG=debug|info|warn|error|off   stderr threshold
//   QGEAR_LOG_JSON=<path>                 mirror records to a JSON-lines
//                                         file ({"ts","level","msg"})
// Each record is emitted as one atomic write, so concurrent threads (the
// thread pool, SPMD ranks) never interleave partial lines.
#pragma once

#include <string>

namespace qgear::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

void set_level(Level level);
Level level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Throws InvalidArgument on anything else.
Level parse_level(const std::string& name);

/// Re-reads QGEAR_LOG / QGEAR_LOG_JSON and applies them. Called
/// automatically once before the first write; call explicitly to pick up
/// env changes made later (tests do).
void init_from_env();

/// Mirrors every record at or above the stderr threshold to `path` as
/// JSON lines. An empty path closes the sink.
void set_json_sink(const std::string& path);
void close_json_sink();

void write(Level level, const std::string& msg);

inline void debug(const std::string& msg) { write(Level::debug, msg); }
inline void info(const std::string& msg) { write(Level::info, msg); }
inline void warn(const std::string& msg) { write(Level::warn, msg); }
inline void error(const std::string& msg) { write(Level::error, msg); }

}  // namespace qgear::log
