// Minimal leveled logger. Benches and the platform simulators use it to
// narrate pipeline stages; tests silence it via set_level(Level::off).
#pragma once

#include <string>

namespace qgear::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

void set_level(Level level);
Level level();

void write(Level level, const std::string& msg);

inline void debug(const std::string& msg) { write(Level::debug, msg); }
inline void info(const std::string& msg) { write(Level::info, msg); }
inline void warn(const std::string& msg) { write(Level::warn, msg); }
inline void error(const std::string& msg) { write(Level::error, msg); }

}  // namespace qgear::log
