// Bit-manipulation helpers used throughout the state-vector engines.
//
// Amplitude indices are 64-bit; qubit k corresponds to bit k of the index
// (little-endian qubit ordering, matching Qiskit's convention).
#pragma once

#include <bit>
#include <cstdint>

#include "qgear/common/error.hpp"

namespace qgear {

/// 2^n as an unsigned 64-bit value. Requires n < 64.
constexpr std::uint64_t pow2(unsigned n) {
  return std::uint64_t{1} << n;
}

/// True iff v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)) for v > 0.
constexpr unsigned log2_floor(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Exact log2 of a power of two.
inline unsigned log2_exact(std::uint64_t v) {
  QGEAR_EXPECTS(is_pow2(v));
  return log2_floor(v);
}

/// Inserts a zero bit at position `pos`, shifting higher bits left by one.
/// Example: insert_zero_bit(0b1011, 1) == 0b10101.
constexpr std::uint64_t insert_zero_bit(std::uint64_t v, unsigned pos) {
  const std::uint64_t low_mask = (std::uint64_t{1} << pos) - 1;
  return ((v & ~low_mask) << 1) | (v & low_mask);
}

/// Inserts two zero bits at positions p_lo < p_hi (positions in the result).
constexpr std::uint64_t insert_two_zero_bits(std::uint64_t v, unsigned p_lo,
                                             unsigned p_hi) {
  return insert_zero_bit(insert_zero_bit(v, p_lo), p_hi);
}

/// Tests bit `pos` of v.
constexpr bool test_bit(std::uint64_t v, unsigned pos) {
  return ((v >> pos) & 1u) != 0;
}

/// Sets bit `pos` of v.
constexpr std::uint64_t set_bit(std::uint64_t v, unsigned pos) {
  return v | (std::uint64_t{1} << pos);
}

/// Clears bit `pos` of v.
constexpr std::uint64_t clear_bit(std::uint64_t v, unsigned pos) {
  return v & ~(std::uint64_t{1} << pos);
}

/// Flips bit `pos` of v.
constexpr std::uint64_t flip_bit(std::uint64_t v, unsigned pos) {
  return v ^ (std::uint64_t{1} << pos);
}

/// Reverses the lowest n bits of v (used by QFT output ordering).
constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned n) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < n; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

/// Scatters the bits of `compact` into the positions given by the sorted
/// list `positions` (ascending), leaving other bits zero. Used to enumerate
/// amplitude groups for multi-qubit fused gates.
inline std::uint64_t deposit_bits(std::uint64_t compact,
                                  const unsigned* positions, unsigned count) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < count; ++i) {
    out |= ((compact >> i) & 1u) << positions[i];
  }
  return out;
}

}  // namespace qgear
