#include "qgear/common/error.hpp"

#include <sstream>

namespace qgear::detail {

void throw_contract_failure(const char* kind, const char* expr,
                            const char* file, int line,
                            const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: `" << expr << "` at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicViolation(os.str());
}

}  // namespace qgear::detail
