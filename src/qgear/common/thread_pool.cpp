#include "qgear/common/thread_pool.hpp"

#include "qgear/common/error.hpp"

namespace qgear {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  tasks_.resize(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (begin >= end) return;
  const std::uint64_t count = end - begin;
  const unsigned workers = size();
  // Small ranges are not worth the hand-off latency.
  if (workers <= 1 || count < 4096) {
    fn(begin, end);
    return;
  }
  const std::uint64_t chunk = (count + workers - 1) / workers;
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    unsigned issued = 0;
    for (unsigned i = 0; i < workers; ++i) {
      const std::uint64_t b = begin + chunk * i;
      if (b >= end) break;
      const std::uint64_t e = std::min(end, b + chunk);
      tasks_[i] = Task{&fn, b, e};
      ++issued;
    }
    pending_ = issued;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation &&
                         tasks_[worker_index].fn != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      tasks_[worker_index].fn = nullptr;
    }
    if (task.fn != nullptr) {
      (*task.fn)(task.begin, task.end);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qgear
