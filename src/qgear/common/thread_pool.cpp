#include "qgear/common/thread_pool.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "qgear/common/error.hpp"
#include "qgear/common/log.hpp"
#include "qgear/fault/fault.hpp"
#include "qgear/obs/metrics.hpp"

namespace qgear {

namespace {

// Cached references: registry lookups take a mutex, so resolve each metric
// once. References stay valid forever (the registry never deletes).
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("threadpool.queue_depth");
  return g;
}

obs::Histogram& task_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("threadpool.task_latency_us");
  return h;
}

obs::Counter& rounds_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("threadpool.rounds");
  return c;
}

obs::Counter& inline_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("threadpool.inline_runs");
  return c;
}

obs::Counter& jobs_counter() {
  static obs::Counter& c = obs::Registry::global().counter("threadpool.jobs");
  return c;
}

obs::Counter& jobs_rejected_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("threadpool.jobs_rejected");
  return c;
}

obs::Gauge& job_queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("threadpool.job_queue_depth");
  return g;
}

obs::Counter& jobs_aborted_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("threadpool.jobs_aborted");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  tasks_.resize(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Workers drain the job queue before exiting, so every job accepted by
  // try_submit()/submit() runs even when destruction races submission.
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (begin >= end) return;
  const std::uint64_t count = end - begin;
  const unsigned workers = size();
  // Small ranges are not worth the hand-off latency.
  if (workers <= 1 || count < 4096) {
    inline_counter().add();
    fn(begin, end);
    return;
  }
  const std::uint64_t chunk = (count + workers - 1) / workers;
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  rounds_counter().add();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    unsigned issued = 0;
    for (unsigned i = 0; i < workers; ++i) {
      const std::uint64_t b = begin + chunk * i;
      if (b >= end) break;
      const std::uint64_t e = std::min(end, b + chunk);
      tasks_[i] = Task{&fn, b, e};
      ++issued;
    }
    pending_ = issued;
    queue_depth_gauge().set(issued);
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    queue_depth_gauge().set(0);
  }
}

bool ThreadPool::try_submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= queue_capacity_) {
      jobs_rejected_counter().add();
      return false;
    }
    queue_.push_back(std::move(job));
    job_queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  jobs_counter().add();
  work_cv_.notify_one();
  return true;
}

void ThreadPool::submit(Job job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock,
                   [this] { return stop_ || queue_.size() < queue_capacity_; });
    if (stop_) throw Error("thread pool: submit after shutdown");
    queue_.push_back(std::move(job));
    job_queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  jobs_counter().add();
  work_cv_.notify_one();
}

std::size_t ThreadPool::queue_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this] { return queue_.empty() && active_jobs_ == 0; });
}

void ThreadPool::run_job(Job& job) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Fault site: a worker job that dies on pickup. The pool itself
    // survives (this handler) — callers that need the job's effect get
    // it back via their own retry layer (see serve::RetryPolicy).
    fault::maybe_throw(fault::Site::pool_abort, "thread pool job pickup");
    job();
  } catch (const fault::FaultInjected& e) {
    jobs_aborted_counter().add();
    log::error(std::string("thread pool job aborted: ") + e.what());
  } catch (const std::exception& e) {
    log::error(std::string("thread pool job threw: ") + e.what());
  } catch (...) {
    log::error("thread pool job threw a non-std exception");
  }
  task_latency_hist().observe(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || !queue_.empty() ||
               (generation_ != seen_generation &&
                tasks_[worker_index].fn != nullptr);
      });
      if (generation_ != seen_generation &&
          tasks_[worker_index].fn != nullptr) {
        // parallel_for chunks take priority over queued jobs.
        seen_generation = generation_;
        task = tasks_[worker_index];
        tasks_[worker_index].fn = nullptr;
      } else if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        ++active_jobs_;
        job_queue_depth_gauge().set(static_cast<double>(queue_.size()));
        space_cv_.notify_all();
      } else {
        // stop_ is set and the queue is drained.
        return;
      }
    }
    if (task.fn != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      (*task.fn)(task.begin, task.end);
      task_latency_hist().observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    } else {
      run_job(job);
      std::lock_guard<std::mutex> lock(mutex_);
      --active_jobs_;
      if (queue_.empty() && active_jobs_ == 0) space_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qgear
