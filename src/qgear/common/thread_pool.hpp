// Fixed-size thread pool with a blocking parallel_for and a bounded
// asynchronous job queue.
//
// Stands in for the GPU's SM/warp parallelism in the fused engine and for
// per-rank worker threads in the in-process communicator. parallel_for
// partitions [begin, end) into contiguous chunks, one per worker, which is
// the right shape for bandwidth-bound amplitude sweeps.
//
// The job queue serves task-parallel callers (the serve subsystem's worker
// pool): try_submit() enqueues a fire-and-forget job and reports
// backpressure instead of blocking, queue_size()/queue_capacity() expose
// occupancy for admission control, and destruction with jobs still queued
// is well-defined — the destructor stops accepting new jobs, runs every
// already-queued job to completion, then joins the workers. Workers give
// parallel_for chunks priority over queued jobs so amplitude sweeps keep
// their latency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qgear {

class ThreadPool {
 public:
  /// A fire-and-forget job. Jobs must not throw; escaped exceptions are
  /// caught, logged at error level, and swallowed.
  using Job = std::function<void()>;

  static constexpr std::size_t kDefaultQueueCapacity = 1024;

  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  /// `queue_capacity` bounds the async job queue (min 1).
  explicit ThreadPool(unsigned threads = 0,
                      std::size_t queue_capacity = kDefaultQueueCapacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end),
  /// blocking until every chunk completes. Runs inline when the range is
  /// small or the pool has a single worker.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t, std::uint64_t)>& fn);

  /// Enqueues `job` for asynchronous execution. Returns false — without
  /// blocking — when the queue is at capacity or the pool is shutting
  /// down; the caller owns the backpressure decision.
  bool try_submit(Job job);

  /// Blocking submit: waits for queue space. Throws qgear::Error when the
  /// pool is shutting down.
  void submit(Job job);

  /// Upper bound on queued (not yet started) jobs.
  std::size_t queue_capacity() const { return queue_capacity_; }

  /// Jobs currently queued (excludes running jobs). Instantaneous value;
  /// concurrent submitters/workers may change it immediately.
  std::size_t queue_size() const;

  /// Blocks until the job queue is empty and no job is executing.
  /// parallel_for activity is not considered.
  void wait_idle();

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::uint64_t, std::uint64_t)>* fn = nullptr;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  void worker_loop(unsigned worker_index);
  void run_job(Job& job);

  std::mutex submit_mutex_;  // serializes concurrent parallel_for callers
  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;          // one slot per worker
  std::deque<Job> queue_;            // async jobs (bounded)
  std::size_t queue_capacity_;
  unsigned active_jobs_ = 0;         // async jobs currently executing
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::condition_variable space_cv_;  // queue space freed / pool idle
  std::uint64_t generation_ = 0;     // bumped per parallel_for round
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace qgear
