// Fixed-size thread pool with a blocking parallel_for.
//
// Stands in for the GPU's SM/warp parallelism in the fused engine and for
// per-rank worker threads in the in-process communicator. parallel_for
// partitions [begin, end) into contiguous chunks, one per worker, which is
// the right shape for bandwidth-bound amplitude sweeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qgear {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end),
  /// blocking until every chunk completes. Runs inline when the range is
  /// small or the pool has a single worker.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t, std::uint64_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::uint64_t, std::uint64_t)>* fn = nullptr;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  void worker_loop(unsigned worker_index);

  std::mutex submit_mutex_;  // serializes concurrent parallel_for callers
  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;          // one slot per worker
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;     // bumped per parallel_for round
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace qgear
