// Deterministic random number generation (PCG64).
//
// All stochastic components (circuit generators, samplers, synthetic
// images) take an explicit Rng so experiments are reproducible from a
// single seed recorded in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <limits>

namespace qgear {

/// PCG-XSL-RR 128/64 generator — small, fast, and high quality.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double normal();

  /// Derives an independent child generator (for per-rank streams).
  Rng split();

 private:
  unsigned __int128 state_;
  unsigned __int128 inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qgear
