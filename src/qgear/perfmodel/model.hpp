// Analytic performance model for paper-scale runs.
//
// The engines in sim/ and dist/ are exact but bounded by this machine's
// memory; the paper evaluates 28-42 qubits on A100 clusters. This model
// prices the *same* execution schedule the real engines use — fused-sweep
// counts come from the real fusion planner, communication volume from the
// distributed engine's own exchange_bytes_for — on the paper's hardware
// specs. Benches print measured small-scale times next to modeled
// paper-scale times; EXPERIMENTS.md records both.
#pragma once

#include <cstdint>
#include <string>

#include "qgear/core/transformer.hpp"
#include "qgear/perfmodel/specs.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/isa.hpp"

namespace qgear::perfmodel {

/// GPU cluster configuration for an estimate.
struct ClusterConfig {
  DeviceSpec gpu = a100_40gb();
  InterconnectSpec net = perlmutter_interconnect();
  ContainerSpec container = podman_hpc();
  int devices = 1;                      ///< power of two
  core::Precision precision = core::Precision::fp32;
  unsigned fusion_width = 5;
  bool include_container_start = true;
  /// Price the communication-avoiding remapped schedule (dist/remap):
  /// slab swaps at half-slab cost instead of per-gate exchanges, sweeps
  /// from segment-wise fusion plus one per swap/residual exchange.
  bool remap = false;
};

/// CPU-node baseline configuration.
struct CpuBaselineConfig {
  CpuNodeSpec node = perlmutter_cpu_node();
  core::Precision precision = core::Precision::fp32;
  /// node_parallel: Aer sweeps each gate across all cores (Fig. 4a
  /// baseline). per_core_unitary: each core redundantly evolves the state
  /// and only sampling parallelizes (the paper's Fig. 5 CPU mode).
  enum class Mode { node_parallel, per_core_unitary };
  Mode mode = Mode::node_parallel;
};

/// Cost breakdown of one estimated run.
struct Estimate {
  bool feasible = true;
  std::string infeasible_reason;
  double compute_s = 0.0;   ///< amplitude sweeps
  double launch_s = 0.0;    ///< kernel launch / gate dispatch overhead
  double comm_s = 0.0;      ///< inter-device exchanges
  double sample_s = 0.0;    ///< shot sampling
  double startup_s = 0.0;   ///< container start (and cold-node straggler)
  std::uint64_t sweeps = 0;
  std::uint64_t comm_bytes_per_device = 0;
  /// Total electrical energy of the run (all devices/nodes busy for
  /// total_s) — the paper's Fig. 4b "energy trade-off" observation: a
  /// 1024-GPU run that is barely faster than 256 GPUs costs ~4x the
  /// energy.
  double energy_joules = 0.0;

  double total_s() const {
    return compute_s + launch_s + comm_s + sample_s + startup_s;
  }
};

/// Prices `qc` on a GPU cluster. Walks the real instruction list: fusion
/// plan for sweep counts, per-gate schedule for communication.
Estimate estimate_gpu(const qiskit::QuantumCircuit& qc,
                      const ClusterConfig& config, std::uint64_t shots = 0);

/// Prices `qc` on the CPU-node baseline.
Estimate estimate_cpu(const qiskit::QuantumCircuit& qc,
                      const CpuBaselineConfig& config,
                      std::uint64_t shots = 0);

/// Memory price of one circuit under a named sim::Backend — the serve
/// admission currency — plus feasibility against a byte budget. This is
/// where the backend choice shows up at paper scale: a 50-qubit GHZ
/// prices at 16 PiB dense but a few hundred MiB on dd/mps.
struct BackendMemoryEstimate {
  std::string backend;
  std::uint64_t mem_bytes = 0;
  bool feasible = true;             ///< fits `budget_bytes` (0 = no budget)
  std::string infeasible_reason;
};

BackendMemoryEstimate estimate_backend_memory(
    const qiskit::QuantumCircuit& qc, const std::string& backend,
    std::uint64_t budget_bytes = 0, const sim::BackendOptions& opts = {});

/// Link class between exchange partners `gbit` global-qubit levels apart.
enum class LinkClass { nvlink, slingshot, cross_rack };
LinkClass link_class_for(unsigned gbit, const InterconnectSpec& net);

/// Memory traffic of one fused sweep, in units of the local state size:
/// every amplitude is read once and written once. The SIMD kernels change
/// arithmetic throughput, not traffic, so this constant is ISA-independent
/// and the bandwidth-bound model stays calibrated across dispatch targets.
inline constexpr double kSweepBytesPerStateByte = 2.0;

/// Measures this host's sustained amplitude-sweep bandwidth (bytes/s) by
/// timing the fused engine on a calibration circuit. Benches use it to
/// relate local measured times to modeled device times. Pass an `isa` to
/// calibrate a specific kernel variant (the active ISA is restored before
/// returning); the default measures whatever is currently active.
double measure_local_sweep_bandwidth(unsigned num_qubits = 18,
                                     unsigned blocks = 40);
double measure_local_sweep_bandwidth(unsigned num_qubits, unsigned blocks,
                                     sim::Isa isa);

}  // namespace qgear::perfmodel
