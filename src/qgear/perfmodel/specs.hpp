// Hardware specifications of the paper's testbed (Sec. 2.3, Fig. 3) and
// the tunable efficiency constants of the performance model.
//
// The model is a bandwidth-bound roofline: a state-vector sweep moves
// 2 * amp_bytes per amplitude (read + write) through device memory, plus a
// fixed kernel-launch overhead. Efficiency factors calibrate sustained vs
// peak bandwidth; they are documented in EXPERIMENTS.md and chosen once to
// match the paper's headline ratios (not per-figure).
#pragma once

#include <cstdint>
#include <string>

namespace qgear::perfmodel {

/// One GPU device (paper: NVIDIA A100, Ampere).
struct DeviceSpec {
  std::string name;
  double mem_bandwidth_bps;   ///< peak HBM bandwidth, bytes/s
  double efficiency;          ///< sustained fraction of peak for sweeps
  std::uint64_t memory_bytes; ///< usable state memory
  double kernel_launch_s;     ///< per-sweep launch/dispatch overhead
  /// Per-shot sampling cost for a 2^15-amplitude state; scales linearly
  /// with state size (cumulative-search sampling, no device alias table).
  double shot_unit_s;
  double power_watts;         ///< board power under sustained load
};

/// The CPU node baseline (paper: 2x AMD EPYC 7763, 128 cores, 512 GB).
struct CpuNodeSpec {
  std::string name;
  unsigned cores;
  double node_bandwidth_bps;  ///< aggregate DDR4 bandwidth, bytes/s
  double core_bandwidth_bps;  ///< single-core effective bandwidth
  double node_efficiency;     ///< Aer multithreaded sweep efficiency
  std::uint64_t memory_bytes;
  double gate_dispatch_s;     ///< per-gate framework overhead (Aer)
  double shot_s;              ///< per-shot sampling cost on one core
  double power_watts;         ///< node power under sustained load
};

/// Cluster interconnect (paper: NVLink-3 within a node, HPE Slingshot 11
/// between nodes, nodes grouped into racks).
struct InterconnectSpec {
  double nvlink_bps;          ///< per-direction GPU pair bandwidth in-node
  double nvlink_latency_s;
  double slingshot_bps;       ///< per-NIC inter-node bandwidth
  double slingshot_latency_s;
  unsigned gpus_per_node;
  unsigned nodes_per_rack;
  /// Bandwidth multiplier for exchanges crossing a rack boundary (the
  /// Fig. 4b "highlighted region" mechanism).
  double rack_bandwidth_factor;
  double rack_extra_latency_s;
  /// Aggregate inter-rack spine bandwidth. A gate on a cross-rack global
  /// qubit pushes every pair's slab through the spine at once, so its
  /// wall time is bounded below by total_bytes / spine_bps — this
  /// congestion term (independent of cluster size at fixed n) is what
  /// makes 1024 GPUs lose to 256 at 40 qubits.
  double spine_bps;
  /// Congestion collapse window: once one exchange occupies the spine
  /// longer than this, congestion control (and sharing with other
  /// tenants) degrades effective bandwidth — service time becomes
  /// T * (1 + T / window). This nonlinearity is what turns the 1024-GPU
  /// advantage into a loss between 39 and 40 qubits (Fig. 4b's
  /// highlighted region): every linear term scales as 2^n on both
  /// cluster sizes, so only a superlinear spine term can cross.
  double spine_congestion_window_s;
};

/// Container runtime overheads (Podman/Shifter, Sec. 2.4 / App. E).
struct ContainerSpec {
  double warm_start_s;        ///< image already cached on the node
  double cold_start_s;        ///< image pull + extraction
  /// Probability a given node is warm in a large allocation; jobs spanning
  /// many nodes are increasingly likely to hit a cold (or unwarmed) GPU.
  double warm_node_probability;
};

/// Paper hardware: A100 with 40 GB HBM2e, 2039 GB/s.
DeviceSpec a100_40gb();
/// The hbm80g variant used for the largest Fig. 4b runs.
DeviceSpec a100_80gb();
/// Perlmutter CPU node: 2x EPYC 7763, 512 GB DDR4 (460 usable) at
/// 204.8 GB/s per socket.
CpuNodeSpec perlmutter_cpu_node();
/// NVLink-3 (4 links x 25 GB/s) + Slingshot 11, 4 GPUs/node, 64 nodes/rack.
InterconnectSpec perlmutter_interconnect();
ContainerSpec podman_hpc();

}  // namespace qgear::perfmodel
