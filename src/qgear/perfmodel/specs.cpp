#include "qgear/perfmodel/specs.hpp"

namespace qgear::perfmodel {

namespace {
constexpr double kGB = 1e9;  // vendor bandwidth figures are decimal GB
}

DeviceSpec a100_40gb() {
  return {
      .name = "A100-SXM4-40GB",
      .mem_bandwidth_bps = 2039.0 * kGB,  // HBM2e peak (Sec. 2.3)
      .efficiency = 0.75,
      .memory_bytes = 40ull << 30,
      .kernel_launch_s = 5e-6,
      .shot_unit_s = 12e-9,
      .power_watts = 400.0,  // SXM4 board power
  };
}

DeviceSpec a100_80gb() {
  DeviceSpec d = a100_40gb();
  d.name = "A100-SXM4-80GB";
  d.memory_bytes = 80ull << 30;
  return d;
}

CpuNodeSpec perlmutter_cpu_node() {
  return {
      .name = "2x EPYC 7763 (128 cores, 512 GB DDR4)",
      .cores = 128,
      // 204.8 GB/s per socket x 2 (Sec. 2.3).
      .node_bandwidth_bps = 2 * 204.8 * kGB,
      // Single-core sustained stream bandwidth on Milan.
      .core_bandwidth_bps = 4.0 * kGB,
      // Aer's multithreaded state-vector sweeps reach a small fraction of
      // peak node bandwidth (per-gate dispatch, NUMA, no fusion). This is
      // the constant calibrated against the paper's ~400x Fig. 4a ratio.
      .node_efficiency = 0.115,
      // 512 GB installed; ~460 GB usable for the job (App. E.3's script).
      .memory_bytes = 460ull << 30,
      .gate_dispatch_s = 40e-6,
      .shot_s = 25e-9,
      .power_watts = 560.0,  // 2 x 280 W TDP sockets
  };
}

InterconnectSpec perlmutter_interconnect() {
  return {
      // 4 third-gen NVLinks x 25 GB/s per direction (Sec. 2.3).
      .nvlink_bps = 4 * 25.0 * kGB,
      .nvlink_latency_s = 2e-6,
      // One Slingshot 11 NIC per GPU, ~25 GB/s each.
      .slingshot_bps = 25.0 * kGB,
      .slingshot_latency_s = 10e-6,
      .gpus_per_node = 4,
      .nodes_per_rack = 64,  // 256 GPUs fill one rack
      .rack_bandwidth_factor = 0.35,
      .rack_extra_latency_s = 30e-6,
      .spine_bps = 3e12,
      .spine_congestion_window_s = 0.7,
  };
}

ContainerSpec podman_hpc() {
  return {
      .warm_start_s = 0.6,
      .cold_start_s = 25.0,
      .warm_node_probability = 0.995,
  };
}

}  // namespace qgear::perfmodel
