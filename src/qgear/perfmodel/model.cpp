#include "qgear/perfmodel/model.hpp"

#include <cmath>

#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/dist/dist_state.hpp"
#include "qgear/dist/remap.hpp"
#include "qgear/sim/fused.hpp"

namespace qgear::perfmodel {

LinkClass link_class_for(unsigned gbit, const InterconnectSpec& net) {
  const unsigned node_bits = log2_exact(net.gpus_per_node);
  if (gbit < node_bits) return LinkClass::nvlink;
  const unsigned rack_bits = node_bits + log2_exact(net.nodes_per_rack);
  if (gbit < rack_bits) return LinkClass::slingshot;
  return LinkClass::cross_rack;
}

namespace {

// Time for one pairwise exchange of `bytes` at global-qubit level `gbit`,
// with `pairs` rank pairs exchanging concurrently. sendrecv is full
// duplex, so the per-pair wire time is bytes / bandwidth; cross-rack
// exchanges additionally serialize on the shared spine.
double exchange_time(std::uint64_t bytes, unsigned gbit, int pairs,
                     const InterconnectSpec& net) {
  switch (link_class_for(gbit, net)) {
    case LinkClass::nvlink:
      return net.nvlink_latency_s +
             static_cast<double>(bytes) / net.nvlink_bps;
    case LinkClass::slingshot:
      return net.slingshot_latency_s +
             static_cast<double>(bytes) / net.slingshot_bps;
    case LinkClass::cross_rack: {
      const double pair_time =
          static_cast<double>(bytes) /
          (net.slingshot_bps * net.rack_bandwidth_factor);
      // All pairs push through the inter-rack spine simultaneously;
      // sustained saturation beyond the congestion window degrades the
      // effective bandwidth superlinearly (see specs.hpp).
      const double spine_raw =
          static_cast<double>(bytes) * static_cast<double>(pairs) /
          net.spine_bps;
      const double spine_time =
          spine_raw * (1.0 + spine_raw / net.spine_congestion_window_s);
      return net.slingshot_latency_s + net.rack_extra_latency_s +
             std::max(pair_time, spine_time);
    }
  }
  return 0.0;
}

// Global-qubit level of the exchange an instruction triggers, or -1 if it
// is communication-free. Mirrors dist::DistStateVector's case analysis.
int exchange_gbit(const qiskit::Instruction& inst, unsigned num_local) {
  using qiskit::GateKind;
  const auto global = [num_local](int q) {
    return static_cast<unsigned>(q) >= num_local;
  };
  switch (inst.kind) {
    case GateKind::cx:
      if (!global(inst.q1)) return -1;
      return inst.q1 - static_cast<int>(num_local);
    case GateKind::swap:
      // Priced per decomposed cx below; treated directly here as the
      // dominant target-global hop.
      if (!global(inst.q0) && !global(inst.q1)) return -1;
      return std::max(inst.q0, inst.q1) - static_cast<int>(num_local);
    case GateKind::barrier:
    case GateKind::measure:
    case GateKind::z:
    case GateKind::s:
    case GateKind::sdg:
    case GateKind::t:
    case GateKind::tdg:
    case GateKind::rz:
    case GateKind::p:
    case GateKind::cz:
    case GateKind::cp:
      return -1;
    default:
      return global(inst.q0) ? inst.q0 - static_cast<int>(num_local) : -1;
  }
}

double container_startup(const ClusterConfig& config) {
  if (!config.include_container_start) return 0.0;
  const ContainerSpec& c = config.container;
  const InterconnectSpec& net = config.net;
  const unsigned nodes =
      (static_cast<unsigned>(config.devices) + net.gpus_per_node - 1) /
      net.gpus_per_node;
  // A job blocks on its slowest node; the chance every node is warm decays
  // with the allocation size — the paper's "not warmed up" effect.
  const double all_warm = std::pow(c.warm_node_probability, nodes);
  return all_warm * c.warm_start_s + (1.0 - all_warm) * c.cold_start_s;
}

}  // namespace

Estimate estimate_gpu(const qiskit::QuantumCircuit& qc,
                      const ClusterConfig& config, std::uint64_t shots) {
  QGEAR_CHECK_ARG(config.devices >= 1 &&
                      is_pow2(static_cast<std::uint64_t>(config.devices)),
                  "perfmodel: device count must be a power of two");
  Estimate e;
  const unsigned n = qc.num_qubits();
  const unsigned r = log2_exact(static_cast<std::uint64_t>(config.devices));
  const std::size_t amp_b = core::amp_bytes(config.precision);

  if (n < r + 1) {
    e.feasible = false;
    e.infeasible_reason = "fewer qubits than log2(devices)+1";
    return e;
  }
  const unsigned num_local = n - r;
  const std::uint64_t local_bytes = pow2(num_local) * amp_b;
  if (local_bytes > config.gpu.memory_bytes) {
    e.feasible = false;
    e.infeasible_reason = strfmt(
        "%u-qubit %s state needs %s per GPU, %s has %s", n,
        core::precision_name(config.precision),
        human_bytes(local_bytes).c_str(), config.gpu.name.c_str(),
        human_bytes(config.gpu.memory_bytes).c_str());
    return e;
  }

  if (config.remap && r > 0) {
    // Walk the communication-avoiding plan the real engine executes:
    // half-slab index-bit swaps replace per-gate exchanges, local runs
    // fuse segment-wise, and elided swap gates cost nothing.
    const dist::RemapPlan rplan = dist::plan_remap(qc, num_local);
    qiskit::QuantumCircuit run(num_local, "model_segment");
    auto flush_run = [&] {
      if (run.empty()) return;
      const sim::FusionPlan fp = sim::plan_fusion(
          run, {.max_width = std::min(config.fusion_width, num_local)});
      e.sweeps += fp.blocks.size();
      run = qiskit::QuantumCircuit(num_local, "model_segment");
    };
    for (const dist::RemapSegment& seg : rplan.segments) {
      if (!seg.swaps.empty()) {
        flush_run();
        // A k-wide batch runs as one exchange: the slab splits into 2^k
        // groups, one stays put, and round d = 1..2^k-1 trades one group
        // with the peer across gmask(d). Each round's wall time is set by
        // the slowest link its mask crosses — the highest global bit.
        const unsigned k = static_cast<unsigned>(seg.swaps.size());
        const std::uint64_t group_bytes = local_bytes >> k;
        // Gather + scatter touch the traded groups once each: one sweep
        // regardless of batch width.
        ++e.sweeps;
        for (std::uint64_t d = 1; d < pow2(k); ++d) {
          unsigned gbit = 0;
          for (unsigned i = 0; i < k; ++i) {
            if ((d >> i) & 1) {
              gbit = std::max(gbit, seg.swaps[i].global_phys - num_local);
            }
          }
          e.comm_bytes_per_device += group_bytes;
          e.comm_s += exchange_time(group_bytes, gbit, config.devices / 2,
                                    config.net);
        }
      }
      for (const qiskit::Instruction& inst : seg.insts) {
        if (inst.kind == qiskit::GateKind::barrier ||
            inst.kind == qiskit::GateKind::measure) {
          continue;
        }
        const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
        const bool local_unitary =
            info.unitary && static_cast<unsigned>(inst.q0) < num_local &&
            (info.num_qubits < 2 ||
             static_cast<unsigned>(inst.q1) < num_local);
        if (local_unitary) {
          run.append(inst);
          continue;
        }
        flush_run();
        ++e.sweeps;  // diagonal factor sweep or exchange update
        const std::uint64_t bytes =
            dist::exchange_bytes_for(inst, n, num_local, amp_b);
        if (bytes == 0) continue;
        const int gbit = exchange_gbit(inst, num_local);
        QGEAR_ENSURES(gbit >= 0);
        e.comm_bytes_per_device += bytes;
        e.comm_s += exchange_time(bytes, static_cast<unsigned>(gbit),
                                  config.devices / 2, config.net);
      }
    }
    flush_run();
  } else {
    // Sweep count from the real fusion planner (cheap: walks the gate
    // list).
    const sim::FusionPlan plan =
        sim::plan_fusion(qc, {.max_width = config.fusion_width});
    e.sweeps = plan.blocks.size();

    // Communication: walk the exact per-gate schedule.
    if (r > 0) {
      for (const qiskit::Instruction& inst : qc.instructions()) {
        const std::uint64_t bytes =
            dist::exchange_bytes_for(inst, n, num_local, amp_b);
        if (bytes == 0) continue;
        const int gbit = exchange_gbit(inst, num_local);
        QGEAR_ENSURES(gbit >= 0);
        e.comm_bytes_per_device += bytes;
        // All pairs exchange concurrently; wall time is one pair's time
        // plus any shared-spine serialization.
        e.comm_s += exchange_time(bytes, static_cast<unsigned>(gbit),
                                  config.devices / 2, config.net);
      }
    }
  }

  const double sweep_bytes =
      kSweepBytesPerStateByte * static_cast<double>(local_bytes);
  const double sustained =
      config.gpu.mem_bandwidth_bps * config.gpu.efficiency;
  e.compute_s = static_cast<double>(e.sweeps) * sweep_bytes / sustained;
  e.launch_s = static_cast<double>(e.sweeps) * config.gpu.kernel_launch_s;

  if (shots > 0) {
    // Device-side cumulative-search sampling: per-shot cost scales with
    // state size (see specs.hpp).
    const double per_shot = config.gpu.shot_unit_s *
                            static_cast<double>(pow2(num_local)) / 32768.0;
    e.sample_s = static_cast<double>(shots) * per_shot;
  }

  e.startup_s = container_startup(config);
  e.energy_joules =
      e.total_s() * config.gpu.power_watts * config.devices;
  return e;
}

Estimate estimate_cpu(const qiskit::QuantumCircuit& qc,
                      const CpuBaselineConfig& config, std::uint64_t shots) {
  Estimate e;
  const unsigned n = qc.num_qubits();
  const std::size_t amp_b = core::amp_bytes(config.precision);
  const std::uint64_t state_bytes = pow2(n) * amp_b;
  // Aer needs the state plus working buffers; the paper's 512 GB node dies
  // at 34 qubits.
  if (2 * state_bytes > config.node.memory_bytes) {
    e.feasible = false;
    e.infeasible_reason =
        strfmt("%u-qubit %s state (plus workspace) exceeds %s node RAM", n,
               core::precision_name(config.precision),
               human_bytes(config.node.memory_bytes).c_str());
    return e;
  }

  std::uint64_t gates = 0;
  for (const qiskit::Instruction& inst : qc.instructions()) {
    if (inst.kind != qiskit::GateKind::barrier &&
        inst.kind != qiskit::GateKind::measure) {
      ++gates;
    }
  }
  e.sweeps = gates;  // no fusion in the baseline

  const double sweep_bytes =
      kSweepBytesPerStateByte * static_cast<double>(state_bytes);
  const double bandwidth =
      config.mode == CpuBaselineConfig::Mode::node_parallel
          ? config.node.node_bandwidth_bps * config.node.node_efficiency
          : config.node.core_bandwidth_bps;
  e.compute_s = static_cast<double>(gates) * sweep_bytes / bandwidth;
  e.launch_s = static_cast<double>(gates) * config.node.gate_dispatch_s;

  if (shots > 0) {
    // Sampling parallelizes across all cores in both CPU modes.
    e.sample_s = static_cast<double>(shots) * config.node.shot_s /
                 static_cast<double>(config.node.cores);
  }
  e.energy_joules = e.total_s() * config.node.power_watts;
  return e;
}

double measure_local_sweep_bandwidth(unsigned num_qubits, unsigned blocks) {
  const auto qc = circuits::generate_random_circuit(
      {.num_qubits = num_qubits, .num_blocks = blocks, .measure = false,
       .seed = 99});
  sim::FusedEngine<float> engine;
  sim::StateVector<float> state(num_qubits);
  WallTimer timer;
  engine.apply(qc, state);
  const double seconds = timer.seconds();
  const double bytes = static_cast<double>(engine.stats().sweeps) *
                       kSweepBytesPerStateByte *
                       static_cast<double>(pow2(num_qubits)) *
                       sizeof(std::complex<float>);
  return bytes / seconds;
}

double measure_local_sweep_bandwidth(unsigned num_qubits, unsigned blocks,
                                     sim::Isa isa) {
  const sim::Isa prev = sim::active_isa();
  sim::set_active_isa(isa);
  const double bandwidth = measure_local_sweep_bandwidth(num_qubits, blocks);
  sim::set_active_isa(prev);
  return bandwidth;
}

BackendMemoryEstimate estimate_backend_memory(
    const qiskit::QuantumCircuit& qc, const std::string& backend,
    std::uint64_t budget_bytes, const sim::BackendOptions& opts) {
  BackendMemoryEstimate e;
  e.backend = backend;
  e.mem_bytes = sim::Backend::memory_estimate_for(backend, qc, opts);
  if (budget_bytes > 0 && e.mem_bytes > budget_bytes) {
    e.feasible = false;
    e.infeasible_reason =
        strfmt("%s needs %s, budget is %s", backend.c_str(),
               human_bytes(e.mem_bytes).c_str(),
               human_bytes(budget_bytes).c_str());
  }
  return e;
}

}  // namespace qgear::perfmodel
