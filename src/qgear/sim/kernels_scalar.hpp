// Portable scalar implementations of every amplitude-sweep kernel.
//
// These are the semantics reference for the vectorized variants (see
// kernels_vec.ipp): each SIMD kernel must match these loops to floating-
// point rounding on every input, including unaligned tails and states
// smaller than one vector. They also serve as the Isa::scalar dispatch
// table and as the fallback on hosts without x86 SIMD.
//
// Argument validation lives in the public entry points (kernels.hpp);
// these bodies assume validated inputs.
#pragma once

#include "qgear/sim/kernel_table.hpp"
#include "qgear/sim/kernels_common.hpp"

namespace qgear::sim::scalar {

/// 2x2 unitary on qubit q.
template <typename T>
void apply_1q(std::complex<T>* amps, unsigned num_qubits, unsigned q,
              const qiskit::Mat2& gate, ThreadPool* pool) {
  const auto m = to_precision<T>(gate);
  const std::uint64_t pairs = pow2(num_qubits - 1);
  const std::uint64_t stride = pow2(q);
  detail::for_range(pool, pairs, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      const std::uint64_t i1 = i0 | stride;
      const std::complex<T> a0 = amps[i0];
      const std::complex<T> a1 = amps[i1];
      amps[i0] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  });
}

/// Diagonal 2x2 {d0, d1} on qubit q (no pairing needed).
template <typename T>
void apply_1q_diagonal(std::complex<T>* amps, unsigned num_qubits, unsigned q,
                       std::complex<T> d0, std::complex<T> d1,
                       ThreadPool* pool) {
  const std::uint64_t total = pow2(num_qubits);
  detail::for_range(pool, total, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      amps[i] *= test_bit(i, q) ? d1 : d0;
    }
  });
}

/// Pauli-X on qubit q: pure amplitude permutation, no arithmetic.
template <typename T>
void apply_x(std::complex<T>* amps, unsigned num_qubits, unsigned q,
             ThreadPool* pool) {
  const std::uint64_t pairs = pow2(num_qubits - 1);
  const std::uint64_t stride = pow2(q);
  detail::for_range(pool, pairs, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      std::swap(amps[i0], amps[i0 | stride]);
    }
  });
}

/// Controlled-U (2x2 target matrix) with control c, target t.
template <typename T>
void apply_controlled_1q(std::complex<T>* amps, unsigned num_qubits,
                         unsigned control, unsigned target,
                         const qiskit::Mat2& gate, ThreadPool* pool) {
  const auto m = to_precision<T>(gate);
  const unsigned lo = std::min(control, target);
  const unsigned hi = std::max(control, target);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t cbit = pow2(control);
  const std::uint64_t tbit = pow2(target);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      // Index with control=1, target=0; partner has target=1.
      const std::uint64_t base = insert_two_zero_bits(k, lo, hi) | cbit;
      const std::uint64_t i1 = base | tbit;
      const std::complex<T> a0 = amps[base];
      const std::complex<T> a1 = amps[i1];
      amps[base] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  });
}

/// CX: amplitude permutation on the control=1 half.
template <typename T>
void apply_cx(std::complex<T>* amps, unsigned num_qubits, unsigned control,
              unsigned target, ThreadPool* pool) {
  const unsigned lo = std::min(control, target);
  const unsigned hi = std::max(control, target);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t cbit = pow2(control);
  const std::uint64_t tbit = pow2(target);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t base = insert_two_zero_bits(k, lo, hi) | cbit;
      std::swap(amps[base], amps[base | tbit]);
    }
  });
}

/// amps[i] *= phase for every i with (i & mask) == mask. Covers CZ/CP
/// (2-bit masks) and multi-controlled phases; touches only the matching
/// 2^(n - popcount) amplitudes instead of scanning all 2^n.
template <typename T>
void apply_phase_mask(std::complex<T>* amps, unsigned num_qubits,
                      std::uint64_t mask, std::complex<T> phase,
                      ThreadPool* pool) {
  unsigned bits[64];
  unsigned nbits = 0;
  for (unsigned b = 0; b < num_qubits; ++b) {
    if (test_bit(mask, b)) bits[nbits++] = b;
  }
  const std::uint64_t matches = pow2(num_qubits - nbits);
  detail::for_range(
      pool, matches,
      [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t k = begin; k < end; ++k) {
          std::uint64_t i = k;
          for (unsigned b = 0; b < nbits; ++b) {
            i = insert_zero_bit(i, bits[b]);
          }
          amps[i | mask] *= phase;
        }
      });
}

/// Swaps qubits a and b (amplitude permutation).
template <typename T>
void apply_swap(std::complex<T>* amps, unsigned num_qubits, unsigned a,
                unsigned b, ThreadPool* pool) {
  const unsigned lo = std::min(a, b);
  const unsigned hi = std::max(a, b);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t abit = pow2(a);
  const std::uint64_t bbit = pow2(b);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i01 = insert_two_zero_bits(k, lo, hi) | abit;
      const std::uint64_t i10 = (i01 ^ abit) | bbit;
      std::swap(amps[i01], amps[i10]);
    }
  });
}

/// Dense 4x4 kernel for two-qubit fused blocks. Fully unrolled: no
/// gather/scatter indirection, no per-group temporaries.
template <typename T>
void apply_2q_dense(std::complex<T>* amps, unsigned num_qubits,
                    unsigned q_lo, unsigned q_hi,
                    const std::vector<std::complex<double>>& matrix,
                    ThreadPool* pool) {
  std::array<std::complex<T>, 16> m;
  for (int i = 0; i < 16; ++i) m[i] = std::complex<T>(matrix[i]);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t lo_bit = pow2(q_lo);
  const std::uint64_t hi_bit = pow2(q_hi);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t g = begin; g < end; ++g) {
      const std::uint64_t i0 = insert_two_zero_bits(g, q_lo, q_hi);
      const std::uint64_t i1 = i0 | lo_bit;
      const std::uint64_t i2 = i0 | hi_bit;
      const std::uint64_t i3 = i1 | hi_bit;
      const std::complex<T> a0 = amps[i0], a1 = amps[i1], a2 = amps[i2],
                            a3 = amps[i3];
      amps[i0] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
      amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
      amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
      amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
  });
}

/// Dense 2^m x 2^m unitary over the ascending qubit list (m >= 3):
/// gather each amplitude group, multiply, scatter back.
template <typename T>
void apply_multi_dense(std::complex<T>* amps, unsigned num_qubits,
                       const std::vector<unsigned>& qubits,
                       const std::vector<std::complex<double>>& matrix,
                       ThreadPool* pool) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  const std::uint64_t dim = pow2(m);
  // Pre-convert the matrix once per sweep.
  std::vector<std::complex<T>> mat(dim * dim);
  for (std::uint64_t i = 0; i < dim * dim; ++i) {
    mat[i] = std::complex<T>(matrix[i]);
  }
  // Precompute the offset of each local basis index within a group.
  std::vector<std::uint64_t> offsets(dim);
  for (std::uint64_t v = 0; v < dim; ++v) {
    offsets[v] = deposit_bits(v, qubits.data(), m);
  }

  const std::uint64_t groups = pow2(num_qubits - m);
  const auto* offs = offsets.data();
  const auto* mp = mat.data();
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    std::vector<std::complex<T>> in(dim), out(dim);
    for (std::uint64_t g = begin; g < end; ++g) {
      // Scatter group index g into the non-block bit positions.
      std::uint64_t base = g;
      for (unsigned j = 0; j < m; ++j) {
        base = insert_zero_bit(base, qubits[j]);
      }
      for (std::uint64_t v = 0; v < dim; ++v) in[v] = amps[base + offs[v]];
      for (std::uint64_t r = 0; r < dim; ++r) {
        std::complex<T> acc(0, 0);
        const auto* row = mp + r * dim;
        for (std::uint64_t c = 0; c < dim; ++c) acc += row[c] * in[c];
        out[r] = acc;
      }
      for (std::uint64_t v = 0; v < dim; ++v) amps[base + offs[v]] = out[v];
    }
  });
}

/// Diagonal fused-block kernel: amps[i] *= diag[local_index(i)], where
/// `diag` holds the 2^m diagonal entries of the block unitary.
template <typename T>
void apply_multi_diag(std::complex<T>* amps, unsigned num_qubits,
                      const std::vector<unsigned>& qubits,
                      const std::vector<std::complex<double>>& diag,
                      ThreadPool* pool) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  std::vector<std::complex<T>> d(diag.size());
  for (std::uint64_t v = 0; v < diag.size(); ++v) {
    d[v] = std::complex<T>(diag[v]);
  }
  const std::uint64_t total = pow2(num_qubits);
  const auto* dptr = d.data();
  const unsigned* qptr = qubits.data();
  detail::for_range(pool, total, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      std::uint64_t v = 0;
      for (unsigned j = 0; j < m; ++j) {
        v |= static_cast<std::uint64_t>((i >> qptr[j]) & 1u) << j;
      }
      amps[i] *= dptr[v];
    }
  });
}

/// Permutation fused-block kernel: per amplitude group,
/// out[perm[v]] = phases[v] * in[v]. O(2^m) per group instead of the
/// dense kernel's O(4^m) — the fast path for X/CX/SWAP runs.
template <typename T>
void apply_multi_permutation(std::complex<T>* amps, unsigned num_qubits,
                             const std::vector<unsigned>& qubits,
                             const std::vector<std::uint32_t>& perm,
                             const std::vector<std::complex<double>>& phases,
                             ThreadPool* pool) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  const std::uint64_t dim = pow2(m);
  std::vector<std::complex<T>> ph(dim);
  for (std::uint64_t v = 0; v < dim; ++v) ph[v] = std::complex<T>(phases[v]);
  std::vector<std::uint64_t> offsets(dim);
  for (std::uint64_t v = 0; v < dim; ++v) {
    offsets[v] = deposit_bits(v, qubits.data(), m);
  }
  const std::uint64_t groups = pow2(num_qubits - m);
  const auto* offs = offsets.data();
  const auto* pp = perm.data();
  const auto* php = ph.data();
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    std::vector<std::complex<T>> out(dim);
    for (std::uint64_t g = begin; g < end; ++g) {
      std::uint64_t base = g;
      for (unsigned j = 0; j < m; ++j) {
        base = insert_zero_bit(base, qubits[j]);
      }
      for (std::uint64_t v = 0; v < dim; ++v) {
        out[pp[v]] = php[v] * amps[base + offs[v]];
      }
      for (std::uint64_t v = 0; v < dim; ++v) amps[base + offs[v]] = out[v];
    }
  });
}

/// The Isa::scalar dispatch table (also the fallback table for ISA TUs
/// compiled on targets without that instruction set).
template <typename T>
constexpr KernelTable<T> make_scalar_table() {
  return {apply_1q<T>,           apply_1q_diagonal<T>,
          apply_x<T>,            apply_controlled_1q<T>,
          apply_cx<T>,           apply_phase_mask<T>,
          apply_swap<T>,         apply_2q_dense<T>,
          apply_multi_dense<T>,  apply_multi_diag<T>,
          apply_multi_permutation<T>};
}

}  // namespace qgear::sim::scalar
