// Gate-fusion planner — the optimization that makes the "Cuda-Q-like"
// engine fast (the paper sets `gate fusion = 5`, Appendix D.2).
//
// Adjacent gates are greedily merged into unitaries over at most
// `max_width` qubits; each fused block then costs a single amplitude
// sweep instead of one sweep per gate. Barriers flush the current block;
// measurements are collected for sampling.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/cmat.hpp"

namespace qgear::sim {

/// Cheapest kernel able to apply a fused block. Ordered from most to
/// least specialized; the planner classifies diagonal before permutation
/// (every diagonal is a phased identity permutation) before dense.
enum class KernelClass : int {
  diagonal = 0,     ///< multiply-only sweep over the 2^m diagonal values
  permutation = 1,  ///< out[perm[v]] = phases[v] * in[v]; O(2^m) per group
  dense = 2,        ///< full 2^m x 2^m matvec per group
};

const char* kernel_class_name(KernelClass kc);

/// One fused unitary over an ascending qubit list.
struct FusedBlock {
  std::vector<unsigned> qubits;                 ///< ascending global ids
  std::vector<std::complex<double>> matrix;     ///< row-major 2^m x 2^m
  bool diagonal = false;                        ///< kernel_class == diagonal
  KernelClass kernel_class = KernelClass::dense;
  /// Filled for diagonal blocks: the 2^m diagonal values.
  std::vector<std::complex<double>> diag;
  /// Filled for permutation blocks: column c maps to row perm[c] with
  /// weight phases[c].
  std::vector<std::uint32_t> perm;
  std::vector<std::complex<double>> phases;
  std::uint64_t source_gates = 0;               ///< gates fused in
};

/// Complete fusion plan for a circuit.
struct FusionPlan {
  std::vector<FusedBlock> blocks;
  std::vector<unsigned> measured;  ///< measure targets in program order
  std::uint64_t input_gates = 0;   ///< unitary gate count before fusion

  double fusion_ratio() const {
    return blocks.empty() ? 0.0
                          : static_cast<double>(input_gates) /
                                static_cast<double>(blocks.size());
  }
};

struct FusionOptions {
  unsigned max_width = 5;      ///< the paper's gate-fusion parameter
  double diag_tol = 1e-14;     ///< off-diagonal tolerance for diag blocks
  /// Rotations with |angle| below this are dropped entirely (the paper's
  /// "approximations for negligible rotation angles", Appendix D.2).
  double angle_threshold = 0.0;
};

/// Plans fusion for `qc`. Every unitary instruction lands in exactly one
/// block; blocks applied in order reproduce the circuit's unitary.
FusionPlan plan_fusion(const qiskit::QuantumCircuit& qc,
                       FusionOptions opts = {});

}  // namespace qgear::sim
