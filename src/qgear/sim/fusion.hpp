// Gate-fusion planner — the optimization that makes the "Cuda-Q-like"
// engine fast (the paper sets `gate fusion = 5`, Appendix D.2).
//
// Adjacent gates are greedily merged into unitaries over at most
// `max_width` qubits; each fused block then costs a single amplitude
// sweep instead of one sweep per gate. Barriers flush the current block;
// measurements are collected for sampling.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/cmat.hpp"

namespace qgear::sim {

/// One fused unitary over an ascending qubit list.
struct FusedBlock {
  std::vector<unsigned> qubits;                 ///< ascending global ids
  std::vector<std::complex<double>> matrix;     ///< row-major 2^m x 2^m
  bool diagonal = false;                        ///< enables the diag kernel
  std::uint64_t source_gates = 0;               ///< gates fused in
};

/// Complete fusion plan for a circuit.
struct FusionPlan {
  std::vector<FusedBlock> blocks;
  std::vector<unsigned> measured;  ///< measure targets in program order
  std::uint64_t input_gates = 0;   ///< unitary gate count before fusion

  double fusion_ratio() const {
    return blocks.empty() ? 0.0
                          : static_cast<double>(input_gates) /
                                static_cast<double>(blocks.size());
  }
};

struct FusionOptions {
  unsigned max_width = 5;      ///< the paper's gate-fusion parameter
  double diag_tol = 1e-14;     ///< off-diagonal tolerance for diag blocks
  /// Rotations with |angle| below this are dropped entirely (the paper's
  /// "approximations for negligible rotation angles", Appendix D.2).
  double angle_threshold = 0.0;
};

/// Plans fusion for `qc`. Every unitary instruction lands in exactly one
/// block; blocks applied in order reproduce the circuit's unitary.
FusionPlan plan_fusion(const qiskit::QuantumCircuit& qc,
                       FusionOptions opts = {});

}  // namespace qgear::sim
