#include "qgear/sim/mps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qgear/common/error.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/gates.hpp"
#include "qgear/sim/svd.hpp"

namespace qgear::sim {

namespace {

using cd = std::complex<double>;

/// Squared-weight fraction below which singular values are numerical
/// junk from the Jacobi SVD (~1e-14 relative) rather than Schmidt
/// coefficients; always trimmed, even at cutoff = 0.
constexpr double kEpsCutoff = 1e-28;

constexpr cd kPauliX[4] = {{0, 0}, {1, 0}, {1, 0}, {0, 0}};
constexpr cd kPauliY[4] = {{0, 0}, {0, -1}, {0, 1}, {0, 0}};
constexpr cd kPauliZ[4] = {{1, 0}, {0, 0}, {0, 0}, {-1, 0}};

}  // namespace

MpsEngine::MpsEngine() : MpsEngine(Options{}) {}
MpsEngine::MpsEngine(Options opts) : opts_(opts) {
  QGEAR_CHECK_ARG(opts_.cutoff >= 0, "mps: cutoff must be >= 0");
}

void MpsEngine::init_state(unsigned num_qubits) {
  QGEAR_CHECK_ARG(num_qubits >= 1 && num_qubits <= 4096,
                  "mps: qubit count must be in 1..4096");
  num_qubits_ = num_qubits;
  sites_.assign(num_qubits, Site{});
  for (Site& s : sites_) s.t = {cd(1, 0), cd(0, 0)};
  center_ = 0;
  truncation_error_ = 0.0;
}

void MpsEngine::note_bond(std::size_t chi) {
  if (chi > stats_.mps_max_bond) stats_.mps_max_bond = chi;
}

void MpsEngine::move_center_right() {
  const unsigned k = center_;
  QGEAR_EXPECTS(k + 1 < sites_.size());
  Site& a = sites_[k];
  Site& b = sites_[k + 1];
  // Site k as a (chi_l*2) x chi_r matrix — exactly its row-major buffer.
  const SvdResult f = svd_complex(a.t.data(), a.chi_l * 2, a.chi_r);
  const std::size_t rank = truncation_rank(f.s, kEpsCutoff, 0);
  std::vector<cd> u((a.chi_l * 2) * rank);
  for (std::size_t r = 0; r < a.chi_l * 2; ++r) {
    for (std::size_t c = 0; c < rank; ++c) u[r * rank + c] = f.u[r * f.k + c];
  }
  // carry = diag(s) * Vh, absorbed into the right neighbor.
  std::vector<cd> bt((rank * 2) * b.chi_r, cd(0, 0));
  for (std::size_t c = 0; c < rank; ++c) {
    for (std::size_t m = 0; m < a.chi_r; ++m) {
      const cd w = f.s[c] * f.vh[c * a.chi_r + m];
      if (w == cd(0, 0)) continue;
      for (std::size_t s = 0; s < 2; ++s) {
        const cd* src = &b.t[(m * 2 + s) * b.chi_r];
        cd* dst = &bt[(c * 2 + s) * b.chi_r];
        for (std::size_t r = 0; r < b.chi_r; ++r) dst[r] += w * src[r];
      }
    }
  }
  a.t = std::move(u);
  a.chi_r = rank;
  b.t = std::move(bt);
  b.chi_l = rank;
  center_ = k + 1;
}

void MpsEngine::move_center_left() {
  const unsigned k = center_;
  QGEAR_EXPECTS(k >= 1);
  Site& a = sites_[k];
  Site& p = sites_[k - 1];
  // Site k as a chi_l x (2*chi_r) matrix — same row-major buffer.
  const SvdResult f = svd_complex(a.t.data(), a.chi_l, 2 * a.chi_r);
  const std::size_t rank = truncation_rank(f.s, kEpsCutoff, 0);
  std::vector<cd> vh(rank * 2 * a.chi_r);
  for (std::size_t c = 0; c < rank; ++c) {
    for (std::size_t j = 0; j < 2 * a.chi_r; ++j) {
      vh[c * (2 * a.chi_r) + j] = f.vh[c * (2 * a.chi_r) + j];
    }
  }
  // carry = U * diag(s), absorbed into the left neighbor.
  std::vector<cd> pt((p.chi_l * 2) * rank, cd(0, 0));
  for (std::size_t row = 0; row < p.chi_l * 2; ++row) {
    const cd* src = &p.t[row * p.chi_r];
    cd* dst = &pt[row * rank];
    for (std::size_t m = 0; m < a.chi_l; ++m) {
      if (src[m] == cd(0, 0)) continue;
      for (std::size_t c = 0; c < rank; ++c) {
        dst[c] += src[m] * f.u[m * f.k + c] * f.s[c];
      }
    }
  }
  a.t = std::move(vh);
  a.chi_l = rank;
  p.t = std::move(pt);
  p.chi_r = rank;
  center_ = k - 1;
}

void MpsEngine::canonize_to(unsigned k) {
  while (center_ < k) move_center_right();
  while (center_ > k) move_center_left();
}

void MpsEngine::apply_1q(unsigned q, const cd* u) {
  Site& a = sites_[q];
  for (std::size_t l = 0; l < a.chi_l; ++l) {
    for (std::size_t r = 0; r < a.chi_r; ++r) {
      const cd v0 = a.t[(l * 2 + 0) * a.chi_r + r];
      const cd v1 = a.t[(l * 2 + 1) * a.chi_r + r];
      a.t[(l * 2 + 0) * a.chi_r + r] = u[0] * v0 + u[1] * v1;
      a.t[(l * 2 + 1) * a.chi_r + r] = u[2] * v0 + u[3] * v1;
    }
  }
  stats_.amp_ops += a.t.size();
}

void MpsEngine::apply_adjacent_2q(unsigned k, const cd* u, double cutoff) {
  canonize_to(k);
  Site& a = sites_[k];
  Site& b = sites_[k + 1];
  const std::size_t cl = a.chi_l;
  const std::size_t cm = a.chi_r;
  const std::size_t cr = b.chi_r;

  // theta[l, s_k, s_k1, r] = sum_m A[l, s_k, m] B[m, s_k1, r]
  std::vector<cd> theta(cl * 2 * 2 * cr, cd(0, 0));
  for (std::size_t l = 0; l < cl; ++l) {
    for (std::size_t sk = 0; sk < 2; ++sk) {
      for (std::size_t m = 0; m < cm; ++m) {
        const cd av = a.t[(l * 2 + sk) * cm + m];
        if (av == cd(0, 0)) continue;
        for (std::size_t sk1 = 0; sk1 < 2; ++sk1) {
          const cd* src = &b.t[(m * 2 + sk1) * cr];
          cd* dst = &theta[((l * 2 + sk) * 2 + sk1) * cr];
          for (std::size_t r = 0; r < cr; ++r) dst[r] += av * src[r];
        }
      }
    }
  }
  stats_.amp_ops += cl * 2 * cm * 2 * cr;

  // Gate: row/col index is 2*bit(k+1) + bit(k).
  std::vector<cd> theta2(cl * 2 * 2 * cr, cd(0, 0));
  for (std::size_t l = 0; l < cl; ++l) {
    for (std::size_t ak = 0; ak < 2; ++ak) {
      for (std::size_t ak1 = 0; ak1 < 2; ++ak1) {
        cd* dst = &theta2[((l * 2 + ak) * 2 + ak1) * cr];
        const std::size_t row = 2 * ak1 + ak;
        for (std::size_t sk = 0; sk < 2; ++sk) {
          for (std::size_t sk1 = 0; sk1 < 2; ++sk1) {
            const cd w = u[row * 4 + (2 * sk1 + sk)];
            if (w == cd(0, 0)) continue;
            const cd* src = &theta[((l * 2 + sk) * 2 + sk1) * cr];
            for (std::size_t r = 0; r < cr; ++r) dst[r] += w * src[r];
          }
        }
      }
    }
  }

  // theta2's layout is already the (cl*2) x (2*cr) matrix with rows
  // (l, s_k) and columns (s_k1, r) — split it back with a truncated SVD.
  const SvdResult f = svd_complex(theta2.data(), cl * 2, 2 * cr);
  const std::size_t rank =
      truncation_rank(f.s, std::max(cutoff, kEpsCutoff), opts_.max_bond);
  double total = 0, kept = 0;
  for (std::size_t i = 0; i < f.s.size(); ++i) total += f.s[i] * f.s[i];
  for (std::size_t i = 0; i < rank; ++i) kept += f.s[i] * f.s[i];
  if (total > 0 && kept < total) {
    const double discarded = (total - kept) / total;
    truncation_error_ += discarded;
    stats_.truncation_error += discarded;
  }
  // Renormalize the kept spectrum so the state stays norm-preserving.
  const double renorm = (kept > 0) ? std::sqrt(total / kept) : 1.0;

  a.t.assign(cl * 2 * rank, cd(0, 0));
  for (std::size_t r = 0; r < cl * 2; ++r) {
    for (std::size_t c = 0; c < rank; ++c) {
      a.t[r * rank + c] = f.u[r * f.k + c];
    }
  }
  a.chi_r = rank;
  b.t.assign(rank * 2 * cr, cd(0, 0));
  for (std::size_t c = 0; c < rank; ++c) {
    const double sv = f.s[c] * renorm;
    for (std::size_t sk1 = 0; sk1 < 2; ++sk1) {
      for (std::size_t r = 0; r < cr; ++r) {
        b.t[(c * 2 + sk1) * cr + r] = sv * f.vh[c * (2 * cr) + sk1 * cr + r];
      }
    }
  }
  b.chi_l = rank;
  center_ = k + 1;
  note_bond(rank);
}

void MpsEngine::apply_2q(const qiskit::Instruction& inst) {
  const unsigned q0 = static_cast<unsigned>(inst.q0);
  const unsigned q1 = static_cast<unsigned>(inst.q1);
  const unsigned lo = std::min(q0, q1);
  const unsigned hi = std::max(q0, q1);
  const qiskit::Mat4 u = qiskit::gate_matrix_2q(inst.kind, inst.param, q0, q1);
  if (hi == lo + 1) {
    apply_adjacent_2q(lo, u.data(), opts_.cutoff);
    return;
  }
  // Swap the low operand up next to the high one, act, swap back.
  const qiskit::Mat4 sw =
      qiskit::gate_matrix_2q(qiskit::GateKind::swap, 0, lo, lo + 1);
  for (unsigned j = lo; j + 1 < hi; ++j) {
    apply_adjacent_2q(j, sw.data(), opts_.cutoff);
  }
  apply_adjacent_2q(hi - 1, u.data(), opts_.cutoff);
  for (unsigned j = hi - 1; j-- > lo;) {
    apply_adjacent_2q(j, sw.data(), opts_.cutoff);
  }
}

void MpsEngine::apply(const qiskit::QuantumCircuit& qc,
                      std::vector<unsigned>* measured) {
  QGEAR_CHECK_ARG(!sites_.empty(), "mps: init_state must precede apply");
  QGEAR_CHECK_ARG(qc.num_qubits() == num_qubits_,
                  "mps: circuit and state qubit counts differ");
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Span apply_span(tracer, "mps.apply", "sim");
  const EngineStats before = stats_;
  WallTimer timer;
  for (const qiskit::Instruction& inst : qc.instructions()) {
    ++stats_.gates;
    if (inst.kind == qiskit::GateKind::barrier) continue;
    if (inst.kind == qiskit::GateKind::measure) {
      if (measured != nullptr) {
        measured->push_back(static_cast<unsigned>(inst.q0));
      }
      continue;
    }
    if (qiskit::gate_info(inst.kind).num_qubits == 1) {
      const qiskit::Mat2 m = qiskit::gate_matrix_1q(inst.kind, inst.param);
      apply_1q(static_cast<unsigned>(inst.q0), m.data());
    } else {
      apply_2q(inst);
    }
    ++stats_.sweeps;
  }
  stats_.seconds += timer.seconds();

  auto& reg = obs::Registry::global();
  reg.counter("sim.gates").add(stats_.gates - before.gates);
  reg.counter("sim.sweeps").add(stats_.sweeps - before.sweeps);
  reg.counter("sim.amp_ops").add(stats_.amp_ops - before.amp_ops);
  if (apply_span.active()) {
    apply_span.arg("gates", stats_.gates - before.gates);
    apply_span.arg("qubits", std::uint64_t{qc.num_qubits()});
    apply_span.arg("max_bond", std::uint64_t{max_bond_dimension()});
  }
}

std::size_t MpsEngine::max_bond_dimension() const {
  std::size_t chi = 1;
  for (const Site& s : sites_) chi = std::max(chi, s.chi_r);
  return chi;
}

std::complex<double> MpsEngine::amplitude(std::uint64_t index) const {
  QGEAR_CHECK_ARG(!sites_.empty(), "mps: init_state must precede amplitude");
  std::vector<cd> v{cd(1, 0)};
  for (unsigned k = 0; k < num_qubits_; ++k) {
    const Site& a = sites_[k];
    const std::size_t bit = k < 64 ? ((index >> k) & 1) : 0;
    std::vector<cd> next(a.chi_r, cd(0, 0));
    for (std::size_t l = 0; l < a.chi_l; ++l) {
      if (v[l] == cd(0, 0)) continue;
      const cd* row = &a.t[(l * 2 + bit) * a.chi_r];
      for (std::size_t r = 0; r < a.chi_r; ++r) next[r] += v[l] * row[r];
    }
    v = std::move(next);
  }
  return v[0];
}

namespace {

/// Transfer-matrix contraction of <psi| prod_k O_k |psi> where ops[k] is
/// a 2x2 (nullptr = identity).
cd contract_chain(const std::vector<std::vector<cd>>& site_t,
                  const std::vector<std::size_t>& chi_l,
                  const std::vector<std::size_t>& chi_r,
                  const std::vector<const cd*>& ops) {
  std::vector<cd> m{cd(1, 0)};  // (chi, chi) row-major, starts 1x1
  const std::size_t n = site_t.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t cl = chi_l[k];
    const std::size_t cr = chi_r[k];
    const std::vector<cd>& a = site_t[k];
    // X[l, s', r'] = sum_{l'} M[l, l'] A[l', s', r']
    std::vector<cd> x(cl * 2 * cr, cd(0, 0));
    for (std::size_t l = 0; l < cl; ++l) {
      for (std::size_t lp = 0; lp < cl; ++lp) {
        const cd w = m[l * cl + lp];
        if (w == cd(0, 0)) continue;
        for (std::size_t sp = 0; sp < 2; ++sp) {
          const cd* src = &a[(lp * 2 + sp) * cr];
          cd* dst = &x[(l * 2 + sp) * cr];
          for (std::size_t r = 0; r < cr; ++r) dst[r] += w * src[r];
        }
      }
    }
    // Y[l, s, r'] = sum_{s'} O[s, s'] X[l, s', r']
    std::vector<cd> y;
    const std::vector<cd>* yy = &x;
    if (ops[k] != nullptr) {
      y.assign(cl * 2 * cr, cd(0, 0));
      const cd* o = ops[k];
      for (std::size_t l = 0; l < cl; ++l) {
        for (std::size_t s = 0; s < 2; ++s) {
          cd* dst = &y[(l * 2 + s) * cr];
          for (std::size_t sp = 0; sp < 2; ++sp) {
            const cd w = o[s * 2 + sp];
            if (w == cd(0, 0)) continue;
            const cd* src = &x[(l * 2 + sp) * cr];
            for (std::size_t r = 0; r < cr; ++r) dst[r] += w * src[r];
          }
        }
      }
      yy = &y;
    }
    // M'[r, r'] = sum_{l, s} conj(A[l, s, r]) Y[l, s, r']
    std::vector<cd> next(cr * cr, cd(0, 0));
    for (std::size_t l = 0; l < cl; ++l) {
      for (std::size_t s = 0; s < 2; ++s) {
        const cd* arow = &a[(l * 2 + s) * cr];
        const cd* yrow = &(*yy)[(l * 2 + s) * cr];
        for (std::size_t r = 0; r < cr; ++r) {
          const cd w = std::conj(arow[r]);
          if (w == cd(0, 0)) continue;
          cd* dst = &next[r * cr];
          for (std::size_t rp = 0; rp < cr; ++rp) dst[rp] += w * yrow[rp];
        }
      }
    }
    m = std::move(next);
  }
  return m[0];
}

}  // namespace

double MpsEngine::norm() const {
  QGEAR_CHECK_ARG(!sites_.empty(), "mps: init_state must precede norm");
  std::vector<std::vector<cd>> t;
  std::vector<std::size_t> cl, cr;
  for (const Site& s : sites_) {
    t.push_back(s.t);
    cl.push_back(s.chi_l);
    cr.push_back(s.chi_r);
  }
  const std::vector<const cd*> ops(sites_.size(), nullptr);
  return std::sqrt(std::max(0.0, contract_chain(t, cl, cr, ops).real()));
}

double MpsEngine::expectation(const PauliTerm& term) {
  QGEAR_CHECK_ARG(!sites_.empty(), "mps: init_state must precede expectation");
  QGEAR_CHECK_ARG(term.ops.size() <= num_qubits_,
                  "mps: Pauli term acts on more qubits than the state has");
  std::vector<std::vector<cd>> t;
  std::vector<std::size_t> cl, cr;
  for (const Site& s : sites_) {
    t.push_back(s.t);
    cl.push_back(s.chi_l);
    cr.push_back(s.chi_r);
  }
  std::vector<const cd*> ops(sites_.size(), nullptr);
  for (std::size_t q = 0; q < term.ops.size(); ++q) {
    switch (term.ops[q]) {
      case Pauli::I: break;
      case Pauli::X: ops[q] = kPauliX; break;
      case Pauli::Y: ops[q] = kPauliY; break;
      case Pauli::Z: ops[q] = kPauliZ; break;
    }
  }
  return term.coefficient * contract_chain(t, cl, cr, ops).real();
}

double MpsEngine::expectation(const Observable& obs) {
  double acc = 0;
  for (const PauliTerm& term : obs.terms()) acc += expectation(term);
  return acc;
}

std::vector<std::complex<double>> MpsEngine::to_statevector() const {
  QGEAR_CHECK_ARG(!sites_.empty(),
                  "mps: init_state must precede to_statevector");
  QGEAR_CHECK_ARG(num_qubits_ <= 20,
                  "mps: to_statevector limited to 20 qubits");
  // Progressive contraction: cur[x, m] over index-prefix x and bond m.
  std::vector<cd> cur{cd(1, 0)};
  std::size_t prefix = 1;
  for (unsigned k = 0; k < num_qubits_; ++k) {
    const Site& a = sites_[k];
    std::vector<cd> next(prefix * 2 * a.chi_r, cd(0, 0));
    for (std::size_t x = 0; x < prefix; ++x) {
      for (std::size_t m = 0; m < a.chi_l; ++m) {
        const cd w = cur[x * a.chi_l + m];
        if (w == cd(0, 0)) continue;
        for (std::size_t s = 0; s < 2; ++s) {
          // New prefix index: bit k of the amplitude index is s.
          const std::size_t nx = x | (s << k);
          const cd* src = &a.t[(m * 2 + s) * a.chi_r];
          cd* dst = &next[nx * a.chi_r];
          for (std::size_t r = 0; r < a.chi_r; ++r) dst[r] += w * src[r];
        }
      }
    }
    cur = std::move(next);
    prefix *= 2;
  }
  return cur;  // final chi_r == 1: cur[x] is the amplitude of |x>
}

Counts MpsEngine::sample(const std::vector<unsigned>& measured_qubits,
                         std::uint64_t shots, Rng& rng) {
  QGEAR_CHECK_ARG(!sites_.empty(), "mps: init_state must precede sample");
  std::vector<unsigned> mq = measured_qubits;
  if (mq.empty()) {
    mq.resize(num_qubits_);
    for (unsigned q = 0; q < num_qubits_; ++q) mq[q] = q;
  }
  QGEAR_CHECK_ARG(mq.size() <= 64,
                  "mps: at most 64 qubits can be packed into one outcome key");
  for (std::size_t j = 0; j < mq.size(); ++j) {
    QGEAR_CHECK_ARG(mq[j] < num_qubits_, "mps: measured qubit out of range");
    QGEAR_CHECK_ARG(j == 0 || mq[j] > mq[j - 1],
                    "mps: measured qubits must be strictly ascending");
  }

  Counts counts;
  if (num_qubits_ <= 20) {
    // Dense path: alias sampling is O(1) per shot after one 2^n pass.
    const std::vector<cd> amps = to_statevector();
    std::vector<double> weights(amps.size());
    for (std::size_t i = 0; i < amps.size(); ++i) {
      weights[i] = std::norm(amps[i]);
    }
    const AliasSampler sampler(weights);
    for (std::uint64_t shot = 0; shot < shots; ++shot) {
      const std::uint64_t idx = sampler.sample(rng);
      std::uint64_t key = 0;
      for (std::size_t j = 0; j < mq.size(); ++j) {
        key |= ((idx >> mq[j]) & 1) << j;
      }
      ++counts[key];
    }
    return counts;
  }

  // Perfect sampling: with the center at site 0 every site to the right
  // is right-canonical, so the conditional outcome weights are the norms
  // of the partially contracted environment. O(n * chi^2) per shot.
  canonize_to(0);
  std::vector<int> bits(num_qubits_, 0);
  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    std::vector<cd> v{cd(1, 0)};
    for (unsigned k = 0; k < num_qubits_; ++k) {
      const Site& a = sites_[k];
      std::vector<cd> cand[2];
      double w[2] = {0, 0};
      for (std::size_t s = 0; s < 2; ++s) {
        cand[s].assign(a.chi_r, cd(0, 0));
        for (std::size_t l = 0; l < a.chi_l; ++l) {
          if (v[l] == cd(0, 0)) continue;
          const cd* row = &a.t[(l * 2 + s) * a.chi_r];
          for (std::size_t r = 0; r < a.chi_r; ++r) {
            cand[s][r] += v[l] * row[r];
          }
        }
        for (const cd& c : cand[s]) w[s] += std::norm(c);
      }
      const double tot = w[0] + w[1];
      QGEAR_CHECK_ARG(tot > 0, "mps: cannot sample a zero-norm state");
      const int bit = rng.uniform() * tot < w[1] ? 1 : 0;
      bits[k] = bit;
      v = std::move(cand[bit]);
      // Normalize to keep magnitudes O(1) across long chains.
      const double nv = std::sqrt(w[bit]);
      for (cd& c : v) c /= nv;
    }
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < mq.size(); ++j) {
      key |= static_cast<std::uint64_t>(bits[mq[j]]) << j;
    }
    ++counts[key];
  }
  return counts;
}

std::uint64_t MpsEngine::memory_estimate(const qiskit::QuantumCircuit& qc,
                                         const Options& opts) {
  const unsigned n = qc.num_qubits();
  if (n == 0) return 0;
  // Bond bound per cut k (between sites k and k+1): limited by position
  // (2^min(k+1, n-1-k)), by circuit structure (each 2q gate crossing the
  // cut at most doubles the bond), and by the configured cap.
  std::vector<unsigned> crossings(n, 0);
  for (const qiskit::Instruction& inst : qc.instructions()) {
    if (qiskit::gate_info(inst.kind).num_qubits != 2) continue;
    const unsigned lo = static_cast<unsigned>(std::min(inst.q0, inst.q1));
    const unsigned hi = static_cast<unsigned>(std::max(inst.q0, inst.q1));
    for (unsigned k = lo; k < hi; ++k) ++crossings[k];
  }
  auto bond = [&](unsigned cut) -> double {
    // cut in [0, n-2]; chi at the chain boundaries is 1.
    const unsigned pos = std::min(cut + 1, n - 1 - cut);
    const unsigned exp = std::min({pos, std::min(crossings[cut], 30u), 30u});
    double chi = std::pow(2.0, double(exp));
    if (opts.max_bond > 0) chi = std::min(chi, double(opts.max_bond));
    return chi;
  };
  double bytes = 0;
  for (unsigned k = 0; k < n; ++k) {
    const double cl = k == 0 ? 1.0 : bond(k - 1);
    const double cr = k + 1 == n ? 1.0 : bond(k);
    bytes += cl * 2.0 * cr * sizeof(cd);
  }
  const double cap = 9.0e18;  // clamp below uint64 range
  return static_cast<std::uint64_t>(std::min(bytes, cap));
}

}  // namespace qgear::sim
