// State-vector storage for n-qubit systems.
//
// Amplitudes are indexed little-endian: qubit k is bit k of the index.
// Precision T is float or double (the paper's fp32/fp64 modes).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::sim {

template <typename T>
class StateVector {
 public:
  static_assert(std::is_floating_point_v<T>);
  using amp_t = std::complex<T>;

  /// Allocates 2^n amplitudes initialized to |0...0>.
  explicit StateVector(unsigned num_qubits)
      : num_qubits_(num_qubits), amps_(pow2(num_qubits)) {
    QGEAR_CHECK_ARG(num_qubits >= 1 && num_qubits <= 34,
                    "state vector qubit count out of supported range");
    amps_[0] = amp_t(1, 0);
  }

  unsigned num_qubits() const { return num_qubits_; }
  std::uint64_t size() const { return amps_.size(); }

  amp_t* data() { return amps_.data(); }
  const amp_t* data() const { return amps_.data(); }
  amp_t& operator[](std::uint64_t i) { return amps_[i]; }
  const amp_t& operator[](std::uint64_t i) const { return amps_[i]; }

  std::vector<amp_t>& amplitudes() { return amps_; }
  const std::vector<amp_t>& amplitudes() const { return amps_; }

  /// Resets to |0...0>.
  void reset() {
    std::fill(amps_.begin(), amps_.end(), amp_t(0, 0));
    amps_[0] = amp_t(1, 0);
  }

  /// Sum of |amp|^2 (should be 1 for normalized states).
  double norm() const {
    double total = 0;
    for (const amp_t& a : amps_) total += std::norm(a);
    return total;
  }

  /// Probability of basis state i.
  double probability(std::uint64_t i) const { return std::norm(amps_[i]); }

  /// <this|other> — the complex overlap.
  std::complex<double> overlap(const StateVector& other) const {
    QGEAR_EXPECTS(other.size() == size());
    std::complex<double> acc(0, 0);
    for (std::uint64_t i = 0; i < size(); ++i) {
      acc += std::conj(std::complex<double>(amps_[i])) *
             std::complex<double>(other.amps_[i]);
    }
    return acc;
  }

  /// |<this|other>|^2 — state fidelity (global-phase insensitive).
  double fidelity(const StateVector& other) const {
    return std::norm(overlap(other));
  }

 private:
  unsigned num_qubits_;
  std::vector<amp_t> amps_;
};

}  // namespace qgear::sim
