// Shared plumbing for the amplitude-sweep kernel variants (scalar and
// vectorized): precision conversion and the pooled range driver.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"
#include "qgear/common/thread_pool.hpp"
#include "qgear/qiskit/gates.hpp"

namespace qgear::sim {

/// Converts the canonical double-precision 2x2 into precision T.
template <typename T>
std::array<std::complex<T>, 4> to_precision(const qiskit::Mat2& m) {
  return {std::complex<T>(m[0]), std::complex<T>(m[1]),
          std::complex<T>(m[2]), std::complex<T>(m[3])};
}

namespace detail {
/// Runs fn(begin, end) over [0, count) — pooled or inline.
inline void for_range(ThreadPool* pool, std::uint64_t count,
                      const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(0, count, fn);
  } else {
    fn(0, count);
  }
}
}  // namespace detail

}  // namespace qgear::sim
