#include "qgear/sim/isa.hpp"

#include <atomic>
#include <cstdlib>

#include "qgear/common/log.hpp"
#include "qgear/common/strings.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define QGEAR_ISA_X86 1
#endif

namespace qgear::sim {

namespace {

Isa detect_best() {
#ifdef QGEAR_ISA_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::avx2;
  }
  if (__builtin_cpu_supports("sse2")) return Isa::sse2;
#endif
  return Isa::scalar;
}

Isa clamp_to_supported(Isa requested) {
  const Isa best = best_supported_isa();
  if (static_cast<int>(requested) <= static_cast<int>(best)) return requested;
  log::warn(strfmt("isa: %s requested but host supports at most %s; "
                   "falling back",
                   isa_name(requested), isa_name(best)));
  return best;
}

Isa initial_isa() {
  const char* env = std::getenv("QGEAR_ISA");
  if (env == nullptr || *env == '\0') return best_supported_isa();
  const std::string value(env);
  if (value == "auto") return best_supported_isa();
  Isa requested;
  if (!parse_isa(value, &requested)) {
    log::warn(strfmt("isa: unknown QGEAR_ISA value '%s' "
                     "(want scalar|sse2|avx2|auto); using auto",
                     value.c_str()));
    return best_supported_isa();
  }
  return clamp_to_supported(requested);
}

std::atomic<Isa>& isa_slot() {
  static std::atomic<Isa> slot{initial_isa()};
  return slot;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return "scalar";
    case Isa::sse2:
      return "sse2";
    case Isa::avx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_isa(const std::string& name, Isa* out) {
  if (name == "scalar") {
    *out = Isa::scalar;
  } else if (name == "sse2") {
    *out = Isa::sse2;
  } else if (name == "avx2") {
    *out = Isa::avx2;
  } else {
    return false;
  }
  return true;
}

Isa best_supported_isa() {
  static const Isa best = detect_best();
  return best;
}

bool isa_supported(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(best_supported_isa());
}

Isa active_isa() {
  return isa_slot().load(std::memory_order_relaxed);
}

Isa set_active_isa(Isa isa) {
  const Isa applied = clamp_to_supported(isa);
  isa_slot().store(applied, std::memory_order_relaxed);
  return applied;
}

}  // namespace qgear::sim
