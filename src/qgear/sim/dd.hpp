// Decision-diagram simulation engine (JKQ DDSIM style).
//
// Represents the state as a quasi-reduced quantum multiple-valued decision
// diagram: one node level per qubit (level n-1 at the root, qubit k decided
// at level k), normalized edge weights, and a hashed unique table that
// merges structurally identical subtrees. Structured states stay tiny —
// a GHZ or basis state is O(n) nodes regardless of n — which breaks the
// 2^n statevector memory wall for sparse/structured circuits. Dense
// random states degrade gracefully to O(2^n) nodes; DdEngine::Options::
// max_nodes converts that blow-up into a clean error instead of an OOM.
//
// Memory management is reference counting on the node table: children are
// ref'd at node creation, root edges are ref'd by the engine, and a
// mark-free garbage sweep reclaims dead nodes whenever the live count
// crosses a watermark (gates only ever add intermediates, so collection
// between gates is safe).
#pragma once

#include <complex>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/observable.hpp"
#include "qgear/sim/sampler.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::sim {

namespace dd {

struct Node;

/// A weighted pointer into the diagram. `node == nullptr` never occurs;
/// the zero vector is the terminal node with weight 0.
struct Edge {
  Node* node = nullptr;
  std::complex<double> w{0, 0};

  bool is_zero() const { return w == std::complex<double>(0, 0); }
};

struct Node {
  Edge e[2];             ///< child for qubit bit 0 / 1
  Node* next = nullptr;  ///< unique-table chain / free list
  std::uint32_t ref = 0;
  unsigned var = 0;      ///< qubit index this node decides
  bool terminal = false;
  bool dead = false;     ///< on the free list (garbage-collected)
};

/// Node table + the DD algebra (make-node normalization, gate
/// application, addition, inner products). One package per engine.
class Package {
 public:
  explicit Package(std::uint64_t max_nodes);
  ~Package();
  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  Node* terminal() { return &terminal_; }
  Edge zero_edge() { return Edge{&terminal_, {0, 0}}; }

  /// The |x> basis state over `n` qubits as a DD (n nodes).
  Edge make_basis_state(unsigned n, std::uint64_t x = 0);

  /// Normalizing node constructor: returns the canonical edge for
  /// (var; e0, e1), merging through the unique table.
  Edge make_node(unsigned var, Edge e0, Edge e1);

  /// Applies a 2x2 matrix (not necessarily unitary) to qubit `q`.
  Edge apply_mat2(Edge root, unsigned q, const std::complex<double> u[4]);

  /// Applies a 4x4 matrix to the qubit pair (q_hi > q_lo); basis index of
  /// the 4x4 is 2*bit(q_hi) + bit(q_lo).
  Edge apply_mat4(Edge root, unsigned q_hi, unsigned q_lo,
                  const std::complex<double> u[16]);

  /// Applies one circuit instruction (measure/barrier are no-ops).
  Edge apply_instruction(Edge root, const qiskit::Instruction& inst);

  /// Pointwise sum of two DDs rooted at the same level.
  Edge add(Edge a, Edge b);

  /// <a|b> — complex inner product of two state DDs.
  std::complex<double> inner_product(Edge a, Edge b);

  /// Squared norm of the state below `e` (terminal = 1).
  double norm2(Edge e);

  /// Amplitude of basis state `index` (O(n) walk).
  std::complex<double> amplitude(Edge root, std::uint64_t index,
                                 unsigned n) const;

  /// Protects `e`'s node from garbage collection (call per live root).
  void inc_ref(Edge e);
  void dec_ref(Edge e);

  /// Frees every ref == 0 node (cascading). Called automatically between
  /// gates once `live_nodes` crosses the collection watermark.
  void collect_garbage();

  /// Drops memoization caches (call between gates; entries key on node
  /// pointers which a collection may recycle).
  void clear_caches();

  std::uint64_t live_nodes() const { return live_nodes_; }
  std::uint64_t peak_nodes() const { return peak_nodes_; }
  std::uint64_t max_nodes() const { return max_nodes_; }

 private:
  Node* alloc_node();
  void unlink_from_table(Node* v);
  static std::uint64_t hash_node(unsigned var, const Edge& e0,
                                 const Edge& e1);
  static bool weights_close(const std::complex<double>& a,
                            const std::complex<double>& b);

  Edge apply1_rec(Node* v, unsigned q, const std::complex<double>* u,
                  std::uint64_t op, unsigned slot);
  Edge apply2_rec(Node* v, unsigned q_hi, unsigned q_lo,
                  const std::complex<double>* u, std::uint64_t op);
  std::complex<double> inner_rec(const Node* a, const Node* b);
  double norm_rec(const Node* v);

  Node terminal_;
  std::deque<std::vector<Node>> pool_;
  Node* free_list_ = nullptr;
  std::vector<Node*> table_;  ///< unique table buckets (chained via next)
  std::uint64_t live_nodes_ = 0;
  std::uint64_t peak_nodes_ = 0;
  std::uint64_t max_nodes_ = 0;
  std::uint64_t op_seq_ = 0;  ///< versions apply-cache tags across gates

  struct PairHash {
    std::size_t operator()(const std::pair<const void*, const void*>& p)
        const {
      const auto a = reinterpret_cast<std::uintptr_t>(p.first);
      const auto b = reinterpret_cast<std::uintptr_t>(p.second);
      return std::hash<std::uintptr_t>{}(a * 0x9E3779B97F4A7C15ull ^ b);
    }
  };
  struct AddKey {
    const Node* a;
    const Node* b;
    std::complex<double> wa;
    std::complex<double> wb;
    bool operator==(const AddKey&) const = default;
  };
  struct AddKeyHash {
    std::size_t operator()(const AddKey& k) const;
  };

  // Per-gate memoization; cleared by clear_caches().
  std::unordered_map<std::pair<const void*, const void*>, Edge, PairHash>
      apply_cache_;  ///< key: (node, matrix-slot tag)
  std::unordered_map<AddKey, Edge, AddKeyHash> add_cache_;
  std::unordered_map<std::pair<const void*, const void*>,
                     std::complex<double>, PairHash>
      inner_cache_;
  std::unordered_map<const void*, double> norm_cache_;
};

}  // namespace dd

/// The decision-diagram backend engine: reference-engine-shaped API over
/// a dd::Package.
class DdEngine {
 public:
  struct Options {
    /// Live-node ceiling; an apply that would exceed it throws
    /// OutOfMemoryBudget (the DD analogue of the statevector budget).
    std::uint64_t max_nodes = std::uint64_t{1} << 22;
  };

  DdEngine();
  explicit DdEngine(Options opts);
  ~DdEngine();

  void init_state(unsigned num_qubits);
  unsigned num_qubits() const { return num_qubits_; }

  /// Applies all instructions in order; measure targets append to
  /// `measured`. Callable repeatedly — circuits compose.
  void apply(const qiskit::QuantumCircuit& qc,
             std::vector<unsigned>* measured = nullptr);

  /// Samples `shots` outcomes of `measured_qubits` (empty = all qubits,
  /// ascending). O(n) per shot after an O(nodes) norm pass.
  Counts sample(const std::vector<unsigned>& measured_qubits,
                std::uint64_t shots, Rng& rng);

  double expectation(const PauliTerm& term);
  double expectation(const Observable& obs);

  std::complex<double> amplitude(std::uint64_t index) const;
  double norm() const;

  /// Dense materialization (diagnostics/tests; requires n <= 26).
  std::vector<std::complex<double>> to_statevector() const;

  std::uint64_t live_nodes() const;
  std::uint64_t peak_nodes() const;

  /// Resident bytes a circuit is expected to need under this paradigm:
  /// the structure-aware node estimate priced by serve admission.
  static std::uint64_t memory_estimate(const qiskit::QuantumCircuit& qc,
                                       std::uint64_t max_nodes);

  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  Options opts_;
  std::unique_ptr<dd::Package> pkg_;
  dd::Edge root_;
  unsigned num_qubits_ = 0;
  EngineStats stats_;
};

}  // namespace qgear::sim
