#include "qgear/sim/dd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "qgear/common/error.hpp"
#include "qgear/common/timer.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/gates.hpp"

namespace qgear::sim {

namespace dd {

namespace {

using cd = std::complex<double>;

constexpr std::size_t kChunkNodes = 4096;
/// Relative magnitude below which a child weight is snapped to exact zero
/// (keeps diagrams reduced in the face of floating-point cancellation).
constexpr double kZeroSnap = 1e-12;
/// Absolute tolerance for unique-table weight matching (weights are
/// normalized, |w| <= 1).
constexpr double kMergeTol = 1e-10;

Edge scaled(const Edge& e, const cd& w) {
  if (e.is_zero() || w == cd(0, 0)) return Edge{e.node, {0, 0}};
  return Edge{e.node, e.w * w};
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

std::int64_t quantize(double x) {
  // Coarse enough that weights within kMergeTol almost always share a
  // bucket; a boundary miss only costs a duplicate node, not correctness.
  return std::llround(x * 1048576.0);
}

}  // namespace

std::size_t Package::AddKeyHash::operator()(const AddKey& k) const {
  std::uint64_t h = 0;
  h = mix(h, reinterpret_cast<std::uintptr_t>(k.a));
  h = mix(h, reinterpret_cast<std::uintptr_t>(k.b));
  std::uint64_t bits;
  const double parts[4] = {k.wa.real(), k.wa.imag(), k.wb.real(),
                           k.wb.imag()};
  for (double p : parts) {
    std::memcpy(&bits, &p, sizeof(bits));
    h = mix(h, bits);
  }
  return static_cast<std::size_t>(h);
}

Package::Package(std::uint64_t max_nodes) {
  max_nodes_ = std::max<std::uint64_t>(max_nodes, 1024);
  terminal_.terminal = true;
  // Bucket count: power of two near max_nodes, capped so an engine with a
  // huge budget doesn't pre-pay gigabytes of empty buckets.
  std::uint64_t buckets = 1024;
  while (buckets < max_nodes_ && buckets < (std::uint64_t{1} << 20)) {
    buckets <<= 1;
  }
  table_.assign(static_cast<std::size_t>(buckets), nullptr);
}

Package::~Package() = default;

std::uint64_t Package::hash_node(unsigned var, const Edge& e0,
                                 const Edge& e1) {
  std::uint64_t h = var;
  h = mix(h, reinterpret_cast<std::uintptr_t>(e0.node));
  h = mix(h, static_cast<std::uint64_t>(quantize(e0.w.real())));
  h = mix(h, static_cast<std::uint64_t>(quantize(e0.w.imag())));
  h = mix(h, reinterpret_cast<std::uintptr_t>(e1.node));
  h = mix(h, static_cast<std::uint64_t>(quantize(e1.w.real())));
  h = mix(h, static_cast<std::uint64_t>(quantize(e1.w.imag())));
  return h;
}

bool Package::weights_close(const cd& a, const cd& b) {
  return std::abs(a.real() - b.real()) <= kMergeTol &&
         std::abs(a.imag() - b.imag()) <= kMergeTol;
}

Node* Package::alloc_node() {
  if (live_nodes_ >= max_nodes_) {
    throw OutOfMemoryBudget(
        "dd: live node count would exceed max_nodes=" +
        std::to_string(max_nodes_) +
        " (circuit builds too much entanglement for the DD paradigm; "
        "raise the node budget or use a statevector/mps backend)");
  }
  Node* v;
  if (free_list_ != nullptr) {
    v = free_list_;
    free_list_ = v->next;
    *v = Node{};
  } else {
    if (pool_.empty() || pool_.back().size() == pool_.back().capacity()) {
      pool_.emplace_back();
      pool_.back().reserve(kChunkNodes);
    }
    pool_.back().emplace_back();
    v = &pool_.back().back();
  }
  ++live_nodes_;
  peak_nodes_ = std::max(peak_nodes_, live_nodes_);
  return v;
}

void Package::unlink_from_table(Node* v) {
  const std::size_t bucket = static_cast<std::size_t>(
      hash_node(v->var, v->e[0], v->e[1]) & (table_.size() - 1));
  Node** link = &table_[bucket];
  while (*link != nullptr) {
    if (*link == v) {
      *link = v->next;
      return;
    }
    link = &(*link)->next;
  }
}

Edge Package::make_node(unsigned var, Edge e0, Edge e1) {
  // Canonicalize: zero-weight children always point at the terminal.
  const double m0 = std::abs(e0.w);
  const double m1 = std::abs(e1.w);
  const double m = std::max(m0, m1);
  if (m == 0.0) return zero_edge();
  if (m0 < kZeroSnap * m) e0 = zero_edge();
  if (m1 < kZeroSnap * m) e1 = zero_edge();

  // Normalize on the larger-magnitude child; its weight becomes exactly 1.
  const bool pivot1 = std::abs(e1.w) > std::abs(e0.w);
  const cd top = pivot1 ? e1.w : e0.w;
  if (!e0.is_zero()) e0.w /= top;
  if (!e1.is_zero()) e1.w /= top;
  (pivot1 ? e1 : e0).w = cd(1, 0);

  const std::size_t bucket = static_cast<std::size_t>(
      hash_node(var, e0, e1) & (table_.size() - 1));
  for (Node* c = table_[bucket]; c != nullptr; c = c->next) {
    if (c->var == var && c->e[0].node == e0.node && c->e[1].node == e1.node &&
        weights_close(c->e[0].w, e0.w) && weights_close(c->e[1].w, e1.w)) {
      return Edge{c, top};
    }
  }

  Node* v = alloc_node();
  v->var = var;
  v->e[0] = e0;
  v->e[1] = e1;
  for (int b = 0; b < 2; ++b) {
    if (!v->e[b].node->terminal) ++v->e[b].node->ref;
  }
  v->next = table_[bucket];
  table_[bucket] = v;
  return Edge{v, top};
}

Edge Package::make_basis_state(unsigned n, std::uint64_t x) {
  QGEAR_CHECK_ARG(n >= 1, "dd: basis state needs at least one qubit");
  Edge e{&terminal_, {1, 0}};
  for (unsigned k = 0; k < n; ++k) {
    const bool bit = k < 64 && ((x >> k) & 1) != 0;
    e = bit ? make_node(k, zero_edge(), e) : make_node(k, e, zero_edge());
  }
  return e;
}

void Package::inc_ref(Edge e) {
  if (e.node != nullptr && !e.node->terminal) ++e.node->ref;
}

void Package::dec_ref(Edge e) {
  if (e.node == nullptr || e.node->terminal) return;
  QGEAR_EXPECTS(e.node->ref > 0);
  --e.node->ref;
}

void Package::collect_garbage() {
  clear_caches();
  std::vector<Node*> stack;
  for (auto& chunk : pool_) {
    for (Node& v : chunk) {
      if (!v.dead && v.ref == 0) stack.push_back(&v);
    }
  }
  while (!stack.empty()) {
    Node* v = stack.back();
    stack.pop_back();
    if (v->dead || v->ref != 0) continue;
    unlink_from_table(v);
    for (int b = 0; b < 2; ++b) {
      Node* c = v->e[b].node;
      if (c != nullptr && !c->terminal) {
        QGEAR_EXPECTS(c->ref > 0);
        if (--c->ref == 0) stack.push_back(c);
      }
    }
    v->dead = true;
    v->next = free_list_;
    free_list_ = v;
    --live_nodes_;
  }
}

void Package::clear_caches() {
  apply_cache_.clear();
  add_cache_.clear();
  inner_cache_.clear();
  norm_cache_.clear();
}

Edge Package::add(Edge a, Edge b) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  if (a.node->terminal && b.node->terminal) {
    const cd w = a.w + b.w;
    if (std::abs(w) < kZeroSnap * std::max(std::abs(a.w), std::abs(b.w))) {
      return zero_edge();
    }
    return Edge{&terminal_, w};
  }
  QGEAR_EXPECTS(!a.node->terminal && !b.node->terminal);
  QGEAR_EXPECTS(a.node->var == b.node->var);
  if (b.node < a.node) std::swap(a, b);  // addition commutes; share entries

  const AddKey key{a.node, b.node, a.w, b.w};
  if (auto it = add_cache_.find(key); it != add_cache_.end()) {
    return it->second;
  }
  Edge r[2];
  for (int i = 0; i < 2; ++i) {
    r[i] = add(scaled(a.node->e[i], a.w), scaled(b.node->e[i], b.w));
  }
  const Edge res = make_node(a.node->var, r[0], r[1]);
  add_cache_.emplace(key, res);
  return res;
}

Edge Package::apply1_rec(Node* v, unsigned q, const cd* u, std::uint64_t op,
                         unsigned slot) {
  const void* tag = reinterpret_cast<const void*>(
      static_cast<std::uintptr_t>(op * 8 + slot));
  const std::pair<const void*, const void*> key{v, tag};
  if (auto it = apply_cache_.find(key); it != apply_cache_.end()) {
    return it->second;
  }
  Edge res;
  if (v->var == q) {
    const Edge lo = v->e[0];
    const Edge hi = v->e[1];
    const Edge r0 = add(scaled(lo, u[0]), scaled(hi, u[1]));
    const Edge r1 = add(scaled(lo, u[2]), scaled(hi, u[3]));
    res = make_node(q, r0, r1);
  } else {
    QGEAR_EXPECTS(v->var > q);
    Edge r[2];
    for (int b = 0; b < 2; ++b) {
      const Edge c = v->e[b];
      if (c.is_zero()) {
        r[b] = zero_edge();
      } else {
        r[b] = scaled(apply1_rec(c.node, q, u, op, slot), c.w);
      }
    }
    res = make_node(v->var, r[0], r[1]);
  }
  apply_cache_.emplace(key, res);
  return res;
}

Edge Package::apply_mat2(Edge root, unsigned q, const cd u[4]) {
  if (root.is_zero()) return zero_edge();
  QGEAR_EXPECTS(!root.node->terminal && root.node->var >= q);
  const std::uint64_t op = ++op_seq_;
  Edge r = apply1_rec(root.node, q, u, op, 4);
  return scaled(r, root.w);
}

Edge Package::apply2_rec(Node* v, unsigned q_hi, unsigned q_lo, const cd* u,
                         std::uint64_t op) {
  const void* tag = reinterpret_cast<const void*>(
      static_cast<std::uintptr_t>(op * 8 + 5));
  const std::pair<const void*, const void*> key{v, tag};
  if (auto it = apply_cache_.find(key); it != apply_cache_.end()) {
    return it->second;
  }
  Edge res;
  if (v->var > q_hi) {
    Edge r[2];
    for (int b = 0; b < 2; ++b) {
      const Edge c = v->e[b];
      if (c.is_zero()) {
        r[b] = zero_edge();
      } else {
        r[b] = scaled(apply2_rec(c.node, q_hi, q_lo, u, op), c.w);
      }
    }
    res = make_node(v->var, r[0], r[1]);
  } else {
    QGEAR_EXPECTS(v->var == q_hi);
    Edge r[2];
    for (unsigned s = 0; s < 2; ++s) {
      Edge acc = zero_edge();
      for (unsigned t = 0; t < 2; ++t) {
        const Edge c = v->e[t];
        if (c.is_zero()) continue;
        // 2x2 block acting on q_lo for (hi_out = s, hi_in = t).
        const cd b[4] = {u[(2 * s + 0) * 4 + (2 * t + 0)],
                         u[(2 * s + 0) * 4 + (2 * t + 1)],
                         u[(2 * s + 1) * 4 + (2 * t + 0)],
                         u[(2 * s + 1) * 4 + (2 * t + 1)]};
        if (b[0] == cd(0, 0) && b[1] == cd(0, 0) && b[2] == cd(0, 0) &&
            b[3] == cd(0, 0)) {
          continue;
        }
        const Edge sub =
            scaled(apply1_rec(c.node, q_lo, b, op, 2 * s + t), c.w);
        acc = add(acc, sub);
      }
      r[s] = acc;
    }
    res = make_node(q_hi, r[0], r[1]);
  }
  apply_cache_.emplace(key, res);
  return res;
}

Edge Package::apply_mat4(Edge root, unsigned q_hi, unsigned q_lo,
                         const cd u[16]) {
  QGEAR_EXPECTS(q_hi > q_lo);
  if (root.is_zero()) return zero_edge();
  QGEAR_EXPECTS(!root.node->terminal && root.node->var >= q_hi);
  const std::uint64_t op = ++op_seq_;
  Edge r = apply2_rec(root.node, q_hi, q_lo, u, op);
  return scaled(r, root.w);
}

Edge Package::apply_instruction(Edge root, const qiskit::Instruction& inst) {
  const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
  if (!info.unitary) return root;  // measure/barrier: engine bookkeeping

  if (info.num_qubits == 1) {
    const qiskit::Mat2 m = qiskit::gate_matrix_1q(inst.kind, inst.param);
    return apply_mat2(root, static_cast<unsigned>(inst.q0), m.data());
  }

  const unsigned a = static_cast<unsigned>(inst.q0);
  const unsigned b = static_cast<unsigned>(inst.q1);
  const qiskit::Mat4 u = qiskit::gate_matrix_2q(inst.kind, inst.param, a, b);
  return apply_mat4(root, std::max(a, b), std::min(a, b), u.data());
}

std::complex<double> Package::inner_rec(const Node* a, const Node* b) {
  if (a->terminal || b->terminal) {
    QGEAR_EXPECTS(a->terminal && b->terminal);
    return cd(1, 0);
  }
  const std::pair<const void*, const void*> key{a, b};
  if (auto it = inner_cache_.find(key); it != inner_cache_.end()) {
    return it->second;
  }
  cd acc(0, 0);
  for (int i = 0; i < 2; ++i) {
    const Edge& ea = a->e[i];
    const Edge& eb = b->e[i];
    if (ea.is_zero() || eb.is_zero()) continue;
    acc += std::conj(ea.w) * eb.w * inner_rec(ea.node, eb.node);
  }
  inner_cache_.emplace(key, acc);
  return acc;
}

std::complex<double> Package::inner_product(Edge a, Edge b) {
  if (a.is_zero() || b.is_zero()) return cd(0, 0);
  return std::conj(a.w) * b.w * inner_rec(a.node, b.node);
}

double Package::norm_rec(const Node* v) {
  if (v->terminal) return 1.0;
  if (auto it = norm_cache_.find(v); it != norm_cache_.end()) {
    return it->second;
  }
  double acc = 0;
  for (int i = 0; i < 2; ++i) {
    const Edge& e = v->e[i];
    if (e.is_zero()) continue;
    acc += std::norm(e.w) * norm_rec(e.node);
  }
  norm_cache_.emplace(v, acc);
  return acc;
}

double Package::norm2(Edge e) {
  if (e.is_zero()) return 0.0;
  return std::norm(e.w) * norm_rec(e.node);
}

std::complex<double> Package::amplitude(Edge root, std::uint64_t index,
                                        unsigned n) const {
  if (root.is_zero()) return cd(0, 0);
  cd w = root.w;
  const Node* v = root.node;
  for (unsigned k = n; k-- > 0;) {
    QGEAR_EXPECTS(!v->terminal);
    const Edge& e = v->e[(index >> k) & 1];
    if (e.is_zero()) return cd(0, 0);
    w *= e.w;
    v = e.node;
  }
  QGEAR_EXPECTS(v->terminal);
  return w;
}

}  // namespace dd

// ---------------------------------------------------------------------------
// DdEngine

DdEngine::DdEngine() : DdEngine(Options{}) {}
DdEngine::DdEngine(Options opts) : opts_(opts) {}
DdEngine::~DdEngine() {
  if (pkg_ != nullptr) pkg_->dec_ref(root_);
}

void DdEngine::init_state(unsigned num_qubits) {
  QGEAR_CHECK_ARG(num_qubits >= 1 && num_qubits <= 1024,
                  "dd: qubit count must be in 1..1024");
  pkg_ = std::make_unique<dd::Package>(opts_.max_nodes);
  num_qubits_ = num_qubits;
  root_ = pkg_->make_basis_state(num_qubits, 0);
  pkg_->inc_ref(root_);
}

void DdEngine::apply(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured) {
  QGEAR_CHECK_ARG(pkg_ != nullptr, "dd: init_state must precede apply");
  QGEAR_CHECK_ARG(qc.num_qubits() == num_qubits_,
                  "dd: circuit and state qubit counts differ");
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Span apply_span(tracer, "dd.apply", "sim");
  const EngineStats before = stats_;
  WallTimer timer;
  std::uint64_t gc_watermark =
      std::max<std::uint64_t>(4096, 2 * pkg_->live_nodes());
  for (const qiskit::Instruction& inst : qc.instructions()) {
    ++stats_.gates;
    if (inst.kind == qiskit::GateKind::barrier) continue;
    if (inst.kind == qiskit::GateKind::measure) {
      if (measured != nullptr) {
        measured->push_back(static_cast<unsigned>(inst.q0));
      }
      continue;
    }
    try {
      const dd::Edge next = pkg_->apply_instruction(root_, inst);
      pkg_->inc_ref(next);
      pkg_->dec_ref(root_);
      root_ = next;
    } catch (...) {
      // Reclaim the failed gate's intermediates so the engine stays usable
      // (old root is intact — the gate simply did not happen).
      pkg_->collect_garbage();
      stats_.seconds += timer.seconds();
      stats_.dd_nodes = std::max(stats_.dd_nodes, pkg_->peak_nodes());
      throw;
    }
    pkg_->clear_caches();
    if (pkg_->live_nodes() > gc_watermark) {
      pkg_->collect_garbage();
      gc_watermark = std::max<std::uint64_t>(4096, 2 * pkg_->live_nodes());
    }
    ++stats_.sweeps;
    stats_.amp_ops += pkg_->live_nodes();
  }
  stats_.dd_nodes = std::max(stats_.dd_nodes, pkg_->peak_nodes());
  stats_.seconds += timer.seconds();

  auto& reg = obs::Registry::global();
  reg.counter("sim.gates").add(stats_.gates - before.gates);
  reg.counter("sim.sweeps").add(stats_.sweeps - before.sweeps);
  reg.counter("sim.amp_ops").add(stats_.amp_ops - before.amp_ops);
  if (apply_span.active()) {
    apply_span.arg("gates", stats_.gates - before.gates);
    apply_span.arg("qubits", std::uint64_t{qc.num_qubits()});
    apply_span.arg("live_nodes", pkg_->live_nodes());
  }
}

Counts DdEngine::sample(const std::vector<unsigned>& measured_qubits,
                        std::uint64_t shots, Rng& rng) {
  QGEAR_CHECK_ARG(pkg_ != nullptr, "dd: init_state must precede sample");
  std::vector<unsigned> mq = measured_qubits;
  if (mq.empty()) {
    mq.resize(num_qubits_);
    for (unsigned q = 0; q < num_qubits_; ++q) mq[q] = q;
  }
  QGEAR_CHECK_ARG(mq.size() <= 64,
                  "dd: at most 64 qubits can be packed into one outcome key");
  for (std::size_t j = 0; j < mq.size(); ++j) {
    QGEAR_CHECK_ARG(mq[j] < num_qubits_, "dd: measured qubit out of range");
    QGEAR_CHECK_ARG(j == 0 || mq[j] > mq[j - 1],
                    "dd: measured qubits must be strictly ascending");
  }
  const double total = pkg_->norm2(root_);  // primes the norm memo
  QGEAR_CHECK_ARG(total > 0, "dd: cannot sample a zero-norm state");

  Counts counts;
  std::vector<int> bits(num_qubits_, 0);
  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    const dd::Node* v = root_.node;
    for (unsigned k = num_qubits_; k-- > 0;) {
      const dd::Edge& e0 = v->e[0];
      const dd::Edge& e1 = v->e[1];
      const double w1 = pkg_->norm2(e1);
      const double w0 = pkg_->norm2(e0);
      const int bit = rng.uniform() * (w0 + w1) < w1 ? 1 : 0;
      bits[k] = bit;
      v = (bit ? e1 : e0).node;
    }
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < mq.size(); ++j) {
      key |= static_cast<std::uint64_t>(bits[mq[j]]) << j;
    }
    ++counts[key];
  }
  return counts;
}

double DdEngine::expectation(const PauliTerm& term) {
  QGEAR_CHECK_ARG(pkg_ != nullptr, "dd: init_state must precede expectation");
  QGEAR_CHECK_ARG(term.ops.size() <= num_qubits_,
                  "dd: Pauli term acts on more qubits than the state has");
  using cd = std::complex<double>;
  static constexpr cd kX[4] = {{0, 0}, {1, 0}, {1, 0}, {0, 0}};
  static constexpr cd kY[4] = {{0, 0}, {0, -1}, {0, 1}, {0, 0}};
  static constexpr cd kZ[4] = {{1, 0}, {0, 0}, {0, 0}, {-1, 0}};
  dd::Edge e = root_;
  for (unsigned q = 0; q < term.ops.size(); ++q) {
    const cd* m = nullptr;
    switch (term.ops[q]) {
      case Pauli::I: continue;
      case Pauli::X: m = kX; break;
      case Pauli::Y: m = kY; break;
      case Pauli::Z: m = kZ; break;
    }
    e = pkg_->apply_mat2(e, q, m);
  }
  const double value = term.coefficient * pkg_->inner_product(root_, e).real();
  // The P|psi> intermediates are unreferenced; reclaim them now.
  pkg_->collect_garbage();
  return value;
}

double DdEngine::expectation(const Observable& obs) {
  double acc = 0;
  for (const PauliTerm& term : obs.terms()) acc += expectation(term);
  return acc;
}

std::complex<double> DdEngine::amplitude(std::uint64_t index) const {
  QGEAR_CHECK_ARG(pkg_ != nullptr, "dd: init_state must precede amplitude");
  return pkg_->amplitude(root_, index, num_qubits_);
}

double DdEngine::norm() const {
  QGEAR_CHECK_ARG(pkg_ != nullptr, "dd: init_state must precede norm");
  return std::sqrt(pkg_->norm2(root_));
}

std::vector<std::complex<double>> DdEngine::to_statevector() const {
  QGEAR_CHECK_ARG(pkg_ != nullptr,
                  "dd: init_state must precede to_statevector");
  QGEAR_CHECK_ARG(num_qubits_ <= 26,
                  "dd: to_statevector limited to 26 qubits");
  std::vector<std::complex<double>> out(std::uint64_t{1} << num_qubits_,
                                        {0, 0});
  if (root_.is_zero()) return out;
  struct Frame {
    const dd::Node* node;
    std::complex<double> w;
    std::uint64_t idx;
  };
  std::vector<Frame> stack{{root_.node, root_.w, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node->terminal) {
      out[f.idx] = f.w;
      continue;
    }
    for (int b = 0; b < 2; ++b) {
      const dd::Edge& e = f.node->e[b];
      if (e.is_zero()) continue;
      stack.push_back({e.node, f.w * e.w,
                       f.idx | (std::uint64_t{static_cast<unsigned>(b)}
                                << f.node->var)});
    }
  }
  return out;
}

std::uint64_t DdEngine::live_nodes() const {
  return pkg_ != nullptr ? pkg_->live_nodes() : 0;
}

std::uint64_t DdEngine::peak_nodes() const {
  return pkg_ != nullptr ? pkg_->peak_nodes() : 0;
}

std::uint64_t DdEngine::memory_estimate(const qiskit::QuantumCircuit& qc,
                                        std::uint64_t max_nodes) {
  if (max_nodes == 0) max_nodes = Options{}.max_nodes;
  const unsigned n = qc.num_qubits();
  // Any n-qubit state fits in a complete binary tree of < 2^(n+1) nodes;
  // the runtime budget caps the diagram hard (apply throws past it). The
  // estimate is therefore a capacity price — the most the engine can ever
  // hold resident — not a per-circuit prediction.
  std::uint64_t nodes = max_nodes;
  if (n < 62) nodes = std::min(nodes, std::uint64_t{1} << (n + 1));
  constexpr std::uint64_t kBytesPerNode =
      sizeof(dd::Node) + sizeof(dd::Node*);  // node + unique-table share
  return nodes * kBytesPerNode;
}

}  // namespace qgear::sim
