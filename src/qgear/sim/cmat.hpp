// Small dense complex matrices used by the gate-fusion planner.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/qiskit/circuit.hpp"

namespace qgear::sim {

/// Row-major square complex matrix of dimension 2^m (m = qubit count).
class CMat {
 public:
  CMat() = default;
  explicit CMat(std::uint64_t dim);

  static CMat identity(std::uint64_t dim);

  std::uint64_t dim() const { return dim_; }
  std::complex<double>& at(std::uint64_t r, std::uint64_t c) {
    return a_[r * dim_ + c];
  }
  const std::complex<double>& at(std::uint64_t r, std::uint64_t c) const {
    return a_[r * dim_ + c];
  }
  const std::vector<std::complex<double>>& data() const { return a_; }
  std::vector<std::complex<double>> take() && { return std::move(a_); }

  /// this * rhs (matrix product).
  CMat mul(const CMat& rhs) const;

  /// Max |this[i][j] - rhs[i][j]|.
  double max_diff(const CMat& rhs) const;

  /// True if all off-diagonal magnitudes are <= tol.
  bool is_diagonal(double tol = 1e-14) const;

  /// True if the matrix is a phased permutation: exactly one entry of unit
  /// magnitude per column (within tol), zeros elsewhere. On success fills
  /// perm[c] = destination row of column c and phases[c] = that entry, so
  /// applying the matrix is out[perm[c]] = phases[c] * in[c]. Diagonal
  /// matrices trivially qualify; callers should test is_diagonal first to
  /// pick the cheaper kernel.
  bool is_permutation(double tol, std::vector<std::uint32_t>* perm,
                      std::vector<std::complex<double>>* phases) const;

  /// True if U * U^dagger is within tol of identity.
  bool is_unitary(double tol = 1e-10) const;

 private:
  std::uint64_t dim_ = 0;
  std::vector<std::complex<double>> a_;
};

/// Builds the unitary matrix of one instruction over the ascending qubit
/// list that it touches. Local bit j corresponds to the j-th smallest qubit
/// the gate uses. Throws for non-unitary instructions.
CMat instruction_matrix(const qiskit::Instruction& inst);

/// The ascending qubit list an instruction touches.
std::vector<unsigned> instruction_qubits(const qiskit::Instruction& inst);

/// Embeds `src` (defined over ascending global qubits `src_qubits`) into a
/// matrix over the ascending superset `dst_qubits`, acting as identity on
/// the added qubits.
CMat embed(const CMat& src, const std::vector<unsigned>& src_qubits,
           const std::vector<unsigned>& dst_qubits);

}  // namespace qgear::sim
