#include "qgear/sim/observable.hpp"

#include <cmath>

#include "qgear/common/bits.hpp"
#include "qgear/sim/reference.hpp"
#include "qgear/sim/sampler.hpp"

namespace qgear::sim {

PauliTerm PauliTerm::parse(const std::string& text, double coefficient) {
  QGEAR_CHECK_ARG(!text.empty(), "pauli: empty string");
  PauliTerm term;
  term.coefficient = coefficient;
  term.ops.resize(text.size(), Pauli::I);
  for (std::size_t i = 0; i < text.size(); ++i) {
    // Leftmost char = highest qubit.
    const std::size_t q = text.size() - 1 - i;
    switch (text[i]) {
      case 'I': term.ops[q] = Pauli::I; break;
      case 'X': term.ops[q] = Pauli::X; break;
      case 'Y': term.ops[q] = Pauli::Y; break;
      case 'Z': term.ops[q] = Pauli::Z; break;
      default:
        throw InvalidArgument(std::string("pauli: invalid character '") +
                              text[i] + "'");
    }
  }
  return term;
}

std::string PauliTerm::to_string() const {
  static const char names[] = {'I', 'X', 'Y', 'Z'};
  std::string out;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    out += names[static_cast<int>(*it)];
  }
  return out.empty() ? "I" : out;
}

bool PauliTerm::is_identity() const {
  for (Pauli p : ops) {
    if (p != Pauli::I) return false;
  }
  return true;
}

Observable& Observable::add(PauliTerm term) {
  terms_.push_back(std::move(term));
  return *this;
}

Observable& Observable::add(const std::string& paulis, double coefficient) {
  return add(PauliTerm::parse(paulis, coefficient));
}

Observable Observable::ising_ring(unsigned num_qubits, double j, double h) {
  QGEAR_CHECK_ARG(num_qubits >= 2, "ising_ring: need >= 2 qubits");
  Observable obs;
  for (unsigned q = 0; q < num_qubits; ++q) {
    PauliTerm zz;
    zz.coefficient = -j;
    zz.ops.resize(num_qubits, Pauli::I);
    zz.ops[q] = Pauli::Z;
    zz.ops[(q + 1) % num_qubits] = Pauli::Z;
    obs.add(std::move(zz));
    PauliTerm x;
    x.coefficient = -h;
    x.ops.resize(num_qubits, Pauli::I);
    x.ops[q] = Pauli::X;
    obs.add(std::move(x));
  }
  return obs;
}

namespace {

// Applies one Pauli string to a basis index: P|i> = phase * |j>.
// Returns j; accumulates the phase (in quarter turns of i).
std::uint64_t pauli_image(const PauliTerm& term, std::uint64_t i,
                          std::complex<double>& phase) {
  std::uint64_t j = i;
  for (std::size_t q = 0; q < term.ops.size(); ++q) {
    const bool bit = test_bit(i, static_cast<unsigned>(q));
    switch (term.ops[q]) {
      case Pauli::I:
        break;
      case Pauli::X:
        j = flip_bit(j, static_cast<unsigned>(q));
        break;
      case Pauli::Y:
        j = flip_bit(j, static_cast<unsigned>(q));
        // Y|0> = i|1>, Y|1> = -i|0>.
        phase *= bit ? std::complex<double>(0, -1)
                     : std::complex<double>(0, 1);
        break;
      case Pauli::Z:
        if (bit) phase *= -1.0;
        break;
    }
  }
  return j;
}

}  // namespace

template <typename T>
double expectation(const StateVector<T>& state, const PauliTerm& term) {
  QGEAR_CHECK_ARG(term.ops.size() <= state.num_qubits(),
                  "observable: term acts beyond the register");
  std::complex<double> acc(0, 0);
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    const std::complex<double> amp(state[i]);
    if (amp == std::complex<double>(0, 0)) continue;
    std::complex<double> phase(1, 0);
    const std::uint64_t j = pauli_image(term, i, phase);
    // <psi|P|psi> = sum_i conj(a_j) * phase * a_i with |j> = P|i>/phase.
    acc += std::conj(std::complex<double>(state[j])) * phase * amp;
  }
  return term.coefficient * acc.real();
}

template <typename T>
double expectation(const StateVector<T>& state, const Observable& obs) {
  double total = 0;
  for (const PauliTerm& term : obs.terms()) {
    total += expectation(state, term);
  }
  return total;
}

qiskit::QuantumCircuit basis_change_circuit(unsigned num_qubits,
                                            const PauliTerm& term) {
  QGEAR_CHECK_ARG(term.ops.size() <= num_qubits,
                  "observable: term acts beyond the register");
  qiskit::QuantumCircuit qc(num_qubits, "basis_change");
  for (std::size_t q = 0; q < term.ops.size(); ++q) {
    const int qi = static_cast<int>(q);
    switch (term.ops[q]) {
      case Pauli::X:
        qc.h(qi);
        break;
      case Pauli::Y:
        qc.sdg(qi);
        qc.h(qi);
        break;
      default:
        break;
    }
  }
  return qc;
}

template <typename T>
double sampled_expectation(const StateVector<T>& state,
                           const PauliTerm& term, std::uint64_t shots,
                           Rng& rng) {
  QGEAR_CHECK_ARG(shots > 0, "observable: need at least one shot");
  if (term.is_identity()) return term.coefficient;

  // Rotate a copy into the measurement basis.
  StateVector<T> rotated = state;
  ReferenceEngine<T> engine;
  engine.apply(basis_change_circuit(state.num_qubits(), term), rotated);

  std::vector<unsigned> measured;
  std::uint64_t parity_mask = 0;
  for (std::size_t q = 0; q < term.ops.size(); ++q) {
    if (term.ops[q] != Pauli::I) {
      measured.push_back(static_cast<unsigned>(q));
      parity_mask |= pow2(static_cast<unsigned>(measured.size() - 1));
    }
  }
  const Counts counts = sample_counts(rotated, measured, shots, rng);
  std::int64_t signed_sum = 0;
  for (const auto& [key, count] : counts) {
    const bool odd = std::popcount(key & parity_mask) % 2 == 1;
    signed_sum += odd ? -static_cast<std::int64_t>(count)
                      : static_cast<std::int64_t>(count);
  }
  return term.coefficient * static_cast<double>(signed_sum) /
         static_cast<double>(shots);
}

template double expectation<float>(const StateVector<float>&,
                                   const PauliTerm&);
template double expectation<double>(const StateVector<double>&,
                                    const PauliTerm&);
template double expectation<float>(const StateVector<float>&,
                                   const Observable&);
template double expectation<double>(const StateVector<double>&,
                                    const Observable&);
template double sampled_expectation<float>(const StateVector<float>&,
                                           const PauliTerm&, std::uint64_t,
                                           Rng&);
template double sampled_expectation<double>(const StateVector<double>&,
                                            const PauliTerm&, std::uint64_t,
                                            Rng&);

}  // namespace qgear::sim
