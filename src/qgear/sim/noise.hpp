// Readout (measurement) noise model and mitigation.
//
// The paper's motivation for million-shot sampling is measurement
// fidelity (Sec. 1). This module models the dominant hardware effect —
// per-qubit assignment error p(read 1 | prepared 0), p(read 0 |
// prepared 1) — applied to sampled counts, and the standard mitigation:
// inverting the tensor-product confusion matrix per qubit.
#pragma once

#include <cstdint>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/sim/sampler.hpp"

namespace qgear::sim {

/// Per-qubit symmetric-or-not assignment error.
struct ReadoutError {
  double p01 = 0.0;  ///< P(read 1 | true 0)
  double p10 = 0.0;  ///< P(read 0 | true 1)
};

/// Readout noise over an n-qubit measurement register.
class ReadoutNoise {
 public:
  /// Same error on every measured qubit.
  ReadoutNoise(unsigned num_qubits, ReadoutError uniform);
  /// Per-qubit errors.
  explicit ReadoutNoise(std::vector<ReadoutError> per_qubit);

  unsigned num_qubits() const {
    return static_cast<unsigned>(errors_.size());
  }
  const ReadoutError& error(unsigned q) const { return errors_.at(q); }

  /// Applies assignment errors shot-by-shot to a histogram (keys are
  /// packed measured bits, bit q = measured qubit q).
  Counts corrupt(const Counts& counts, Rng& rng) const;

  /// Mitigates a noisy histogram by applying the inverse single-qubit
  /// confusion matrix on each bit of the probability vector (tensor-
  /// product structure makes this O(n 2^n)). Returns quasi-probability
  /// weights scaled back to shot counts; small negative entries are
  /// clipped and the result renormalized.
  Counts mitigate(const Counts& noisy, std::uint64_t shots) const;

 private:
  std::vector<ReadoutError> errors_;
};

}  // namespace qgear::sim
