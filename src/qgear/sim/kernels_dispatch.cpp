// Binds the per-ISA kernel tables to the runtime dispatch entry points.
#include "qgear/sim/kernel_table.hpp"
#include "qgear/sim/kernels_scalar.hpp"

namespace qgear::sim {

namespace {

template <typename T>
const KernelTable<T>& scalar_table() {
  static const KernelTable<T> t = scalar::make_scalar_table<T>();
  return t;
}

template <typename T>
const KernelTable<T>& isa_table(Isa isa);

template <>
const KernelTable<float>& isa_table<float>(Isa isa) {
  switch (isa) {
    case Isa::avx2:
      return detail::avx2_table_f();
    case Isa::sse2:
      return detail::sse2_table_f();
    case Isa::scalar:
      break;
  }
  return scalar_table<float>();
}

template <>
const KernelTable<double>& isa_table<double>(Isa isa) {
  switch (isa) {
    case Isa::avx2:
      return detail::avx2_table_d();
    case Isa::sse2:
      return detail::sse2_table_d();
    case Isa::scalar:
      break;
  }
  return scalar_table<double>();
}

}  // namespace

template <typename T>
const KernelTable<T>& kernel_table_for(Isa isa) {
  return isa_table<T>(isa);
}

template <typename T>
const KernelTable<T>& active_kernels() {
  return isa_table<T>(active_isa());
}

template const KernelTable<float>& kernel_table_for<float>(Isa);
template const KernelTable<double>& kernel_table_for<double>(Isa);
template const KernelTable<float>& active_kernels<float>();
template const KernelTable<double>& active_kernels<double>();

}  // namespace qgear::sim
