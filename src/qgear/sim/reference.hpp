// Reference state-vector engine — the "Qiskit Aer on CPU" baseline.
//
// Applies one kernel sweep per gate with no fusion, exactly like the
// paper's CPU baseline. It doubles as the correctness oracle for the fused
// and distributed engines: its per-gate updates are direct transcriptions
// of the gate definitions.
#pragma once

#include "qgear/common/timer.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/qiskit/gates.hpp"
#include "qgear/sim/apply.hpp"
#include "qgear/sim/state.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::sim {

template <typename T>
class ReferenceEngine {
 public:
  struct Options {
    ThreadPool* pool = nullptr;  ///< optional shared-memory parallelism
  };

  explicit ReferenceEngine(Options opts = {}) : opts_(opts) {}

  /// Applies all instructions of `qc` to `state` in order. Measured qubit
  /// indices are appended to `measured` (if provided).
  void apply(const qiskit::QuantumCircuit& qc, StateVector<T>& state,
             std::vector<unsigned>* measured = nullptr) {
    QGEAR_CHECK_ARG(qc.num_qubits() == state.num_qubits(),
                    "engine: circuit and state qubit counts differ");
    obs::Tracer& tracer = obs::Tracer::global();
    obs::Span apply_span(tracer, "reference.apply", "sim");
    const EngineStats before = stats_;
    WallTimer timer;
    for (const qiskit::Instruction& inst : qc.instructions()) {
      obs::Span gate_span(tracer, "gate", "sim");
      if (gate_span.active()) {
        gate_span.arg("kind", qiskit::gate_info(inst.kind).name);
      }
      const unsigned sweeps = apply_instruction(
          state.data(), state.num_qubits(), inst, opts_.pool, measured);
      stats_.sweeps += sweeps;
      stats_.amp_ops += sweeps * state.size();
      ++stats_.gates;
    }
    stats_.seconds += timer.seconds();

    auto& reg = obs::Registry::global();
    reg.counter("sim.gates").add(stats_.gates - before.gates);
    reg.counter("sim.sweeps").add(stats_.sweeps - before.sweeps);
    reg.counter("sim.amp_ops").add(stats_.amp_ops - before.amp_ops);
    if (apply_span.active()) {
      apply_span.arg("gates", stats_.gates - before.gates);
      apply_span.arg("qubits", std::uint64_t{qc.num_qubits()});
    }
  }

  /// Runs `qc` from |0...0> and returns the final state.
  StateVector<T> run(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured = nullptr) {
    StateVector<T> state(qc.num_qubits());
    apply(qc, state, measured);
    return state;
  }

  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  Options opts_;
  EngineStats stats_;
};

}  // namespace qgear::sim
