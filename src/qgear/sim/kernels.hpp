// Amplitude-update kernels shared by all engines.
//
// Each kernel sweeps the amplitude array once, applying one (possibly
// fused multi-qubit) unitary. A non-null ThreadPool parallelizes the sweep
// over contiguous index ranges — the shared-memory stand-in for the GPU's
// SM/warp execution described in the paper's Appendix A.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"
#include "qgear/common/thread_pool.hpp"
#include "qgear/qiskit/gates.hpp"

namespace qgear::sim {

/// Converts the canonical double-precision 2x2 into precision T.
template <typename T>
std::array<std::complex<T>, 4> to_precision(const qiskit::Mat2& m) {
  return {std::complex<T>(m[0]), std::complex<T>(m[1]),
          std::complex<T>(m[2]), std::complex<T>(m[3])};
}

namespace detail {
/// Runs fn(begin, end) over [0, count) — pooled or inline.
inline void for_range(ThreadPool* pool, std::uint64_t count,
                      const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(0, count, fn);
  } else {
    fn(0, count);
  }
}
}  // namespace detail

/// Applies a 2x2 unitary to qubit q of an n-qubit amplitude array.
template <typename T>
void apply_1q(std::complex<T>* amps, unsigned num_qubits, unsigned q,
              const qiskit::Mat2& gate, ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q < num_qubits);
  const auto m = to_precision<T>(gate);
  const std::uint64_t pairs = pow2(num_qubits - 1);
  const std::uint64_t stride = pow2(q);
  detail::for_range(pool, pairs, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      const std::uint64_t i1 = i0 | stride;
      const std::complex<T> a0 = amps[i0];
      const std::complex<T> a1 = amps[i1];
      amps[i0] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  });
}

/// Applies a diagonal 2x2 unitary {d0, d1} to qubit q (no pairing needed).
template <typename T>
void apply_1q_diagonal(std::complex<T>* amps, unsigned num_qubits, unsigned q,
                       std::complex<T> d0, std::complex<T> d1,
                       ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q < num_qubits);
  const std::uint64_t total = pow2(num_qubits);
  detail::for_range(pool, total, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      amps[i] *= test_bit(i, q) ? d1 : d0;
    }
  });
}

/// Applies a controlled-U (2x2 target matrix) with control c, target t.
template <typename T>
void apply_controlled_1q(std::complex<T>* amps, unsigned num_qubits,
                         unsigned control, unsigned target,
                         const qiskit::Mat2& gate,
                         ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(control < num_qubits && target < num_qubits &&
                control != target);
  const auto m = to_precision<T>(gate);
  const unsigned lo = std::min(control, target);
  const unsigned hi = std::max(control, target);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t cbit = pow2(control);
  const std::uint64_t tbit = pow2(target);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      // Index with control=1, target=0; partner has target=1.
      const std::uint64_t base = insert_two_zero_bits(k, lo, hi) | cbit;
      const std::uint64_t i1 = base | tbit;
      const std::complex<T> a0 = amps[base];
      const std::complex<T> a1 = amps[i1];
      amps[base] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  });
}

/// Swaps qubits a and b (amplitude permutation).
template <typename T>
void apply_swap(std::complex<T>* amps, unsigned num_qubits, unsigned a,
                unsigned b, ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(a < num_qubits && b < num_qubits && a != b);
  const unsigned lo = std::min(a, b);
  const unsigned hi = std::max(a, b);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t abit = pow2(a);
  const std::uint64_t bbit = pow2(b);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i01 = insert_two_zero_bits(k, lo, hi) | abit;
      const std::uint64_t i10 = (i01 ^ abit) | bbit;
      std::swap(amps[i01], amps[i10]);
    }
  });
}

/// Specialized dense 4x4 kernel for two-qubit fused blocks — the common
/// case for CX-block workloads. Fully unrolled: no gather/scatter
/// indirection, no per-group temporaries.
template <typename T>
void apply_2q_dense(std::complex<T>* amps, unsigned num_qubits,
                    unsigned q_lo, unsigned q_hi,
                    const std::vector<std::complex<double>>& matrix,
                    ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q_lo < q_hi && q_hi < num_qubits);
  QGEAR_EXPECTS(matrix.size() == 16);
  std::array<std::complex<T>, 16> m;
  for (int i = 0; i < 16; ++i) m[i] = std::complex<T>(matrix[i]);
  const std::uint64_t groups = pow2(num_qubits - 2);
  const std::uint64_t lo_bit = pow2(q_lo);
  const std::uint64_t hi_bit = pow2(q_hi);
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t g = begin; g < end; ++g) {
      const std::uint64_t i0 = insert_two_zero_bits(g, q_lo, q_hi);
      const std::uint64_t i1 = i0 | lo_bit;
      const std::uint64_t i2 = i0 | hi_bit;
      const std::uint64_t i3 = i1 | hi_bit;
      const std::complex<T> a0 = amps[i0], a1 = amps[i1], a2 = amps[i2],
                            a3 = amps[i3];
      amps[i0] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
      amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
      amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
      amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
  });
}

/// Applies a dense 2^m x 2^m unitary (row-major, double precision) to the
/// ascending qubit list `qubits` — the fused-block kernel. Local basis bit
/// j of the matrix corresponds to qubits[j]. Widths 1 and 2 dispatch to
/// the specialized unrolled kernels.
template <typename T>
void apply_multi(std::complex<T>* amps, unsigned num_qubits,
                 const std::vector<unsigned>& qubits,
                 const std::vector<std::complex<double>>& matrix,
                 ThreadPool* pool = nullptr) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  QGEAR_EXPECTS(m >= 1 && m <= num_qubits);
  const std::uint64_t dim = pow2(m);
  QGEAR_EXPECTS(matrix.size() == dim * dim);
  for (unsigned j = 0; j < m; ++j) {
    QGEAR_EXPECTS(qubits[j] < num_qubits);
    if (j > 0) QGEAR_EXPECTS(qubits[j] > qubits[j - 1]);
  }
  if (m == 1) {
    apply_1q(amps, num_qubits, qubits[0],
             qiskit::Mat2{matrix[0], matrix[1], matrix[2], matrix[3]},
             pool);
    return;
  }
  if (m == 2) {
    apply_2q_dense(amps, num_qubits, qubits[0], qubits[1], matrix, pool);
    return;
  }

  // Pre-convert the matrix once per sweep.
  std::vector<std::complex<T>> mat(dim * dim);
  for (std::uint64_t i = 0; i < dim * dim; ++i) {
    mat[i] = std::complex<T>(matrix[i]);
  }
  // Precompute the offset of each local basis index within a group.
  std::vector<std::uint64_t> offsets(dim);
  for (std::uint64_t v = 0; v < dim; ++v) {
    offsets[v] = deposit_bits(v, qubits.data(), m);
  }

  const std::uint64_t groups = pow2(num_qubits - m);
  const auto* offs = offsets.data();
  const auto* mp = mat.data();
  detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
    std::vector<std::complex<T>> in(dim), out(dim);
    for (std::uint64_t g = begin; g < end; ++g) {
      // Scatter group index g into the non-block bit positions.
      std::uint64_t base = g;
      for (unsigned j = 0; j < m; ++j) {
        base = insert_zero_bit(base, qubits[j]);
      }
      for (std::uint64_t v = 0; v < dim; ++v) in[v] = amps[base + offs[v]];
      for (std::uint64_t r = 0; r < dim; ++r) {
        std::complex<T> acc(0, 0);
        const auto* row = mp + r * dim;
        for (std::uint64_t c = 0; c < dim; ++c) acc += row[c] * in[c];
        out[r] = acc;
      }
      for (std::uint64_t v = 0; v < dim; ++v) amps[base + offs[v]] = out[v];
    }
  });
}

}  // namespace qgear::sim
