// Amplitude-update kernels shared by all engines.
//
// Each kernel sweeps the amplitude array once, applying one (possibly
// fused multi-qubit) unitary. A non-null ThreadPool parallelizes the sweep
// over contiguous index ranges — the shared-memory stand-in for the GPU's
// SM/warp execution described in the paper's Appendix A.
//
// These entry points validate their arguments, then dispatch through the
// KernelTable matching active_isa(): AVX2+FMA or SSE2 vectorized sweeps
// when the host supports them, the portable scalar loops otherwise (see
// kernels_scalar.hpp / kernels_vec.ipp and docs/KERNELS.md). Set
// QGEAR_ISA=scalar|sse2|avx2 (or call set_active_isa) to override.
#pragma once

#include "qgear/sim/kernel_table.hpp"
#include "qgear/sim/kernels_common.hpp"

namespace qgear::sim {

/// Applies a 2x2 unitary to qubit q of an n-qubit amplitude array.
template <typename T>
void apply_1q(std::complex<T>* amps, unsigned num_qubits, unsigned q,
              const qiskit::Mat2& gate, ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q < num_qubits);
  active_kernels<T>().apply_1q(amps, num_qubits, q, gate, pool);
}

/// Applies a diagonal 2x2 unitary {d0, d1} to qubit q (no pairing needed).
template <typename T>
void apply_1q_diagonal(std::complex<T>* amps, unsigned num_qubits, unsigned q,
                       std::complex<T> d0, std::complex<T> d1,
                       ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q < num_qubits);
  active_kernels<T>().apply_1q_diagonal(amps, num_qubits, q, d0, d1, pool);
}

/// Pauli-X on qubit q: a pure amplitude permutation (no arithmetic).
template <typename T>
void apply_x(std::complex<T>* amps, unsigned num_qubits, unsigned q,
             ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q < num_qubits);
  active_kernels<T>().apply_x(amps, num_qubits, q, pool);
}

/// Applies a controlled-U (2x2 target matrix) with control c, target t.
template <typename T>
void apply_controlled_1q(std::complex<T>* amps, unsigned num_qubits,
                         unsigned control, unsigned target,
                         const qiskit::Mat2& gate,
                         ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(control < num_qubits && target < num_qubits &&
                control != target);
  active_kernels<T>().apply_controlled_1q(amps, num_qubits, control, target,
                                          gate, pool);
}

/// CX: swaps target amplitudes on the control=1 half (permutation only).
template <typename T>
void apply_cx(std::complex<T>* amps, unsigned num_qubits, unsigned control,
              unsigned target, ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(control < num_qubits && target < num_qubits &&
                control != target);
  active_kernels<T>().apply_cx(amps, num_qubits, control, target, pool);
}

/// amps[i] *= phase for every i with (i & mask) == mask — the kernel
/// behind CZ/CP and multi-controlled phases. Touches only the matching
/// 2^(n - popcount(mask)) amplitudes.
template <typename T>
void apply_phase_mask(std::complex<T>* amps, unsigned num_qubits,
                      std::uint64_t mask, std::complex<T> phase,
                      ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(mask != 0 && mask < pow2(num_qubits));
  active_kernels<T>().apply_phase_mask(amps, num_qubits, mask, phase, pool);
}

/// Two-qubit controlled-phase fast path: amps[i] *= phase when both bits
/// are set. Thin wrapper over apply_phase_mask.
template <typename T>
void apply_controlled_phase(std::complex<T>* amps, unsigned num_qubits,
                            unsigned control, unsigned target,
                            std::complex<T> phase,
                            ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(control < num_qubits && target < num_qubits &&
                control != target);
  const std::uint64_t mask = pow2(control) | pow2(target);
  active_kernels<T>().apply_phase_mask(amps, num_qubits, mask, phase, pool);
}

/// Swaps qubits a and b (amplitude permutation).
template <typename T>
void apply_swap(std::complex<T>* amps, unsigned num_qubits, unsigned a,
                unsigned b, ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(a < num_qubits && b < num_qubits && a != b);
  active_kernels<T>().apply_swap(amps, num_qubits, a, b, pool);
}

/// Specialized dense 4x4 kernel for two-qubit fused blocks — the common
/// case for CX-block workloads. Fully unrolled: no gather/scatter
/// indirection, no per-group temporaries.
template <typename T>
void apply_2q_dense(std::complex<T>* amps, unsigned num_qubits,
                    unsigned q_lo, unsigned q_hi,
                    const std::vector<std::complex<double>>& matrix,
                    ThreadPool* pool = nullptr) {
  QGEAR_EXPECTS(q_lo < q_hi && q_hi < num_qubits);
  QGEAR_EXPECTS(matrix.size() == 16);
  active_kernels<T>().apply_2q_dense(amps, num_qubits, q_lo, q_hi, matrix,
                                     pool);
}

namespace detail {
template <typename T>
void validate_block_qubits(unsigned num_qubits,
                           const std::vector<unsigned>& qubits) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  QGEAR_EXPECTS(m >= 1 && m <= num_qubits);
  for (unsigned j = 0; j < m; ++j) {
    QGEAR_EXPECTS(qubits[j] < num_qubits);
    if (j > 0) QGEAR_EXPECTS(qubits[j] > qubits[j - 1]);
  }
}
}  // namespace detail

/// Applies a dense 2^m x 2^m unitary (row-major, double precision) to the
/// ascending qubit list `qubits` — the fused-block kernel. Local basis bit
/// j of the matrix corresponds to qubits[j]. Widths 1 and 2 dispatch to
/// the specialized unrolled kernels.
template <typename T>
void apply_multi(std::complex<T>* amps, unsigned num_qubits,
                 const std::vector<unsigned>& qubits,
                 const std::vector<std::complex<double>>& matrix,
                 ThreadPool* pool = nullptr) {
  detail::validate_block_qubits<T>(num_qubits, qubits);
  const unsigned m = static_cast<unsigned>(qubits.size());
  const std::uint64_t dim = pow2(m);
  QGEAR_EXPECTS(matrix.size() == dim * dim);
  if (m == 1) {
    apply_1q(amps, num_qubits, qubits[0],
             qiskit::Mat2{matrix[0], matrix[1], matrix[2], matrix[3]},
             pool);
    return;
  }
  if (m == 2) {
    apply_2q_dense(amps, num_qubits, qubits[0], qubits[1], matrix, pool);
    return;
  }
  active_kernels<T>().apply_multi_dense(amps, num_qubits, qubits, matrix,
                                        pool);
}

/// Diagonal fused-block kernel over the 2^m diagonal values:
/// amps[i] *= diag[local_index(i)].
template <typename T>
void apply_multi_diag(std::complex<T>* amps, unsigned num_qubits,
                      const std::vector<unsigned>& qubits,
                      const std::vector<std::complex<double>>& diag,
                      ThreadPool* pool = nullptr) {
  detail::validate_block_qubits<T>(num_qubits, qubits);
  QGEAR_EXPECTS(diag.size() == pow2(qubits.size()));
  active_kernels<T>().apply_multi_diag(amps, num_qubits, qubits, diag, pool);
}

/// Compat form of apply_multi_diag taking the full 2^m x 2^m matrix and
/// extracting its diagonal.
template <typename T>
void apply_multi_diagonal(std::complex<T>* amps, unsigned num_qubits,
                          const std::vector<unsigned>& qubits,
                          const std::vector<std::complex<double>>& matrix,
                          ThreadPool* pool = nullptr) {
  const unsigned m = static_cast<unsigned>(qubits.size());
  const std::uint64_t dim = pow2(m);
  QGEAR_EXPECTS(matrix.size() == dim * dim);
  std::vector<std::complex<double>> diag(dim);
  for (std::uint64_t v = 0; v < dim; ++v) diag[v] = matrix[v * dim + v];
  apply_multi_diag(amps, num_qubits, qubits, diag, pool);
}

/// Permutation fused-block kernel: per amplitude group,
/// out[perm[v]] = phases[v] * in[v]. O(2^m) work per group instead of the
/// dense kernel's O(4^m) — the fast path for X/CX/SWAP runs.
template <typename T>
void apply_multi_permutation(std::complex<T>* amps, unsigned num_qubits,
                             const std::vector<unsigned>& qubits,
                             const std::vector<std::uint32_t>& perm,
                             const std::vector<std::complex<double>>& phases,
                             ThreadPool* pool = nullptr) {
  detail::validate_block_qubits<T>(num_qubits, qubits);
  const std::uint64_t dim = pow2(qubits.size());
  QGEAR_EXPECTS(perm.size() == dim && phases.size() == dim);
  active_kernels<T>().apply_multi_permutation(amps, num_qubits, qubits, perm,
                                              phases, pool);
}

}  // namespace qgear::sim
