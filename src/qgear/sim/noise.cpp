#include "qgear/sim/noise.hpp"

#include <cmath>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::sim {

namespace {
void validate(const ReadoutError& e) {
  QGEAR_CHECK_ARG(e.p01 >= 0 && e.p01 <= 0.5 && e.p10 >= 0 && e.p10 <= 0.5,
                  "readout: error probabilities must lie in [0, 0.5]");
}
}  // namespace

ReadoutNoise::ReadoutNoise(unsigned num_qubits, ReadoutError uniform)
    : errors_(num_qubits, uniform) {
  QGEAR_CHECK_ARG(num_qubits >= 1 && num_qubits <= 30,
                  "readout: qubit count out of range");
  validate(uniform);
}

ReadoutNoise::ReadoutNoise(std::vector<ReadoutError> per_qubit)
    : errors_(std::move(per_qubit)) {
  QGEAR_CHECK_ARG(!errors_.empty() && errors_.size() <= 30,
                  "readout: qubit count out of range");
  for (const ReadoutError& e : errors_) validate(e);
}

Counts ReadoutNoise::corrupt(const Counts& counts, Rng& rng) const {
  Counts noisy;
  for (const auto& [key, count] : counts) {
    for (std::uint64_t s = 0; s < count; ++s) {
      std::uint64_t out = key;
      for (unsigned q = 0; q < num_qubits(); ++q) {
        const bool bit = test_bit(key, q);
        const double flip_p = bit ? errors_[q].p10 : errors_[q].p01;
        if (flip_p > 0 && rng.uniform() < flip_p) {
          out = flip_bit(out, q);
        }
      }
      ++noisy[out];
    }
  }
  return noisy;
}

Counts ReadoutNoise::mitigate(const Counts& noisy,
                              std::uint64_t shots) const {
  QGEAR_CHECK_ARG(shots > 0, "readout: shots must be positive");
  const unsigned n = num_qubits();
  const std::uint64_t dim = pow2(n);

  // Dense probability vector (mitigation is an n-qubit tensor solve).
  std::vector<double> p(dim, 0.0);
  for (const auto& [key, count] : noisy) {
    QGEAR_CHECK_ARG(key < dim, "readout: outcome beyond register");
    p[key] += static_cast<double>(count) / static_cast<double>(shots);
  }

  // Apply the inverse confusion matrix qubit by qubit.
  // M_q = [[1-p01, p10], [p01, 1-p10]] maps true -> observed, so
  // M_q^{-1} = 1/det * [[1-p10, -p10], [-p01, 1-p01]].
  for (unsigned q = 0; q < n; ++q) {
    const double p01 = errors_[q].p01;
    const double p10 = errors_[q].p10;
    const double det = 1.0 - p01 - p10;
    QGEAR_CHECK_ARG(det > 1e-9, "readout: confusion matrix singular");
    const double i00 = (1.0 - p10) / det;
    const double i01 = -p10 / det;
    const double i10 = -p01 / det;
    const double i11 = (1.0 - p01) / det;
    const std::uint64_t stride = pow2(q);
    for (std::uint64_t base = 0; base < dim; ++base) {
      if (base & stride) continue;
      const double v0 = p[base];
      const double v1 = p[base | stride];
      p[base] = i00 * v0 + i01 * v1;
      p[base | stride] = i10 * v0 + i11 * v1;
    }
  }

  // Clip quasi-probabilities and renormalize back to counts.
  double total = 0;
  for (double& v : p) {
    if (v < 0) v = 0;
    total += v;
  }
  QGEAR_CHECK_ARG(total > 0, "readout: mitigation produced empty result");
  Counts mitigated;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const auto count = static_cast<std::uint64_t>(
        std::llround(p[i] / total * static_cast<double>(shots)));
    if (count > 0) mitigated[i] = count;
  }
  return mitigated;
}

}  // namespace qgear::sim
