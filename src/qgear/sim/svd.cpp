#include "qgear/sim/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qgear/common/error.hpp"

namespace qgear::sim {

namespace {

using cd = std::complex<double>;

// One-sided Jacobi on the columns of a (m×n, m >= n, column-major blocks):
// repeatedly applies 2x2 unitaries on column pairs until all pairs are
// orthogonal, accumulating the rotations into v. On exit the columns of g
// are A·V: orthogonal vectors whose norms are the singular values.
void jacobi_columns(std::vector<std::vector<cd>>& g,
                    std::vector<std::vector<cd>>& v) {
  const std::size_t n = g.size();
  const std::size_t m = n == 0 ? 0 : g[0].size();
  constexpr double kTol = 1e-14;
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double alpha = 0, beta = 0;
        cd gamma(0, 0);
        for (std::size_t r = 0; r < m; ++r) {
          alpha += std::norm(g[i][r]);
          beta += std::norm(g[j][r]);
          gamma += std::conj(g[i][r]) * g[j][r];
        }
        const double mag = std::abs(gamma);
        if (mag <= kTol * std::sqrt(alpha * beta) || mag == 0.0) continue;
        rotated = true;
        // Phase-align column j so the pair reduces to a real rotation:
        // gamma = |gamma| e^{i phi}; J mixes (i, j) with that phase folded
        // into the off-diagonal entries, keeping J unitary.
        const cd phase = gamma / mag;
        const double zeta = (beta - alpha) / (2.0 * mag);
        const double sgn = zeta >= 0 ? 1.0 : -1.0;
        const double t =
            sgn / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const cd s_ij = s * phase;             // J(i,j)
        const cd s_ji = -s * std::conj(phase); // J(j,i)
        for (std::size_t r = 0; r < m; ++r) {
          const cd gi = g[i][r];
          const cd gj = g[j][r];
          g[i][r] = c * gi + s_ji * gj;
          g[j][r] = s_ij * gi + c * gj;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const cd vi = v[i][r];
          const cd vj = v[j][r];
          v[i][r] = c * vi + s_ji * vj;
          v[j][r] = s_ij * vi + c * vj;
        }
      }
    }
    if (!rotated) break;
  }
}

SvdResult svd_tall(const cd* a, std::size_t m, std::size_t n) {
  // Column-major working copies: g[j] is column j of A, v[j] column j of V.
  std::vector<std::vector<cd>> g(n, std::vector<cd>(m));
  std::vector<std::vector<cd>> v(n, std::vector<cd>(n, cd(0, 0)));
  for (std::size_t j = 0; j < n; ++j) {
    v[j][j] = cd(1, 0);
    for (std::size_t r = 0; r < m; ++r) g[j][r] = a[r * n + j];
  }
  jacobi_columns(g, v);

  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0;
    for (std::size_t r = 0; r < m; ++r) acc += std::norm(g[j][r]);
    norms[j] = std::sqrt(acc);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });

  SvdResult out;
  out.m = m;
  out.n = n;
  out.k = n;
  out.s.resize(n);
  out.u.assign(m * n, cd(0, 0));
  out.vh.assign(n * n, cd(0, 0));
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t src = order[c];
    const double sv = norms[src];
    out.s[c] = sv;
    if (sv > 0) {
      for (std::size_t r = 0; r < m; ++r) out.u[r * n + c] = g[src][r] / sv;
    }
    for (std::size_t j = 0; j < n; ++j) {
      out.vh[c * n + j] = std::conj(v[src][j]);
    }
  }
  return out;
}

}  // namespace

SvdResult svd_complex(const cd* a, std::size_t m, std::size_t n) {
  QGEAR_EXPECTS(m > 0 && n > 0);
  if (m >= n) return svd_tall(a, m, n);
  // Wide matrix: SVD of A^H (n×m, tall) gives A^H = U' S V'^H, so
  // A = V' S U'^H — swap factors back.
  std::vector<cd> ah(n * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      ah[c * m + r] = std::conj(a[r * n + c]);
    }
  }
  const SvdResult t = svd_tall(ah.data(), n, m);
  SvdResult out;
  out.m = m;
  out.n = n;
  out.k = t.k;  // == m
  out.s = t.s;
  out.u.assign(m * out.k, cd(0, 0));
  out.vh.assign(out.k * n, cd(0, 0));
  // U = V' (from t.vh rows, conjugated), Vh = U'^H (from t.u, conjugated).
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < out.k; ++c) {
      out.u[r * out.k + c] = std::conj(t.vh[c * m + r]);
    }
  }
  for (std::size_t c = 0; c < out.k; ++c) {
    for (std::size_t j = 0; j < n; ++j) {
      out.vh[c * n + j] = std::conj(t.u[j * t.k + c]);
    }
  }
  return out;
}

std::size_t truncation_rank(const std::vector<double>& s, double cutoff,
                            std::size_t max_rank) {
  QGEAR_EXPECTS(!s.empty());
  double total = 0;
  for (double sv : s) total += sv * sv;
  std::size_t k = s.size();
  if (total > 0) {
    if (cutoff > 0) {
      // Drop the largest tail whose squared weight stays within cutoff.
      double discarded = 0;
      while (k > 1) {
        const double sv2 = s[k - 1] * s[k - 1];
        if (discarded + sv2 > cutoff * total) break;
        discarded += sv2;
        --k;
      }
    } else {
      while (k > 1 && s[k - 1] <= 0) --k;
    }
  } else {
    k = 1;
  }
  if (max_rank > 0) k = std::min(k, max_rank);
  return k;
}

}  // namespace qgear::sim
