// Shot sampling from final state vectors.
//
// Sampling uses Walker's alias method: O(2^n) table construction, O(1) per
// shot — the right trade for the paper's QCrank workloads, which draw up
// to 98M shots from one state (Table 2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/sim/state.hpp"

namespace qgear::sim {

/// Walker alias sampler over an arbitrary (unnormalized) weight vector.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index with probability weight[i] / sum(weights).
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint64_t> alias_;
};

/// Histogram of measurement outcomes keyed by the packed bit-string of the
/// measured qubits (bit j of the key = value of measured_qubits[j]).
using Counts = std::map<std::uint64_t, std::uint64_t>;

/// Samples `shots` outcomes of the given qubits from `state`.
/// `measured_qubits` in ascending significance order; duplicates are not
/// allowed. If empty, all qubits are measured.
template <typename T>
Counts sample_counts(const StateVector<T>& state,
                     std::vector<unsigned> measured_qubits,
                     std::uint64_t shots, Rng& rng);

/// Per-qubit expectation of measuring |1> (diagnostics and QCrank decode).
template <typename T>
std::vector<double> qubit_one_probabilities(const StateVector<T>& state);

extern template Counts sample_counts<float>(const StateVector<float>&,
                                            std::vector<unsigned>,
                                            std::uint64_t, Rng&);
extern template Counts sample_counts<double>(const StateVector<double>&,
                                             std::vector<unsigned>,
                                             std::uint64_t, Rng&);
extern template std::vector<double> qubit_one_probabilities<float>(
    const StateVector<float>&);
extern template std::vector<double> qubit_one_probabilities<double>(
    const StateVector<double>&);

}  // namespace qgear::sim
