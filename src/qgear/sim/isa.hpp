// Runtime CPU-feature detection and kernel ISA selection.
//
// The amplitude-sweep kernels exist in one portable scalar variant plus
// vectorized variants (SSE2, AVX2+FMA on x86). The active variant is
// chosen once at startup from cpuid, can be pinned via the QGEAR_ISA
// environment variable (scalar|sse2|avx2|auto), and can be switched
// programmatically for tests. Requests for an ISA the host cannot run are
// clamped down to the best supported one, so QGEAR_ISA never crashes a
// binary — it only ever slows it down.
#pragma once

#include <string>

namespace qgear::sim {

/// Kernel instruction-set variants, ordered weakest to strongest.
enum class Isa : int {
  scalar = 0,  ///< portable C++, the correctness baseline
  sse2 = 1,    ///< 128-bit vectors (x86-64 baseline)
  avx2 = 2,    ///< 256-bit vectors + FMA
};

inline constexpr int kNumIsas = 3;

/// Short lowercase name ("scalar", "sse2", "avx2").
const char* isa_name(Isa isa);

/// Parses an ISA name (as accepted by QGEAR_ISA, minus "auto").
/// Returns false on unknown input.
bool parse_isa(const std::string& name, Isa* out);

/// Strongest ISA this host can execute (cpuid-derived; scalar off-x86).
Isa best_supported_isa();

/// True if the host can execute kernels built for `isa`.
bool isa_supported(Isa isa);

/// The ISA the dispatched kernels currently use. First call resolves
/// QGEAR_ISA (unset/"auto" means best_supported_isa(); unsupported or
/// unknown values are clamped/ignored with a warning).
Isa active_isa();

/// Forces the active ISA (clamped to best_supported_isa()); returns the
/// ISA actually applied. Intended for tests and calibration — do not call
/// concurrently with running sweeps.
Isa set_active_isa(Isa isa);

}  // namespace qgear::sim
