// SSE2 kernel variant: 128-bit vectors, 1 complex double or 2 complex
// floats per register. SSE2 has neither FMA nor addsub, so the complex
// multiply emulates addsub by flipping the sign of the real lanes of the
// cross term (XOR with -0.0 in the even slots) before a plain add.
//
// Compiled with -msse2 when the toolchain accepts it; on x86-64 the
// baseline already implies SSE2 so this mostly exercises the dispatch
// path and gives a deterministic non-FMA reference on AVX2 hosts.
#include "qgear/sim/kernel_table.hpp"
#include "qgear/sim/kernels_scalar.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "qgear/sim/kernels_vec.ipp"

namespace qgear::sim {
namespace {

struct VecD {
  __m128d v;
  static constexpr int lanes = 1;

  struct Const {
    __m128d re, im;
  };

  static VecD load(const std::complex<double>* p) {
    return {_mm_loadu_pd(reinterpret_cast<const double*>(p))};
  }
  void store(std::complex<double>* p) const {
    _mm_storeu_pd(reinterpret_cast<double*>(p), v);
  }
  static VecD zero() { return {_mm_setzero_pd()}; }
  VecD add(VecD o) const { return {_mm_add_pd(v, o.v)}; }

  static Const cbroadcast(std::complex<double> c) {
    return {_mm_set1_pd(c.real()), _mm_set1_pd(c.imag())};
  }
  __m128d swapped() const { return _mm_shuffle_pd(v, v, 0x1); }
  // addsub(a, b) = (a0 - b0, a1 + b1): flip sign of b's real lane, add.
  static __m128d addsub(__m128d a, __m128d b) {
    return _mm_add_pd(a, _mm_xor_pd(b, _mm_set_pd(0.0, -0.0)));
  }
  VecD mul(Const c) const {
    return {addsub(_mm_mul_pd(v, c.re), _mm_mul_pd(swapped(), c.im))};
  }
  VecD fmadd(Const c, VecD acc) const {
    return {_mm_add_pd(acc.v, mul(c).v)};
  }
  VecD cmul(VecD o) const {
    const __m128d b_re = _mm_shuffle_pd(o.v, o.v, 0x0);
    const __m128d b_im = _mm_shuffle_pd(o.v, o.v, 0x3);
    return {addsub(_mm_mul_pd(v, b_re), _mm_mul_pd(swapped(), b_im))};
  }
};

struct VecF {
  __m128 v;
  static constexpr int lanes = 2;

  struct Const {
    __m128 re, im;
  };

  static VecF load(const std::complex<float>* p) {
    return {_mm_loadu_ps(reinterpret_cast<const float*>(p))};
  }
  void store(std::complex<float>* p) const {
    _mm_storeu_ps(reinterpret_cast<float*>(p), v);
  }
  static VecF zero() { return {_mm_setzero_ps()}; }
  VecF add(VecF o) const { return {_mm_add_ps(v, o.v)}; }

  static Const cbroadcast(std::complex<float> c) {
    return {_mm_set1_ps(c.real()), _mm_set1_ps(c.imag())};
  }
  __m128 swapped() const {
    return _mm_shuffle_ps(v, v, _MM_SHUFFLE(2, 3, 0, 1));
  }
  static __m128 addsub(__m128 a, __m128 b) {
    return _mm_add_ps(a, _mm_xor_ps(b, _mm_set_ps(0.0f, -0.0f, 0.0f, -0.0f)));
  }
  VecF mul(Const c) const {
    return {addsub(_mm_mul_ps(v, c.re), _mm_mul_ps(swapped(), c.im))};
  }
  VecF fmadd(Const c, VecF acc) const {
    return {_mm_add_ps(acc.v, mul(c).v)};
  }
  VecF cmul(VecF o) const {
    const __m128 b_re = _mm_shuffle_ps(o.v, o.v, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128 b_im = _mm_shuffle_ps(o.v, o.v, _MM_SHUFFLE(3, 3, 1, 1));
    return {addsub(_mm_mul_ps(v, b_re), _mm_mul_ps(swapped(), b_im))};
  }
};

using KD = VecKernels<VecD, double>;
using KF = VecKernels<VecF, float>;

}  // namespace

namespace detail {

const KernelTable<double>& sse2_table_d() {
  static const KernelTable<double> t = {
      KD::apply_1q,           KD::apply_1q_diagonal,
      KD::apply_x,            KD::apply_controlled_1q,
      KD::apply_cx,           KD::apply_phase_mask,
      KD::apply_swap,         KD::apply_2q_dense,
      KD::apply_multi_dense,  KD::apply_multi_diag,
      scalar::apply_multi_permutation<double>};
  return t;
}

const KernelTable<float>& sse2_table_f() {
  static const KernelTable<float> t = {
      KF::apply_1q,           KF::apply_1q_diagonal,
      KF::apply_x,            KF::apply_controlled_1q,
      KF::apply_cx,           KF::apply_phase_mask,
      KF::apply_swap,         KF::apply_2q_dense,
      KF::apply_multi_dense,  KF::apply_multi_diag,
      scalar::apply_multi_permutation<float>};
  return t;
}

}  // namespace detail
}  // namespace qgear::sim

#else  // no SSE2 at compile time: alias the scalar table

namespace qgear::sim::detail {

const KernelTable<double>& sse2_table_d() {
  static const KernelTable<double> t = scalar::make_scalar_table<double>();
  return t;
}

const KernelTable<float>& sse2_table_f() {
  static const KernelTable<float> t = scalar::make_scalar_table<float>();
  return t;
}

}  // namespace qgear::sim::detail

#endif
