// Execution statistics reported by engines; consumed by the performance
// model for calibration and by benches for reporting.
#pragma once

#include <cstdint>
#include <string>

#include "qgear/obs/metrics.hpp"
#include "qgear/obs/perfcount.hpp"

namespace qgear::sim {

struct EngineStats {
  std::uint64_t gates = 0;        ///< input instructions applied
  std::uint64_t sweeps = 0;       ///< amplitude-array passes performed
  std::uint64_t fused_blocks = 0; ///< fused unitaries applied (fused engine)
  std::uint64_t diag_blocks = 0;  ///< blocks routed to the diagonal kernel
  std::uint64_t perm_blocks = 0;  ///< blocks routed to the permutation kernel
  std::uint64_t dense_blocks = 0; ///< blocks routed to the dense kernel
  std::uint64_t amp_ops = 0;      ///< total amplitude read-modify-writes
  std::uint64_t dd_nodes = 0;     ///< peak live DD nodes (dd engine)
  std::uint64_t mps_max_bond = 0; ///< peak bond dimension (mps engine)
  double truncation_error = 0.0;  ///< accumulated discarded weight (mps)
  double seconds = 0.0;           ///< accumulated wall-clock across runs
  /// Hardware-counter sample covering the engine's sweeps. `valid` only
  /// when perf counters were enabled *and* the kernel granted the group
  /// (obs::PerfCounters::supported()); zeros otherwise.
  obs::PerfSample perf;

  void reset() { *this = EngineStats{}; }

  /// Accumulates another run's stats (per-rank merges, repeated run()
  /// calls, batch totals). `seconds` adds, like every other field.
  EngineStats& operator+=(const EngineStats& o) {
    gates += o.gates;
    sweeps += o.sweeps;
    fused_blocks += o.fused_blocks;
    diag_blocks += o.diag_blocks;
    perm_blocks += o.perm_blocks;
    dense_blocks += o.dense_blocks;
    amp_ops += o.amp_ops;
    // Peak gauges merge by max (a batch's peak is the largest run's peak);
    // truncation error is additive like every other accumulator.
    if (o.dd_nodes > dd_nodes) dd_nodes = o.dd_nodes;
    if (o.mps_max_bond > mps_max_bond) mps_max_bond = o.mps_max_bond;
    truncation_error += o.truncation_error;
    seconds += o.seconds;
    perf += o.perf;
    return *this;
  }
};

inline EngineStats operator+(EngineStats a, const EngineStats& b) {
  return a += b;
}

/// Folds a stats struct into registry counters/gauges under `prefix`
/// (e.g. "engine.gates"), so metrics exports carry the same numbers the
/// engines report. Call once per finished run.
inline void fold_stats(obs::Registry& reg, const EngineStats& s,
                       const std::string& prefix = "engine") {
  reg.counter(prefix + ".gates").add(s.gates);
  reg.counter(prefix + ".sweeps").add(s.sweeps);
  reg.counter(prefix + ".fused_blocks").add(s.fused_blocks);
  reg.counter(prefix + ".diag_blocks").add(s.diag_blocks);
  reg.counter(prefix + ".perm_blocks").add(s.perm_blocks);
  reg.counter(prefix + ".dense_blocks").add(s.dense_blocks);
  reg.counter(prefix + ".amp_ops").add(s.amp_ops);
  if (s.dd_nodes > 0) reg.gauge(prefix + ".dd_nodes").set(double(s.dd_nodes));
  if (s.mps_max_bond > 0) {
    reg.gauge(prefix + ".mps_max_bond").set(double(s.mps_max_bond));
  }
  if (s.truncation_error > 0) {
    reg.gauge(prefix + ".truncation_error").add(s.truncation_error);
  }
  reg.gauge(prefix + ".seconds").add(s.seconds);
  if (s.perf.valid) {
    reg.counter(prefix + ".perf_cycles").add(s.perf.cycles);
    reg.counter(prefix + ".perf_instructions").add(s.perf.instructions);
    reg.counter(prefix + ".perf_cache_misses").add(s.perf.cache_misses);
  }
}

}  // namespace qgear::sim
