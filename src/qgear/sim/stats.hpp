// Execution statistics reported by engines; consumed by the performance
// model for calibration and by benches for reporting.
#pragma once

#include <cstdint>

namespace qgear::sim {

struct EngineStats {
  std::uint64_t gates = 0;        ///< input instructions applied
  std::uint64_t sweeps = 0;       ///< amplitude-array passes performed
  std::uint64_t fused_blocks = 0; ///< fused unitaries applied (fused engine)
  std::uint64_t amp_ops = 0;      ///< total amplitude read-modify-writes
  double seconds = 0.0;           ///< wall-clock of the last run

  void reset() { *this = EngineStats{}; }
};

}  // namespace qgear::sim
