// Pluggable simulation backend interface.
//
// One API over genuinely different simulation paradigms: dense
// statevector (reference, fused), decision diagram (dd), matrix product
// state (mps), and — when qgear_dist registers it — the distributed
// statevector (dist). Callers pick an engine per workload instead of
// being welded to the 2^n statevector wall:
//
//   auto be = sim::Backend::create("dd");     // or Backend::default_name()
//   be->init_state(50);
//   be->apply_circuit(ghz50);
//   auto counts = be->sample({}, 1000, rng);
//
// The registry maps names to factories; `QGEAR_BACKEND` overrides the
// default name so whole test suites re-run against another engine
// without code changes. `memory_estimate` is the admission currency of
// qgear::serve — each backend prices a circuit in the bytes *it* would
// need, which is what lets a 50-qubit GHZ job through on a laptop when
// the statevector price would be 16 PiB.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/common/thread_pool.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/dd.hpp"
#include "qgear/sim/fusion.hpp"
#include "qgear/sim/mps.hpp"
#include "qgear/sim/observable.hpp"
#include "qgear/sim/sampler.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::sim {

/// Union of per-engine knobs; each backend reads only its own fields.
struct BackendOptions {
  ThreadPool* pool = nullptr;  ///< statevector sweep parallelism
  FusionOptions fusion;        ///< fused engine planning knobs
  DdEngine::Options dd;        ///< decision-diagram node budget
  MpsEngine::Options mps;      ///< truncation cutoff / bond cap
  unsigned dist_ranks = 0;     ///< dist backend: SPMD ranks (0 = auto)
  unsigned dist_threads_per_rank = 1;  ///< dist backend: rank parallelism
  /// Statevector backends (reference, fused) run single precision when
  /// set: half the memory, roughly half the sweep traffic, ~1e-7
  /// per-gate rounding instead of ~1e-16. dd/mps ignore it (their
  /// numerics are double and their error is structural: node budget /
  /// SVD truncation). qgear::route owns the decision of when fp32 is
  /// acceptable (accuracy budget) — see docs/AUTOTUNER.md.
  bool fp32 = false;
};

/// Abstract simulation engine. Lifecycle: init_state -> apply_circuit
/// (repeatable; circuits compose) -> sample / expectation. A second
/// init_state discards the state and starts over.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  virtual void init_state(unsigned num_qubits) = 0;
  virtual unsigned num_qubits() const = 0;

  /// Applies all instructions in order. Measure targets append to
  /// `measured` (no collapse — identical to the engines' semantics).
  virtual void apply_circuit(const qiskit::QuantumCircuit& qc,
                             std::vector<unsigned>* measured = nullptr) = 0;

  /// Samples `shots` outcomes of `measured_qubits` (strictly ascending;
  /// empty = all qubits). Key convention matches sample_counts: bit j of
  /// the key is the value of measured_qubits[j].
  virtual Counts sample(const std::vector<unsigned>& measured_qubits,
                        std::uint64_t shots, Rng& rng) = 0;

  virtual double expectation(const PauliTerm& term) = 0;
  /// Default: sum of per-term expectations.
  virtual double expectation(const Observable& obs);

  /// Resident bytes this backend would need to run `qc`, under this
  /// instance's options. THE admission-control currency for serve:
  /// statevector backends price 2^n amplitudes, dd prices its node
  /// budget, mps prices structure-bounded bond dimensions.
  virtual std::uint64_t memory_estimate(
      const qiskit::QuantumCircuit& qc) const = 0;

  virtual const EngineStats& stats() const = 0;
  virtual void reset_stats() = 0;

  // ---- registry ------------------------------------------------------

  using Factory =
      std::function<std::unique_ptr<Backend>(const BackendOptions&)>;

  /// Registers (or replaces) a named factory. The four in-process
  /// engines (reference, fused, dd, mps) are pre-registered; libraries
  /// layered above qgear_sim (e.g. qgear_dist) add theirs explicitly.
  static void register_backend(const std::string& name, Factory factory);

  /// Instantiates a registered backend. Throws InvalidArgument for
  /// unknown names (message lists what is available).
  static std::unique_ptr<Backend> create(const std::string& name,
                                         const BackendOptions& opts = {});

  /// Registered names, sorted.
  static std::vector<std::string> available();
  static bool is_registered(const std::string& name);

  /// The `QGEAR_BACKEND` environment override, or "fused" when unset —
  /// how test suites re-run engine-agnostic suites per backend. An
  /// unregistered override warns once and falls back to "fused" so a
  /// typo degrades the run instead of aborting every create() call.
  static std::string default_name();

  /// Convenience: create(name, opts)->memory_estimate(qc).
  static std::uint64_t memory_estimate_for(const std::string& name,
                                           const qiskit::QuantumCircuit& qc,
                                           const BackendOptions& opts = {});
};

}  // namespace qgear::sim
