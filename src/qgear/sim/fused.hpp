// Fused state-vector engine — the "Cuda-Q on GPU" analogue.
//
// Executes a FusionPlan: one blocked amplitude sweep per fused unitary,
// with diagonal blocks taking a multiply-only fast path and sweeps
// parallelized over a thread pool (the SM/warp stand-in). Combined with
// the memory-bandwidth term in perfmodel/, this reproduces the mechanism
// behind the paper's GPU speedups.
#pragma once

#include "qgear/common/timer.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/fusion.hpp"
#include "qgear/sim/kernels.hpp"
#include "qgear/sim/state.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::sim {

/// Applies one fused block via its cheapest kernel: diagonal blocks use
/// the multiply-only sweep, permutation blocks (X/CX/SWAP runs) the
/// O(2^m)-per-group shuffle, everything else the dense matvec. Shared by
/// the fused engine and the distributed engine's local fusion path.
template <typename T>
void apply_fused_block(std::complex<T>* amps, unsigned num_qubits,
                       const FusedBlock& block, ThreadPool* pool = nullptr) {
  switch (block.kernel_class) {
    case KernelClass::diagonal:
      apply_multi_diag(amps, num_qubits, block.qubits, block.diag, pool);
      return;
    case KernelClass::permutation:
      apply_multi_permutation(amps, num_qubits, block.qubits, block.perm,
                              block.phases, pool);
      return;
    case KernelClass::dense:
      break;
  }
  apply_multi(amps, num_qubits, block.qubits, block.matrix, pool);
}

template <typename T>
class FusedEngine {
 public:
  struct Options {
    FusionOptions fusion;       ///< fusion width / thresholds
    ThreadPool* pool = nullptr; ///< sweep parallelism
  };

  explicit FusedEngine(Options opts = {}) : opts_(opts) {}

  /// Plans fusion for `qc` and applies the blocks to `state`.
  /// Measured qubits are appended to `measured` (if provided).
  void apply(const qiskit::QuantumCircuit& qc, StateVector<T>& state,
             std::vector<unsigned>* measured = nullptr) {
    QGEAR_CHECK_ARG(qc.num_qubits() == state.num_qubits(),
                    "engine: circuit and state qubit counts differ");
    FusionPlan plan;
    {
      obs::Span fuse_span(obs::Tracer::global(), "fuse", "sim");
      plan = plan_fusion(qc, opts_.fusion);
      if (fuse_span.active()) {
        fuse_span.arg("input_gates", std::uint64_t{plan.input_gates});
        fuse_span.arg("blocks", std::uint64_t{plan.blocks.size()});
      }
    }
    apply_plan(plan, state);
    if (measured != nullptr) {
      measured->insert(measured->end(), plan.measured.begin(),
                       plan.measured.end());
    }
  }

  /// Applies a pre-computed plan (lets callers amortize planning).
  void apply_plan(const FusionPlan& plan, StateVector<T>& state) {
    obs::Tracer& tracer = obs::Tracer::global();
    obs::Span sweep_span(tracer, "sweep", "sim");
    // Hardware counters (when obs::PerfCounters::set_enabled) cover the
    // whole sweep loop; the sample folds into stats_.perf on scope exit.
    obs::PerfScope perf_scope(&stats_.perf);
    const EngineStats before = stats_;
    WallTimer timer;
    for (const FusedBlock& block : plan.blocks) {
      obs::Span block_span(tracer, "fused_block", "sim");
      if (block_span.active()) {
        block_span.arg("width", std::uint64_t{block.qubits.size()});
        block_span.arg("gates", block.source_gates);
        block_span.arg("kernel", kernel_class_name(block.kernel_class));
      }
      apply_fused_block(state.data(), state.num_qubits(), block, opts_.pool);
      switch (block.kernel_class) {
        case KernelClass::diagonal:
          ++stats_.diag_blocks;
          break;
        case KernelClass::permutation:
          ++stats_.perm_blocks;
          break;
        case KernelClass::dense:
          ++stats_.dense_blocks;
          break;
      }
      ++stats_.sweeps;
      ++stats_.fused_blocks;
      stats_.amp_ops += state.size();
      stats_.gates += block.source_gates;
    }
    stats_.seconds += timer.seconds();

    auto& reg = obs::Registry::global();
    reg.counter("sim.gates").add(stats_.gates - before.gates);
    reg.counter("sim.sweeps").add(stats_.sweeps - before.sweeps);
    reg.counter("sim.fused_blocks").add(stats_.fused_blocks -
                                        before.fused_blocks);
    reg.counter("sim.diag_blocks").add(stats_.diag_blocks -
                                       before.diag_blocks);
    reg.counter("sim.perm_blocks").add(stats_.perm_blocks -
                                       before.perm_blocks);
    reg.counter("sim.dense_blocks").add(stats_.dense_blocks -
                                        before.dense_blocks);
    reg.counter("sim.amp_ops").add(stats_.amp_ops - before.amp_ops);
    if (sweep_span.active()) {
      sweep_span.arg("blocks", std::uint64_t{plan.blocks.size()});
      sweep_span.arg("qubits", std::uint64_t{state.num_qubits()});
    }
  }

  /// Runs `qc` from |0...0> and returns the final state.
  StateVector<T> run(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured = nullptr) {
    StateVector<T> state(qc.num_qubits());
    apply(qc, state, measured);
    return state;
  }

  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  Options opts_;
  EngineStats stats_;
};

}  // namespace qgear::sim
