#include "qgear/sim/cmat.hpp"

#include <algorithm>
#include <cmath>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::sim {

CMat::CMat(std::uint64_t dim) : dim_(dim), a_(dim * dim) {
  QGEAR_EXPECTS(is_pow2(dim));
}

CMat CMat::identity(std::uint64_t dim) {
  CMat m(dim);
  for (std::uint64_t i = 0; i < dim; ++i) m.at(i, i) = 1.0;
  return m;
}

CMat CMat::mul(const CMat& rhs) const {
  QGEAR_EXPECTS(dim_ == rhs.dim_);
  CMat out(dim_);
  for (std::uint64_t r = 0; r < dim_; ++r) {
    for (std::uint64_t k = 0; k < dim_; ++k) {
      const std::complex<double> lv = at(r, k);
      if (lv == std::complex<double>(0, 0)) continue;
      for (std::uint64_t c = 0; c < dim_; ++c) {
        out.at(r, c) += lv * rhs.at(k, c);
      }
    }
  }
  return out;
}

double CMat::max_diff(const CMat& rhs) const {
  QGEAR_EXPECTS(dim_ == rhs.dim_);
  double worst = 0;
  for (std::uint64_t i = 0; i < dim_ * dim_; ++i) {
    worst = std::max(worst, std::abs(a_[i] - rhs.a_[i]));
  }
  return worst;
}

bool CMat::is_diagonal(double tol) const {
  for (std::uint64_t r = 0; r < dim_; ++r) {
    for (std::uint64_t c = 0; c < dim_; ++c) {
      if (r != c && std::abs(at(r, c)) > tol) return false;
    }
  }
  return true;
}

bool CMat::is_permutation(double tol, std::vector<std::uint32_t>* perm,
                          std::vector<std::complex<double>>* phases) const {
  std::vector<std::uint32_t> p(dim_);
  std::vector<std::complex<double>> ph(dim_);
  std::vector<bool> row_used(dim_, false);
  for (std::uint64_t c = 0; c < dim_; ++c) {
    std::uint64_t hit_row = dim_;
    for (std::uint64_t r = 0; r < dim_; ++r) {
      const double mag = std::abs(at(r, c));
      if (mag <= tol) continue;
      // A second non-zero in this column, or a non-unit entry, disqualifies.
      if (hit_row != dim_ || std::abs(mag - 1.0) > tol) return false;
      hit_row = r;
    }
    if (hit_row == dim_ || row_used[hit_row]) return false;
    row_used[hit_row] = true;
    p[c] = static_cast<std::uint32_t>(hit_row);
    ph[c] = at(hit_row, c);
  }
  if (perm != nullptr) *perm = std::move(p);
  if (phases != nullptr) *phases = std::move(ph);
  return true;
}

bool CMat::is_unitary(double tol) const {
  // Check U * U^dagger == I.
  for (std::uint64_t r = 0; r < dim_; ++r) {
    for (std::uint64_t c = 0; c < dim_; ++c) {
      std::complex<double> acc(0, 0);
      for (std::uint64_t k = 0; k < dim_; ++k) {
        acc += at(r, k) * std::conj(at(c, k));
      }
      const std::complex<double> expected = r == c ? 1.0 : 0.0;
      if (std::abs(acc - expected) > tol) return false;
    }
  }
  return true;
}

std::vector<unsigned> instruction_qubits(const qiskit::Instruction& inst) {
  const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
  QGEAR_CHECK_ARG(info.unitary, "instruction_qubits: not a unitary gate");
  if (info.num_qubits == 1) return {static_cast<unsigned>(inst.q0)};
  std::vector<unsigned> qs = {static_cast<unsigned>(inst.q0),
                              static_cast<unsigned>(inst.q1)};
  std::sort(qs.begin(), qs.end());
  return qs;
}

CMat instruction_matrix(const qiskit::Instruction& inst) {
  using qiskit::GateKind;
  const qiskit::GateInfo& info = qiskit::gate_info(inst.kind);
  QGEAR_CHECK_ARG(info.unitary, "instruction_matrix: not a unitary gate");

  if (info.num_qubits == 1) {
    const qiskit::Mat2 g = qiskit::gate_matrix_1q(inst.kind, inst.param);
    CMat m(2);
    m.at(0, 0) = g[0];
    m.at(0, 1) = g[1];
    m.at(1, 0) = g[2];
    m.at(1, 1) = g[3];
    return m;
  }

  CMat m = CMat::identity(4);
  if (inst.kind == GateKind::swap) {
    // Permutation |01> <-> |10> in the local (ascending-qubit) basis.
    m.at(1, 1) = 0;
    m.at(2, 2) = 0;
    m.at(1, 2) = 1;
    m.at(2, 1) = 1;
    return m;
  }

  // Controlled gate: local bit position of the control/target depends on
  // the qubit ordering within the ascending pair.
  const qiskit::Mat2 g = qiskit::controlled_target_matrix(inst.kind,
                                                          inst.param);
  const unsigned control_bit = inst.q0 < inst.q1 ? 0 : 1;
  const unsigned target_bit = 1 - control_bit;
  for (std::uint64_t r = 0; r < 4; ++r) m.at(r, r) = 0;
  for (std::uint64_t col = 0; col < 4; ++col) {
    if (!test_bit(col, control_bit)) {
      m.at(col, col) = 1.0;  // control 0: identity
      continue;
    }
    const std::uint64_t col_t = test_bit(col, target_bit) ? 1 : 0;
    // Column `col` maps into rows with the same control bit and either
    // target value, weighted by g.
    const std::uint64_t row0 = clear_bit(col, target_bit);
    const std::uint64_t row1 = set_bit(col, target_bit);
    m.at(row0, col) = g[0 * 2 + col_t];
    m.at(row1, col) = g[1 * 2 + col_t];
  }
  return m;
}

CMat embed(const CMat& src, const std::vector<unsigned>& src_qubits,
           const std::vector<unsigned>& dst_qubits) {
  const unsigned m_src = static_cast<unsigned>(src_qubits.size());
  const unsigned m_dst = static_cast<unsigned>(dst_qubits.size());
  QGEAR_EXPECTS(src.dim() == pow2(m_src));
  QGEAR_EXPECTS(m_dst >= m_src);

  // Local bit position of each src qubit within dst.
  std::vector<unsigned> src_pos(m_src);
  for (unsigned j = 0; j < m_src; ++j) {
    const auto it = std::lower_bound(dst_qubits.begin(), dst_qubits.end(),
                                     src_qubits[j]);
    QGEAR_EXPECTS(it != dst_qubits.end() && *it == src_qubits[j]);
    src_pos[j] = static_cast<unsigned>(it - dst_qubits.begin());
  }
  // Dst bit positions not covered by src (identity qubits).
  std::vector<unsigned> rest_pos;
  for (unsigned j = 0; j < m_dst; ++j) {
    if (std::find(src_pos.begin(), src_pos.end(), j) == src_pos.end()) {
      rest_pos.push_back(j);
    }
  }

  const std::uint64_t src_dim = pow2(m_src);
  const std::uint64_t rest_dim = pow2(m_dst - m_src);
  CMat out(pow2(m_dst));
  for (std::uint64_t rest = 0; rest < rest_dim; ++rest) {
    const std::uint64_t rest_bits =
        deposit_bits(rest, rest_pos.data(),
                     static_cast<unsigned>(rest_pos.size()));
    for (std::uint64_t r = 0; r < src_dim; ++r) {
      const std::uint64_t row =
          rest_bits | deposit_bits(r, src_pos.data(), m_src);
      for (std::uint64_t c = 0; c < src_dim; ++c) {
        const std::uint64_t col =
            rest_bits | deposit_bits(c, src_pos.data(), m_src);
        out.at(row, col) = src.at(r, c);
      }
    }
  }
  return out;
}

}  // namespace qgear::sim
