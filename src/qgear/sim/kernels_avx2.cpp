// AVX2+FMA kernel variant: 256-bit vectors, 2 complex doubles or 4
// complex floats per register, interleaved re/im layout. Complex multiply
// uses the fmaddsub/fmsubadd idiom (see docs/KERNELS.md); a fused
// multiply-accumulate of `acc + a*c` costs two FMAs and one in-lane
// shuffle, no separate add.
//
// This TU is compiled with -mavx2 -mfma when the toolchain accepts those
// flags; otherwise the #else branch exports the scalar table so dispatch
// degrades gracefully on non-x86 targets.
#include "qgear/sim/kernel_table.hpp"
#include "qgear/sim/kernels_scalar.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "qgear/sim/kernels_vec.ipp"

namespace qgear::sim {
namespace {

struct VecD {
  __m256d v;
  static constexpr int lanes = 2;

  struct Const {
    __m256d re, im;
  };

  static VecD load(const std::complex<double>* p) {
    return {_mm256_loadu_pd(reinterpret_cast<const double*>(p))};
  }
  void store(std::complex<double>* p) const {
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
  }
  static VecD zero() { return {_mm256_setzero_pd()}; }
  VecD add(VecD o) const { return {_mm256_add_pd(v, o.v)}; }

  static Const cbroadcast(std::complex<double> c) {
    return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
  }
  __m256d swapped() const { return _mm256_permute_pd(v, 0x5); }
  VecD mul(Const c) const {
    return {_mm256_fmaddsub_pd(v, c.re, _mm256_mul_pd(swapped(), c.im))};
  }
  // acc + this*c: the inner fmaddsub leaves (a_im*c_im - acc_re,
  // a_re*c_im + acc_im); the outer one restores both signs.
  VecD fmadd(Const c, VecD acc) const {
    return {_mm256_fmaddsub_pd(v, c.re,
                               _mm256_fmaddsub_pd(swapped(), c.im, acc.v))};
  }
  VecD cmul(VecD o) const {
    const __m256d b_re = _mm256_movedup_pd(o.v);
    const __m256d b_im = _mm256_permute_pd(o.v, 0xF);
    return {_mm256_fmaddsub_pd(v, b_re, _mm256_mul_pd(swapped(), b_im))};
  }
};

struct VecF {
  __m256 v;
  static constexpr int lanes = 4;

  struct Const {
    __m256 re, im;
  };

  static VecF load(const std::complex<float>* p) {
    return {_mm256_loadu_ps(reinterpret_cast<const float*>(p))};
  }
  void store(std::complex<float>* p) const {
    _mm256_storeu_ps(reinterpret_cast<float*>(p), v);
  }
  static VecF zero() { return {_mm256_setzero_ps()}; }
  VecF add(VecF o) const { return {_mm256_add_ps(v, o.v)}; }

  static Const cbroadcast(std::complex<float> c) {
    return {_mm256_set1_ps(c.real()), _mm256_set1_ps(c.imag())};
  }
  __m256 swapped() const { return _mm256_permute_ps(v, 0xB1); }
  VecF mul(Const c) const {
    return {_mm256_fmaddsub_ps(v, c.re, _mm256_mul_ps(swapped(), c.im))};
  }
  VecF fmadd(Const c, VecF acc) const {
    return {_mm256_fmaddsub_ps(v, c.re,
                               _mm256_fmaddsub_ps(swapped(), c.im, acc.v))};
  }
  VecF cmul(VecF o) const {
    const __m256 b_re = _mm256_moveldup_ps(o.v);
    const __m256 b_im = _mm256_movehdup_ps(o.v);
    return {_mm256_fmaddsub_ps(v, b_re, _mm256_mul_ps(swapped(), b_im))};
  }
};

using KD = VecKernels<VecD, double>;
using KF = VecKernels<VecF, float>;

}  // namespace

namespace detail {

const KernelTable<double>& avx2_table_d() {
  static const KernelTable<double> t = {
      KD::apply_1q,           KD::apply_1q_diagonal,
      KD::apply_x,            KD::apply_controlled_1q,
      KD::apply_cx,           KD::apply_phase_mask,
      KD::apply_swap,         KD::apply_2q_dense,
      KD::apply_multi_dense,  KD::apply_multi_diag,
      scalar::apply_multi_permutation<double>};
  return t;
}

const KernelTable<float>& avx2_table_f() {
  static const KernelTable<float> t = {
      KF::apply_1q,           KF::apply_1q_diagonal,
      KF::apply_x,            KF::apply_controlled_1q,
      KF::apply_cx,           KF::apply_phase_mask,
      KF::apply_swap,         KF::apply_2q_dense,
      KF::apply_multi_dense,  KF::apply_multi_diag,
      scalar::apply_multi_permutation<float>};
  return t;
}

}  // namespace detail
}  // namespace qgear::sim

#else  // no AVX2 at compile time: alias the scalar table

namespace qgear::sim::detail {

const KernelTable<double>& avx2_table_d() {
  static const KernelTable<double> t = scalar::make_scalar_table<double>();
  return t;
}

const KernelTable<float>& avx2_table_f() {
  static const KernelTable<float> t = scalar::make_scalar_table<float>();
  return t;
}

}  // namespace qgear::sim::detail

#endif
