#include "qgear/sim/sampler.hpp"

#include <algorithm>
#include <numeric>

#include "qgear/common/bits.hpp"
#include "qgear/common/error.hpp"

namespace qgear::sim {

AliasSampler::AliasSampler(const std::vector<double>& weights)
    : prob_(weights.size()), alias_(weights.size()) {
  QGEAR_CHECK_ARG(!weights.empty(), "sampler: empty weight vector");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  QGEAR_CHECK_ARG(total > 0, "sampler: weights sum to zero");

  const std::uint64_t n = weights.size();
  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    QGEAR_CHECK_ARG(weights[i] >= 0, "sampler: negative weight");
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::uint64_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::uint64_t s = small.back();
    small.pop_back();
    const std::uint64_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (numerical drift): probability 1, self-alias.
  for (std::uint64_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint64_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint64_t AliasSampler::sample(Rng& rng) const {
  const std::uint64_t i = rng.uniform_u64(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

template <typename T>
Counts sample_counts(const StateVector<T>& state,
                     std::vector<unsigned> measured_qubits,
                     std::uint64_t shots, Rng& rng) {
  if (measured_qubits.empty()) {
    measured_qubits.resize(state.num_qubits());
    std::iota(measured_qubits.begin(), measured_qubits.end(), 0u);
  }
  std::vector<unsigned> sorted = measured_qubits;
  std::sort(sorted.begin(), sorted.end());
  QGEAR_CHECK_ARG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "sampler: duplicate measured qubit");
  QGEAR_CHECK_ARG(sorted.back() < state.num_qubits(),
                  "sampler: measured qubit out of range");

  std::vector<double> probs(state.size());
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    probs[i] = state.probability(i);
  }
  const AliasSampler sampler(probs);

  Counts counts;
  for (std::uint64_t s = 0; s < shots; ++s) {
    const std::uint64_t full = sampler.sample(rng);
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < measured_qubits.size(); ++j) {
      key |= static_cast<std::uint64_t>((full >> measured_qubits[j]) & 1u)
             << j;
    }
    ++counts[key];
  }
  return counts;
}

template <typename T>
std::vector<double> qubit_one_probabilities(const StateVector<T>& state) {
  std::vector<double> out(state.num_qubits(), 0.0);
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    const double p = state.probability(i);
    if (p == 0.0) continue;
    for (unsigned q = 0; q < state.num_qubits(); ++q) {
      if (test_bit(i, q)) out[q] += p;
    }
  }
  return out;
}

template Counts sample_counts<float>(const StateVector<float>&,
                                     std::vector<unsigned>, std::uint64_t,
                                     Rng&);
template Counts sample_counts<double>(const StateVector<double>&,
                                      std::vector<unsigned>, std::uint64_t,
                                      Rng&);
template std::vector<double> qubit_one_probabilities<float>(
    const StateVector<float>&);
template std::vector<double> qubit_one_probabilities<double>(
    const StateVector<double>&);

}  // namespace qgear::sim
