// Vectorized amplitude-sweep kernel bodies, shared by every SIMD TU.
//
// Included by kernels_sse2.cpp / kernels_avx2.cpp after they define their
// vector wrapper types. `V` abstracts a register of V::lanes interleaved
// std::complex<T> values:
//
//   static constexpr int lanes;                 // complex elements/vector
//   static V load(const std::complex<T>*);      // unaligned
//   void store(std::complex<T>*) const;         // unaligned
//   static V zero();
//   V add(V) const;
//   V cmul(V) const;                            // elementwise complex mul
//   using Const;                                // broadcast complex const
//   static Const cbroadcast(std::complex<T>);
//   V mul(Const) const;                         // this * c
//   V fmadd(Const, V acc) const;                // acc + this * c
//
// Layout strategy: every kernel decomposes its index space into maximal
// contiguous runs (the free low bits below the lowest touched qubit) and
// vectorizes inside each run, with scalar head/tail loops for runs shorter
// than one vector and for unaligned chunk boundaries handed out by the
// thread pool. Gates on qubits below log2(lanes) either use an in-register
// period pattern (diagonals) or fall back to the scalar loop (pair
// kernels), so results stay correct for every qubit position and any
// n >= 1.

#include "qgear/sim/kernels_common.hpp"
#include "qgear/sim/kernels_scalar.hpp"

namespace qgear::sim {

template <typename V, typename T>
struct VecKernels {
  using amp_t = std::complex<T>;
  using C = typename V::Const;
  static constexpr std::uint64_t kLanes = V::lanes;

  // ---- 2x2 on qubit q -------------------------------------------------
  static void apply_1q(amp_t* amps, unsigned num_qubits, unsigned q,
                       const qiskit::Mat2& gate, ThreadPool* pool) {
    const auto m = to_precision<T>(gate);
    const std::uint64_t pairs = pow2(num_qubits - 1);
    const std::uint64_t stride = pow2(q);
    if (stride < kLanes) {
      // Pair partner sits inside one vector; scalar is simpler and the
      // affected prefix of any real sweep is tiny.
      detail::for_range(pool, pairs,
                        [=](std::uint64_t begin, std::uint64_t end) {
                          pairs_scalar(amps, q, stride, m, begin, end);
                        });
      return;
    }
    const C c0 = V::cbroadcast(m[0]), c1 = V::cbroadcast(m[1]);
    const C c2 = V::cbroadcast(m[2]), c3 = V::cbroadcast(m[3]);
    detail::for_range(pool, pairs, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t in_run = k & (stride - 1);
        const std::uint64_t run = std::min(stride - in_run, end - k);
        amp_t* p0 = amps + insert_zero_bit(k, q);
        amp_t* p1 = p0 + stride;
        std::uint64_t v = 0;
        for (; v + kLanes <= run; v += kLanes) {
          const V a0 = V::load(p0 + v);
          const V a1 = V::load(p1 + v);
          a1.fmadd(c1, a0.mul(c0)).store(p0 + v);
          a1.fmadd(c3, a0.mul(c2)).store(p1 + v);
        }
        for (; v < run; ++v) {
          const amp_t a0 = p0[v];
          const amp_t a1 = p1[v];
          p0[v] = m[0] * a0 + m[1] * a1;
          p1[v] = m[2] * a0 + m[3] * a1;
        }
        k += run;
      }
    });
  }

  // ---- diagonal 2x2 on qubit q ----------------------------------------
  static void apply_1q_diagonal(amp_t* amps, unsigned num_qubits, unsigned q,
                                amp_t d0, amp_t d1, ThreadPool* pool) {
    const std::uint64_t total = pow2(num_qubits);
    const std::uint64_t stride = pow2(q);
    if (stride < kLanes) {
      // q below the vector width: the d0/d1 pattern has period
      // 2*stride <= lanes, so bake it into one pattern register.
      amp_t pat_buf[kLanes];
      for (std::uint64_t j = 0; j < kLanes; ++j) {
        pat_buf[j] = test_bit(j, q) ? d1 : d0;
      }
      const V pat = V::load(pat_buf);
      detail::for_range(pool, total,
                        [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t i = begin;
        for (; i < end && (i % kLanes) != 0; ++i) {
          amps[i] *= test_bit(i, q) ? d1 : d0;
        }
        for (; i + kLanes <= end; i += kLanes) {
          V::load(amps + i).cmul(pat).store(amps + i);
        }
        for (; i < end; ++i) amps[i] *= test_bit(i, q) ? d1 : d0;
      });
      return;
    }
    const C c0 = V::cbroadcast(d0), c1 = V::cbroadcast(d1);
    detail::for_range(pool, total, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t i = begin;
      while (i < end) {
        const std::uint64_t run = std::min(stride - (i & (stride - 1)),
                                           end - i);
        const bool hi = test_bit(i, q);
        mul_run(amps + i, run, hi ? c1 : c0, hi ? d1 : d0);
        i += run;
      }
    });
  }

  // ---- X on qubit q (permutation) -------------------------------------
  static void apply_x(amp_t* amps, unsigned num_qubits, unsigned q,
                      ThreadPool* pool) {
    const std::uint64_t pairs = pow2(num_qubits - 1);
    const std::uint64_t stride = pow2(q);
    detail::for_range(pool, pairs, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t in_run = k & (stride - 1);
        const std::uint64_t run = std::min(stride - in_run, end - k);
        amp_t* p0 = amps + insert_zero_bit(k, q);
        amp_t* p1 = p0 + stride;
        swap_runs(p0, p1, run);
        k += run;
      }
    });
  }

  // ---- controlled-U with control c, target t --------------------------
  static void apply_controlled_1q(amp_t* amps, unsigned num_qubits,
                                  unsigned control, unsigned target,
                                  const qiskit::Mat2& gate, ThreadPool* pool) {
    const auto m = to_precision<T>(gate);
    const unsigned lo = std::min(control, target);
    const unsigned hi = std::max(control, target);
    const std::uint64_t groups = pow2(num_qubits - 2);
    const std::uint64_t cbit = pow2(control);
    const std::uint64_t tbit = pow2(target);
    const std::uint64_t run_len = pow2(lo);
    if (run_len < kLanes) {
      detail::for_range(pool, groups,
                        [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t k = begin; k < end; ++k) {
          const std::uint64_t base = insert_two_zero_bits(k, lo, hi) | cbit;
          const amp_t a0 = amps[base];
          const amp_t a1 = amps[base | tbit];
          amps[base] = m[0] * a0 + m[1] * a1;
          amps[base | tbit] = m[2] * a0 + m[3] * a1;
        }
      });
      return;
    }
    const C c0 = V::cbroadcast(m[0]), c1 = V::cbroadcast(m[1]);
    const C c2 = V::cbroadcast(m[2]), c3 = V::cbroadcast(m[3]);
    detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t run =
            std::min(run_len - (k & (run_len - 1)), end - k);
        amp_t* p0 = amps + (insert_two_zero_bits(k, lo, hi) | cbit);
        amp_t* p1 = p0 + tbit;
        std::uint64_t v = 0;
        for (; v + kLanes <= run; v += kLanes) {
          const V a0 = V::load(p0 + v);
          const V a1 = V::load(p1 + v);
          a1.fmadd(c1, a0.mul(c0)).store(p0 + v);
          a1.fmadd(c3, a0.mul(c2)).store(p1 + v);
        }
        for (; v < run; ++v) {
          const amp_t a0 = p0[v];
          const amp_t a1 = p1[v];
          p0[v] = m[0] * a0 + m[1] * a1;
          p1[v] = m[2] * a0 + m[3] * a1;
        }
        k += run;
      }
    });
  }

  // ---- CX (permutation on the control=1 half) -------------------------
  static void apply_cx(amp_t* amps, unsigned num_qubits, unsigned control,
                       unsigned target, ThreadPool* pool) {
    const unsigned lo = std::min(control, target);
    const unsigned hi = std::max(control, target);
    const std::uint64_t groups = pow2(num_qubits - 2);
    const std::uint64_t cbit = pow2(control);
    const std::uint64_t tbit = pow2(target);
    const std::uint64_t run_len = pow2(lo);
    detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t run =
            std::min(run_len - (k & (run_len - 1)), end - k);
        amp_t* p0 = amps + (insert_two_zero_bits(k, lo, hi) | cbit);
        swap_runs(p0, p0 + tbit, run);
        k += run;
      }
    });
  }

  // ---- amps[i] *= phase where (i & mask) == mask ----------------------
  static void apply_phase_mask(amp_t* amps, unsigned num_qubits,
                               std::uint64_t mask, amp_t phase,
                               ThreadPool* pool) {
    unsigned bits[64];
    unsigned nbits = 0;
    for (unsigned b = 0; b < num_qubits; ++b) {
      if (test_bit(mask, b)) bits[nbits++] = b;
    }
    const std::uint64_t matches = pow2(num_qubits - nbits);
    const std::uint64_t run_len = nbits > 0 ? pow2(bits[0]) : matches;
    const unsigned nb = nbits;
    const C cp = V::cbroadcast(phase);
    detail::for_range(
        pool, matches,
        [=](std::uint64_t begin, std::uint64_t end) {
          std::uint64_t k = begin;
          while (k < end) {
            const std::uint64_t run =
                std::min(run_len - (k & (run_len - 1)), end - k);
            std::uint64_t i = k;
            for (unsigned b = 0; b < nb; ++b) {
              i = insert_zero_bit(i, bits[b]);
            }
            mul_run_c(amps + (i | mask), run, cp, phase);
            k += run;
          }
        });
  }

  // ---- SWAP of qubits a, b --------------------------------------------
  static void apply_swap(amp_t* amps, unsigned num_qubits, unsigned a,
                         unsigned b, ThreadPool* pool) {
    const unsigned lo = std::min(a, b);
    const unsigned hi = std::max(a, b);
    const std::uint64_t groups = pow2(num_qubits - 2);
    const std::uint64_t abit = pow2(a);
    const std::uint64_t bbit = pow2(b);
    const std::uint64_t run_len = pow2(lo);
    detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t run =
            std::min(run_len - (k & (run_len - 1)), end - k);
        const std::uint64_t base = insert_two_zero_bits(k, lo, hi);
        swap_runs(amps + (base | abit), amps + (base | bbit), run);
        k += run;
      }
    });
  }

  // ---- dense 4x4 over (q_lo, q_hi) ------------------------------------
  static void apply_2q_dense(amp_t* amps, unsigned num_qubits, unsigned q_lo,
                             unsigned q_hi,
                             const std::vector<std::complex<double>>& matrix,
                             ThreadPool* pool) {
    const std::uint64_t groups = pow2(num_qubits - 2);
    const std::uint64_t lo_bit = pow2(q_lo);
    const std::uint64_t hi_bit = pow2(q_hi);
    if (lo_bit < kLanes) {
      scalar::apply_2q_dense(amps, num_qubits, q_lo, q_hi, matrix, pool);
      return;
    }
    std::array<C, 16> c;
    std::array<std::complex<T>, 16> m;
    for (int i = 0; i < 16; ++i) {
      m[i] = std::complex<T>(matrix[i]);
      c[i] = V::cbroadcast(m[i]);
    }
    detail::for_range(pool, groups, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t k = begin;
      while (k < end) {
        const std::uint64_t run =
            std::min(lo_bit - (k & (lo_bit - 1)), end - k);
        amp_t* p0 = amps + insert_two_zero_bits(k, q_lo, q_hi);
        amp_t* p1 = p0 + lo_bit;
        amp_t* p2 = p0 + hi_bit;
        amp_t* p3 = p2 + lo_bit;
        std::uint64_t v = 0;
        for (; v + kLanes <= run; v += kLanes) {
          const V a0 = V::load(p0 + v), a1 = V::load(p1 + v);
          const V a2 = V::load(p2 + v), a3 = V::load(p3 + v);
          a3.fmadd(c[3], a2.fmadd(c[2], a1.fmadd(c[1], a0.mul(c[0]))))
              .store(p0 + v);
          a3.fmadd(c[7], a2.fmadd(c[6], a1.fmadd(c[5], a0.mul(c[4]))))
              .store(p1 + v);
          a3.fmadd(c[11], a2.fmadd(c[10], a1.fmadd(c[9], a0.mul(c[8]))))
              .store(p2 + v);
          a3.fmadd(c[15], a2.fmadd(c[14], a1.fmadd(c[13], a0.mul(c[12]))))
              .store(p3 + v);
        }
        for (; v < run; ++v) {
          const amp_t a0 = p0[v], a1 = p1[v], a2 = p2[v], a3 = p3[v];
          p0[v] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
          p1[v] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
          p2[v] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
          p3[v] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
        }
        k += run;
      }
    });
  }

  // ---- dense 2^m x 2^m, m >= 3 ----------------------------------------
  // Gather each group, then a matvec vectorized over matrix rows: the
  // matrix is transposed to column-major (padded to a lane multiple) so
  // row-blocks of the output accumulate with FMA against broadcast inputs.
  static void apply_multi_dense(amp_t* amps, unsigned num_qubits,
                                const std::vector<unsigned>& qubits,
                                const std::vector<std::complex<double>>& matrix,
                                ThreadPool* pool) {
    const unsigned m = static_cast<unsigned>(qubits.size());
    const std::uint64_t dim = pow2(m);
    const std::uint64_t dpad = (dim + kLanes - 1) / kLanes * kLanes;
    std::vector<amp_t> mt(dpad * dim, amp_t(0, 0));  // column-major, padded
    for (std::uint64_t r = 0; r < dim; ++r) {
      for (std::uint64_t c = 0; c < dim; ++c) {
        mt[c * dpad + r] = amp_t(matrix[r * dim + c]);
      }
    }
    std::vector<std::uint64_t> offsets(dim);
    for (std::uint64_t v = 0; v < dim; ++v) {
      offsets[v] = deposit_bits(v, qubits.data(), m);
    }
    const std::uint64_t groups = pow2(num_qubits - m);
    const auto* offs = offsets.data();
    const amp_t* mtp = mt.data();
    const unsigned* qp = qubits.data();
    detail::for_range(pool, groups,
                      [=](std::uint64_t begin, std::uint64_t end) {
      std::vector<amp_t> in(dim), out(dpad);
      std::vector<C> cin(dim);
      for (std::uint64_t g = begin; g < end; ++g) {
        std::uint64_t base = g;
        for (unsigned j = 0; j < m; ++j) {
          base = insert_zero_bit(base, qp[j]);
        }
        for (std::uint64_t v = 0; v < dim; ++v) {
          in[v] = amps[base + offs[v]];
          cin[v] = V::cbroadcast(in[v]);
        }
        for (std::uint64_t r = 0; r < dpad; r += kLanes) {
          V acc = V::load(mtp + r).mul(cin[0]);
          for (std::uint64_t c = 1; c < dim; ++c) {
            acc = V::load(mtp + c * dpad + r).fmadd(cin[c], acc);
          }
          acc.store(out.data() + r);
        }
        for (std::uint64_t v = 0; v < dim; ++v) {
          amps[base + offs[v]] = out[v];
        }
      }
    });
  }

  // ---- diagonal fused block -------------------------------------------
  static void apply_multi_diag(amp_t* amps, unsigned num_qubits,
                               const std::vector<unsigned>& qubits,
                               const std::vector<std::complex<double>>& diag,
                               ThreadPool* pool) {
    const unsigned m = static_cast<unsigned>(qubits.size());
    std::vector<amp_t> d(diag.size());
    for (std::uint64_t v = 0; v < diag.size(); ++v) {
      d[v] = amp_t(diag[v]);
    }
    const std::uint64_t total = pow2(num_qubits);
    const std::uint64_t run_len = pow2(qubits[0]);
    const amp_t* dptr = d.data();
    const unsigned* qptr = qubits.data();
    const auto local_index = [qptr, m](std::uint64_t i) {
      std::uint64_t v = 0;
      for (unsigned j = 0; j < m; ++j) {
        v |= static_cast<std::uint64_t>((i >> qptr[j]) & 1u) << j;
      }
      return v;
    };
    if (run_len >= kLanes) {
      // The factor is constant over each run of free low bits.
      detail::for_range(pool, total,
                        [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t i = begin;
        while (i < end) {
          const std::uint64_t run =
              std::min(run_len - (i & (run_len - 1)), end - i);
          const amp_t f = dptr[local_index(i)];
          mul_run_c(amps + i, run, V::cbroadcast(f), f);
          i += run;
        }
      });
      return;
    }
    // Mixed low/high qubits: gather per-lane factors, vector multiply.
    detail::for_range(pool, total, [=](std::uint64_t begin, std::uint64_t end) {
      std::uint64_t i = begin;
      for (; i < end && (i % kLanes) != 0; ++i) {
        amps[i] *= dptr[local_index(i)];
      }
      amp_t fbuf[kLanes];
      for (; i + kLanes <= end; i += kLanes) {
        for (std::uint64_t j = 0; j < kLanes; ++j) {
          fbuf[j] = dptr[local_index(i + j)];
        }
        V::load(amps + i).cmul(V::load(fbuf)).store(amps + i);
      }
      for (; i < end; ++i) amps[i] *= dptr[local_index(i)];
    });
  }

 private:
  static void pairs_scalar(amp_t* amps, unsigned q, std::uint64_t stride,
                           const std::array<amp_t, 4>& m, std::uint64_t begin,
                           std::uint64_t end) {
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      const std::uint64_t i1 = i0 | stride;
      const amp_t a0 = amps[i0];
      const amp_t a1 = amps[i1];
      amps[i0] = m[0] * a0 + m[1] * a1;
      amps[i1] = m[2] * a0 + m[3] * a1;
    }
  }

  /// p[0..len) *= c (vector) / f (scalar tail).
  static void mul_run_c(amp_t* p, std::uint64_t len, C c, amp_t f) {
    std::uint64_t v = 0;
    for (; v + kLanes <= len; v += kLanes) {
      V::load(p + v).mul(c).store(p + v);
    }
    for (; v < len; ++v) p[v] *= f;
  }

  static void mul_run(amp_t* p, std::uint64_t len, C c, amp_t f) {
    mul_run_c(p, len, c, f);
  }

  /// Exchanges p0[0..len) with p1[0..len).
  static void swap_runs(amp_t* p0, amp_t* p1, std::uint64_t len) {
    std::uint64_t v = 0;
    for (; v + kLanes <= len; v += kLanes) {
      const V a0 = V::load(p0 + v);
      const V a1 = V::load(p1 + v);
      a1.store(p0 + v);
      a0.store(p1 + v);
    }
    for (; v < len; ++v) std::swap(p0[v], p1[v]);
  }
};

}  // namespace qgear::sim
