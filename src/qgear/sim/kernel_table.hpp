// Per-ISA kernel dispatch table.
//
// Each ISA variant (scalar, sse2, avx2) fills one KernelTable<T> per
// precision with function pointers to its amplitude-sweep kernels. The
// public entry points in kernels.hpp fetch the table matching active_isa()
// on every call (one relaxed atomic load — negligible against a 2^n
// sweep), so QGEAR_ISA / set_active_isa() take effect immediately.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/qiskit/gates.hpp"
#include "qgear/sim/isa.hpp"

namespace qgear {
class ThreadPool;
}

namespace qgear::sim {

template <typename T>
struct KernelTable {
  void (*apply_1q)(std::complex<T>*, unsigned, unsigned, const qiskit::Mat2&,
                   ThreadPool*);
  void (*apply_1q_diagonal)(std::complex<T>*, unsigned, unsigned,
                            std::complex<T>, std::complex<T>, ThreadPool*);
  void (*apply_x)(std::complex<T>*, unsigned, unsigned, ThreadPool*);
  void (*apply_controlled_1q)(std::complex<T>*, unsigned, unsigned, unsigned,
                              const qiskit::Mat2&, ThreadPool*);
  void (*apply_cx)(std::complex<T>*, unsigned, unsigned, unsigned,
                   ThreadPool*);
  void (*apply_phase_mask)(std::complex<T>*, unsigned, std::uint64_t,
                           std::complex<T>, ThreadPool*);
  void (*apply_swap)(std::complex<T>*, unsigned, unsigned, unsigned,
                     ThreadPool*);
  void (*apply_2q_dense)(std::complex<T>*, unsigned, unsigned, unsigned,
                         const std::vector<std::complex<double>>&,
                         ThreadPool*);
  void (*apply_multi_dense)(std::complex<T>*, unsigned,
                            const std::vector<unsigned>&,
                            const std::vector<std::complex<double>>&,
                            ThreadPool*);
  void (*apply_multi_diag)(std::complex<T>*, unsigned,
                           const std::vector<unsigned>&,
                           const std::vector<std::complex<double>>&,
                           ThreadPool*);
  void (*apply_multi_permutation)(std::complex<T>*, unsigned,
                                  const std::vector<unsigned>&,
                                  const std::vector<std::uint32_t>&,
                                  const std::vector<std::complex<double>>&,
                                  ThreadPool*);
};

namespace detail {
// Defined by the per-ISA TUs (kernels_sse2.cpp / kernels_avx2.cpp); each
// returns the scalar table when that instruction set was not available at
// compile time (e.g. a non-x86 target).
const KernelTable<float>& sse2_table_f();
const KernelTable<double>& sse2_table_d();
const KernelTable<float>& avx2_table_f();
const KernelTable<double>& avx2_table_d();
}  // namespace detail

/// Table for a specific ISA (the scalar table when that ISA's kernels
/// were not compiled into this binary, e.g. avx2 on a non-x86 build).
template <typename T>
const KernelTable<T>& kernel_table_for(Isa isa);

/// Table matching active_isa() right now.
template <typename T>
const KernelTable<T>& active_kernels();

extern template const KernelTable<float>& kernel_table_for<float>(Isa);
extern template const KernelTable<double>& kernel_table_for<double>(Isa);
extern template const KernelTable<float>& active_kernels<float>();
extern template const KernelTable<double>& active_kernels<double>();

}  // namespace qgear::sim
