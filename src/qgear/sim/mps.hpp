// Matrix-product-state simulation engine.
//
// Represents the state as a chain of site tensors A_k of shape
// (chi_left, 2, chi_right), qubit k = site k (little-endian, matching the
// statevector engines). Entanglement across each cut is captured by the
// bond dimension chi; low-entanglement circuits (shallow brickwork, GHZ,
// QFT on structured inputs) keep chi small and simulate in memory linear
// in n — far past the 2^n statevector wall.
//
// Two-qubit gates contract the neighboring pair into a theta tensor,
// apply the 4x4 unitary, and split back via SVD. Singular values whose
// squared weight falls below `Options::cutoff` (as a fraction of the
// total) are discarded and the rest renormalized; the discarded weight
// accumulates in EngineStats::truncation_error, so cutoff = 0 is exact
// simulation. Non-adjacent pairs are routed through transient swap
// chains. The chain is kept in mixed canonical form (orthogonality
// center moved by exact SVDs) so each truncation is locally optimal.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/observable.hpp"
#include "qgear/sim/sampler.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::sim {

class MpsEngine {
 public:
  struct Options {
    /// Max fraction of squared Schmidt weight discarded per two-qubit
    /// SVD (0 = keep everything representable; exact simulation).
    double cutoff = 1e-12;
    /// Hard bond-dimension cap; 0 = unlimited. Gates that would exceed
    /// it truncate to the cap (recorded as truncation error).
    std::size_t max_bond = 256;
  };

  MpsEngine();
  explicit MpsEngine(Options opts);

  void init_state(unsigned num_qubits);
  unsigned num_qubits() const { return num_qubits_; }

  /// Applies all instructions in order; measure targets append to
  /// `measured`. Callable repeatedly — circuits compose.
  void apply(const qiskit::QuantumCircuit& qc,
             std::vector<unsigned>* measured = nullptr);

  /// Samples `shots` outcomes of `measured_qubits` (empty = all qubits,
  /// strictly ascending). Small registers (n <= 20) materialize the
  /// statevector and alias-sample; larger ones use perfect MPS sampling
  /// at O(n * chi^2) per shot.
  Counts sample(const std::vector<unsigned>& measured_qubits,
                std::uint64_t shots, Rng& rng);

  double expectation(const PauliTerm& term);
  double expectation(const Observable& obs);

  std::complex<double> amplitude(std::uint64_t index) const;
  double norm() const;

  /// Dense materialization (diagnostics/tests; requires n <= 20).
  std::vector<std::complex<double>> to_statevector() const;

  /// Largest bond dimension currently in the chain.
  std::size_t max_bond_dimension() const;

  /// Total squared Schmidt weight discarded so far (0 for exact runs).
  double truncation_error() const { return truncation_error_; }

  /// Resident bytes a circuit is expected to need: per-cut bond
  /// dimensions bounded by circuit structure (2q gates crossing the
  /// cut), physical dimension, and `opts.max_bond`.
  static std::uint64_t memory_estimate(const qiskit::QuantumCircuit& qc,
                                       const Options& opts);

  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  /// One site tensor, shape (chi_l, 2, chi_r), row-major:
  /// t[(l * 2 + s) * chi_r + r].
  struct Site {
    std::size_t chi_l = 1;
    std::size_t chi_r = 1;
    std::vector<std::complex<double>> t;
  };

  void canonize_to(unsigned k);
  void move_center_right();
  void move_center_left();
  void apply_1q(unsigned q, const std::complex<double>* u);
  /// Applies a 4x4 on sites (k, k+1); basis index 2*bit(k+1) + bit(k).
  void apply_adjacent_2q(unsigned k, const std::complex<double>* u,
                         double cutoff);
  void apply_2q(const qiskit::Instruction& inst);
  void note_bond(std::size_t chi);

  Options opts_;
  std::vector<Site> sites_;
  unsigned center_ = 0;  ///< orthogonality center site
  unsigned num_qubits_ = 0;
  double truncation_error_ = 0.0;
  EngineStats stats_;
};

}  // namespace qgear::sim
