// Dense complex SVD — the MPS engine's truncation primitive.
//
// One-sided Jacobi: numerically robust, dependency-free, and accurate to
// machine precision for the small bond-dimension matrices (≤ ~1k rows)
// the MPS two-qubit gate produces. Not tuned for large dense algebra.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace qgear::sim {

/// Result of svd_complex: A = U · diag(s) · Vh with U (m×k), Vh (k×n),
/// k = min(m, n), singular values sorted descending. U's columns and Vh's
/// rows are orthonormal.
struct SvdResult {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<std::complex<double>> u;   ///< m×k, row-major
  std::vector<double> s;                 ///< k singular values, descending
  std::vector<std::complex<double>> vh;  ///< k×n, row-major
};

/// Computes the thin SVD of the m×n row-major matrix `a`.
SvdResult svd_complex(const std::complex<double>* a, std::size_t m,
                      std::size_t n);

/// Picks the number of singular values to keep: the smallest k such that
/// the discarded squared weight sum(s[k:]^2) is at most `cutoff` times the
/// total squared weight (k >= 1; max_rank > 0 additionally caps k).
/// cutoff <= 0 keeps every nonzero singular value.
std::size_t truncation_rank(const std::vector<double>& s, double cutoff,
                            std::size_t max_rank);

}  // namespace qgear::sim
