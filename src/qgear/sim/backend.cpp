#include "qgear/sim/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>

#include "qgear/common/error.hpp"
#include "qgear/common/log.hpp"
#include "qgear/sim/fused.hpp"
#include "qgear/sim/reference.hpp"
#include "qgear/sim/state.hpp"

namespace qgear::sim {

namespace {

/// Bytes of a dense statevector at `amp_bytes` per amplitude,
/// saturating for large n.
std::uint64_t statevector_bytes(unsigned n, std::uint64_t amp_bytes) {
  if (n >= 60) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << n) * amp_bytes;
}

template <typename Engine, typename T>
class StateVectorBackend : public Backend {
 public:
  void init_state(unsigned num_qubits) override {
    state_.emplace(num_qubits);
  }
  unsigned num_qubits() const override {
    return state_ ? state_->num_qubits() : 0;
  }
  void apply_circuit(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured) override {
    require_state();
    engine_.apply(qc, *state_, measured);
  }
  Counts sample(const std::vector<unsigned>& measured_qubits,
                std::uint64_t shots, Rng& rng) override {
    require_state();
    return sample_counts(*state_, measured_qubits, shots, rng);
  }
  double expectation(const PauliTerm& term) override {
    require_state();
    return sim::expectation(*state_, term);
  }
  double expectation(const Observable& obs) override {
    require_state();
    return sim::expectation(*state_, obs);
  }
  std::uint64_t memory_estimate(
      const qiskit::QuantumCircuit& qc) const override {
    return statevector_bytes(qc.num_qubits(), sizeof(std::complex<T>));
  }
  const EngineStats& stats() const override { return engine_.stats(); }
  void reset_stats() override { engine_.reset_stats(); }

 protected:
  void require_state() const {
    QGEAR_CHECK_ARG(state_.has_value(),
                    "backend: init_state must precede use");
  }

  Engine engine_;
  std::optional<StateVector<T>> state_;
};

template <typename T>
class ReferenceBackend final
    : public StateVectorBackend<ReferenceEngine<T>, T> {
 public:
  explicit ReferenceBackend(const BackendOptions& o) {
    this->engine_ = ReferenceEngine<T>({o.pool});
  }
  std::string name() const override { return "reference"; }
};

template <typename T>
class FusedBackend final : public StateVectorBackend<FusedEngine<T>, T> {
 public:
  explicit FusedBackend(const BackendOptions& o) {
    this->engine_ = FusedEngine<T>({o.fusion, o.pool});
  }
  std::string name() const override { return "fused"; }
};

class DdBackend final : public Backend {
 public:
  explicit DdBackend(const BackendOptions& o) : opts_(o.dd), engine_(o.dd) {}
  std::string name() const override { return "dd"; }
  void init_state(unsigned num_qubits) override {
    engine_.init_state(num_qubits);
  }
  unsigned num_qubits() const override { return engine_.num_qubits(); }
  void apply_circuit(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured) override {
    engine_.apply(qc, measured);
  }
  Counts sample(const std::vector<unsigned>& measured_qubits,
                std::uint64_t shots, Rng& rng) override {
    return engine_.sample(measured_qubits, shots, rng);
  }
  double expectation(const PauliTerm& term) override {
    return engine_.expectation(term);
  }
  double expectation(const Observable& obs) override {
    return engine_.expectation(obs);
  }
  std::uint64_t memory_estimate(
      const qiskit::QuantumCircuit& qc) const override {
    return DdEngine::memory_estimate(qc, opts_.max_nodes);
  }
  const EngineStats& stats() const override { return engine_.stats(); }
  void reset_stats() override { engine_.reset_stats(); }

 private:
  DdEngine::Options opts_;
  DdEngine engine_;
};

class MpsBackend final : public Backend {
 public:
  explicit MpsBackend(const BackendOptions& o) : opts_(o.mps), engine_(o.mps) {}
  std::string name() const override { return "mps"; }
  void init_state(unsigned num_qubits) override {
    engine_.init_state(num_qubits);
  }
  unsigned num_qubits() const override { return engine_.num_qubits(); }
  void apply_circuit(const qiskit::QuantumCircuit& qc,
                     std::vector<unsigned>* measured) override {
    engine_.apply(qc, measured);
  }
  Counts sample(const std::vector<unsigned>& measured_qubits,
                std::uint64_t shots, Rng& rng) override {
    return engine_.sample(measured_qubits, shots, rng);
  }
  double expectation(const PauliTerm& term) override {
    return engine_.expectation(term);
  }
  double expectation(const Observable& obs) override {
    return engine_.expectation(obs);
  }
  std::uint64_t memory_estimate(
      const qiskit::QuantumCircuit& qc) const override {
    return MpsEngine::memory_estimate(qc, opts_);
  }
  const EngineStats& stats() const override { return engine_.stats(); }
  void reset_stats() override { engine_.reset_stats(); }

 private:
  MpsEngine::Options opts_;
  MpsEngine engine_;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Backend::Factory> factories;
};

Registry& registry() {
  static Registry r;
  return r;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.factories["reference"] = [](const BackendOptions& o) {
      return o.fp32 ? std::unique_ptr<Backend>(new ReferenceBackend<float>(o))
                    : std::unique_ptr<Backend>(new ReferenceBackend<double>(o));
    };
    r.factories["fused"] = [](const BackendOptions& o) {
      return o.fp32 ? std::unique_ptr<Backend>(new FusedBackend<float>(o))
                    : std::unique_ptr<Backend>(new FusedBackend<double>(o));
    };
    r.factories["dd"] = [](const BackendOptions& o) {
      return std::unique_ptr<Backend>(new DdBackend(o));
    };
    r.factories["mps"] = [](const BackendOptions& o) {
      return std::unique_ptr<Backend>(new MpsBackend(o));
    };
  });
}

}  // namespace

double Backend::expectation(const Observable& obs) {
  double acc = 0;
  for (const PauliTerm& term : obs.terms()) acc += expectation(term);
  return acc;
}

void Backend::register_backend(const std::string& name, Factory factory) {
  QGEAR_CHECK_ARG(!name.empty(), "backend: name must be non-empty");
  ensure_builtins();
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.factories[name] = std::move(factory);
}

std::unique_ptr<Backend> Backend::create(const std::string& name,
                                         const BackendOptions& opts) {
  ensure_builtins();
  Factory factory;
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      std::string names;
      for (const auto& [n, f] : r.factories) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      throw InvalidArgument("backend: unknown backend '" + name +
                            "' (available: " + names + ")");
    }
    factory = it->second;
  }
  return factory(opts);
}

std::vector<std::string> Backend::available() {
  ensure_builtins();
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [n, f] : r.factories) names.push_back(n);
  return names;  // std::map iteration is already sorted
}

bool Backend::is_registered(const std::string& name) {
  ensure_builtins();
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.factories.count(name) != 0;
}

std::string Backend::default_name() {
  const char* env = std::getenv("QGEAR_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    if (is_registered(env)) return env;
    log::warn(std::string("backend: QGEAR_BACKEND='") + env +
              "' is not registered; falling back to 'fused'");
    return "fused";
  }
  return "fused";
}

std::uint64_t Backend::memory_estimate_for(const std::string& name,
                                           const qiskit::QuantumCircuit& qc,
                                           const BackendOptions& opts) {
  return create(name, opts)->memory_estimate(qc);
}

}  // namespace qgear::sim
