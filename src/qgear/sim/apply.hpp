// Single-instruction dispatch onto the kernels — shared by the reference
// engine and the distributed engine's local-qubit path.
#pragma once

#include <complex>

#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/kernels.hpp"

namespace qgear::sim {

/// Applies one unitary instruction to an amplitude array holding all
/// `num_qubits` qubits. Measure records into `measured` (if non-null);
/// barrier is a no-op. Returns the number of amplitude sweeps performed.
template <typename T>
unsigned apply_instruction(std::complex<T>* amps, unsigned num_qubits,
                           const qiskit::Instruction& inst,
                           ThreadPool* pool = nullptr,
                           std::vector<unsigned>* measured = nullptr) {
  using qiskit::GateKind;
  switch (inst.kind) {
    case GateKind::barrier:
      return 0;
    case GateKind::measure:
      if (measured != nullptr) {
        measured->push_back(static_cast<unsigned>(inst.q0));
      }
      return 0;
    case GateKind::rz: {
      // Diagonal fast path.
      const std::complex<double> i(0, 1);
      const auto d0 = std::complex<T>(std::exp(-i * (inst.param / 2)));
      const auto d1 = std::complex<T>(std::exp(i * (inst.param / 2)));
      apply_1q_diagonal(amps, num_qubits, static_cast<unsigned>(inst.q0), d0,
                        d1, pool);
      return 1;
    }
    case GateKind::p: {
      const std::complex<double> i(0, 1);
      const auto d1 = std::complex<T>(std::exp(i * inst.param));
      apply_1q_diagonal(amps, num_qubits, static_cast<unsigned>(inst.q0),
                        std::complex<T>(1), d1, pool);
      return 1;
    }
    case GateKind::z:
      apply_1q_diagonal(amps, num_qubits, static_cast<unsigned>(inst.q0),
                        std::complex<T>(1), std::complex<T>(-1), pool);
      return 1;
    case GateKind::s:
      apply_1q_diagonal(amps, num_qubits, static_cast<unsigned>(inst.q0),
                        std::complex<T>(1), std::complex<T>(0, 1), pool);
      return 1;
    case GateKind::sdg:
      apply_1q_diagonal(amps, num_qubits, static_cast<unsigned>(inst.q0),
                        std::complex<T>(1), std::complex<T>(0, -1), pool);
      return 1;
    case GateKind::cz:
      apply_controlled_phase(amps, num_qubits,
                             static_cast<unsigned>(inst.q0),
                             static_cast<unsigned>(inst.q1),
                             std::complex<T>(-1), pool);
      return 1;
    case GateKind::cp: {
      const std::complex<double> i(0, 1);
      apply_controlled_phase(amps, num_qubits,
                             static_cast<unsigned>(inst.q0),
                             static_cast<unsigned>(inst.q1),
                             std::complex<T>(std::exp(i * inst.param)), pool);
      return 1;
    }
    case GateKind::x:
      // Permutation fast path: no multiplies at all.
      apply_x(amps, num_qubits, static_cast<unsigned>(inst.q0), pool);
      return 1;
    case GateKind::cx:
      apply_cx(amps, num_qubits, static_cast<unsigned>(inst.q0),
               static_cast<unsigned>(inst.q1), pool);
      return 1;
    case GateKind::swap:
      apply_swap(amps, num_qubits, static_cast<unsigned>(inst.q0),
                 static_cast<unsigned>(inst.q1), pool);
      return 1;
    default: {
      // Remaining single-qubit unitaries (h, y, t, tdg, rx, ry).
      apply_1q(amps, num_qubits, static_cast<unsigned>(inst.q0),
               qiskit::gate_matrix_1q(inst.kind, inst.param), pool);
      return 1;
    }
  }
}

}  // namespace qgear::sim
