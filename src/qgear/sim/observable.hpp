// Pauli-string observables and expectation values.
//
// The paper positions Q-Gear for variational quantum algorithms and
// hybrid quantum-classical workloads (Sec. 1), whose inner loop is
// expectation estimation <psi|H|psi> for H = sum_k c_k P_k with P_k
// tensor products of Pauli operators. This module provides exact
// (state-vector) and sampled (shot-based, with basis rotation) estimation.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "qgear/common/rng.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/state.hpp"

namespace qgear::sim {

enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/// One weighted Pauli string, e.g. 0.5 * X0 Z2.
struct PauliTerm {
  double coefficient = 1.0;
  /// op[q] = Pauli acting on qubit q; identity for qubits beyond size().
  std::vector<Pauli> ops;

  /// Parses "ZZ", "XIY", ... — leftmost char acts on the HIGHEST qubit
  /// (textbook order); "ZI" on 2 qubits means Z on qubit 1.
  static PauliTerm parse(const std::string& text, double coefficient = 1.0);

  std::string to_string() const;
  bool is_identity() const;
};

/// A Hermitian observable: sum of weighted Pauli strings.
class Observable {
 public:
  Observable() = default;
  explicit Observable(std::vector<PauliTerm> terms)
      : terms_(std::move(terms)) {}

  Observable& add(PauliTerm term);
  Observable& add(const std::string& paulis, double coefficient);

  const std::vector<PauliTerm>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }

  /// Transverse-field Ising Hamiltonian on a ring:
  /// H = -J sum Z_i Z_{i+1} - h sum X_i. The standard VQA testbed.
  static Observable ising_ring(unsigned num_qubits, double j, double h);

 private:
  std::vector<PauliTerm> terms_;
};

/// Exact expectation <psi|P|psi> of a single Pauli string.
template <typename T>
double expectation(const StateVector<T>& state, const PauliTerm& term);

/// Exact expectation of a full observable.
template <typename T>
double expectation(const StateVector<T>& state, const Observable& obs);

/// The measurement-basis change circuit for one Pauli string: after
/// appending it, measuring qubit q in Z estimates P_q. (H for X,
/// S^dagger H for Y.)
qiskit::QuantumCircuit basis_change_circuit(unsigned num_qubits,
                                            const PauliTerm& term);

/// Shot-based estimate of one Pauli term: rotates the basis, samples
/// `shots` outcomes, and averages the parity of the non-identity qubits.
template <typename T>
double sampled_expectation(const StateVector<T>& state,
                           const PauliTerm& term, std::uint64_t shots,
                           Rng& rng);

extern template double expectation<float>(const StateVector<float>&,
                                          const PauliTerm&);
extern template double expectation<double>(const StateVector<double>&,
                                           const PauliTerm&);
extern template double expectation<float>(const StateVector<float>&,
                                          const Observable&);
extern template double expectation<double>(const StateVector<double>&,
                                           const Observable&);
extern template double sampled_expectation<float>(const StateVector<float>&,
                                                  const PauliTerm&,
                                                  std::uint64_t, Rng&);
extern template double sampled_expectation<double>(
    const StateVector<double>&, const PauliTerm&, std::uint64_t, Rng&);

}  // namespace qgear::sim
