#include "qgear/sim/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "qgear/common/error.hpp"

namespace qgear::sim {

namespace {

// Mutable in-progress fused block.
struct Builder {
  std::vector<unsigned> qubits;  // ascending
  CMat matrix;
  std::uint64_t source_gates = 0;

  bool empty() const { return qubits.empty(); }

  void clear() {
    qubits.clear();
    matrix = CMat();
    source_gates = 0;
  }
};

void flush(Builder& b, FusionPlan& plan, double diag_tol) {
  if (b.empty()) return;
  FusedBlock block;
  block.qubits = b.qubits;
  // Classify most-specialized first: diagonal beats permutation (every
  // diagonal unitary is also a phased identity permutation) beats dense.
  if (b.matrix.is_diagonal(diag_tol)) {
    block.diagonal = true;
    block.kernel_class = KernelClass::diagonal;
    const std::uint64_t dim = b.matrix.dim();
    block.diag.resize(dim);
    for (std::uint64_t v = 0; v < dim; ++v) block.diag[v] = b.matrix.at(v, v);
  } else if (b.matrix.is_permutation(diag_tol, &block.perm, &block.phases)) {
    block.kernel_class = KernelClass::permutation;
  } else {
    block.kernel_class = KernelClass::dense;
  }
  block.matrix = std::move(b.matrix).take();
  block.source_gates = b.source_gates;
  plan.blocks.push_back(std::move(block));
  b.clear();
}

bool is_negligible_rotation(const qiskit::Instruction& inst,
                            double threshold) {
  using qiskit::GateKind;
  switch (inst.kind) {
    case GateKind::rx:
    case GateKind::ry:
    case GateKind::rz:
    case GateKind::p:
    case GateKind::cp:
      return std::abs(inst.param) < threshold;
    default:
      return false;
  }
}

}  // namespace

const char* kernel_class_name(KernelClass kc) {
  switch (kc) {
    case KernelClass::diagonal:
      return "diagonal";
    case KernelClass::permutation:
      return "permutation";
    case KernelClass::dense:
      break;
  }
  return "dense";
}

FusionPlan plan_fusion(const qiskit::QuantumCircuit& qc, FusionOptions opts) {
  QGEAR_CHECK_ARG(opts.max_width >= 1 && opts.max_width <= 10,
                  "fusion: max_width must be in [1, 10]");
  FusionPlan plan;
  Builder cur;

  for (const qiskit::Instruction& inst : qc.instructions()) {
    if (inst.kind == qiskit::GateKind::barrier) {
      flush(cur, plan, opts.diag_tol);
      continue;
    }
    if (inst.kind == qiskit::GateKind::measure) {
      flush(cur, plan, opts.diag_tol);
      plan.measured.push_back(static_cast<unsigned>(inst.q0));
      continue;
    }
    if (opts.angle_threshold > 0 &&
        is_negligible_rotation(inst, opts.angle_threshold)) {
      continue;  // approximated away
    }
    ++plan.input_gates;

    const std::vector<unsigned> gate_qubits = instruction_qubits(inst);

    // Union of current block qubits and the gate's qubits.
    std::vector<unsigned> merged;
    std::set_union(cur.qubits.begin(), cur.qubits.end(), gate_qubits.begin(),
                   gate_qubits.end(), std::back_inserter(merged));

    if (!cur.empty() && merged.size() > opts.max_width) {
      flush(cur, plan, opts.diag_tol);
      merged = gate_qubits;
    }

    const CMat gate_local = instruction_matrix(inst);
    const CMat gate_full = embed(gate_local, gate_qubits, merged);
    if (cur.empty()) {
      cur.qubits = merged;
      cur.matrix = gate_full;
    } else {
      // Later gates multiply from the left: state' = G * (U * state).
      const CMat prev_full = embed(cur.matrix, cur.qubits, merged);
      cur.matrix = gate_full.mul(prev_full);
      cur.qubits = std::move(merged);
    }
    ++cur.source_gates;
  }
  flush(cur, plan, opts.diag_tol);
  return plan;
}

}  // namespace qgear::sim
