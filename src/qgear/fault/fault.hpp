// Deterministic, seed-driven fault injection.
//
// A FaultPlan names per-site probabilities ("2% of chunked-exchange
// receives stall", "every 40th fused block throws OutOfMemoryBudget")
// and the FaultInjector evaluates them with a counter-keyed hash, so a
// given (seed, site, draw-index) always produces the same verdict no
// matter how threads interleave. Production code guards every hook with
// the inline `armed()` fast path — one relaxed atomic load when the
// injector is disarmed — so shipping the hooks costs nothing.
//
// Sites are wired into comm (chunk delay/drop), the ThreadPool (worker
// job abort), backend execution (synthetic OutOfMemoryBudget between
// fused blocks / gate chunks), and serve workers. The resilience
// machinery that survives these faults (retry/backoff, backend
// downgrade, comm re-send, segment checkpointing) lives next to the
// code it protects; see docs/RESILIENCE.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "qgear/common/error.hpp"

namespace qgear::fault {

/// Thrown by injection hooks that simulate a transient crash (worker
/// abort, serve-worker fault). Derives Error so generic handlers treat
/// it like any other recoverable failure.
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

/// Every place a fault can be injected. Keep site_name() and
/// site_from_name() in sync (both switches are exhaustive; the compiler
/// flags a missing entry).
enum class Site : unsigned {
  comm_delay = 0,  ///< stall a chunked-exchange data chunk
  comm_drop,       ///< drop a chunked-exchange data chunk
  pool_abort,      ///< abort a ThreadPool job (throws FaultInjected)
  backend_oom,     ///< synthetic OutOfMemoryBudget between fused blocks
  serve_worker,    ///< fault a serve worker mid-job (throws FaultInjected)
};
inline constexpr unsigned kNumSites = 5;

/// Canonical spec name, e.g. "comm.drop". Never returns "unknown".
const char* site_name(Site site);

/// Inverse of site_name(); nullopt for unrecognized names.
std::optional<Site> site_from_name(const std::string& name);

/// Per-site configuration.
struct SiteConfig {
  double probability = 0.0;       ///< chance each check fires, [0, 1]
  std::uint64_t max_triggers = 0; ///< cap on fires; 0 = unlimited
  std::uint64_t delay_us = 200;   ///< stall length for comm_delay
};

/// A full plan: seed + per-site configs. Round-trips through the spec
/// string format:
///
///   seed=7;comm.drop=0.05;comm.delay=0.1:3@500;backend.oom=0.02
///
/// Entries are `;`-separated. `seed=N` sets the seed; every other entry
/// is `<site>=<probability>[:<max_triggers>][@<delay_us>]`.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::array<SiteConfig, kNumSites> sites{};

  const SiteConfig& site(Site s) const {
    return sites[static_cast<unsigned>(s)];
  }
  SiteConfig& site(Site s) { return sites[static_cast<unsigned>(s)]; }

  /// True when any site has a nonzero probability.
  bool any() const;

  /// Parses the spec format above. Throws InvalidArgument on bad specs.
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string (parse(to_string()) round-trips).
  std::string to_string() const;

  /// Reads QGEAR_FAULT_PLAN; nullopt when unset or empty.
  static std::optional<FaultPlan> from_env();
};

/// Process-wide injector. Disarmed by default; arm(plan) activates the
/// hooks. Verdicts are deterministic in (seed, site, draw index): the
/// k-th check at a site fires iff hash(seed, site, k) < probability.
class FaultInjector {
 public:
  static FaultInjector& global();

  void arm(const FaultPlan& plan);
  void disarm();

  /// Fast path for call sites: one relaxed load when disarmed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Draws the next verdict for `site`. Counts fault.checks and, on a
  /// fire, fault.injected.<site>. Only call when armed() (a disarmed
  /// injector returns false, but pays the counter cost).
  bool should_inject(Site site);

  /// Configured stall for comm_delay (µs).
  std::uint64_t delay_us(Site site) const;

  /// Fires so far at `site` (for tests and the chaos report).
  std::uint64_t triggered(Site site) const;

  /// Total fires across all sites since the last arm().
  std::uint64_t triggered_total() const;

  /// Copy of the active plan (default-constructed when disarmed).
  FaultPlan plan() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  // Plan fields are copied into flat arrays on arm() so should_inject
  // never takes a lock; probabilities are immutable while armed.
  std::array<std::atomic<double>, kNumSites> probability_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> max_triggers_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> delay_us_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> draws_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> fired_{};
  std::atomic<std::uint64_t> seed_{1};
};

/// `FaultInjector::global().armed() && ...should_inject(site)` in one
/// call — the shape every hook uses.
inline bool should_inject(Site site) {
  FaultInjector& fi = FaultInjector::global();
  return fi.armed() && fi.should_inject(site);
}

/// Sleeps for the site's configured delay when the draw fires.
/// Returns true when a delay was injected.
bool maybe_delay(Site site);

/// Throws FaultInjected tagged with the site name when the draw fires.
void maybe_throw(Site site, const char* where);

/// Throws OutOfMemoryBudget (the real exception backends raise) when
/// the backend_oom draw fires.
void maybe_throw_oom(const char* where);

/// RAII arm/disarm for tests and benches.
class ArmScope {
 public:
  explicit ArmScope(const FaultPlan& plan) {
    FaultInjector::global().arm(plan);
  }
  ~ArmScope() { FaultInjector::global().disarm(); }
  ArmScope(const ArmScope&) = delete;
  ArmScope& operator=(const ArmScope&) = delete;
};

}  // namespace qgear::fault
