#include "qgear/fault/fault.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "qgear/obs/metrics.hpp"

namespace qgear::fault {
namespace {

// splitmix64 — the standard 64-bit finalizer; good enough to decorrelate
// (seed, site, draw-index) triples into uniform verdicts.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash_to_unit(std::uint64_t h) {
  // Top 53 bits → double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

obs::Counter& injected_counter(Site site) {
  auto& reg = obs::Registry::global();
  static obs::Counter* counters[kNumSites] = {
      &reg.counter("fault.injected.comm.delay"),
      &reg.counter("fault.injected.comm.drop"),
      &reg.counter("fault.injected.pool.abort"),
      &reg.counter("fault.injected.backend.oom"),
      &reg.counter("fault.injected.serve.worker"),
  };
  return *counters[static_cast<unsigned>(site)];
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::comm_delay:
      return "comm.delay";
    case Site::comm_drop:
      return "comm.drop";
    case Site::pool_abort:
      return "pool.abort";
    case Site::backend_oom:
      return "backend.oom";
    case Site::serve_worker:
      return "serve.worker";
  }
  return "comm.delay";  // unreachable; switch above is exhaustive
}

std::optional<Site> site_from_name(const std::string& name) {
  for (unsigned i = 0; i < kNumSites; ++i) {
    const Site site = static_cast<Site>(i);
    if (name == site_name(site)) return site;
  }
  return std::nullopt;
}

bool FaultPlan::any() const {
  for (const SiteConfig& cfg : sites) {
    if (cfg.probability > 0.0) return true;
  }
  return false;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.front()))) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() &&
           std::isspace(static_cast<unsigned char>(entry.back()))) {
      entry.pop_back();
    }
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    QGEAR_CHECK_ARG(eq != std::string::npos && eq > 0,
                    "fault plan: entry '" + entry +
                        "' is not <site>=<probability> or seed=<n>");
    const std::string key = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);
    QGEAR_CHECK_ARG(!value.empty(),
                    "fault plan: entry '" + entry + "' has an empty value");

    if (key == "seed") {
      try {
        plan.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw InvalidArgument("fault plan: bad seed '" + value + "'");
      }
      continue;
    }

    const std::optional<Site> site = site_from_name(key);
    QGEAR_CHECK_ARG(site.has_value(),
                    "fault plan: unknown site '" + key + "'");
    SiteConfig& cfg = plan.site(*site);

    // value is <probability>[:<max_triggers>][@<delay_us>]
    const std::size_t at = value.find('@');
    if (at != std::string::npos) {
      const std::string delay = value.substr(at + 1);
      try {
        cfg.delay_us = std::stoull(delay);
      } catch (const std::exception&) {
        throw InvalidArgument("fault plan: bad delay '" + delay + "' in '" +
                              entry + "'");
      }
      value = value.substr(0, at);
    }
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
      const std::string cap = value.substr(colon + 1);
      try {
        cfg.max_triggers = std::stoull(cap);
      } catch (const std::exception&) {
        throw InvalidArgument("fault plan: bad trigger cap '" + cap +
                              "' in '" + entry + "'");
      }
      value = value.substr(0, colon);
    }
    try {
      cfg.probability = std::stod(value);
    } catch (const std::exception&) {
      throw InvalidArgument("fault plan: bad probability '" + value +
                            "' in '" + entry + "'");
    }
    QGEAR_CHECK_ARG(cfg.probability >= 0.0 && cfg.probability <= 1.0,
                    "fault plan: probability for '" + key +
                        "' must be in [0, 1]");
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (unsigned i = 0; i < kNumSites; ++i) {
    const Site site = static_cast<Site>(i);
    const SiteConfig& cfg = sites[i];
    if (cfg.probability <= 0.0) continue;
    out << ';' << site_name(site) << '=' << cfg.probability;
    if (cfg.max_triggers != 0) out << ':' << cfg.max_triggers;
    if (site == Site::comm_delay && cfg.delay_us != SiteConfig{}.delay_us) {
      out << '@' << cfg.delay_us;
    }
  }
  return out.str();
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* spec = std::getenv("QGEAR_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  // Publish the plan fields before flipping armed_: hooks that observe
  // armed_==true must see the new probabilities, and draw counters
  // restart so verdict sequences are reproducible per arm().
  armed_.store(false, std::memory_order_seq_cst);
  seed_.store(plan.seed, std::memory_order_relaxed);
  for (unsigned i = 0; i < kNumSites; ++i) {
    probability_[i].store(plan.sites[i].probability,
                          std::memory_order_relaxed);
    max_triggers_[i].store(plan.sites[i].max_triggers,
                           std::memory_order_relaxed);
    delay_us_[i].store(plan.sites[i].delay_us, std::memory_order_relaxed);
    draws_[i].store(0, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
  }
  armed_.store(plan.any(), std::memory_order_seq_cst);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_seq_cst);
}

bool FaultInjector::should_inject(Site site) {
  const unsigned idx = static_cast<unsigned>(site);
  static obs::Counter& checks = obs::Registry::global().counter("fault.checks");
  checks.add(1);
  if (!armed_.load(std::memory_order_relaxed)) return false;

  const double p = probability_[idx].load(std::memory_order_relaxed);
  if (p <= 0.0) return false;

  // Counter-keyed draw: the k-th check at this site gets verdict
  // hash(seed, site, k) < p, independent of thread interleaving.
  const std::uint64_t draw = draws_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seed = seed_.load(std::memory_order_relaxed);
  const std::uint64_t h =
      splitmix64(splitmix64(seed ^ (0x5151ULL * (idx + 1))) ^ draw);
  if (hash_to_unit(h) >= p) return false;

  const std::uint64_t cap = max_triggers_[idx].load(std::memory_order_relaxed);
  const std::uint64_t prior = fired_[idx].fetch_add(1, std::memory_order_relaxed);
  if (cap != 0 && prior >= cap) {
    fired_[idx].fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  injected_counter(site).add(1);
  return true;
}

std::uint64_t FaultInjector::delay_us(Site site) const {
  return delay_us_[static_cast<unsigned>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered(Site site) const {
  return fired_[static_cast<unsigned>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered_total() const {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kNumSites; ++i) {
    total += fired_[i].load(std::memory_order_relaxed);
  }
  return total;
}

FaultPlan FaultInjector::plan() const {
  FaultPlan plan;
  plan.seed = seed_.load(std::memory_order_relaxed);
  for (unsigned i = 0; i < kNumSites; ++i) {
    plan.sites[i].probability =
        probability_[i].load(std::memory_order_relaxed);
    plan.sites[i].max_triggers =
        max_triggers_[i].load(std::memory_order_relaxed);
    plan.sites[i].delay_us = delay_us_[i].load(std::memory_order_relaxed);
  }
  return plan;
}

bool maybe_delay(Site site) {
  FaultInjector& fi = FaultInjector::global();
  if (!fi.armed() || !fi.should_inject(site)) return false;
  std::this_thread::sleep_for(std::chrono::microseconds(fi.delay_us(site)));
  return true;
}

void maybe_throw(Site site, const char* where) {
  if (should_inject(site)) {
    throw FaultInjected(std::string("fault injected at ") + site_name(site) +
                        " (" + where + ")");
  }
}

void maybe_throw_oom(const char* where) {
  if (should_inject(Site::backend_oom)) {
    throw OutOfMemoryBudget(std::string("fault injected: synthetic "
                                        "OutOfMemoryBudget (") +
                            where + ")");
  }
}

}  // namespace qgear::fault
