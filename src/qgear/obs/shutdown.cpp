#include "qgear/obs/shutdown.hpp"

#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

namespace qgear::obs {

namespace {

std::mutex& flush_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<std::function<void()>>& callbacks() {
  static std::vector<std::function<void()>>* v =
      new std::vector<std::function<void()>>();
  return *v;
}

bool g_flushed = false;

}  // namespace

void on_shutdown_flush(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(flush_mutex());
  callbacks().push_back(std::move(fn));
}

bool flush_now() {
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(flush_mutex());
    if (g_flushed) return false;
    g_flushed = true;
    to_run = callbacks();
  }
  for (const auto& fn : to_run) {
    try {
      fn();
    } catch (...) {
      // A failed export must not abort the remaining flushes.
    }
  }
  return true;
}

void install_signal_flush() {
  static std::once_flag installed;
  std::call_once(installed, [] {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    // Block in the calling (main) thread; threads created afterwards
    // inherit the mask, so only the watcher ever sees these signals.
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread([set]() mutable {
      int sig = 0;
      if (sigwait(&set, &sig) != 0) return;
      std::fprintf(stderr, "qgear: caught %s, flushing telemetry\n",
                   sig == SIGINT ? "SIGINT" : "SIGTERM");
      flush_now();
      _exit(128 + sig);
    }).detach();
  });
}

}  // namespace qgear::obs
