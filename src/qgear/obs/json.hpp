// Minimal JSON value tree: enough to emit the observability exports
// (metrics snapshots, Chrome Trace Event files, JSON-lines logs) and to
// parse them back in tests. Objects preserve insertion order so exported
// files are stable across runs.
//
// Deliberately not a general-purpose JSON library: no comments, no
// streaming, numbers are doubles (integers up to 2^53 round-trip, which
// covers every counter and timestamp we export).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qgear/common/error.hpp"

namespace qgear::obs {

/// Escapes `s` for placement inside a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::null) {}
  JsonValue(bool b) : kind_(Kind::boolean), bool_(b) {}
  JsonValue(double n) : kind_(Kind::number), num_(n) {}
  JsonValue(std::int64_t n) : kind_(Kind::number), num_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n) : kind_(Kind::number), num_(static_cast<double>(n)) {}
  JsonValue(int n) : kind_(Kind::number), num_(n) {}
  JsonValue(unsigned n) : kind_(Kind::number), num_(n) {}
  JsonValue(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::string), str_(s) {}
  JsonValue(Array a) : kind_(Kind::array), array_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::object), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_object() const { return kind_ == Kind::object; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_number() const { return kind_ == Kind::number; }
  bool is_bool() const { return kind_ == Kind::boolean; }

  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const Array& array() const;
  const Object& object() const;
  Array& array();
  Object& object();

  /// Object member access; `at` throws FormatError when missing.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

  /// Appends a member (object) or element (array).
  void set(const std::string& key, JsonValue value);
  void push_back(JsonValue value);

  /// Serializes compactly (no whitespace).
  std::string dump() const;

  /// Parses a complete JSON document. Throws FormatError on any syntax
  /// error or trailing garbage.
  static JsonValue parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array array_;
  Object object_;
};

/// Writes `content` to `path`, replacing the file. Throws qgear::Error on
/// I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Reads the whole file. Throws qgear::Error when it cannot be opened.
std::string read_text_file(const std::string& path);

}  // namespace qgear::obs
