#include "qgear/obs/trace.hpp"

#include <cstdio>

#include "qgear/common/error.hpp"
#include "qgear/obs/context.hpp"
#include "qgear/obs/json.hpp"

namespace qgear::obs {

namespace {
thread_local std::uint32_t t_depth = 0;
}  // namespace

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {
  QGEAR_CHECK_ARG(capacity_ >= 1, "obs: tracer capacity must be >= 1");
}

void Tracer::record(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rec.seq = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[(total_ - 1) % capacity_] = std::move(rec);
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: oldest record sits right after the most recent write.
  const std::size_t head = total_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  total_ = 0;
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::string Tracer::to_trace_json(std::uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = snapshot();
  JsonValue events{JsonValue::Array{}};
  for (const SpanRecord& s : spans) {
    if (trace_id != 0 && s.trace_id != trace_id) continue;
    JsonValue args{JsonValue::Object{}};
    args.set("depth", static_cast<std::uint64_t>(s.depth));
    if (s.trace_id != 0) args.set("trace_id", trace_id_hex(s.trace_id));
    if (s.rank >= 0) args.set("rank", static_cast<std::uint64_t>(s.rank));
    for (const auto& [k, v] : s.args) args.set(k, v);
    JsonValue ev{JsonValue::Object{}};
    ev.set("name", s.name);
    ev.set("cat", s.cat);
    ev.set("ph", "X");
    ev.set("ts", s.start_us);
    ev.set("dur", s.dur_us);
    // One Chrome "process" lane per distributed rank; pid 1 is the
    // non-distributed (host process) lane.
    ev.set("pid", s.rank >= 0 ? s.rank + 2 : 1);
    ev.set("tid", static_cast<std::uint64_t>(s.tid));
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }
  JsonValue root{JsonValue::Object{}};
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  // Ring-buffer accounting: a trace with dropped > 0 is missing its oldest
  // spans and must not be read as complete.
  JsonValue other{JsonValue::Object{}};
  other.set("recorded", recorded());
  other.set("dropped", dropped());
  other.set("capacity", static_cast<std::uint64_t>(capacity()));
  if (trace_id != 0) other.set("trace_id", trace_id_hex(trace_id));
  root.set("otherData", std::move(other));
  return root.dump();
}

void Tracer::write_trace_json(const std::string& path,
                              std::uint64_t trace_id) const {
  write_text_file(path, to_trace_json(trace_id));
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may end
  return *tracer;                        // during static teardown
}

std::uint32_t Tracer::thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

void Span::init(Tracer& tracer, const char* name, const char* cat) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  rec_.name = name;
  rec_.cat = cat;
  rec_.tid = Tracer::thread_id();
  rec_.depth = t_depth++;
  const TraceContext& ctx = TraceContext::current();
  rec_.trace_id = ctx.trace_id;
  rec_.rank = ctx.rank;
  rec_.start_us = tracer.now_us();
}

Span::Span(Tracer& tracer, const char* name, const char* cat) {
  init(tracer, name, cat);
}

Span::Span(const char* name, const char* cat) {
  init(Tracer::global(), name, cat);
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  rec_.dur_us = tracer_->now_us() - rec_.start_us;
  --t_depth;
  tracer_->record(std::move(rec_));
}

void Span::arg(const char* key, const std::string& value) {
  if (tracer_ != nullptr) rec_.args.emplace_back(key, value);
}

void Span::arg(const char* key, const char* value) {
  if (tracer_ != nullptr) rec_.args.emplace_back(key, value);
}

void Span::arg(const char* key, std::uint64_t value) {
  if (tracer_ != nullptr) {
    rec_.args.emplace_back(key, std::to_string(value));
  }
}

void Span::arg(const char* key, double value) {
  if (tracer_ != nullptr) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    rec_.args.emplace_back(key, buf);
  }
}

}  // namespace qgear::obs
