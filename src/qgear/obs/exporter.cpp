#include "qgear/obs/exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "qgear/common/error.hpp"
#include "qgear/obs/context.hpp"
#include "qgear/obs/json.hpp"

namespace qgear::obs {

namespace {

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "qgear_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string to_prometheus_text(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = sanitize_metric_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = sanitize_metric_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = sanitize_metric_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.hist.buckets.size(); ++i) {
      cumulative += h.hist.buckets[i];
      const std::string le = i < h.hist.bounds.size()
                                 ? format_double(h.hist.bounds[i])
                                 : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + format_double(h.hist.sum) + "\n";
    out += name + "_count " + std::to_string(h.hist.count) + "\n";
  }
  return out;
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::start(const Options& opts) {
  QGEAR_CHECK_ARG(!running(), "obs: exporter already running");
  registry_ = opts.registry != nullptr ? opts.registry : &Registry::global();
  tracer_ = opts.tracer != nullptr ? opts.tracer : &Tracer::global();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("obs: socket() failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("obs: bad exporter host " + opts.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("obs: cannot listen on " + opts.host + ":" +
                std::to_string(opts.port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

HttpExporter::Response HttpExporter::handle(const std::string& target) const {
  std::string path = target;
  std::string query;
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus_text(registry_->snapshot())};
  }
  if (path == "/snapshot") {
    return {200, "application/json", registry_->snapshot().to_json()};
  }
  if (path == "/trace") {
    std::uint64_t trace_id = 0;
    const std::string key = "trace_id=";
    const std::size_t pos = query.find(key);
    if (pos != std::string::npos) {
      std::string value = query.substr(pos + key.size());
      const std::size_t amp = value.find('&');
      if (amp != std::string::npos) value = value.substr(0, amp);
      trace_id = parse_trace_id(value);
      if (trace_id == 0) {
        return {400, "text/plain", "bad trace_id\n"};
      }
    }
    return {200, "application/json", tracer_->to_trace_json(trace_id)};
  }
  if (path == "/healthz" || path == "/") {
    return {200, "text/plain", "ok\n"};
  }
  return {404, "text/plain", "not found\n"};
}

void HttpExporter::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    // One short request per connection; 4 KiB covers any GET we answer.
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      ::close(fd);
      continue;
    }
    buf[n] = '\0';
    std::string method;
    std::string target;
    {
      const std::string request(buf);
      const std::size_t sp1 = request.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        method = request.substr(0, sp1);
        target = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    Response resp;
    if (method != "GET") {
      resp = {405, "text/plain", "method not allowed\n"};
    } else {
      resp = handle(target);
    }
    const char* reason = resp.status == 200   ? "OK"
                         : resp.status == 400 ? "Bad Request"
                         : resp.status == 405 ? "Method Not Allowed"
                                              : "Not Found";
    std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                       reason + "\r\nContent-Type: " + resp.content_type +
                       "\r\nContent-Length: " +
                       std::to_string(resp.body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    head += resp.body;
    std::size_t sent = 0;
    while (sent < head.size()) {
      const ssize_t w = ::send(fd, head.data() + sent, head.size() - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      sent += static_cast<std::size_t>(w);
    }
    ::close(fd);
  }
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::start(const Options& opts) {
  QGEAR_CHECK_ARG(!opts.prefix.empty(), "obs: snapshot prefix required");
  QGEAR_CHECK_ARG(opts.period_s > 0, "obs: snapshot period must be > 0");
  QGEAR_CHECK_ARG(!started_, "obs: snapshot writer already started");
  opts_ = opts;
  if (opts_.registry == nullptr) opts_.registry = &Registry::global();
  if (opts_.tracer == nullptr) opts_.tracer = &Tracer::global();
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    // Sleep in short slices so stop() returns promptly.
    const auto slice = std::chrono::milliseconds(20);
    auto next = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts_.period_s));
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(slice);
      if (std::chrono::steady_clock::now() < next) continue;
      write_now();
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts_.period_s));
    }
  });
}

void SnapshotWriter::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  write_now();  // final snapshot: the exit dump, same path as the periodic
  started_ = false;
}

void SnapshotWriter::write_now() const {
  if (opts_.registry == nullptr) return;
  const RegistrySnapshot snap = opts_.registry->snapshot();
  const auto replace = [](const std::string& path,
                          const std::string& content) {
    const std::string tmp = path + ".tmp";
    write_text_file(tmp, content);
    std::rename(tmp.c_str(), path.c_str());
  };
  replace(opts_.prefix + ".metrics.json", snap.to_json());
  replace(opts_.prefix + ".prom", to_prometheus_text(snap));
  if (opts_.tracer->enabled() || opts_.tracer->recorded() > 0) {
    replace(opts_.prefix + ".trace.json", opts_.tracer->to_trace_json());
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace qgear::obs
