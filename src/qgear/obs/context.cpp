#include "qgear/obs/context.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace qgear::obs {

namespace {

thread_local TraceContext t_context;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext TraceContext::generate() {
  // Process-unique: a monotone counter mixed with the clock so ids from
  // different processes (e.g. two serve instances feeding one Prometheus)
  // almost surely differ. Never returns 0.
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t salt = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  TraceContext ctx;
  do {
    ctx.trace_id = splitmix64(salt ^ (next.fetch_add(1) << 32));
  } while (ctx.trace_id == 0);
  return ctx;
}

const TraceContext& TraceContext::current() { return t_context; }

std::string trace_id_hex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

std::uint64_t parse_trace_id(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return value;
}

ContextScope::ContextScope(const TraceContext& ctx) : prev_(t_context) {
  t_context = ctx;
}

ContextScope::~ContextScope() { t_context = prev_; }

}  // namespace qgear::obs
