// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with a consistent snapshot API and text/JSON exporters.
//
// Design goals, in order:
//   1. Lock-cheap updates — every increment/observe is a relaxed atomic op;
//      the registry mutex is only taken when a metric is first looked up by
//      name (callers cache the returned reference) and on snapshot/export.
//   2. Stable references — metrics are never deleted, so a `Counter&`
//      obtained once is valid for the life of the process. reset() zeroes
//      values but keeps registrations.
//   3. Snapshot isolation — snapshot() returns plain structs decoupled from
//      live metrics; later updates never mutate an existing snapshot.
//
// Instrumentation throughout qgear writes to Registry::global(); tests
// construct private registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qgear::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (also supports add() for
/// accumulating fractional quantities like seconds).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds, ascending
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
  };

  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  Snapshot snapshot() const;
  void reset();

  /// n ascending bounds start, start*factor, start*factor^2, ...
  static std::vector<double> exponential(double start, double factor,
                                         std::size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Histogram::Snapshot hist;
};

/// Point-in-time copy of every registered metric, name-sorted.
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* find_counter(const std::string& name) const;
  const GaugeSample* find_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;

  /// One "name value" line per metric (histograms: count/sum/min/max plus
  /// per-bucket lines), suitable for grep and diffing.
  std::string to_text() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Looks up or creates; the reference stays valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` are used only on first registration of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_time_bounds_us());

  RegistrySnapshot snapshot() const;

  /// Zeroes every metric; registrations (and references) survive.
  void reset();

  /// The registry qgear's built-in instrumentation writes to.
  static Registry& global();

  /// 1us..~100s exponential bounds — the default for latency histograms.
  static std::vector<double> default_time_bounds_us();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace qgear::obs
