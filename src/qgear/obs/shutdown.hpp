// Flush-on-signal support for the CLI tools: the metrics/trace files
// qgear_cli and qgear_serve write at clean exit are also written when the
// process is interrupted (SIGINT) or terminated (SIGTERM).
//
// Design: signal handlers cannot safely serialize JSON or take mutexes,
// so no export code runs in handler context. install_signal_flush()
// blocks SIGINT/SIGTERM in the whole process (the mask is inherited by
// every thread created afterwards — call it early in main) and starts a
// watcher thread parked in sigwait(). On delivery the watcher runs the
// registered flush callbacks as ordinary thread code — the exact export
// path used at clean shutdown — then _exit()s with the conventional
// 128+signo status. Callbacks run at most once process-wide: a clean exit
// that already flushed marks them done via flush_now().
#pragma once

#include <functional>

namespace qgear::obs {

/// Registers a callback to run once at flush time (signal or explicit
/// flush_now()). Callbacks run in registration order.
void on_shutdown_flush(std::function<void()> fn);

/// Blocks SIGINT/SIGTERM and starts the sigwait watcher thread.
/// Idempotent; call before spawning worker threads.
void install_signal_flush();

/// Runs the registered callbacks now (at most once process-wide; later
/// calls and a later signal are no-ops). Returns false when a previous
/// flush already ran.
bool flush_now();

}  // namespace qgear::obs
