#include "qgear/obs/perfdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "qgear/common/error.hpp"

namespace qgear::obs {

namespace {

struct Series {
  double value = 0.0;
  std::string kind;  // "time" (seconds) | "count" | "throughput"
};

using SeriesMap = std::map<std::string, Series>;

/// Deterministic-counter prefixes worth gating in a bench report. serve.*
/// and threadpool.* counters depend on scheduling races, hardware perf_*
/// counters are noisy by nature, and route.* counters track autotuner
/// decisions that legitimately shift with host calibration; all are
/// excluded.
bool deterministic_counter(const std::string& name) {
  if (name.find("perf_") != std::string::npos) return false;
  if (name.rfind("perf.", 0) == 0) return false;
  if (name.rfind("route.", 0) == 0) return false;
  // Chaos-run counters are nondeterministic by design and must never be
  // gated: fault.* tracks injected faults (probability × timing), and the
  // serve resilience counters (serve.retries, serve.degraded, ...) follow
  // them. serve.* is already outside the allowlist below except for the
  // serve.engine. work counters, but fault.* is called out explicitly so
  // a future allowlist edit cannot accidentally pull it in.
  if (name.rfind("fault.", 0) == 0) return false;
  if (name.rfind("serve.retries", 0) == 0) return false;
  if (name.rfind("serve.degraded", 0) == 0) return false;
  for (const char* prefix : {"sim.", "engine.", "dist.", "serve.engine."}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void extract_bench(const JsonValue& report, SeriesMap& out) {
  if (const JsonValue* stages = report.find("stages")) {
    for (const JsonValue& stage : stages->array()) {
      const std::string key = "stage:" + stage.at("name").str();
      // Repeated stages (loops) accumulate into one series.
      out[key].kind = "time";
      out[key].value += stage.at("wall_seconds").number();
    }
  }
  const JsonValue* metrics = report.find("metrics");
  const JsonValue* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object()) {
      if (!deterministic_counter(name)) continue;
      out["counter:" + name] = {value.number(), "count"};
    }
  }
}

void extract_serve(const JsonValue& report, SeriesMap& out) {
  if (const JsonValue* latency = report.find("latency")) {
    for (const auto& [component, summary] : latency->object()) {
      for (const char* pct : {"p50_us", "p95_us", "p99_us"}) {
        if (const JsonValue* v = summary.find(pct)) {
          out["latency:" + component + "." + pct] =
              {v->number() / 1e6, "time"};  // stored in seconds
        }
      }
    }
  }
  if (const JsonValue* tput = report.find("throughput_jobs_per_s")) {
    out["throughput_jobs_per_s"] = {tput->number(), "throughput"};
  }
}

void extract_dist(const JsonValue& report, SeriesMap& out) {
  for (const JsonValue& run : report.at("runs").array()) {
    const std::string key =
        run.at("circuit").str() + "/r" +
        std::to_string(static_cast<long long>(run.at("ranks").number())) +
        (run.at("remap").boolean() ? "/remap" : "/baseline");
    out["run:" + key + ":wall_seconds"] = {run.at("wall_seconds").number(),
                                           "time"};
    out["run:" + key + ":exchange_bytes"] =
        {run.at("exchange_bytes").number(), "count"};
    out["run:" + key + ":slab_swaps"] = {run.at("slab_swaps").number(),
                                         "count"};
  }
}

SeriesMap extract(const JsonValue& report, const std::string& schema) {
  SeriesMap out;
  if (schema == "qgear.bench.report/v1") {
    extract_bench(report, out);
  } else if (schema == "qgear.serve.report/v1") {
    extract_serve(report, out);
  } else if (schema == "qgear.dist.report/v1") {
    extract_dist(report, out);
  } else {
    throw InvalidArgument("perfdiff: unsupported report schema " + schema);
  }
  return out;
}

std::string report_schema_of(const JsonValue& report) {
  const JsonValue* schema = report.find("schema");
  QGEAR_CHECK_ARG(schema != nullptr && schema->is_string(),
                  "perfdiff: report has no schema member");
  return schema->str();
}

}  // namespace

PerfDiffResult diff_reports(const JsonValue& baseline,
                            const JsonValue& current,
                            const PerfDiffOptions& opts) {
  const std::string schema = report_schema_of(baseline);
  QGEAR_CHECK_ARG(report_schema_of(current) == schema,
                  "perfdiff: reports have different schemas");

  PerfDiffResult result;
  result.report_schema = schema;
  result.opts = opts;

  const SeriesMap base = extract(baseline, schema);
  const SeriesMap cur = extract(current, schema);

  for (const auto& [key, b] : base) {
    PerfDiffEntry entry;
    entry.key = key;
    entry.kind = b.kind;
    entry.baseline = b.value;
    const auto it = cur.find(key);
    if (it == cur.end()) {
      entry.missing = true;
      entry.regression = opts.fail_on_missing;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.current = it->second.value;
    entry.ratio = b.value != 0.0 ? entry.current / b.value : 0.0;
    if (b.kind == "time") {
      const bool above_floor = std::max(entry.baseline, entry.current) >=
                               opts.min_seconds;
      entry.regression =
          above_floor &&
          entry.current > entry.baseline * (1.0 + opts.time_tolerance);
    } else if (b.kind == "throughput") {
      entry.regression =
          entry.current < entry.baseline * (1.0 - opts.time_tolerance);
    } else {  // count: drift in either direction invalidates the baseline
      const double scale = std::max(std::fabs(entry.baseline), 1.0);
      entry.regression = std::fabs(entry.current - entry.baseline) >
                         opts.count_tolerance * scale;
    }
    result.entries.push_back(std::move(entry));
  }
  // New keys in `current` are informational only (ratio 0, baseline 0).
  for (const auto& [key, c] : cur) {
    if (base.count(key) != 0) continue;
    PerfDiffEntry entry;
    entry.key = key;
    entry.kind = c.kind;
    entry.current = c.value;
    result.entries.push_back(std::move(entry));
  }

  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [](const PerfDiffEntry& a, const PerfDiffEntry& b) {
                     if (a.regression != b.regression) return a.regression;
                     return a.key < b.key;
                   });
  for (const PerfDiffEntry& e : result.entries) {
    if (e.regression) ++result.regressions;
  }
  return result;
}

JsonValue PerfDiffResult::to_json() const {
  JsonValue root{JsonValue::Object{}};
  root.set("schema", "qgear.perf_diff.report/v1");
  root.set("report_schema", report_schema);
  JsonValue options{JsonValue::Object{}};
  options.set("time_tolerance", opts.time_tolerance);
  options.set("count_tolerance", opts.count_tolerance);
  options.set("min_seconds", opts.min_seconds);
  options.set("fail_on_missing", opts.fail_on_missing);
  root.set("options", std::move(options));
  root.set("regressions", std::uint64_t{regressions});
  root.set("regressed", regressed());
  JsonValue entries_json{JsonValue::Array{}};
  for (const PerfDiffEntry& e : entries) {
    JsonValue entry{JsonValue::Object{}};
    entry.set("key", e.key);
    entry.set("kind", e.kind);
    entry.set("baseline", e.baseline);
    entry.set("current", e.current);
    entry.set("ratio", e.ratio);
    entry.set("regression", e.regression);
    entry.set("missing", e.missing);
    entries_json.push_back(std::move(entry));
  }
  root.set("entries", std::move(entries_json));
  return root;
}

std::string PerfDiffResult::summary() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "perf diff (%s): %zu series, %llu regression(s); "
                "tolerance time %.0f%% count %.0f%%\n",
                report_schema.c_str(), entries.size(),
                static_cast<unsigned long long>(regressions),
                opts.time_tolerance * 100, opts.count_tolerance * 100);
  out += buf;
  std::size_t shown = 0;
  for (const PerfDiffEntry& e : entries) {
    // All regressions, then the biggest movers up to a screenful.
    const bool mover = e.ratio != 0.0 && std::fabs(e.ratio - 1.0) > 0.01;
    if (!e.regression && !(mover && shown < 12)) continue;
    if (e.missing) {
      std::snprintf(buf, sizeof(buf), "  %s %-52s missing from current\n",
                    e.regression ? "FAIL" : "warn", e.key.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %s %-52s %11.6g -> %11.6g  (%.2fx)\n",
                    e.regression ? "FAIL" : "  ok", e.key.c_str(),
                    e.baseline, e.current, e.ratio);
    }
    out += buf;
    ++shown;
  }
  return out;
}

}  // namespace qgear::obs
