#include "qgear/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace qgear::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

bool JsonValue::boolean() const {
  QGEAR_CHECK_FORMAT(kind_ == Kind::boolean, "json: value is not a boolean");
  return bool_;
}

double JsonValue::number() const {
  QGEAR_CHECK_FORMAT(kind_ == Kind::number, "json: value is not a number");
  return num_;
}

const std::string& JsonValue::str() const {
  QGEAR_CHECK_FORMAT(kind_ == Kind::string, "json: value is not a string");
  return str_;
}

const JsonValue::Array& JsonValue::array() const {
  QGEAR_CHECK_FORMAT(kind_ == Kind::array, "json: value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::object() const {
  QGEAR_CHECK_FORMAT(kind_ == Kind::object, "json: value is not an object");
  return object_;
}

JsonValue::Array& JsonValue::array() {
  QGEAR_CHECK_FORMAT(kind_ == Kind::array, "json: value is not an array");
  return array_;
}

JsonValue::Object& JsonValue::object() {
  QGEAR_CHECK_FORMAT(kind_ == Kind::object, "json: value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  QGEAR_CHECK_FORMAT(v != nullptr, "json: missing key '" + key + "'");
  return *v;
}

void JsonValue::set(const std::string& key, JsonValue value) {
  QGEAR_CHECK_FORMAT(kind_ == Kind::object, "json: set() on non-object");
  object_.emplace_back(key, std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  QGEAR_CHECK_FORMAT(kind_ == Kind::array, "json: push_back() on non-array");
  array_.push_back(std::move(value));
}

namespace {

void format_number(double n, std::string& out) {
  // Integers (the common case: counters, microsecond timestamps) print
  // without a decimal point so exported files stay compact and exact.
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::null: out += "null"; return;
    case JsonValue::Kind::boolean: out += v.boolean() ? "true" : "false"; return;
    case JsonValue::Kind::number: format_number(v.number(), out); return;
    case JsonValue::Kind::string:
      out += '"';
      out += json_escape(v.str());
      out += '"';
      return;
    case JsonValue::Kind::array: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_value(e, out);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    QGEAR_CHECK_FORMAT(pos_ == text_.size(), "json: trailing characters");
    return v;
  }

 private:
  char peek() const {
    QGEAR_CHECK_FORMAT(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    QGEAR_CHECK_FORMAT(take() == c,
                       std::string("json: expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue();
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = take();
      if (sep == '}') break;
      QGEAR_CHECK_FORMAT(sep == ',', "json: expected ',' or '}' in object");
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_ws();
      const char sep = take();
      if (sep == ']') break;
      QGEAR_CHECK_FORMAT(sep == ',', "json: expected ',' or ']' in array");
    }
    return JsonValue(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else QGEAR_CHECK_FORMAT(false, "json: bad \\u escape");
          }
          // UTF-8 encode (BMP only; our exporters never emit surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          QGEAR_CHECK_FORMAT(false, "json: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    QGEAR_CHECK_FORMAT(pos_ > start, "json: invalid value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    QGEAR_CHECK_FORMAT(end != nullptr && *end == '\0',
                       "json: malformed number '" + token + "'");
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("obs: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    throw Error("obs: short write to '" + path + "'");
  }
}

std::string read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("obs: cannot open '" + path + "'");
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace qgear::obs
