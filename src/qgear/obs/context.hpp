// Request-scoped trace context: a 64-bit trace id (plus the rank a span
// was recorded on) carried in a thread-local and stamped onto every Span
// recorded while a ContextScope is live.
//
// The context is what turns the flat span ring into *per-request* traces:
// serve assigns a trace id at admission and installs it on the worker
// thread that executes the job; the distributed runner installs the same
// trace id (with the rank filled in) on every rank thread, so one
// request's spans — scheduler admit, cache, engine sweeps, per-rank
// exchanges — share a trace id and can be exported as a single
// Chrome/Perfetto trace (Tracer::to_trace_json(trace_id)).
//
// Cost discipline: the thread-local is only read when a span is actually
// recorded (tracing enabled), so instrumentation with tracing disabled is
// unchanged — one relaxed atomic load per span.
#pragma once

#include <cstdint>
#include <string>

namespace qgear::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;      ///< 0 = no request context
  std::uint64_t parent_span = 0;   ///< seq of the logical parent span (0 = root)
  std::int32_t rank = -1;          ///< distributed rank, -1 = not in a rank

  bool valid() const { return trace_id != 0; }

  /// New context with a fresh process-unique, time-salted trace id.
  static TraceContext generate();

  /// The calling thread's current context (zero context when none is
  /// installed).
  static const TraceContext& current();
};

/// Fixed-width lowercase hex of a trace id ("0000c0ffee15g00d" style),
/// the form used in span args, report files and /trace?trace_id= queries.
std::string trace_id_hex(std::uint64_t trace_id);

/// Parses trace_id_hex output (or any hex string); returns 0 on garbage.
std::uint64_t parse_trace_id(const std::string& hex);

/// RAII: installs `ctx` as the calling thread's current context and
/// restores the previous one on destruction. Nestable.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace qgear::obs
