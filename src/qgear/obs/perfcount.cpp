#include "qgear/obs/perfcount.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "qgear/obs/metrics.hpp"

namespace qgear::obs {

namespace {

std::atomic<bool> g_enabled{false};

#if defined(__linux__)

long perf_open(perf_event_attr* attr, int group_fd) {
  return syscall(SYS_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                 /*flags=*/0);
}

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd,
                 std::uint64_t* id) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  const long fd = perf_open(&attr, group_fd);
  if (fd < 0) return -1;
  if (ioctl(static_cast<int>(fd), PERF_EVENT_IOC_ID, id) != 0) *id = 0;
  return static_cast<int>(fd);
}

#endif  // __linux__

}  // namespace

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#endif
  group_fd_ = -1;
}

bool PerfCounters::open() {
  if (opened_) return available();
  opened_ = true;
#if defined(__linux__)
  static constexpr std::uint64_t kConfigs[4] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES};
  for (int i = 0; i < 4; ++i) {
    fds_[i] = open_counter(PERF_TYPE_HARDWARE, kConfigs[i],
                           i == 0 ? -1 : fds_[0], &ids_[i]);
    if (fds_[i] < 0) {
      // All-or-nothing: mixed availability would skew ratios (IPC, miss
      // rate), so a partial group is torn down and reported unavailable.
      for (int& fd : fds_) {
        if (fd >= 0) close(fd);
        fd = -1;
      }
      return false;
    }
  }
  group_fd_ = fds_[0];
  return true;
#else
  return false;
#endif
}

void PerfCounters::start() {
#if defined(__linux__)
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

PerfSample PerfCounters::stop() {
  PerfSample sample;
#if defined(__linux__)
  if (group_fd_ < 0) return sample;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
  //   u64 nr; { u64 value; u64 id; } values[nr];
  std::uint64_t buf[1 + 2 * 4] = {};
  const ssize_t n = read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(std::uint64_t))) return sample;
  const std::uint64_t nr = buf[0];
  for (std::uint64_t i = 0; i < nr && i < 4; ++i) {
    const std::uint64_t value = buf[1 + 2 * i];
    const std::uint64_t id = buf[2 + 2 * i];
    if (id == ids_[0]) sample.cycles = value;
    if (id == ids_[1]) sample.instructions = value;
    if (id == ids_[2]) sample.cache_refs = value;
    if (id == ids_[3]) sample.cache_misses = value;
  }
  sample.valid = true;
#endif
  return sample;
}

void PerfCounters::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool PerfCounters::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool PerfCounters::supported() {
  static const bool probed = [] {
    PerfCounters probe;
    return probe.open();
  }();
  return probed;
}

namespace {

/// One lazily-opened counter group per thread: opening fds per measured
/// region would dominate short sweeps.
PerfCounters& thread_counters() {
  thread_local PerfCounters counters;
  counters.open();
  return counters;
}

}  // namespace

PerfScope::PerfScope(PerfSample* into) {
  if (!PerfCounters::enabled()) return;
  PerfCounters& counters = thread_counters();
  if (!counters.available()) return;
  counters_ = &counters;
  into_ = into;
  counters.start();
}

PerfScope::~PerfScope() {
  if (counters_ == nullptr) return;
  const PerfSample sample = counters_->stop();
  if (into_ != nullptr) *into_ += sample;
  if (sample.valid) {
    auto& reg = Registry::global();
    reg.counter("perf.cycles").add(sample.cycles);
    reg.counter("perf.instructions").add(sample.instructions);
    reg.counter("perf.cache_refs").add(sample.cache_refs);
    reg.counter("perf.cache_misses").add(sample.cache_misses);
    reg.counter("perf.regions").add();
  }
}

}  // namespace qgear::obs
