// Hardware performance-counter sampling via perf_event_open(2).
//
// A PerfCounters group opens cycles / instructions / cache-references /
// cache-misses counters for the calling thread and reads deltas around a
// measured region. Availability degrades gracefully: in containers or on
// kernels with perf_event_paranoid locked down the open fails and the
// sampler reports available() == false, every read returns an invalid
// PerfSample, and callers carry on — the measured tables simply mark the
// hardware columns n/a.
//
// Engine integration goes through the process-wide enable flag: sampling
// is off by default and costs one relaxed atomic load per engine run when
// disabled (same discipline as the tracer). Enable with
// PerfCounters::set_enabled(true) (tools: --perf, benches: QGEAR_PERF=1);
// results land in EngineStats and `perf.*` registry counters, giving the
// measured per-run table the perfmodel calibration and the planned
// autotuner consume.
#pragma once

#include <atomic>
#include <cstdint>

namespace qgear::obs {

/// Counter deltas over one measured region. `valid` is false when the
/// counters could not be opened (then every field is 0).
struct PerfSample {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;

  PerfSample& operator+=(const PerfSample& o) {
    valid = valid || o.valid;
    cycles += o.cycles;
    instructions += o.instructions;
    cache_refs += o.cache_refs;
    cache_misses += o.cache_misses;
    return *this;
  }

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double cache_miss_rate() const {
    return cache_refs > 0 ? static_cast<double>(cache_misses) /
                                static_cast<double>(cache_refs)
                          : 0.0;
  }
};

/// One group of per-thread hardware counters. Not thread-safe: a
/// PerfCounters instance belongs to the thread that start()s it.
class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// Opens the counter group for the calling thread. Returns false (and
  /// stays unavailable) when the kernel refuses; safe to call once.
  bool open();
  bool available() const { return group_fd_ >= 0; }

  /// Zeroes and starts the group counters.
  void start();
  /// Stops the group and returns the deltas since start().
  PerfSample stop();

  /// Process-wide switch read by engine instrumentation. Off by default;
  /// when off, instrumented regions skip sampling entirely.
  static void set_enabled(bool on);
  static bool enabled();

  /// True when this kernel/container can open the counter group at all
  /// (probed once, cached).
  static bool supported();

 private:
  int group_fd_ = -1;   ///< leader (cycles); -1 = unavailable
  int fds_[4] = {-1, -1, -1, -1};
  std::uint64_t ids_[4] = {0, 0, 0, 0};
  bool opened_ = false;  ///< open() was attempted
};

/// RAII sampling of one region: opens thread-local counters on first use,
/// start()s on construction and folds stop() deltas into `into` (and the
/// `perf.*` registry counters) on destruction. Inactive (zero work beyond
/// one atomic load) when PerfCounters::enabled() is false.
class PerfScope {
 public:
  explicit PerfScope(PerfSample* into);
  ~PerfScope();

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  bool active() const { return counters_ != nullptr; }

 private:
  PerfCounters* counters_ = nullptr;
  PerfSample* into_ = nullptr;
};

}  // namespace qgear::obs
