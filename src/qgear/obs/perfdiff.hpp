// Noise-aware comparison of two performance reports — the library behind
// the `qgear_perf_diff` tool and CI's perf-sentinel step.
//
// Understands the three report schemas the repo emits:
//   qgear.bench.report/v1   stage wall clocks + metrics registry dump
//   qgear.serve.report/v1   latency percentiles + throughput
//   qgear.dist.report/v1    per-run wall clock / exchange bytes / swaps
//
// Series are classified by how they may legitimately move:
//   time        wall clocks, latency percentiles. Noisy: a regression is
//               current > baseline * (1 + time_tolerance), and series
//               where both sides sit under `min_seconds` are ignored
//               (micro-stage jitter is not signal).
//   count       deterministic work counters (sweeps, amp_ops, exchange
//               bytes, slab swaps). Exact by default: any relative drift
//               beyond count_tolerance fails in *either* direction —
//               a count that moved means the schedule changed and the
//               baseline must be re-committed deliberately.
//   throughput  jobs/s style, higher is better; regression is
//               current < baseline * (1 - time_tolerance).
//
// Both reports must carry the same "schema" member. Keys present on only
// one side are reported as missing/new and are not regressions (unless
// fail_on_missing), so adding a bench stage does not break the sentinel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/obs/json.hpp"

namespace qgear::obs {

struct PerfDiffOptions {
  double time_tolerance = 0.10;   ///< allowed relative slowdown on time
  double count_tolerance = 0.0;   ///< allowed relative drift on counters
  double min_seconds = 1e-4;      ///< ignore time series under this floor
  bool fail_on_missing = false;   ///< baseline key absent from current
};

struct PerfDiffEntry {
  std::string key;
  std::string kind;  ///< "time" | "count" | "throughput"
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when baseline == 0)
  bool regression = false;
  bool missing = false;  ///< in baseline, absent from current
};

struct PerfDiffResult {
  std::string report_schema;  ///< schema of the compared reports
  PerfDiffOptions opts;
  std::vector<PerfDiffEntry> entries;  ///< regressions first, then by key
  std::uint64_t regressions = 0;

  bool regressed() const { return regressions > 0; }

  /// Serializes as qgear.perf_diff.report/v1
  /// (docs/perf_diff.schema.json).
  JsonValue to_json() const;
  /// Human-readable table: every regression plus the largest movers.
  std::string summary() const;
};

/// Compares two parsed reports of the same schema. Throws
/// InvalidArgument on schema mismatch or an unsupported schema.
PerfDiffResult diff_reports(const JsonValue& baseline,
                            const JsonValue& current,
                            const PerfDiffOptions& opts = {});

}  // namespace qgear::obs
