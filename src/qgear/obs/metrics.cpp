#include "qgear/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "qgear/common/error.hpp"
#include "qgear/obs/json.hpp"

namespace qgear::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  QGEAR_CHECK_ARG(!bounds_.empty(), "obs: histogram needs >= 1 bound");
  QGEAR_CHECK_ARG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "obs: histogram bounds must be ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential(double start, double factor,
                                           std::size_t n) {
  QGEAR_CHECK_ARG(start > 0 && factor > 1 && n >= 1,
                  "obs: bad exponential histogram spec");
  std::vector<double> bounds(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return bounds;
}

const CounterSample* RegistrySnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* RegistrySnapshot::find_gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* RegistrySnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string RegistrySnapshot::to_text() const {
  std::string out;
  char buf[160];
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", g.name.c_str(), g.value);
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s count=%llu sum=%.9g min=%.9g max=%.9g\n",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.hist.count), h.hist.sum,
                  h.hist.min, h.hist.max);
    out += buf;
    for (std::size_t i = 0; i < h.hist.buckets.size(); ++i) {
      if (h.hist.buckets[i] == 0) continue;
      if (i < h.hist.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "%s le=%.9g %llu\n", h.name.c_str(),
                      h.hist.bounds[i],
                      static_cast<unsigned long long>(h.hist.buckets[i]));
      } else {
        std::snprintf(buf, sizeof(buf), "%s le=+inf %llu\n", h.name.c_str(),
                      static_cast<unsigned long long>(h.hist.buckets[i]));
      }
      out += buf;
    }
  }
  return out;
}

std::string RegistrySnapshot::to_json() const {
  JsonValue counters_obj{JsonValue::Object{}};
  for (const auto& c : counters) counters_obj.set(c.name, c.value);

  JsonValue gauges_obj{JsonValue::Object{}};
  for (const auto& g : gauges) gauges_obj.set(g.name, g.value);

  JsonValue hists_obj{JsonValue::Object{}};
  for (const auto& h : histograms) {
    JsonValue bounds{JsonValue::Array{}};
    for (double b : h.hist.bounds) bounds.push_back(b);
    JsonValue buckets{JsonValue::Array{}};
    for (std::uint64_t b : h.hist.buckets) buckets.push_back(b);
    JsonValue hist{JsonValue::Object{}};
    hist.set("count", h.hist.count);
    hist.set("sum", h.hist.sum);
    hist.set("min", h.hist.min);
    hist.set("max", h.hist.max);
    hist.set("bounds", std::move(bounds));
    hist.set("buckets", std::move(buckets));
    hists_obj.set(h.name, std::move(hist));
  }

  JsonValue root{JsonValue::Object{}};
  root.set("counters", std::move(counters_obj));
  root.set("gauges", std::move(gauges_obj));
  root.set("histograms", std::move(hists_obj));
  return root.dump();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot()});
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: references
  return *registry;                            // must outlive static dtors
}

std::vector<double> Registry::default_time_bounds_us() {
  return Histogram::exponential(1.0, 10.0, 8);  // 1us .. 10s, then +inf
}

}  // namespace qgear::obs
