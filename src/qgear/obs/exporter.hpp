// Live export of the observability plane: a Prometheus text formatter, a
// tiny dependency-free HTTP exporter serving the *live* registry/tracer,
// and a periodic file-snapshot writer for batch runs without a scrape
// endpoint.
//
// The HTTP exporter answers:
//   GET /metrics               Prometheus text exposition (0.0.4)
//   GET /snapshot              registry snapshot as JSON
//   GET /trace                 full Chrome Trace Event JSON
//   GET /trace?trace_id=<hex>  one request's merged trace (context.hpp)
//   GET /healthz               "ok"
//
// Every response is computed from the live Registry/Tracer at request
// time — this is what lets you watch a 1M-job replay *while it runs*
// instead of reading exit dumps afterwards. The server is deliberately
// minimal: blocking accept loop on one background thread, one request per
// connection, loopback-oriented. It is an operational introspection port,
// not an internet-facing service.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"

namespace qgear::obs {

/// Renders a snapshot in Prometheus text exposition format. Metric names
/// are sanitized (`serve.e2e_us` -> `qgear_serve_e2e_us`); histograms
/// become the conventional `_bucket{le=...}` / `_sum` / `_count` series
/// with cumulative bucket counts.
std::string to_prometheus_text(const RegistrySnapshot& snapshot);

class HttpExporter {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = kernel-assigned ephemeral port (see port())
    Registry* registry = nullptr;  ///< nullptr = Registry::global()
    Tracer* tracer = nullptr;      ///< nullptr = Tracer::global()
  };

  HttpExporter() = default;
  ~HttpExporter();  // stop()

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens and starts the serving thread. Throws qgear::Error
  /// when the socket cannot be bound.
  void start(const Options& opts);
  void start() { start(Options{}); }

  /// Stops the serving thread and closes the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Request router, exposed for tests: maps a target like
  /// "/trace?trace_id=abc" to (status, content_type, body).
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  Response handle(const std::string& target) const;

 private:
  void serve_loop();

  Registry* registry_ = nullptr;
  Tracer* tracer_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Periodic file-snapshot fallback: every `period_s`, writes
/// `<prefix>.metrics.json`, `<prefix>.prom` and (when the tracer is
/// enabled) `<prefix>.trace.json`, atomically replacing the previous
/// snapshot (write-to-temp + rename). stop() writes one final snapshot.
class SnapshotWriter {
 public:
  struct Options {
    std::string prefix;      ///< output path prefix (required)
    double period_s = 10.0;  ///< snapshot cadence
    Registry* registry = nullptr;  ///< nullptr = Registry::global()
    Tracer* tracer = nullptr;      ///< nullptr = Tracer::global()
  };

  SnapshotWriter() = default;
  ~SnapshotWriter();  // stop()

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void start(const Options& opts);
  /// Stops the timer thread and writes a final snapshot. Idempotent.
  void stop();

  /// Writes one snapshot immediately (also safe while running).
  void write_now() const;

  std::uint64_t snapshots_written() const {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::atomic<bool> stop_{false};
  mutable std::atomic<std::uint64_t> writes_{0};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace qgear::obs
