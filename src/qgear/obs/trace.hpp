// Scoped-span tracer with a bounded in-memory ring buffer and Chrome
// Trace Event JSON export (open in chrome://tracing or ui.perfetto.dev).
//
// Spans are RAII: construction stamps the start, destruction stamps the
// duration and records the completed span. Tracing is off by default; a
// disabled Span costs one relaxed atomic load and nothing else (no string
// construction, no clock reads), which is what keeps instrumentation in
// per-gate and per-block hot paths affordable.
//
// Nesting is per-thread: each thread carries a depth counter, and the
// Chrome trace viewer reconstructs the flame graph from (tid, ts, dur).
// The ring buffer keeps the most recent `capacity` spans; older spans are
// overwritten and counted in dropped().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qgear::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint64_t start_us = 0;  ///< microseconds since tracer epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;       ///< small per-process thread index
  std::uint32_t depth = 0;     ///< nesting level on that thread
  std::uint64_t seq = 0;       ///< global record sequence number (1-based)
  std::uint64_t trace_id = 0;  ///< request context (0 = none); see context.hpp
  std::int32_t rank = -1;      ///< distributed rank the span ran on (-1 = none)
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span (assigns seq; overwrites the oldest record
  /// once the buffer is full).
  void record(SpanRecord rec);

  /// Chronological copy of the buffered spans.
  std::vector<SpanRecord> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (including overwritten ones).
  std::uint64_t recorded() const;
  /// Spans lost to ring-buffer overwrite.
  std::uint64_t dropped() const;

  void clear();

  /// Microseconds since this tracer's construction (its trace epoch).
  std::uint64_t now_us() const;

  /// Serializes the buffer as Chrome Trace Event JSON
  /// ({"traceEvents": [...]} with "ph":"X" complete events). A non-zero
  /// `trace_id` filters to that request's spans — the per-request merged
  /// trace. Rank-tagged spans get their rank as the Chrome "pid", so a
  /// distributed request renders as one lane per rank. The root carries an
  /// "otherData" record with ring-buffer accounting (recorded / dropped /
  /// capacity), so truncated traces are detectable instead of silently
  /// misleading.
  std::string to_trace_json(std::uint64_t trace_id = 0) const;
  void write_trace_json(const std::string& path,
                        std::uint64_t trace_id = 0) const;

  /// The tracer qgear's built-in instrumentation records into.
  static Tracer& global();

  /// Stable small integer for the calling thread (1-based).
  static std::uint32_t thread_id();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::uint64_t total_ = 0;
};

/// RAII scoped span. Takes `const char*` names so a disabled span never
/// allocates. Attach key/values with arg(); they land in the trace file's
/// "args" object.
class Span {
 public:
  Span(Tracer& tracer, const char* name, const char* cat = "qgear");
  /// Records into Tracer::global().
  explicit Span(const char* name, const char* cat = "qgear");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the span is live (tracing was enabled at construction).
  bool active() const { return tracer_ != nullptr; }

  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, double value);

 private:
  void init(Tracer& tracer, const char* name, const char* cat);

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

}  // namespace qgear::obs
