// route::plan — the autotuner's decision API.
//
// Inspects a circuit (transpiled internally), enumerates the candidate
// space backend × precision × ISA × fusion width, prices every candidate
// with the cost model (route/cost.hpp), filters by the caller's Budget
// (memory bytes, optional wall-time cap, accuracy bound that forbids
// fp32 when the propagated error exceeds it), and returns the cheapest
// feasible candidate plus the full ranked alternatives list and a
// human-readable rationale. Deterministic: same circuit + budget +
// options -> same Placement (ties break on the candidate ordering).
//
// Serve uses it as the placement policy for `backend=auto` jobs; the CLI
// exposes it as `qgear_cli plan` / `run --auto`. Decisions are counted
// under `route.*` metrics and spanned (`route.plan`) so they nest under
// the submitting request's trace id. Reports serialize as
// `qgear.route.report/v1` (docs/route_report.schema.json).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/obs/json.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/route/calibration.hpp"
#include "qgear/route/cost.hpp"
#include "qgear/route/features.hpp"
#include "qgear/sim/backend.hpp"

namespace qgear::route {

/// Caller constraints. Zero means "unlimited" for memory and time; the
/// accuracy bound always applies (it is what forbids fp32 on deep
/// circuits).
struct Budget {
  std::uint64_t memory_bytes = 0;  ///< hard cap on the memory estimate
  double time_s = 0.0;             ///< soft cap; candidates over it rank last
  double max_error = 1e-4;         ///< propagated error bound ceiling
};

/// One ranked candidate (feasible or not).
struct Candidate {
  CandidateConfig config;
  double seconds = 0.0;
  std::uint64_t mem_bytes = 0;
  double error_bound = 0.0;
  bool feasible = true;
  std::string reject_reason;  ///< empty when feasible
  std::string detail;         ///< cost-model note

  obs::JsonValue to_json() const;
};

/// The decision.
struct Placement {
  bool feasible = false;       ///< at least one candidate fit the budget
  Candidate choice;            ///< cheapest feasible (unset if !feasible)
  std::vector<Candidate> alternatives;  ///< ranked; feasible first
  CircuitFeatures features;
  std::vector<std::string> rationale;   ///< human-readable decision notes

  /// `qgear.route.report/v1` fragment for one circuit.
  obs::JsonValue to_json() const;
};

struct RouteOptions {
  Calibration calibration = Calibration::host_default();
  sim::BackendOptions base;          ///< engine knobs candidates inherit
  std::vector<unsigned> fusion_widths = {3, 5, 7};
  /// Enumerate ISA tiers up to best_supported (the model ranks lower
  /// tiers by their measured speed factors). Off = active ISA only.
  bool sweep_isa = true;
  /// Consider the distributed backend (off by default: single-process
  /// dist replay never beats local fused; serve shards opt in).
  bool include_dist = false;
  /// Backends to drop from the candidate space. Serve's degradation path
  /// re-plans with every backend that already failed a job excluded, so
  /// the fallback chain (e.g. dd -> mps -> fused) never revisits one.
  std::vector<std::string> exclude_backends;
};

/// Routes `qc`. Transpiles, extracts features, prices and ranks the
/// candidate space. Never throws for "nothing fits" — check
/// Placement::feasible (serve maps it to a memory_budget rejection).
Placement plan(const qiskit::QuantumCircuit& qc, const Budget& budget,
               const RouteOptions& opts = {});

/// Wraps one or more placements in a complete `qgear.route.report/v1`
/// document. `names` labels each placement (parallel arrays).
obs::JsonValue make_report(const std::vector<std::string>& names,
                           const std::vector<Placement>& placements,
                           const Budget& budget);

}  // namespace qgear::route
