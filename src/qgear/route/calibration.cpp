#include "qgear/route/calibration.hpp"

#include <cstdlib>
#include <mutex>

#include "qgear/common/error.hpp"
#include "qgear/common/log.hpp"

namespace qgear::route {

obs::JsonValue Calibration::to_json() const {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("schema", "qgear.route.calibration/v1");
  j.set("sweep_bw_fp32_bps", sweep_bw_fp32_bps);
  j.set("sweep_bw_fp64_bps", sweep_bw_fp64_bps);
  j.set("sweep_launch_s", sweep_launch_s);
  j.set("dense_flops_ps", dense_flops_ps);
  j.set("dd_gate_base_s", dd_gate_base_s);
  j.set("dd_gate_node_s", dd_gate_node_s);
  j.set("mps_unit1q_s", mps_unit1q_s);
  j.set("mps_unit2q_s", mps_unit2q_s);
  obs::JsonValue pts{obs::JsonValue::Array{}};
  for (const MeasuredPoint& p : measured) {
    obs::JsonValue e{obs::JsonValue::Object{}};
    e.set("circuit", p.circuit);
    e.set("backend", p.backend);
    e.set("precision", p.precision);
    e.set("qubits", p.qubits);
    e.set("gates", p.gates);
    e.set("measured_s", p.measured_s);
    e.set("analytic_s", p.analytic_s);
    pts.push_back(std::move(e));
  }
  j.set("measured", std::move(pts));
  return j;
}

Calibration Calibration::from_json(const obs::JsonValue& j) {
  QGEAR_CHECK_ARG(j.is_object() && j.find("schema") != nullptr &&
                      j.at("schema").str() == "qgear.route.calibration/v1",
                  "calibration: not a qgear.route.calibration/v1 document");
  Calibration c;
  auto num = [&](const char* key, double fallback) {
    const obs::JsonValue* v = j.find(key);
    return v != nullptr && v->is_number() ? v->number() : fallback;
  };
  c.sweep_bw_fp32_bps = num("sweep_bw_fp32_bps", c.sweep_bw_fp32_bps);
  c.sweep_bw_fp64_bps = num("sweep_bw_fp64_bps", c.sweep_bw_fp64_bps);
  c.sweep_launch_s = num("sweep_launch_s", c.sweep_launch_s);
  c.dense_flops_ps = num("dense_flops_ps", c.dense_flops_ps);
  c.dd_gate_base_s = num("dd_gate_base_s", c.dd_gate_base_s);
  c.dd_gate_node_s = num("dd_gate_node_s", c.dd_gate_node_s);
  c.mps_unit1q_s = num("mps_unit1q_s", c.mps_unit1q_s);
  c.mps_unit2q_s = num("mps_unit2q_s", c.mps_unit2q_s);
  if (const obs::JsonValue* pts = j.find("measured");
      pts != nullptr && pts->is_array()) {
    for (const obs::JsonValue& e : pts->array()) {
      MeasuredPoint p;
      p.circuit = e.at("circuit").str();
      p.backend = e.at("backend").str();
      p.precision = e.at("precision").str();
      p.qubits = static_cast<unsigned>(e.at("qubits").number());
      p.gates = static_cast<std::uint64_t>(e.at("gates").number());
      p.measured_s = e.at("measured_s").number();
      p.analytic_s = e.at("analytic_s").number();
      c.measured.push_back(std::move(p));
    }
  }
  return c;
}

void Calibration::save(const std::string& path) const {
  obs::write_text_file(path, to_json().dump() + "\n");
}

Calibration Calibration::load(const std::string& path) {
  Calibration c = from_json(obs::JsonValue::parse(obs::read_text_file(path)));
  c.source = path;
  return c;
}

const Calibration& Calibration::host_default() {
  static Calibration cached;
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("QGEAR_ROUTE_CALIBRATION");
    if (env == nullptr || env[0] == '\0') return;  // built-in defaults
    try {
      cached = load(env);
    } catch (const std::exception& e) {
      log::warn(std::string("route: ignoring QGEAR_ROUTE_CALIBRATION=") +
                env + " (" + e.what() + "); using built-in defaults");
    }
  });
  return cached;
}

}  // namespace qgear::route
