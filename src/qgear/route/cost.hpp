// Per-backend time / accuracy model for the autotuner.
//
// Every candidate configuration (backend × precision × ISA × fusion
// width) is priced in three currencies:
//
//   seconds      — the analytic model below, rescaled by the measured
//                  lookup table (Calibration::measured);
//   mem_bytes    — Backend::memory_estimate, the serve admission
//                  currency, at the candidate's precision;
//   error_bound  — a propagated accuracy proxy: per-gate fp32/fp64
//                  rounding growing as sqrt(gates) (random-walk
//                  accumulation) for statevector engines, SVD cutoff ×
//                  effective 2q gates for mps, ~machine epsilon for dd.
//
// Analytic time, per backend family:
//   statevector  sweeps × max(bandwidth term, dense-flop term) + launch;
//                bandwidth from the calibrated probe per precision,
//                scaled by an ISA tier factor (PR 2 measured avx2 ≈ 3x
//                scalar); the flop term is what makes very wide fusion
//                lose.
//   dd           gates × (base + est_nodes × per-node); est_nodes from
//                the entanglement proxy, capped by the node budget.
//   mps          chi^2 per 1q gate and chi^3 per effective 2q gate
//                (swap chains included), chi from the structural bond
//                bound capped by max_bond.
#pragma once

#include <cstdint>
#include <string>

#include "qgear/qiskit/circuit.hpp"
#include "qgear/route/calibration.hpp"
#include "qgear/route/features.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/isa.hpp"

namespace qgear::route {

/// One point in the router's search space.
struct CandidateConfig {
  std::string backend;          ///< registered sim::Backend name
  std::string precision;        ///< "fp32" | "fp64"
  sim::Isa isa = sim::Isa::scalar;
  unsigned fusion_width = 0;    ///< fused backend only; 0 elsewhere
};

/// Priced candidate.
struct TimeEstimate {
  bool supported = true;        ///< config is expressible (e.g. no fp32 dd)
  double seconds = 0.0;
  double error_bound = 0.0;
  std::uint64_t mem_bytes = 0;
  std::string detail;           ///< one-line model note for the rationale
};

/// Propagated fp32 rounding bound after `unitary_gates` gates
/// (kFp32GateError × sqrt(gates); see docs/AUTOTUNER.md).
double fp32_error_bound(std::uint64_t unitary_gates);
double fp64_error_bound(std::uint64_t unitary_gates);

/// ISA tier factor applied to effective sweep bandwidth / flop rate
/// (avx2 = 1.0; lower tiers from the PR 2 kernel measurements).
double isa_speed_factor(sim::Isa isa);

/// Prices one candidate. `fused_sweeps` is the fusion-plan block count
/// at cfg.fusion_width when the caller has one (route::plan does); 0
/// falls back to an analytic estimate from the feature block mix.
/// `base` carries the engine knobs (dd node budget, mps bond cap) that
/// shape both the memory estimate and the time model.
TimeEstimate time_estimate(const qiskit::QuantumCircuit& qc,
                           const CircuitFeatures& f,
                           const CandidateConfig& cfg,
                           const Calibration& calib,
                           const sim::BackendOptions& base = {},
                           std::uint64_t fused_sweeps = 0);

/// Convenience used by serve admission: price circuit `qc` on a fixed,
/// already-chosen backend/precision at the active ISA and the configured
/// fusion width, without enumerating alternatives.
TimeEstimate time_estimate_for(const std::string& backend,
                               const std::string& precision,
                               const qiskit::QuantumCircuit& qc,
                               const Calibration& calib,
                               const sim::BackendOptions& base = {});

}  // namespace qgear::route
