#include "qgear/route/features.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "qgear/qiskit/gates.hpp"

namespace qgear::route {

bool is_clifford_gate(qiskit::GateKind kind) {
  using qiskit::GateKind;
  switch (kind) {
    case GateKind::h:
    case GateKind::x:
    case GateKind::y:
    case GateKind::z:
    case GateKind::s:
    case GateKind::sdg:
    case GateKind::cx:
    case GateKind::cz:
    case GateKind::swap:
      return true;
    default:
      return false;
  }
}

namespace {

bool is_rotation_gate(qiskit::GateKind kind) {
  using qiskit::GateKind;
  switch (kind) {
    case GateKind::rx:
    case GateKind::ry:
    case GateKind::rz:
    case GateKind::p:
    case GateKind::cp:
      return true;
    default:
      return false;
  }
}

}  // namespace

CircuitFeatures extract_features(const qiskit::QuantumCircuit& qc,
                                 const sim::FusionOptions& fusion) {
  CircuitFeatures f;
  f.num_qubits = qc.num_qubits();
  f.depth = qc.depth();

  const unsigned n = qc.num_qubits();
  std::vector<unsigned> crossings(n == 0 ? 1 : n, 0);
  std::set<std::pair<unsigned, unsigned>> pairs;
  std::uint64_t nn_2q = 0;

  for (const qiskit::Instruction& inst : qc.instructions()) {
    ++f.total_gates;
    if (inst.kind == qiskit::GateKind::measure) {
      ++f.measurements;
      continue;
    }
    if (inst.kind == qiskit::GateKind::barrier) continue;
    ++f.unitary_gates;
    if (is_clifford_gate(inst.kind)) ++f.clifford_fraction;  // count, for now
    if (is_rotation_gate(inst.kind)) ++f.rotation_fraction;
    if (qiskit::gate_info(inst.kind).num_qubits != 2) continue;
    ++f.two_qubit_gates;
    const unsigned lo = static_cast<unsigned>(std::min(inst.q0, inst.q1));
    const unsigned hi = static_cast<unsigned>(std::max(inst.q0, inst.q1));
    const unsigned dist = hi - lo;
    pairs.insert({lo, hi});
    if (dist == 1) ++nn_2q;
    f.max_interaction_distance = std::max(f.max_interaction_distance, dist);
    // An MPS swap chain moves lo next to hi and back: 2*(dist-1) swaps
    // plus the gate itself, each an SVD-bearing 2q operation.
    f.mps_effective_2q += 2 * std::uint64_t{dist - 1} + 1;
    for (unsigned k = lo; k < hi; ++k) ++crossings[k];
  }

  const double ug = static_cast<double>(std::max<std::uint64_t>(
      f.unitary_gates, 1));
  f.clifford_fraction /= ug;
  f.rotation_fraction /= ug;
  f.distinct_pairs = pairs.size();
  f.nearest_neighbor_fraction =
      f.two_qubit_gates == 0
          ? 0.0
          : static_cast<double>(nn_2q) / static_cast<double>(f.two_qubit_gates);

  // Entanglement proxy: the same position-vs-crossings bound as
  // MpsEngine::memory_estimate, reduced to exponents.
  if (n >= 2) {
    double sum = 0.0;
    for (unsigned cut = 0; cut + 1 < n; ++cut) {
      const unsigned pos = std::min(cut + 1, n - 1 - cut);
      const unsigned e = std::min({pos, crossings[cut], 30u});
      f.max_bond_exponent = std::max(f.max_bond_exponent, e);
      sum += e;
    }
    f.mean_bond_exponent = sum / static_cast<double>(n - 1);
  }

  const sim::FusionPlan plan = sim::plan_fusion(qc, fusion);
  f.fused_blocks = plan.blocks.size();
  for (const sim::FusedBlock& b : plan.blocks) {
    switch (b.kernel_class) {
      case sim::KernelClass::diagonal: ++f.diag_blocks; break;
      case sim::KernelClass::permutation: ++f.perm_blocks; break;
      case sim::KernelClass::dense: ++f.dense_blocks; break;
    }
  }
  f.fusion_ratio = plan.fusion_ratio();
  return f;
}

obs::JsonValue CircuitFeatures::to_json() const {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("num_qubits", num_qubits);
  j.set("depth", depth);
  j.set("total_gates", total_gates);
  j.set("unitary_gates", unitary_gates);
  j.set("two_qubit_gates", two_qubit_gates);
  j.set("measurements", measurements);
  j.set("clifford_fraction", clifford_fraction);
  j.set("rotation_fraction", rotation_fraction);
  j.set("fused_blocks", fused_blocks);
  j.set("diag_blocks", diag_blocks);
  j.set("perm_blocks", perm_blocks);
  j.set("dense_blocks", dense_blocks);
  j.set("fusion_ratio", fusion_ratio);
  j.set("distinct_pairs", distinct_pairs);
  j.set("nearest_neighbor_fraction", nearest_neighbor_fraction);
  j.set("max_interaction_distance", max_interaction_distance);
  j.set("mps_effective_2q", mps_effective_2q);
  j.set("max_bond_exponent", max_bond_exponent);
  j.set("mean_bond_exponent", mean_bond_exponent);
  return j;
}

}  // namespace qgear::route
