// Circuit feature extraction for the backend autotuner.
//
// The router decides backend × precision × ISA × fusion width from a
// handful of structural features of the *transpiled* circuit: size
// (qubits / depth / gate counts), the fused-kernel class mix (PR 2's
// KernelClass taxonomy — how much of the circuit is diagonal /
// permutation / dense work), two-qubit connectivity, an entanglement
// proxy (the same per-cut bond bound MpsEngine::memory_estimate uses),
// and the Clifford fraction (decision diagrams thrive on stabilizer-ish
// structure). Extraction is one pass over the instruction list plus one
// fusion plan; everything downstream (route/cost.hpp) is arithmetic on
// this struct, so planning stays cheap enough to run per job at serve
// admission.
#pragma once

#include <cstdint>
#include <vector>

#include "qgear/obs/json.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/fusion.hpp"

namespace qgear::route {

/// Structural summary of one circuit, as seen by the cost model.
struct CircuitFeatures {
  unsigned num_qubits = 0;
  unsigned depth = 0;
  std::uint64_t total_gates = 0;    ///< all instructions incl. measure
  std::uint64_t unitary_gates = 0;  ///< gates that touch the state
  std::uint64_t two_qubit_gates = 0;
  std::uint64_t measurements = 0;

  /// Fraction of unitary gates drawn from the Clifford group
  /// (h,x,y,z,s,sdg,cx,cz,swap) — a structure proxy: near-Clifford
  /// circuits keep decision diagrams small.
  double clifford_fraction = 0.0;
  /// Fraction of unitary gates that are parameterized rotations
  /// (rx,ry,rz,p,cp) — dense-kernel work.
  double rotation_fraction = 0.0;

  // Fused-block mix at the default fusion width (KernelClass taxonomy).
  std::uint64_t fused_blocks = 0;
  std::uint64_t diag_blocks = 0;
  std::uint64_t perm_blocks = 0;
  std::uint64_t dense_blocks = 0;
  double fusion_ratio = 0.0;  ///< unitary gates per fused block

  // Two-qubit connectivity.
  std::uint64_t distinct_pairs = 0;     ///< unique (lo,hi) interaction pairs
  double nearest_neighbor_fraction = 0.0;  ///< 2q gates with |q0-q1| == 1
  unsigned max_interaction_distance = 0;   ///< max |q0-q1| over 2q gates
  /// Total extra 2q operations an MPS swap-router pays for non-adjacent
  /// pairs: sum over 2q gates of 2*(distance-1) swaps + 1 gate.
  std::uint64_t mps_effective_2q = 0;

  // Entanglement proxy: per-cut bond exponent bound
  // min(position, 2q-crossings) — exactly the structure bound behind
  // MpsEngine::memory_estimate. GHZ chains stay at 1; volume-law random
  // circuits saturate n/2.
  unsigned max_bond_exponent = 0;
  double mean_bond_exponent = 0.0;

  obs::JsonValue to_json() const;
};

/// Extracts features from `qc` (callers transpile first; route::plan
/// does). `fusion` controls the width used for the block-mix features.
CircuitFeatures extract_features(const qiskit::QuantumCircuit& qc,
                                 const sim::FusionOptions& fusion = {});

/// True for gates in the Clifford group (parameter-free subset; rotations
/// are classified non-Clifford regardless of angle).
bool is_clifford_gate(qiskit::GateKind kind);

}  // namespace qgear::route
