// Calibration data for the router's time model.
//
// Two layers, in increasing fidelity:
//
//  1. Host constants — sustained sweep bandwidth per precision (from the
//     perfmodel bandwidth probe), per-block launch overhead, arithmetic
//     throughput (what makes very wide fusion lose), and per-unit costs
//     for the dd / mps engines. Defaults are order-of-magnitude sane for
//     a modern x86 core so an uncalibrated binary still routes
//     reasonably.
//
//  2. A small measured lookup table: (circuit, backend, precision) ->
//     {measured seconds, the analytic estimate at calibration time}.
//     The cost model blends these as a per-(backend, precision) scale
//     factor weighted by workload similarity, so suite-like circuits get
//     near-measured predictions while novel shapes degrade gracefully to
//     the analytic model.
//
// `qgear_cli calibrate` refreshes both layers and writes the JSON
// (schema `qgear.route.calibration/v1`); a committed baseline lives at
// bench/baselines/route/calibration.json. Consumers load via
// `Calibration::load(path)` or `host_default()` which honours the
// QGEAR_ROUTE_CALIBRATION env var.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/obs/json.hpp"

namespace qgear::route {

/// One measured data point for the lookup table.
struct MeasuredPoint {
  std::string circuit;    ///< label, e.g. "qft12"
  std::string backend;    ///< registered backend name
  std::string precision;  ///< "fp32" | "fp64"
  unsigned qubits = 0;
  std::uint64_t gates = 0;
  double measured_s = 0.0;  ///< wall seconds, median of repeats
  double analytic_s = 0.0;  ///< cost-model estimate at calibration time
};

struct Calibration {
  // Host constants (layer 1).
  double sweep_bw_fp32_bps = 8.0e9;   ///< fused-sweep bandwidth, fp32
  double sweep_bw_fp64_bps = 6.0e9;   ///< fused-sweep bandwidth, fp64
  double sweep_launch_s = 2.0e-7;     ///< per fused block / per gate
  double dense_flops_ps = 1.0e11;     ///< dense-kernel arithmetic rate
  double dd_gate_base_s = 2.0e-6;     ///< dd per-gate fixed cost
  double dd_gate_node_s = 1.5e-8;     ///< dd per-gate per-active-node cost
  double mps_unit1q_s = 5.0e-9;       ///< mps 1q cost per chi^2 element
  double mps_unit2q_s = 2.0e-9;       ///< mps 2q/SVD cost per chi^3 element

  // Measured lookup table (layer 2).
  std::vector<MeasuredPoint> measured;

  /// Where this calibration came from ("" = built-in defaults).
  std::string source;

  obs::JsonValue to_json() const;
  static Calibration from_json(const obs::JsonValue& j);

  void save(const std::string& path) const;
  static Calibration load(const std::string& path);

  /// Built-in defaults, overridden by the file named in
  /// QGEAR_ROUTE_CALIBRATION when set and readable (a broken path warns
  /// and falls back). Cached after the first call.
  static const Calibration& host_default();
};

}  // namespace qgear::route
