#include "qgear/route/cost.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "qgear/common/strings.hpp"

namespace qgear::route {

namespace {

/// Per-gate rounding step for the random-walk error accumulation model.
/// The factor over machine epsilon covers the handful of flops each
/// amplitude sees per (fused) gate application.
constexpr double kFp32GateError = 1.19209290e-07 * 4.0;
constexpr double kFp64GateError = 2.22044605e-16 * 4.0;

/// Memory traffic of one fused sweep in units of the state size (read +
/// write every amplitude) — mirrors perfmodel::kSweepBytesPerStateByte.
constexpr double kSweepTraffic = 2.0;

double amp_bytes(const std::string& precision) {
  return precision == "fp32" ? sizeof(std::complex<float>)
                             : sizeof(std::complex<double>);
}

/// Blends the analytic estimate with the measured lookup table: a
/// per-(backend, precision) scale factor, weighted by similarity of
/// workload shape (log gate-count distance + qubit distance). An exact
/// suite hit dominates the average and reproduces the measured time.
double measured_scale(const Calibration& calib, const CandidateConfig& cfg,
                      const CircuitFeatures& f, double analytic_s) {
  if (analytic_s <= 0.0) return 1.0;
  double wsum = 0.0, acc = 0.0;
  for (const MeasuredPoint& p : calib.measured) {
    if (p.backend != cfg.backend || p.precision != cfg.precision) continue;
    if (p.analytic_s <= 0.0 || p.measured_s <= 0.0) continue;
    const double lg = std::fabs(
        std::log2(double(std::max<std::uint64_t>(p.gates, 1)) /
                  double(std::max<std::uint64_t>(f.total_gates, 1))));
    const double dq = std::fabs(double(p.qubits) - double(f.num_qubits)) / 8.0;
    // Exponential kernel: an exact suite hit must dominate dissimilar
    // points, because the measured/analytic ratio is strongly
    // shape-dependent (launch overhead vs. sweep cost flips between
    // small and large states).
    const double w = std::exp(-2.0 * (lg + dq));
    // Wide clamp: real measured/analytic ratios reach 100x+ for the
    // compact engines on volume-law circuits (the analytic node/bond
    // heuristics are deliberately cheap); the similarity weighting, not
    // the clamp, is what keeps extrapolation sane. Blending happens in
    // log space — ratios span orders of magnitude, and an arithmetic
    // mean would let one dissimilar 100x point swamp an exact 0.1x hit.
    const double ratio =
        std::clamp(p.measured_s / p.analytic_s, 1e-3, 1e3);
    wsum += w;
    acc += w * std::log(ratio);
  }
  if (wsum == 0.0) return 1.0;
  return std::clamp(std::exp(acc / wsum), 1e-3, 1e3);
}

TimeEstimate statevector_estimate(const qiskit::QuantumCircuit& qc,
                                  const CircuitFeatures& f,
                                  const CandidateConfig& cfg,
                                  const Calibration& calib,
                                  const sim::BackendOptions& base,
                                  std::uint64_t fused_sweeps) {
  TimeEstimate est;
  const bool fused = cfg.backend == "fused";
  const double isa_f = isa_speed_factor(cfg.isa);
  const double bw = (cfg.precision == "fp32" ? calib.sweep_bw_fp32_bps
                                             : calib.sweep_bw_fp64_bps) *
                    isa_f;
  const double state_bytes =
      std::ldexp(amp_bytes(cfg.precision), int(f.num_qubits));

  std::uint64_t sweeps;
  double dense_fraction;
  unsigned width;
  if (fused) {
    width = std::max(1u, cfg.fusion_width);
    sweeps = fused_sweeps != 0
                 ? fused_sweeps
                 // Analytic fallback: fusion packs ~1.2*width gates/block.
                 : std::max<std::uint64_t>(
                       1, std::uint64_t(double(f.unitary_gates) /
                                        (1.2 * double(width))));
    dense_fraction =
        f.fused_blocks == 0
            ? 1.0
            : double(f.dense_blocks) / double(f.fused_blocks);
  } else {
    width = 1;
    sweeps = std::max<std::uint64_t>(f.unitary_gates, 1);
    dense_fraction = 1.0;
  }

  // Per-sweep cost: bandwidth-bound floor, overtaken by the dense-kernel
  // arithmetic term as blocks widen (2^w MACs per amplitude).
  const double bw_s = kSweepTraffic * state_bytes / bw;
  const double amps = std::ldexp(1.0, int(f.num_qubits));
  const double flop_s = dense_fraction * amps * 8.0 *
                        std::ldexp(1.0, int(width)) /
                        (calib.dense_flops_ps * isa_f);
  // Block construction: plan_fusion composes each merged gate by a full
  // (2^w)x(2^w) matrix multiply — (2^w)^3 MACs per gate. Negligible at
  // w<=3, dominant for wide blocks on small states; this is what makes
  // max-width fusion lose on shallow registers.
  const double build_s =
      fused ? double(f.unitary_gates) * 8.0 * std::ldexp(1.0, 3 * int(width)) /
                  (calib.dense_flops_ps * isa_f)
            : 0.0;
  est.seconds = double(sweeps) * std::max(bw_s, flop_s) +
                double(sweeps) * calib.sweep_launch_s + build_s;
  est.error_bound = cfg.precision == "fp32"
                        ? fp32_error_bound(f.unitary_gates)
                        : fp64_error_bound(f.unitary_gates);
  sim::BackendOptions bo = base;
  bo.fp32 = cfg.precision == "fp32";
  bo.fusion.max_width = fused ? width : bo.fusion.max_width;
  est.mem_bytes = sim::Backend::memory_estimate_for(cfg.backend, qc, bo);
  est.detail = strfmt("%llu sweeps @ %s/s%s",
                      static_cast<unsigned long long>(sweeps),
                      human_bytes(std::uint64_t(bw)).c_str(),
                      flop_s > bw_s ? " (flop-bound)" : "");
  return est;
}

TimeEstimate dd_estimate(const qiskit::QuantumCircuit& qc,
                         const CircuitFeatures& f, const Calibration& calib,
                         const sim::BackendOptions& base) {
  TimeEstimate est;
  // Active node estimate from the entanglement proxy: structured
  // (low-bond) circuits keep diagrams near-linear, volume-law mixing
  // doubles per entangling layer. Exponent 2*bond+1 is a deliberate
  // over-estimate for rotation-heavy circuits (dense random states are
  // dd's worst case), tempered by the Clifford fraction.
  const double exp_raw =
      (2.0 * f.max_bond_exponent + 1.0) * (1.0 - 0.5 * f.clifford_fraction);
  const unsigned cap_exp = std::min(f.num_qubits + 1, 40u);
  const double node_exp = std::min(double(cap_exp), exp_raw);
  double est_nodes = std::pow(2.0, node_exp);
  if (base.dd.max_nodes > 0)
    est_nodes = std::min(est_nodes, double(base.dd.max_nodes));
  const std::uint64_t gates = std::max<std::uint64_t>(f.unitary_gates, 1);
  est.seconds =
      double(gates) * (calib.dd_gate_base_s + est_nodes * calib.dd_gate_node_s);
  est.error_bound = fp64_error_bound(gates);
  est.mem_bytes = sim::Backend::memory_estimate_for("dd", qc, base);
  est.detail = strfmt("~2^%.0f active nodes", node_exp);
  return est;
}

TimeEstimate mps_estimate(const qiskit::QuantumCircuit& qc,
                          const CircuitFeatures& f, const Calibration& calib,
                          const sim::BackendOptions& base) {
  TimeEstimate est;
  double chi = std::pow(2.0, std::min(f.mean_bond_exponent, 30.0));
  if (base.mps.max_bond > 0) chi = std::min(chi, double(base.mps.max_bond));
  const std::uint64_t g1 = f.unitary_gates - f.two_qubit_gates;
  est.seconds = double(g1) * 2.0 * chi * chi * calib.mps_unit1q_s +
                double(std::max<std::uint64_t>(f.mps_effective_2q, 1)) * 8.0 *
                    chi * chi * chi * calib.mps_unit2q_s;
  // Truncation, not rounding, dominates mps accuracy: each SVD may
  // discard up to `cutoff` squared weight.
  est.error_bound =
      base.mps.cutoff * double(std::max<std::uint64_t>(f.mps_effective_2q, 1)) +
      fp64_error_bound(f.unitary_gates);
  est.mem_bytes = sim::Backend::memory_estimate_for("mps", qc, base);
  est.detail = strfmt("chi~%.0f, %llu effective 2q", chi,
                      static_cast<unsigned long long>(f.mps_effective_2q));
  return est;
}

}  // namespace

double fp32_error_bound(std::uint64_t unitary_gates) {
  return kFp32GateError *
         std::sqrt(double(std::max<std::uint64_t>(unitary_gates, 1)));
}

double fp64_error_bound(std::uint64_t unitary_gates) {
  return kFp64GateError *
         std::sqrt(double(std::max<std::uint64_t>(unitary_gates, 1)));
}

double isa_speed_factor(sim::Isa isa) {
  switch (isa) {
    case sim::Isa::avx2: return 1.0;
    case sim::Isa::sse2: return 0.6;
    case sim::Isa::scalar: return 0.3;
  }
  return 1.0;
}

TimeEstimate time_estimate(const qiskit::QuantumCircuit& qc,
                           const CircuitFeatures& f,
                           const CandidateConfig& cfg,
                           const Calibration& calib,
                           const sim::BackendOptions& base,
                           std::uint64_t fused_sweeps) {
  TimeEstimate est;
  if (cfg.backend == "reference" || cfg.backend == "fused") {
    est = statevector_estimate(qc, f, cfg, calib, base, fused_sweeps);
  } else if (cfg.backend == "dd") {
    if (cfg.precision == "fp32") {
      est.supported = false;
      est.detail = "dd is double-precision only";
      return est;
    }
    est = dd_estimate(qc, f, calib, base);
  } else if (cfg.backend == "mps") {
    if (cfg.precision == "fp32") {
      est.supported = false;
      est.detail = "mps is double-precision only";
      return est;
    }
    est = mps_estimate(qc, f, calib, base);
  } else if (cfg.backend == "dist") {
    if (cfg.precision == "fp32") {
      est.supported = false;
      est.detail = "dist is double-precision only";
      return est;
    }
    // Replayed fused execution across ranks plus exchange overhead; the
    // single-process dist backend never beats local fused, so a flat
    // penalty over the fp64 fused model is honest enough for ranking.
    CandidateConfig fcfg = cfg;
    fcfg.backend = "fused";
    fcfg.fusion_width = base.fusion.max_width;
    est = statevector_estimate(qc, f, fcfg, calib, base, 0);
    est.seconds *= 1.5;
    est.mem_bytes = sim::Backend::memory_estimate_for("dist", qc, base);
    est.detail = "fused fp64 model x1.5 exchange overhead";
  } else {
    // Unknown to the model (an externally registered backend): price by
    // its own memory estimate and the reference sweep model so it still
    // ranks, but mark the detail.
    CandidateConfig rcfg = cfg;
    rcfg.backend = "reference";
    est = statevector_estimate(qc, f, rcfg, calib, base, 0);
    est.mem_bytes = sim::Backend::memory_estimate_for(cfg.backend, qc, base);
    est.detail = "no model for '" + cfg.backend + "'; reference sweep proxy";
  }
  est.seconds *= measured_scale(calib, cfg, f, est.seconds);
  return est;
}

TimeEstimate time_estimate_for(const std::string& backend,
                               const std::string& precision,
                               const qiskit::QuantumCircuit& qc,
                               const Calibration& calib,
                               const sim::BackendOptions& base) {
  const CircuitFeatures f = extract_features(qc, base.fusion);
  CandidateConfig cfg;
  cfg.backend = backend;
  cfg.precision = precision.empty() ? "fp64" : precision;
  cfg.isa = sim::active_isa();
  cfg.fusion_width = base.fusion.max_width;
  return time_estimate(qc, f, cfg, calib, base, f.fused_blocks);
}

}  // namespace qgear::route
