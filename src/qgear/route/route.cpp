#include "qgear/route/route.hpp"

#include <algorithm>
#include <cmath>

#include "qgear/common/strings.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"
#include "qgear/qiskit/transpile.hpp"

namespace qgear::route {

namespace {

obs::JsonValue config_json(const CandidateConfig& cfg) {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("backend", cfg.backend);
  j.set("precision", cfg.precision);
  j.set("isa", sim::isa_name(cfg.isa));
  j.set("fusion_width", cfg.fusion_width);
  return j;
}

/// Deterministic candidate ordering: feasible first, then cheaper, then
/// lower memory, then a stable config key. No wall-clock, no RNG.
bool candidate_less(const Candidate& a, const Candidate& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.seconds != b.seconds) return a.seconds < b.seconds;
  if (a.mem_bytes != b.mem_bytes) return a.mem_bytes < b.mem_bytes;
  const auto key = [](const Candidate& c) {
    return c.config.backend + "/" + c.config.precision + "/" +
           sim::isa_name(c.config.isa) + "/" +
           std::to_string(c.config.fusion_width);
  };
  return key(a) < key(b);
}

}  // namespace

obs::JsonValue Candidate::to_json() const {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("config", config_json(config));
  j.set("time_est_s", seconds);
  j.set("memory_est_bytes", mem_bytes);
  j.set("error_bound", error_bound);
  j.set("feasible", feasible);
  if (!reject_reason.empty()) j.set("reject_reason", reject_reason);
  if (!detail.empty()) j.set("detail", detail);
  return j;
}

obs::JsonValue Placement::to_json() const {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("feasible", feasible);
  if (feasible) j.set("choice", choice.to_json());
  obs::JsonValue alts{obs::JsonValue::Array{}};
  for (const Candidate& c : alternatives) alts.push_back(c.to_json());
  j.set("alternatives", std::move(alts));
  j.set("features", features.to_json());
  obs::JsonValue why{obs::JsonValue::Array{}};
  for (const std::string& line : rationale) why.push_back(line);
  j.set("rationale", std::move(why));
  return j;
}

Placement plan(const qiskit::QuantumCircuit& qc, const Budget& budget,
               const RouteOptions& opts) {
  obs::Span span("route.plan", "route");
  obs::Registry::global().counter("route.plans").add();

  Placement out;
  const qiskit::QuantumCircuit tqc = qiskit::transpile(qc);
  out.features = extract_features(tqc, opts.base.fusion);
  const CircuitFeatures& f = out.features;

  // Candidate space. ISA tiers up to best_supported (or just the active
  // one); fused widths from opts; fp32 only where the engine supports it.
  std::vector<sim::Isa> isas;
  if (opts.sweep_isa) {
    const sim::Isa best = sim::best_supported_isa();
    for (sim::Isa isa : {sim::Isa::scalar, sim::Isa::sse2, sim::Isa::avx2})
      if (static_cast<int>(isa) <= static_cast<int>(best)) isas.push_back(isa);
  } else {
    isas.push_back(sim::active_isa());
  }

  std::vector<CandidateConfig> configs;
  for (const char* prec : {"fp32", "fp64"}) {
    for (sim::Isa isa : isas) {
      configs.push_back({"reference", prec, isa, 0});
      for (unsigned w : opts.fusion_widths)
        configs.push_back({"fused", prec, isa, w});
    }
  }
  // Compact engines are ISA- and precision-invariant: one candidate each.
  if (sim::Backend::is_registered("dd"))
    configs.push_back({"dd", "fp64", sim::active_isa(), 0});
  if (sim::Backend::is_registered("mps"))
    configs.push_back({"mps", "fp64", sim::active_isa(), 0});
  if (opts.include_dist && sim::Backend::is_registered("dist"))
    configs.push_back({"dist", "fp64", sim::active_isa(), 0});

  // Fusion plans are priced once per width, shared across ISA/precision.
  std::vector<std::uint64_t> width_sweeps(opts.fusion_widths.size(), 0);
  for (std::size_t i = 0; i < opts.fusion_widths.size(); ++i) {
    sim::FusionOptions fo = opts.base.fusion;
    fo.max_width = opts.fusion_widths[i];
    width_sweeps[i] = sim::plan_fusion(tqc, fo).blocks.size();
  }

  const auto excluded = [&](const std::string& backend) {
    return std::find(opts.exclude_backends.begin(),
                     opts.exclude_backends.end(),
                     backend) != opts.exclude_backends.end();
  };

  auto& reg = obs::Registry::global();
  for (const CandidateConfig& cfg : configs) {
    if (excluded(cfg.backend)) {
      reg.counter("route.candidates_excluded").add();
      continue;
    }
    std::uint64_t sweeps = 0;
    if (cfg.backend == "fused") {
      for (std::size_t i = 0; i < opts.fusion_widths.size(); ++i)
        if (opts.fusion_widths[i] == cfg.fusion_width)
          sweeps = width_sweeps[i];
    }
    const TimeEstimate est =
        time_estimate(tqc, f, cfg, opts.calibration, opts.base, sweeps);
    reg.counter("route.candidates_considered").add();
    if (!est.supported) continue;

    Candidate c;
    c.config = cfg;
    c.seconds = est.seconds;
    c.mem_bytes = est.mem_bytes;
    c.error_bound = est.error_bound;
    c.detail = est.detail;
    if (budget.memory_bytes != 0 && est.mem_bytes > budget.memory_bytes) {
      c.feasible = false;
      c.reject_reason =
          strfmt("memory estimate %s exceeds budget %s",
                 human_bytes(est.mem_bytes).c_str(),
                 human_bytes(budget.memory_bytes).c_str());
      reg.counter("route.rejected.memory").add();
    } else if (est.error_bound > budget.max_error) {
      c.feasible = false;
      c.reject_reason = strfmt("error bound %.2e exceeds budget %.2e",
                               est.error_bound, budget.max_error);
      reg.counter("route.rejected.accuracy").add();
      if (cfg.precision == "fp32")
        reg.counter("route.fp32_forbidden").add();
    } else if (budget.time_s > 0.0 && est.seconds > budget.time_s) {
      c.feasible = false;
      c.reject_reason = strfmt("time estimate %s exceeds budget %s",
                               human_seconds(est.seconds).c_str(),
                               human_seconds(budget.time_s).c_str());
      reg.counter("route.rejected.time").add();
    }
    out.alternatives.push_back(std::move(c));
  }

  std::sort(out.alternatives.begin(), out.alternatives.end(), candidate_less);
  out.feasible = !out.alternatives.empty() && out.alternatives.front().feasible;

  // Rationale: what was chosen and the load-bearing reasons.
  if (!opts.exclude_backends.empty()) {
    out.rationale.push_back("excluded backends (degraded fallback): " +
                            join(opts.exclude_backends, ", "));
  }
  out.rationale.push_back(strfmt(
      "%u qubits, depth %u, %llu gates (%llu two-qubit), clifford %.0f%%, "
      "bond exponent max %u",
      f.num_qubits, f.depth, static_cast<unsigned long long>(f.unitary_gates),
      static_cast<unsigned long long>(f.two_qubit_gates),
      100.0 * f.clifford_fraction, f.max_bond_exponent));
  if (out.feasible) {
    const Candidate& ch = out.alternatives.front();
    out.choice = ch;
    out.rationale.push_back(strfmt(
        "chose %s/%s isa=%s width=%u: est %s, %s (%s)",
        ch.config.backend.c_str(), ch.config.precision.c_str(),
        sim::isa_name(ch.config.isa), ch.config.fusion_width,
        human_seconds(ch.seconds).c_str(), human_bytes(ch.mem_bytes).c_str(),
        ch.detail.c_str()));
    if (ch.config.precision == "fp64") {
      const double fp32_err = fp32_error_bound(f.unitary_gates);
      if (fp32_err > budget.max_error)
        out.rationale.push_back(
            strfmt("fp32 forbidden: propagated error %.2e > budget %.2e",
                   fp32_err, budget.max_error));
    }
    for (std::size_t i = 1; i < out.alternatives.size(); ++i) {
      const Candidate& alt = out.alternatives[i];
      if (!alt.feasible) break;
      if (alt.config.backend != ch.config.backend) {
        out.rationale.push_back(
            strfmt("runner-up %s/%s: est %s (%.1fx slower)",
                   alt.config.backend.c_str(), alt.config.precision.c_str(),
                   human_seconds(alt.seconds).c_str(),
                   ch.seconds > 0 ? alt.seconds / ch.seconds : 0.0));
        break;
      }
    }
    reg.counter("route.chosen." + ch.config.backend).add();
    if (ch.config.precision == "fp32") reg.counter("route.chosen_fp32").add();
    span.arg("backend", ch.config.backend);
    span.arg("precision", ch.config.precision);
    span.arg("time_est_s", ch.seconds);
  } else {
    std::string first_reason = out.alternatives.empty()
                                   ? std::string("no candidates")
                                   : out.alternatives.front().reject_reason;
    out.rationale.push_back("no candidate fits the budget (best-ranked: " +
                            first_reason + ")");
    reg.counter("route.infeasible").add();
    span.arg("backend", "none");
  }
  return out;
}

obs::JsonValue make_report(const std::vector<std::string>& names,
                           const std::vector<Placement>& placements,
                           const Budget& budget) {
  obs::JsonValue j{obs::JsonValue::Object{}};
  j.set("schema", "qgear.route.report/v1");
  obs::JsonValue b{obs::JsonValue::Object{}};
  b.set("memory_bytes", budget.memory_bytes);
  b.set("time_s", budget.time_s);
  b.set("max_error", budget.max_error);
  j.set("budget", std::move(b));
  obs::JsonValue arr{obs::JsonValue::Array{}};
  for (std::size_t i = 0; i < placements.size(); ++i) {
    obs::JsonValue e = placements[i].to_json();
    obs::JsonValue entry{obs::JsonValue::Object{}};
    entry.set("name", i < names.size() ? names[i] : "circuit");
    for (auto& [k, v] : e.object()) entry.set(k, std::move(v));
    arr.push_back(std::move(entry));
  }
  j.set("circuits", std::move(arr));
  return j;
}

}  // namespace qgear::route
