#include "qgear/platform/slurm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qgear::platform {

SlurmCluster::SlurmCluster(unsigned gpu_nodes, unsigned gpus_per_node,
                           unsigned hbm80_nodes, unsigned cpu_nodes) {
  QGEAR_CHECK_ARG(hbm80_nodes <= gpu_nodes,
                  "slurm: hbm80 nodes exceed gpu nodes");
  unsigned id = 0;
  for (unsigned i = 0; i < gpu_nodes; ++i) {
    nodes_.push_back({.id = id++, .gpus = gpus_per_node,
                      .hbm80g = i < hbm80_nodes});
    total_gpus_ += gpus_per_node;
  }
  for (unsigned i = 0; i < cpu_nodes; ++i) {
    nodes_.push_back({.id = id++, .gpus = 0, .hbm80g = false});
  }
  QGEAR_CHECK_ARG(!nodes_.empty(), "slurm: empty cluster");
}

std::uint64_t SlurmCluster::submit(JobRequest request) {
  QGEAR_CHECK_ARG(request.nodes >= 1, "slurm: job needs at least one node");
  QGEAR_CHECK_ARG(request.duration_s >= 0, "slurm: negative duration");
  JobRecord record;
  record.id = jobs_.size();
  record.request = std::move(request);
  record.submit_time = now_;
  jobs_.push_back(record);
  pending_.push_back(record.id);
  return record.id;
}

bool SlurmCluster::satisfies(const NodeState& node,
                             const JobRequest& req) const {
  const unsigned gpus_needed = req.tasks_per_node * req.gpus_per_task;
  if (req.constraint == "cpu") {
    return node.gpus == 0 && !node.busy_cpu;
  }
  if (req.constraint == "gpu" || req.constraint == "gpu&hbm80g") {
    if (node.gpus == 0) return false;
    if (req.constraint == "gpu&hbm80g" && !node.hbm80g) return false;
    return node.gpus - node.busy_gpus >= gpus_needed;
  }
  return false;
}

std::optional<std::vector<unsigned>> SlurmCluster::find_nodes(
    const JobRequest& req) const {
  std::vector<unsigned> chosen;
  for (const NodeState& node : nodes_) {
    if (satisfies(node, req)) {
      chosen.push_back(node.id);
      if (chosen.size() == req.nodes) return chosen;
    }
  }
  return std::nullopt;
}

void SlurmCluster::try_start_pending() {
  // FIFO with first-fit backfill: later jobs may start around a blocked
  // head job as long as resources allow.
  for (auto it = pending_.begin(); it != pending_.end();) {
    JobRecord& job = jobs_[*it];
    // Jobs that can never fit on an empty cluster fail immediately.
    const JobRequest& req = job.request;
    const auto placement = find_nodes(req);
    if (!placement) {
      // Check structural impossibility (more nodes than exist that could
      // ever satisfy it).
      unsigned eligible = 0;
      for (const NodeState& node : nodes_) {
        NodeState idle = node;
        idle.busy_gpus = 0;
        idle.busy_cpu = false;
        if (satisfies(idle, req)) ++eligible;
      }
      if (eligible < req.nodes) {
        job.state = JobState::failed;
        job.fail_reason = "unsatisfiable resource request";
        job.end_time = now_;
        it = pending_.erase(it);
        continue;
      }
      ++it;
      continue;
    }
    job.state = JobState::running;
    job.start_time = now_;
    job.end_time = now_ + req.duration_s;
    job.node_ids = *placement;
    const unsigned gpus_needed = req.tasks_per_node * req.gpus_per_task;
    for (unsigned node_id : job.node_ids) {
      if (req.constraint == "cpu") {
        nodes_[node_id].busy_cpu = true;
      } else {
        nodes_[node_id].busy_gpus += gpus_needed;
      }
    }
    it = pending_.erase(it);
  }
}

void SlurmCluster::run_until_idle() {
  try_start_pending();
  for (;;) {
    // Next completion event.
    double next_end = std::numeric_limits<double>::infinity();
    for (const JobRecord& job : jobs_) {
      if (job.state == JobState::running) {
        next_end = std::min(next_end, job.end_time);
      }
    }
    if (!std::isfinite(next_end)) break;  // nothing running
    now_ = next_end;
    for (JobRecord& job : jobs_) {
      if (job.state == JobState::running && job.end_time <= now_) {
        job.state = JobState::completed;
        const unsigned gpus_needed =
            job.request.tasks_per_node * job.request.gpus_per_task;
        for (unsigned node_id : job.node_ids) {
          if (job.request.constraint == "cpu") {
            nodes_[node_id].busy_cpu = false;
          } else {
            QGEAR_ENSURES(nodes_[node_id].busy_gpus >= gpus_needed);
            nodes_[node_id].busy_gpus -= gpus_needed;
          }
        }
      }
    }
    try_start_pending();
  }
  QGEAR_ENSURES(pending_.empty());
}

const JobRecord& SlurmCluster::job(std::uint64_t id) const {
  QGEAR_CHECK_ARG(id < jobs_.size(), "slurm: unknown job id");
  return jobs_[id];
}

UtilizationReport SlurmCluster::utilization() const {
  UtilizationReport report;
  double gpu_busy_seconds = 0.0;
  for (const JobRecord& job : jobs_) {
    if (job.state == JobState::completed) {
      ++report.completed;
      report.makespan_s = std::max(report.makespan_s, job.end_time);
      if (job.request.constraint != "cpu") {
        const double gpus = static_cast<double>(
            job.request.nodes * job.request.tasks_per_node *
            job.request.gpus_per_task);
        gpu_busy_seconds += gpus * (job.end_time - job.start_time);
      }
    } else if (job.state == JobState::failed) {
      ++report.failed;
    }
  }
  if (report.makespan_s > 0 && total_gpus_ > 0) {
    report.gpu_busy_fraction =
        gpu_busy_seconds / (report.makespan_s * total_gpus_);
  }
  return report;
}

}  // namespace qgear::platform
