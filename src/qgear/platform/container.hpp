// Container runtime simulation (Podman-HPC / Shifter, paper App. E).
//
// In the paper the container layer affects two measurable things: job
// startup latency (warm vs cold image caches across nodes) and environment
// reproducibility. We model exactly that: images are layer stacks with
// sizes, nodes keep an image cache, and launching a container returns the
// simulated startup delay. No real containers are involved — this feeds
// the pipeline driver and the Fig. 4b straggler analysis.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "qgear/common/error.hpp"
#include "qgear/perfmodel/specs.hpp"

namespace qgear::platform {

struct ImageLayer {
  std::string id;
  std::uint64_t size_bytes;
};

/// An OCI-style image: ordered layer stack plus environment defaults.
class ContainerImage {
 public:
  ContainerImage(std::string name, std::string tag,
                 std::vector<ImageLayer> layers);

  const std::string& name() const { return name_; }
  const std::string& tag() const { return tag_; }
  std::string reference() const { return name_ + ":" + tag_; }
  const std::vector<ImageLayer>& layers() const { return layers_; }
  std::uint64_t total_bytes() const;

  void set_env(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& env() const { return env_; }

  /// The image the paper deploys at NERSC: NVIDIA cu12 DevOps base plus
  /// Cray-MPICH, Qiskit, CUDA-Q and qgear layers (App. E.1).
  static ContainerImage nersc_podman_image();
  /// The cuda-quantum nightly Shifter image for multi-node mode (E.2).
  static ContainerImage shifter_multinode_image();

 private:
  std::string name_;
  std::string tag_;
  std::vector<ImageLayer> layers_;
  std::map<std::string, std::string> env_;
};

/// Result of launching one container on one node.
struct LaunchResult {
  double startup_seconds = 0.0;
  bool was_cold = false;
  std::uint64_t bytes_pulled = 0;
};

/// Per-node image cache + launch timing.
class ContainerRuntime {
 public:
  explicit ContainerRuntime(perfmodel::ContainerSpec timing,
                            double pull_bandwidth_bps = 1.2e9);

  /// True when every layer of `image` is cached on `node`.
  bool is_cached(unsigned node, const ContainerImage& image) const;

  /// Pre-pulls the image on a node (the paper's warm-up pass).
  void warm(unsigned node, const ContainerImage& image);

  /// Launches a container; cold nodes pay the pull + extraction cost and
  /// become warm. Deterministic — no wall-clock sleeps.
  LaunchResult launch(unsigned node, const ContainerImage& image);

  /// Worst-case startup over a whole allocation (a job waits for its
  /// slowest node).
  LaunchResult launch_allocation(const std::vector<unsigned>& nodes,
                                 const ContainerImage& image);

  std::size_t cached_layer_count(unsigned node) const;

 private:
  perfmodel::ContainerSpec timing_;
  double pull_bandwidth_bps_;
  std::map<unsigned, std::set<std::string>> node_cache_;
};

}  // namespace qgear::platform
