// End-to-end workflow driver (paper Fig. 2c and Sec. 2.4).
//
// Ties the pieces together the way the paper's Slurm scripts do: a batch
// of circuits becomes container launches + scheduler jobs on a modeled
// cluster, with per-job durations from the performance model. Two modes:
//   distributed — one circuit spread over all devices (nvidia-mgpu jobs)
//   parallel    — many circuits on separate single GPUs (nvidia-mqpu)
#pragma once

#include <span>

#include "qgear/perfmodel/model.hpp"
#include "qgear/platform/container.hpp"
#include "qgear/platform/slurm.hpp"

namespace qgear::platform {

enum class PipelineMode { distributed, parallel };

struct PipelineConfig {
  PipelineMode mode = PipelineMode::parallel;
  perfmodel::ClusterConfig cluster;   ///< devices = GPUs per circuit (mgpu)
  std::uint64_t shots = 0;
  bool prewarm_containers = true;     ///< warm every node's image cache
  ContainerImage image = ContainerImage::nersc_podman_image();
};

struct CircuitJobReport {
  std::string circuit_name;
  std::uint64_t job_id = 0;
  perfmodel::Estimate estimate;       ///< modeled simulation cost
  double container_startup_s = 0.0;
  double queue_wait_s = 0.0;
  double end_to_end_s = 0.0;          ///< startup + wait + run
};

struct PipelineReport {
  std::vector<CircuitJobReport> circuits;
  UtilizationReport utilization;
  double makespan_s = 0.0;
};

/// Simulates running `circuits` through the containerized Slurm pipeline
/// on a cluster sized `gpu_nodes * gpus_per_node`.
PipelineReport run_pipeline(std::span<const qiskit::QuantumCircuit> circuits,
                            const PipelineConfig& config,
                            unsigned gpu_nodes = 2);

}  // namespace qgear::platform
