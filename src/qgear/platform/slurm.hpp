// Slurm-like batch scheduler simulation (paper Sec. 2.4 / App. E.3).
//
// Event-driven: jobs request nodes/GPUs with constraints, a FIFO +
// first-fit-backfill scheduler places them on a modeled cluster, and the
// simulation advances virtual time until all jobs finish. Utilization
// accounting backs the paper's "~100% utilization of up to 1,024 GPUs"
// claim; benches drive it with the pipeline's job mix.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qgear/common/error.hpp"

namespace qgear::platform {

/// One modeled compute node.
struct NodeState {
  unsigned id = 0;
  unsigned gpus = 0;         ///< 0 for CPU nodes
  bool hbm80g = false;       ///< the paper's "gpu&hbm80g" constraint
  unsigned busy_gpus = 0;
  bool busy_cpu = false;
};

enum class JobState { pending, running, completed, failed };

/// sbatch-style request (subset of the paper's E.3 scripts).
struct JobRequest {
  std::string name = "job";
  unsigned nodes = 1;              ///< -N
  unsigned tasks_per_node = 1;     ///< --ntasks-per-node
  unsigned gpus_per_task = 0;      ///< --gpus-per-task (0 = CPU job)
  std::string constraint = "gpu";  ///< "cpu", "gpu", "gpu&hbm80g"
  double duration_s = 1.0;         ///< modeled runtime
};

struct JobRecord {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::pending;
  double submit_time = 0.0;
  double start_time = -1.0;
  double end_time = -1.0;
  std::vector<unsigned> node_ids;
  std::string fail_reason;
};

/// Cluster-wide usage summary.
struct UtilizationReport {
  double makespan_s = 0.0;
  double gpu_busy_fraction = 0.0;  ///< busy GPU-seconds / available
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

class SlurmCluster {
 public:
  /// Builds a cluster: `gpu_nodes` nodes of `gpus_per_node` A100s (the
  /// first `hbm80_nodes` of them with 80 GB parts) plus `cpu_nodes`.
  SlurmCluster(unsigned gpu_nodes, unsigned gpus_per_node,
               unsigned hbm80_nodes, unsigned cpu_nodes);

  /// Queues a job at the current simulation time; returns its id.
  std::uint64_t submit(JobRequest request);

  /// Runs the event loop until every submitted job has finished. Jobs that
  /// can never be placed are marked failed.
  void run_until_idle();

  const JobRecord& job(std::uint64_t id) const;
  const std::vector<JobRecord>& jobs() const { return jobs_; }
  double now() const { return now_; }
  unsigned total_gpus() const { return total_gpus_; }

  UtilizationReport utilization() const;

 private:
  bool satisfies(const NodeState& node, const JobRequest& req) const;
  std::optional<std::vector<unsigned>> find_nodes(const JobRequest& req)
      const;
  void try_start_pending();

  std::vector<NodeState> nodes_;
  std::vector<JobRecord> jobs_;
  std::vector<std::uint64_t> pending_;   // FIFO order
  double now_ = 0.0;
  unsigned total_gpus_ = 0;
};

}  // namespace qgear::platform
