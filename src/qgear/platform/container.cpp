#include "qgear/platform/container.hpp"

#include <algorithm>

#include "qgear/obs/metrics.hpp"

namespace qgear::platform {

ContainerImage::ContainerImage(std::string name, std::string tag,
                               std::vector<ImageLayer> layers)
    : name_(std::move(name)), tag_(std::move(tag)),
      layers_(std::move(layers)) {
  QGEAR_CHECK_ARG(!name_.empty(), "container: image name required");
  QGEAR_CHECK_ARG(!layers_.empty(), "container: image needs layers");
}

std::uint64_t ContainerImage::total_bytes() const {
  std::uint64_t total = 0;
  for (const ImageLayer& l : layers_) total += l.size_bytes;
  return total;
}

void ContainerImage::set_env(const std::string& key,
                             const std::string& value) {
  env_[key] = value;
}

ContainerImage ContainerImage::nersc_podman_image() {
  ContainerImage img("nersc/qgear-cudaq", "24.03",
                     {
                         {"cu12-devops-base", 4ull << 30},
                         {"cray-mpich", 800ull << 20},
                         {"qiskit+h5py", 500ull << 20},
                         {"cudaq-runtime", 2ull << 30},
                         {"qgear", 60ull << 20},
                     });
  img.set_env("MPICH_GPU_SUPPORT_ENABLED", "1");
  img.set_env("CUDAQ_DEFAULT_TARGET", "nvidia-mgpu");
  return img;
}

ContainerImage ContainerImage::shifter_multinode_image() {
  ContainerImage img("nersc/cudaq-nightly", "latest",
                     {
                         {"cudaq-nightly", 5ull << 30},
                         {"qiskit-aer+ibm-experiment", 700ull << 20},
                         {"qgear", 60ull << 20},
                     });
  img.set_env("SLURM_MPI_TYPE", "cray_shasta");
  return img;
}

ContainerRuntime::ContainerRuntime(perfmodel::ContainerSpec timing,
                                   double pull_bandwidth_bps)
    : timing_(timing), pull_bandwidth_bps_(pull_bandwidth_bps) {
  QGEAR_CHECK_ARG(pull_bandwidth_bps > 0,
                  "container: pull bandwidth must be positive");
}

bool ContainerRuntime::is_cached(unsigned node,
                                 const ContainerImage& image) const {
  const auto it = node_cache_.find(node);
  if (it == node_cache_.end()) return false;
  return std::all_of(image.layers().begin(), image.layers().end(),
                     [&](const ImageLayer& l) {
                       return it->second.count(l.id) != 0;
                     });
}

void ContainerRuntime::warm(unsigned node, const ContainerImage& image) {
  auto& cache = node_cache_[node];
  for (const ImageLayer& l : image.layers()) cache.insert(l.id);
}

LaunchResult ContainerRuntime::launch(unsigned node,
                                      const ContainerImage& image) {
  LaunchResult result;
  auto& cache = node_cache_[node];
  std::uint64_t missing = 0;
  for (const ImageLayer& l : image.layers()) {
    if (cache.count(l.id) == 0) missing += l.size_bytes;
  }
  auto& reg = obs::Registry::global();
  if (missing == 0) {
    result.startup_seconds = timing_.warm_start_s;
    reg.counter("container.warm_starts").add();
    return result;
  }
  result.was_cold = true;
  result.bytes_pulled = missing;
  // Cold start = fixed extraction cost + proportional pull time for the
  // layers this node lacks (layer dedup: cached layers are free).
  result.startup_seconds =
      timing_.cold_start_s +
      static_cast<double>(missing) / pull_bandwidth_bps_;
  warm(node, image);
  reg.counter("container.cold_starts").add();
  reg.counter("container.bytes_pulled").add(missing);
  return result;
}

LaunchResult ContainerRuntime::launch_allocation(
    const std::vector<unsigned>& nodes, const ContainerImage& image) {
  QGEAR_CHECK_ARG(!nodes.empty(), "container: empty allocation");
  LaunchResult worst;
  std::uint64_t pulled = 0;
  for (unsigned node : nodes) {
    const LaunchResult r = launch(node, image);
    pulled += r.bytes_pulled;
    if (r.startup_seconds > worst.startup_seconds) {
      worst.startup_seconds = r.startup_seconds;
      worst.was_cold = r.was_cold;
    }
  }
  worst.bytes_pulled = pulled;
  return worst;
}

std::size_t ContainerRuntime::cached_layer_count(unsigned node) const {
  const auto it = node_cache_.find(node);
  return it == node_cache_.end() ? 0 : it->second.size();
}

}  // namespace qgear::platform
