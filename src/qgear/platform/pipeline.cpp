#include "qgear/platform/pipeline.hpp"

#include "qgear/common/log.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/obs/metrics.hpp"
#include "qgear/obs/trace.hpp"

namespace qgear::platform {

PipelineReport run_pipeline(std::span<const qiskit::QuantumCircuit> circuits,
                            const PipelineConfig& config,
                            unsigned gpu_nodes) {
  QGEAR_CHECK_ARG(!circuits.empty(), "pipeline: no circuits");
  obs::Span pipeline_span(obs::Tracer::global(), "pipeline.run", "platform");
  if (pipeline_span.active()) {
    pipeline_span.arg("mode", config.mode == PipelineMode::distributed
                                  ? "distributed"
                                  : "parallel");
    pipeline_span.arg("circuits", std::uint64_t{circuits.size()});
  }
  auto& reg = obs::Registry::global();
  const unsigned gpn = config.cluster.net.gpus_per_node;

  SlurmCluster slurm(gpu_nodes, gpn, /*hbm80_nodes=*/gpu_nodes,
                     /*cpu_nodes=*/1);
  ContainerRuntime runtime(config.cluster.container);
  if (config.prewarm_containers) {
    for (unsigned node = 0; node < gpu_nodes + 1; ++node) {
      runtime.warm(node, config.image);
    }
  }

  PipelineReport report;
  report.circuits.reserve(circuits.size());

  for (const auto& qc : circuits) {
    obs::Span job_span(obs::Tracer::global(), "pipeline.submit", "platform");
    if (job_span.active()) job_span.arg("circuit", qc.name());
    CircuitJobReport cj;
    cj.circuit_name = qc.name();

    JobRequest req;
    req.name = qc.name();
    if (config.mode == PipelineMode::distributed) {
      // One circuit over all requested devices: -N nodes, all GPUs each.
      const unsigned devices =
          static_cast<unsigned>(config.cluster.devices);
      req.nodes = std::max(1u, devices / gpn);
      req.tasks_per_node = std::min(devices, gpn);
      req.gpus_per_task = 1;
      cj.estimate = perfmodel::estimate_gpu(qc, config.cluster,
                                            config.shots);
    } else {
      // Parallel mode: one GPU per circuit.
      req.nodes = 1;
      req.tasks_per_node = 1;
      req.gpus_per_task = 1;
      perfmodel::ClusterConfig single = config.cluster;
      single.devices = 1;
      cj.estimate = perfmodel::estimate_gpu(qc, single, config.shots);
    }

    std::vector<unsigned> alloc(req.nodes);
    for (unsigned i = 0; i < req.nodes; ++i) alloc[i] = i % gpu_nodes;
    const LaunchResult launch =
        runtime.launch_allocation(alloc, config.image);
    cj.container_startup_s = launch.startup_seconds;
    reg.histogram("platform.container_startup_s",
                  obs::Histogram::exponential(0.1, 4.0, 8))
        .observe(cj.container_startup_s);
    if (launch.was_cold) reg.counter("platform.cold_launches").add();

    req.duration_s = cj.estimate.feasible
                         ? cj.estimate.total_s() + cj.container_startup_s
                         : 0.0;
    if (!cj.estimate.feasible) {
      log::warn("pipeline: circuit '" + qc.name() + "' infeasible: " +
                cj.estimate.infeasible_reason);
      reg.counter("platform.jobs_infeasible").add();
      report.circuits.push_back(std::move(cj));
      continue;
    }
    cj.job_id = slurm.submit(req);
    reg.counter("platform.jobs_submitted").add();
    report.circuits.push_back(std::move(cj));
  }

  {
    obs::Span sched_span(obs::Tracer::global(), "pipeline.schedule",
                         "platform");
    slurm.run_until_idle();
  }

  for (CircuitJobReport& cj : report.circuits) {
    if (!cj.estimate.feasible) continue;
    const JobRecord& job = slurm.job(cj.job_id);
    if (job.state != JobState::completed) continue;
    cj.queue_wait_s = job.start_time - job.submit_time;
    cj.end_to_end_s = job.end_time - job.submit_time;
    reg.counter("platform.jobs_completed").add();
    reg.histogram("platform.queue_wait_s",
                  obs::Histogram::exponential(0.1, 4.0, 8))
        .observe(cj.queue_wait_s);
    // Job spans carry the *simulated* scheduler times as args; the span's
    // own wall clock is meaningless for a modeled run.
    obs::Span job_span(obs::Tracer::global(), "pipeline.job", "platform");
    if (job_span.active()) {
      job_span.arg("circuit", cj.circuit_name);
      job_span.arg("container_startup_s", cj.container_startup_s);
      job_span.arg("queue_wait_s", cj.queue_wait_s);
      job_span.arg("end_to_end_s", cj.end_to_end_s);
    }
  }
  report.utilization = slurm.utilization();
  report.makespan_s = report.utilization.makespan_s;
  reg.gauge("platform.gpu_busy_fraction")
      .set(report.utilization.gpu_busy_fraction);
  return report;
}

}  // namespace qgear::platform
