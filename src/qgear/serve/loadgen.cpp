#include "qgear/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <utility>

#include "qgear/circuits/qft.hpp"
#include "qgear/circuits/random_blocks.hpp"
#include "qgear/common/rng.hpp"
#include "qgear/common/strings.hpp"
#include "qgear/common/timer.hpp"

namespace qgear::serve {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

namespace {

obs::JsonValue latency_json(const LatencySummary& s) {
  obs::JsonValue o{obs::JsonValue::Object{}};
  o.set("count", std::uint64_t{s.count});
  o.set("p50_us", s.p50_us);
  o.set("p95_us", s.p95_us);
  o.set("p99_us", s.p99_us);
  o.set("mean_us", s.mean_us);
  o.set("max_us", s.max_us);
  return o;
}

}  // namespace

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  s.count = seconds.size();
  s.p50_us = percentile(seconds, 0.50) * 1e6;
  s.p95_us = percentile(seconds, 0.95) * 1e6;
  s.p99_us = percentile(seconds, 0.99) * 1e6;
  double sum = 0;
  for (const double v : seconds) sum += v;
  s.mean_us = sum / static_cast<double>(seconds.size()) * 1e6;
  s.max_us = seconds.back() * 1e6;
  return s;
}

LoadGenReport run_load(SimService& svc, const LoadGenOptions& opts) {
  QGEAR_CHECK_ARG(opts.total_jobs > 0, "loadgen: total_jobs must be > 0");
  QGEAR_CHECK_ARG(opts.arrival_rate_hz > 0,
                  "loadgen: arrival_rate_hz must be > 0");
  QGEAR_CHECK_ARG(opts.tenants > 0, "loadgen: tenants must be > 0");
  QGEAR_CHECK_ARG(opts.duplicate_ratio >= 0 && opts.duplicate_ratio <= 1,
                  "loadgen: duplicate_ratio must be in [0, 1]");
  Rng rng(opts.seed);

  // Hot pool: the repeated traffic. A qft_fraction share are QFT kernels
  // (width varied so they are distinct circuits); the rest are random
  // CX-block circuits with per-member seeds.
  std::vector<qiskit::QuantumCircuit> hot;
  const unsigned hot_count = std::max(1u, opts.hot_circuits);
  for (unsigned i = 0; i < hot_count; ++i) {
    if (static_cast<double>(i) <
        opts.qft_fraction * static_cast<double>(hot_count)) {
      const unsigned width =
          std::max(2u, opts.qubits - (i % std::min(3u, opts.qubits - 1)));
      auto qc = circuits::build_qft(width);
      qc.set_name(strfmt("hot_qft_%u", i));
      hot.push_back(std::move(qc));
    } else {
      circuits::RandomBlocksOptions ro;
      ro.num_qubits = opts.qubits;
      ro.num_blocks = opts.blocks;
      ro.seed = opts.seed * 1000003 + i;
      auto qc = circuits::generate_random_circuit(ro);
      qc.set_name(strfmt("hot_random_%u", i));
      hot.push_back(std::move(qc));
    }
  }

  struct PendingJob {
    std::string tenant;
    JobTicket ticket;
  };
  std::vector<PendingJob> jobs;
  jobs.reserve(opts.total_jobs);
  std::map<std::string, TenantReport> tenants;
  for (unsigned t = 0; t < opts.tenants; ++t) {
    tenants[strfmt("t%u", t)].tenant = strfmt("t%u", t);
  }

  LoadGenReport report;
  report.opts = opts;
  report.workers = svc.workers();
  report.queue_capacity = svc.options().scheduler.capacity;
  report.per_tenant_inflight = svc.options().scheduler.per_tenant_inflight;
  report.cache_enabled = svc.cache().enabled();
  report.cache_max_bytes = svc.cache().max_bytes();
  report.fp64 = svc.options().fp64;
  report.backend = svc.options().backend;
  report.memory_budget_bytes = svc.options().memory_budget_bytes;
  report.retry_max_attempts = svc.options().retry.max_attempts;
  report.retry_backoff_ms = svc.options().retry.backoff_ms;
  report.checkpoint_every = svc.options().checkpoint_every;

  WallTimer wall;
  const auto start = std::chrono::steady_clock::now();
  auto next_arrival = start;
  for (std::uint64_t j = 0; j < opts.total_jobs; ++j) {
    // Exponential inter-arrival: open-loop Poisson process.
    const double gap =
        -std::log(1.0 - rng.uniform()) / opts.arrival_rate_hz;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap));
    std::this_thread::sleep_until(next_arrival);

    JobSpec spec;
    spec.tenant = strfmt("t%u", static_cast<unsigned>(
                                    rng.uniform_u64(opts.tenants)));
    const double pri_draw = rng.uniform();
    if (pri_draw < opts.interactive_fraction) {
      spec.priority = Priority::interactive;
    } else if (pri_draw < opts.interactive_fraction + opts.batch_fraction) {
      spec.priority = Priority::batch;
    } else {
      spec.priority = Priority::normal;
    }
    if (rng.uniform() < opts.duplicate_ratio) {
      spec.circuit = hot[rng.uniform_u64(hot.size())];
    } else {
      circuits::RandomBlocksOptions ro;
      ro.num_qubits = opts.qubits;
      ro.num_blocks = opts.blocks;
      ro.seed = opts.seed * 2000003 + 7919 * (j + 1);  // unique per job
      spec.circuit = circuits::generate_random_circuit(ro);
      spec.circuit.set_name(strfmt("unique_%llu",
                                   static_cast<unsigned long long>(j)));
    }
    spec.queue_deadline_s = opts.queue_deadline_s;
    spec.timeout_s = opts.timeout_s;

    TenantReport& tr = tenants[spec.tenant];
    ++tr.submitted;
    ++report.submitted;
    JobTicket ticket = svc.submit(std::move(spec));
    if (!ticket.accepted()) {
      ++tr.rejected;
      // Exhaustive on purpose (-Wswitch): a new RejectReason must pick a
      // bucket here instead of silently counting as shutting_down.
      switch (ticket.reject_reason()) {
        case RejectReason::none:
          break;  // unreachable: accepted() was false
        case RejectReason::queue_full:
          ++report.rejected_queue_full;
          break;
        case RejectReason::tenant_limit:
          ++report.rejected_tenant_limit;
          break;
        case RejectReason::memory_budget:
          ++report.rejected_memory_budget;
          break;
        case RejectReason::shutting_down:
          ++report.rejected_shutting_down;
          break;
      }
      continue;
    }
    ++tr.accepted;
    ++report.accepted;
    jobs.push_back(PendingJob{tr.tenant, std::move(ticket)});
  }

  svc.drain();  // zero-drop guarantee: every accepted job reaches terminal
  report.wall_seconds = wall.seconds();

  std::vector<double> e2e, queue_wait, compile, execute, e2e_hit, e2e_miss;
  std::vector<double> est_execute;
  std::map<std::pair<std::string, std::string>, std::uint64_t> routed;
  std::map<std::string, std::vector<double>> tenant_e2e;
  for (PendingJob& pj : jobs) {
    const JobResult r = pj.ticket.result().get();
    queue_wait.push_back(r.queue_wait_s);
    e2e.push_back(r.e2e_s);
    est_execute.push_back(r.est_execute_s);
    ++routed[{r.backend, r.precision}];
    if (r.attempts > 1) {
      ++report.retried_jobs;
      report.retries_total += r.attempts - 1;
    }
    report.max_attempts_seen = std::max(report.max_attempts_seen, r.attempts);
    if (r.degraded) ++report.degraded_jobs;
    report.checkpoint_blocks_restored += r.checkpoint_blocks;
    switch (r.status) {
      case JobStatus::completed: {
        ++report.completed;
        ++tenants[pj.tenant].completed;
        tenant_e2e[pj.tenant].push_back(r.e2e_s);
        compile.push_back(r.compile_s);
        execute.push_back(r.execute_s);
        if (r.cache_hit) {
          ++report.cache_hits_among_completed;
          e2e_hit.push_back(r.e2e_s);
        } else {
          e2e_miss.push_back(r.e2e_s);
        }
        break;
      }
      case JobStatus::failed:
        ++report.failed;
        break;
      case JobStatus::cancelled:
        ++report.cancelled;
        break;
      case JobStatus::timed_out:
        ++report.timed_out;
        break;
      case JobStatus::deadline_expired:
        ++report.deadline_expired;
        break;
      case JobStatus::dropped:
        ++report.dropped_on_shutdown;
        break;
    }
  }
  report.dropped_on_shutdown += svc.dropped_jobs();
  report.throughput_jobs_per_s =
      report.wall_seconds > 0
          ? static_cast<double>(report.completed) / report.wall_seconds
          : 0.0;
  report.e2e = summarize_latency(std::move(e2e));
  report.queue_wait = summarize_latency(std::move(queue_wait));
  report.compile = summarize_latency(std::move(compile));
  report.execute = summarize_latency(std::move(execute));
  report.e2e_cache_hit = summarize_latency(std::move(e2e_hit));
  report.e2e_cache_miss = summarize_latency(std::move(e2e_miss));
  report.est_execute = summarize_latency(std::move(est_execute));
  for (const auto& [key, count] : routed) {
    report.routed.push_back(
        LoadGenReport::RoutedBucket{key.first, key.second, count});
  }
  report.cache = svc.cache().stats();
  for (auto& [name, tr] : tenants) {
    tr.p95_e2e_us = summarize_latency(std::move(tenant_e2e[name])).p95_us;
    report.tenants.push_back(std::move(tr));
  }
  return report;
}

obs::JsonValue LoadGenReport::to_json() const {
  using obs::JsonValue;
  JsonValue root{JsonValue::Object{}};
  root.set("schema", "qgear.serve.report/v1");

  JsonValue config{JsonValue::Object{}};
  config.set("workers", workers);
  config.set("queue_capacity", std::uint64_t{queue_capacity});
  config.set("per_tenant_inflight", std::uint64_t{per_tenant_inflight});
  config.set("cache_enabled", cache_enabled);
  config.set("cache_max_bytes", std::uint64_t{cache_max_bytes});
  config.set("precision", fp64 ? "fp64" : "fp32");
  config.set("backend", backend);
  config.set("memory_budget_bytes", std::uint64_t{memory_budget_bytes});
  config.set("tenants", opts.tenants);
  config.set("arrival_rate_hz", opts.arrival_rate_hz);
  config.set("duplicate_ratio", opts.duplicate_ratio);
  config.set("jobs", std::uint64_t{opts.total_jobs});
  config.set("qubits", opts.qubits);
  config.set("blocks", std::uint64_t{opts.blocks});
  config.set("hot_circuits", opts.hot_circuits);
  config.set("queue_deadline_s", opts.queue_deadline_s);
  config.set("timeout_s", opts.timeout_s);
  config.set("seed", std::uint64_t{opts.seed});
  config.set("retry_max_attempts", retry_max_attempts);
  config.set("retry_backoff_ms", retry_backoff_ms);
  config.set("checkpoint_every", std::uint64_t{checkpoint_every});
  root.set("config", std::move(config));

  JsonValue totals{JsonValue::Object{}};
  totals.set("submitted", std::uint64_t{submitted});
  totals.set("accepted", std::uint64_t{accepted});
  totals.set("completed", std::uint64_t{completed});
  totals.set("failed", std::uint64_t{failed});
  totals.set("cancelled", std::uint64_t{cancelled});
  totals.set("timed_out", std::uint64_t{timed_out});
  totals.set("deadline_expired", std::uint64_t{deadline_expired});
  totals.set("dropped_on_shutdown", std::uint64_t{dropped_on_shutdown});
  totals.set("rejected", std::uint64_t{rejected_total()});
  totals.set("rejected_queue_full", std::uint64_t{rejected_queue_full});
  totals.set("rejected_tenant_limit", std::uint64_t{rejected_tenant_limit});
  totals.set("rejected_shutting_down",
             std::uint64_t{rejected_shutting_down});
  totals.set("rejected_memory_budget",
             std::uint64_t{rejected_memory_budget});
  root.set("totals", std::move(totals));

  root.set("wall_seconds", wall_seconds);
  root.set("throughput_jobs_per_s", throughput_jobs_per_s);

  JsonValue resilience{JsonValue::Object{}};
  resilience.set("retried_jobs", std::uint64_t{retried_jobs});
  resilience.set("retries_total", std::uint64_t{retries_total});
  resilience.set("degraded_jobs", std::uint64_t{degraded_jobs});
  resilience.set("max_attempts_seen", max_attempts_seen);
  resilience.set("checkpoint_blocks_restored",
                 std::uint64_t{checkpoint_blocks_restored});
  root.set("resilience", std::move(resilience));

  JsonValue latency{JsonValue::Object{}};
  latency.set("e2e", latency_json(e2e));
  latency.set("queue_wait", latency_json(queue_wait));
  latency.set("compile", latency_json(compile));
  latency.set("execute", latency_json(execute));
  latency.set("e2e_cache_hit", latency_json(e2e_cache_hit));
  latency.set("e2e_cache_miss", latency_json(e2e_cache_miss));
  root.set("latency", std::move(latency));

  JsonValue cache_json{JsonValue::Object{}};
  cache_json.set("enabled", cache_enabled);
  cache_json.set("hits", std::uint64_t{cache.hits});
  cache_json.set("misses", std::uint64_t{cache.misses});
  cache_json.set("hit_rate", cache.hit_rate());
  cache_json.set("evictions", std::uint64_t{cache.evictions});
  cache_json.set("singleflight_waits",
                 std::uint64_t{cache.singleflight_waits});
  cache_json.set("bytes", std::uint64_t{cache.bytes});
  cache_json.set("entries", std::uint64_t{cache.entries});
  root.set("cache", std::move(cache_json));

  JsonValue admission{JsonValue::Object{}};
  admission.set("pricing", "time_estimate");
  admission.set("est_execute", latency_json(est_execute));
  JsonValue routed_json{JsonValue::Array{}};
  for (const RoutedBucket& rb : routed) {
    JsonValue b{JsonValue::Object{}};
    b.set("backend", rb.backend);
    b.set("precision", rb.precision);
    b.set("jobs", std::uint64_t{rb.jobs});
    routed_json.push_back(std::move(b));
  }
  admission.set("routed", std::move(routed_json));
  root.set("admission", std::move(admission));

  JsonValue tenants_json{JsonValue::Array{}};
  for (const TenantReport& tr : tenants) {
    JsonValue t{JsonValue::Object{}};
    t.set("tenant", tr.tenant);
    t.set("submitted", std::uint64_t{tr.submitted});
    t.set("accepted", std::uint64_t{tr.accepted});
    t.set("completed", std::uint64_t{tr.completed});
    t.set("rejected", std::uint64_t{tr.rejected});
    t.set("p95_e2e_us", tr.p95_e2e_us);
    tenants_json.push_back(std::move(t));
  }
  root.set("tenants", std::move(tenants_json));
  return root;
}

std::string LoadGenReport::summary() const {
  std::string out;
  out += strfmt(
      "serve load: %llu submitted, %llu accepted, %llu completed, "
      "%llu rejected (%llu queue_full / %llu tenant_limit / %llu "
      "shutting_down / %llu memory_budget), %llu expired, %llu timed out, "
      "%llu cancelled, %llu failed, %llu dropped\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected_total()),
      static_cast<unsigned long long>(rejected_queue_full),
      static_cast<unsigned long long>(rejected_tenant_limit),
      static_cast<unsigned long long>(rejected_shutting_down),
      static_cast<unsigned long long>(rejected_memory_budget),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(dropped_on_shutdown));
  out += strfmt("  wall %s, throughput %.1f jobs/s, workers %u, backend %s\n",
                human_seconds(wall_seconds).c_str(), throughput_jobs_per_s,
                workers, backend.c_str());
  const auto line = [](const char* name, const LatencySummary& s) {
    return strfmt("  %-11s p50 %s  p95 %s  p99 %s  max %s (n=%llu)\n", name,
                  human_seconds(s.p50_us / 1e6).c_str(),
                  human_seconds(s.p95_us / 1e6).c_str(),
                  human_seconds(s.p99_us / 1e6).c_str(),
                  human_seconds(s.max_us / 1e6).c_str(),
                  static_cast<unsigned long long>(s.count));
  };
  out += line("e2e", e2e);
  out += line("queue_wait", queue_wait);
  out += line("compile", compile);
  out += line("execute", execute);
  out += line("est_execute", est_execute);
  if (!routed.empty()) {
    out += "  routed:";
    for (const RoutedBucket& rb : routed) {
      out += strfmt(" %s/%s=%llu", rb.backend.c_str(), rb.precision.c_str(),
                    static_cast<unsigned long long>(rb.jobs));
    }
    out += "\n";
  }
  if (retried_jobs > 0 || degraded_jobs > 0) {
    out += strfmt(
        "  resilience: %llu jobs retried (%llu extra attempts, max %u), "
        "%llu degraded, %llu checkpointed blocks restored\n",
        static_cast<unsigned long long>(retried_jobs),
        static_cast<unsigned long long>(retries_total), max_attempts_seen,
        static_cast<unsigned long long>(degraded_jobs),
        static_cast<unsigned long long>(checkpoint_blocks_restored));
  }
  out += strfmt(
      "  cache %s: %llu hits / %llu misses (%.0f%% hit rate), "
      "%llu evictions, %llu single-flight waits, %s resident\n",
      cache_enabled ? "on" : "off",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.hit_rate() * 100,
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.singleflight_waits),
      human_bytes(cache.bytes).c_str());
  for (const TenantReport& tr : tenants) {
    out += strfmt("  tenant %-4s %4llu submitted %4llu completed "
                  "%4llu rejected  p95 %s\n",
                  tr.tenant.c_str(),
                  static_cast<unsigned long long>(tr.submitted),
                  static_cast<unsigned long long>(tr.completed),
                  static_cast<unsigned long long>(tr.rejected),
                  human_seconds(tr.p95_e2e_us / 1e6).c_str());
  }
  return out;
}

}  // namespace qgear::serve
