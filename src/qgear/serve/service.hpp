// SimService — the in-process multi-tenant online simulation service.
//
// Sits above the existing engines and turns them into a server:
//
//   submit(JobSpec) ── admission control ──> FairScheduler (bounded,
//     priority + weighted fair share, deadlines) ──> worker pool
//     (ThreadPool jobs) ──> CompilationCache (fingerprint-keyed,
//     single-flight) ──> fused-block execution with cooperative
//     cancellation/timeout checks between blocks ──> JobResult promise.
//
// Execution runs each job single-threaded (inter-job parallelism across
// the worker pool instead of intra-job sweeps), which is the right trade
// for many small concurrent circuits and avoids nesting parallel_for
// inside pool workers.
//
// Lifecycle: a service accepts jobs from construction until drain() /
// shutdown(). drain() stops admission and blocks until every accepted
// job reaches a terminal state — nothing is dropped. shutdown(graceful =
// false) instead completes still-queued jobs as JobStatus::dropped
// (running jobs always finish). Both are terminal: a drained service
// rejects new submissions with shutting_down. The destructor performs a
// graceful shutdown.
//
// Everything is instrumented through qgear::obs: serve.* counters and
// latency histograms (queue wait / compile / execute / e2e), plus a
// serve.job span per executed job.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "qgear/common/thread_pool.hpp"
#include "qgear/route/calibration.hpp"
#include "qgear/serve/compile_cache.hpp"
#include "qgear/serve/job.hpp"
#include "qgear/serve/scheduler.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/fusion.hpp"

namespace qgear::serve {

class SimService {
 public:
  struct Options {
    unsigned workers = 0;  ///< 0 = half of hardware_concurrency (min 1)
    FairScheduler::Options scheduler;
    CompilationCache::Options cache;
    sim::FusionOptions fusion;
    bool fp64 = false;  ///< execution precision (default fp32)
    /// Fair-share weights (absent tenants default to 1.0).
    std::map<std::string, double> tenant_weights;
    /// Default execution backend for jobs whose JobSpec leaves `backend`
    /// empty. "fused" keeps the cached fused-block fast path; any other
    /// registered name executes through sim::Backend; "auto" routes each
    /// job through route::plan (backend × precision × fusion width under
    /// the memory budget and `route_max_error`).
    std::string backend = "fused";
    /// Admission cap on a single job's backend memory_estimate, in bytes
    /// (0 = unlimited). The estimate is priced per backend — a dd/mps job
    /// is admitted by *its* structure-aware cost, never the 2^n
    /// statevector price.
    std::uint64_t memory_budget_bytes = 0;
    sim::DdEngine::Options dd;    ///< dd backend knobs (node budget)
    sim::MpsEngine::Options mps;  ///< mps backend knobs (cutoff/max bond)
    /// Accuracy budget the router enforces for `backend=auto` jobs: fp32
    /// (and aggressive mps truncation) are forbidden when the propagated
    /// error bound exceeds it.
    double route_max_error = 1e-4;
    /// Calibration for the router's time model. Prices admission (the
    /// fair-share cost is the estimated execute time) and backend=auto
    /// placement. Defaults to Calibration::host_default(), which honors
    /// QGEAR_ROUTE_CALIBRATION.
    route::Calibration calibration = route::Calibration::host_default();
  };

  SimService() : SimService(Options{}) {}
  explicit SimService(Options opts);
  ~SimService();  // graceful shutdown

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Admission-controlled submission; never blocks. Inspect
  /// ticket.accepted() / reject_reason().
  JobTicket submit(JobSpec spec);

  /// Stops admission and blocks until every accepted job is terminal.
  /// Terminal for the service: subsequent submits are rejected.
  void drain();

  /// drain() (graceful) or drop still-queued jobs (non-graceful), then
  /// stops the workers. Idempotent.
  void shutdown(bool graceful = true);

  const CompilationCache& cache() const { return cache_; }
  FairScheduler& scheduler() { return scheduler_; }
  unsigned workers() const { return num_workers_; }
  const Options& options() const { return opts_; }

  /// Engine stats accumulated over completed jobs.
  sim::EngineStats folded_stats() const;
  /// Jobs completed as JobStatus::dropped by a non-graceful shutdown.
  std::uint64_t dropped_jobs() const;

 private:
  void worker_loop();
  void process(FairScheduler::Popped popped);
  template <typename T>
  bool execute_plan(JobState& job, const CompiledCircuit& compiled,
                    sim::EngineStats* stats);
  bool execute_backend(JobState& job, sim::EngineStats* stats);
  void finish(JobState& job, JobResult&& result);
  sim::BackendOptions backend_options() const;

  Options opts_;
  unsigned num_workers_ = 1;
  FairScheduler scheduler_;
  CompilationCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex stats_mutex_;
  sim::EngineStats folded_stats_;
  bool shut_down_ = false;
  std::mutex lifecycle_mutex_;  // serializes drain/shutdown
};

}  // namespace qgear::serve
