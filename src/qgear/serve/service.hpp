// SimService — the in-process multi-tenant online simulation service.
//
// Sits above the existing engines and turns them into a server:
//
//   submit(JobSpec) ── admission control ──> FairScheduler (bounded,
//     priority + weighted fair share, deadlines) ──> worker pool
//     (ThreadPool jobs) ──> CompilationCache (fingerprint-keyed,
//     single-flight) ──> fused-block execution with cooperative
//     cancellation/timeout checks between blocks ──> JobResult promise.
//
// Execution runs each job single-threaded (inter-job parallelism across
// the worker pool instead of intra-job sweeps), which is the right trade
// for many small concurrent circuits and avoids nesting parallel_for
// inside pool workers.
//
// Lifecycle: a service accepts jobs from construction until drain() /
// shutdown(). drain() stops admission and blocks until every accepted
// job reaches a terminal state — nothing is dropped. shutdown(graceful =
// false) instead completes still-queued jobs as JobStatus::dropped
// (running jobs always finish). Both are terminal: a drained service
// rejects new submissions with shutting_down. The destructor performs a
// graceful shutdown.
//
// Everything is instrumented through qgear::obs: serve.* counters and
// latency histograms (queue wait / compile / execute / e2e), plus a
// serve.job span per executed job.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "qgear/common/thread_pool.hpp"
#include "qgear/route/calibration.hpp"
#include "qgear/serve/compile_cache.hpp"
#include "qgear/serve/job.hpp"
#include "qgear/serve/scheduler.hpp"
#include "qgear/sim/backend.hpp"
#include "qgear/sim/fusion.hpp"

namespace qgear::serve {

/// How the service retries transiently-failed jobs (injected faults,
/// worker aborts, comm errors — anything but an invalid-input class
/// error). Backed-off re-entries go through FairScheduler::push_retry,
/// so a retried job keeps its in-flight slot and fair-share identity.
struct RetryPolicy {
  /// Total attempts per job including the first (1 = never retry).
  unsigned max_attempts = 1;
  /// Base backoff before the second attempt, milliseconds.
  double backoff_ms = 10.0;
  /// Exponential growth per further attempt.
  double backoff_multiplier = 2.0;
  /// ± fraction of deterministic jitter (hash of job id and attempt).
  double jitter = 0.2;
  /// Cap on total retries per tenant (0 = unlimited). Exhausted budget
  /// fails the job instead of retrying (serve.retry_budget_exhausted).
  std::uint64_t tenant_retry_budget = 0;
};

class SimService {
 public:
  struct Options {
    unsigned workers = 0;  ///< 0 = half of hardware_concurrency (min 1)
    FairScheduler::Options scheduler;
    CompilationCache::Options cache;
    sim::FusionOptions fusion;
    bool fp64 = false;  ///< execution precision (default fp32)
    /// Fair-share weights (absent tenants default to 1.0).
    std::map<std::string, double> tenant_weights;
    /// Default execution backend for jobs whose JobSpec leaves `backend`
    /// empty. "fused" keeps the cached fused-block fast path; any other
    /// registered name executes through sim::Backend; "auto" routes each
    /// job through route::plan (backend × precision × fusion width under
    /// the memory budget and `route_max_error`).
    std::string backend = "fused";
    /// Admission cap on a single job's backend memory_estimate, in bytes
    /// (0 = unlimited). The estimate is priced per backend — a dd/mps job
    /// is admitted by *its* structure-aware cost, never the 2^n
    /// statevector price.
    std::uint64_t memory_budget_bytes = 0;
    sim::DdEngine::Options dd;    ///< dd backend knobs (node budget)
    sim::MpsEngine::Options mps;  ///< mps backend knobs (cutoff/max bond)
    /// Accuracy budget the router enforces for `backend=auto` jobs: fp32
    /// (and aggressive mps truncation) are forbidden when the propagated
    /// error bound exceeds it.
    double route_max_error = 1e-4;
    /// Calibration for the router's time model. Prices admission (the
    /// fair-share cost is the estimated execute time) and backend=auto
    /// placement. Defaults to Calibration::host_default(), which honors
    /// QGEAR_ROUTE_CALIBRATION.
    route::Calibration calibration = route::Calibration::host_default();
    /// Retry/backoff for transient job failures.
    RetryPolicy retry;
    /// Re-plan a job whose backend threw OutOfMemoryBudget onto the next
    /// feasible backend (route::plan with the failed ones excluded) and
    /// retry it immediately, marked degraded. Bounded: each degradation
    /// excludes one more backend.
    bool degrade_on_oom = true;
    /// Segment checkpointing for fused-path jobs: serialize the state to
    /// qh5 every N fused blocks so a retried attempt resumes instead of
    /// recomputing (0 = off). See docs/RESILIENCE.md for the format.
    std::uint64_t checkpoint_every = 0;
    /// Directory for checkpoint files (empty = the system temp dir).
    std::string checkpoint_dir;
  };

  SimService() : SimService(Options{}) {}
  explicit SimService(Options opts);
  ~SimService();  // graceful shutdown

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Admission-controlled submission; never blocks. Inspect
  /// ticket.accepted() / reject_reason().
  JobTicket submit(JobSpec spec);

  /// Stops admission and blocks until every accepted job is terminal.
  /// Terminal for the service: subsequent submits are rejected.
  void drain();

  /// drain() (graceful) or drop still-queued jobs (non-graceful), then
  /// stops the workers. Idempotent.
  void shutdown(bool graceful = true);

  const CompilationCache& cache() const { return cache_; }
  FairScheduler& scheduler() { return scheduler_; }
  unsigned workers() const { return num_workers_; }
  const Options& options() const { return opts_; }

  /// Engine stats accumulated over completed jobs.
  sim::EngineStats folded_stats() const;
  /// Jobs completed as JobStatus::dropped by a non-graceful shutdown.
  std::uint64_t dropped_jobs() const;

 private:
  void worker_loop();
  /// Runs one popped job to a terminal state OR defers it for retry.
  /// Returns true when the job was deferred (the scheduler slot is then
  /// released by push_retry/on_deferred_dropped, not on_finished).
  bool process(FairScheduler::Popped popped);
  template <typename T>
  bool execute_plan(JobState& job, const CompiledCircuit& compiled,
                    sim::EngineStats* stats, JobResult* result);
  bool execute_backend(JobState& job, sim::EngineStats* stats);
  void finish(JobState& job, JobResult&& result);
  sim::BackendOptions backend_options() const;

  /// Decides whether the failed attempt retries (with backoff), degrades
  /// to a fallback backend (on OOM), or fails for good. On retry/degrade
  /// the job is handed to the retry nurse and true is returned.
  bool maybe_retry(const std::shared_ptr<JobState>& job,
                   const std::string& error, bool oom);
  /// Re-plans an OOM-failed job with its failed backends excluded.
  bool try_degrade(JobState& job);
  void retry_loop();
  void enqueue_retry(std::shared_ptr<JobState> job, Clock::time_point due);
  /// Completes every job still parked in the retry nurse as dropped.
  void drop_deferred();
  /// Completes one deferred job as dropped and releases its slot.
  void complete_dropped(JobState& job);

  template <typename T>
  void save_checkpoint(JobState& job, const sim::StateVector<T>& state,
                       std::uint64_t blocks_done);
  template <typename T>
  std::uint64_t try_restore_checkpoint(JobState& job,
                                       sim::StateVector<T>* state);
  void remove_checkpoint(JobState& job);

  Options opts_;
  unsigned num_workers_ = 1;
  FairScheduler scheduler_;
  CompilationCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex stats_mutex_;
  sim::EngineStats folded_stats_;
  bool shut_down_ = false;
  std::mutex lifecycle_mutex_;  // serializes drain/shutdown

  // Retry nurse: a min-heap of deferred jobs ordered by due time,
  // drained by one thread that re-enqueues each job when its backoff
  // expires. Guarded by retry_mutex_.
  struct DeferredJob {
    Clock::time_point due;
    std::shared_ptr<JobState> job;
    bool operator>(const DeferredJob& o) const { return due > o.due; }
  };
  std::mutex retry_mutex_;
  std::condition_variable retry_cv_;
  std::vector<DeferredJob> retry_heap_;
  std::map<std::string, std::uint64_t> tenant_retries_;
  bool retry_stop_ = false;
  std::atomic<bool> dropping_{false};  ///< non-graceful shutdown in progress
  std::thread retry_thread_;
};

}  // namespace qgear::serve
