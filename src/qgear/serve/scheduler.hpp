// Admission-controlled job queue with priority classes and weighted
// fair share across tenants.
//
// Admission (push) is bounded twice: a global queue capacity and a
// per-tenant in-flight cap (queued + running). Both reject immediately
// with a reason instead of blocking — backpressure is the submitter's
// problem, by design.
//
// Scheduling (pop) picks the highest non-empty priority class, then the
// tenant in that class with the smallest virtual time ("pass"), i.e.
// start-time weighted fair queuing: a tenant's pass advances by
// cost / weight per scheduled job, so tenants with equal weights split a
// saturated worker pool evenly regardless of how unequal their submission
// rates are, and a weight-2 tenant gets twice the share of a weight-1
// tenant. A tenant going idle does not bank credit: on re-activation its
// pass is clamped to the current virtual time.
//
// Queue deadlines are enforced at pop: an expired job is still handed to
// the worker (flagged) so its promise is completed, but costs no pass.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qgear/serve/job.hpp"

namespace qgear::serve {

class FairScheduler {
 public:
  struct Options {
    std::size_t capacity = 256;            ///< global queued-job bound
    std::size_t per_tenant_inflight = 64;  ///< queued + running per tenant
  };

  /// One scheduling decision.
  struct Popped {
    std::shared_ptr<JobState> job;
    bool expired = false;  ///< queue deadline had passed at pop time
  };

  FairScheduler() : FairScheduler(Options{}) {}
  explicit FairScheduler(Options opts);

  /// Fair-share weight for `tenant` (default 1.0). Takes effect for
  /// subsequent scheduling decisions.
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Admission control. Returns RejectReason::none and enqueues, or the
  /// reason the job was refused (never blocks).
  RejectReason push(std::shared_ptr<JobState> job);

  /// Blocks until a job is schedulable or the scheduler is closed and
  /// drained; false means no more jobs will ever arrive (worker exits).
  /// Every popped job MUST be matched by one on_finished() call.
  bool pop(Popped* out);

  /// Non-blocking pop; false when nothing is queued.
  bool try_pop(Popped* out);

  /// Releases the in-flight slot taken by a popped job once it reaches a
  /// terminal state.
  void on_finished(const std::string& tenant);

  /// Moves a popped job from "running" to "deferred": the worker is done
  /// with it for now, but a retry will re-enter it via push_retry() — so
  /// its in-flight slot stays held and pop()/wait_idle() keep waiting.
  /// Call INSTEAD of on_finished (exactly one of the two per pop).
  void defer(const std::string& tenant);

  /// Re-enqueues a deferred job for another attempt. Skips admission
  /// (the job's slot never left) and works after close_submissions(), so
  /// retries complete during a graceful drain.
  void push_retry(std::shared_ptr<JobState> job);

  /// Releases a deferred job's slot without re-running it (non-graceful
  /// shutdown: the caller completes it as dropped).
  void on_deferred_dropped(const std::string& tenant);

  /// Stops admission (push returns shutting_down). Queued jobs continue
  /// to pop; once the queue drains, pop returns false.
  void close_submissions();
  bool closed() const;

  /// Removes and returns every queued job without scheduling them —
  /// non-graceful shutdown; the caller completes them as dropped. Their
  /// in-flight slots are released here (do not call on_finished).
  std::vector<std::shared_ptr<JobState>> drain_queued();

  std::size_t queued() const;
  std::size_t running() const;
  std::size_t deferred() const;

  /// Blocks until no job is queued, running, or deferred for retry.
  void wait_idle();

 private:
  struct Tenant {
    double weight = 1.0;
    double pass = 0.0;
    std::size_t inflight = 0;  ///< queued + running
    std::size_t queued = 0;
    std::deque<std::shared_ptr<JobState>> queues[kNumPriorities];
  };

  bool pop_locked(Popped* out);

  Options opts_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;
  std::condition_variable idle_cv_;
  std::map<std::string, Tenant> tenants_;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t deferred_ = 0;  ///< awaiting retry (slot held, not queued)
  double vtime_ = 0.0;  ///< pass of the most recently scheduled tenant
  bool closed_ = false;
};

}  // namespace qgear::serve
