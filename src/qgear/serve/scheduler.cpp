#include "qgear/serve/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "qgear/common/error.hpp"
#include "qgear/obs/metrics.hpp"

namespace qgear::serve {

namespace {

obs::Gauge& queued_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.sched.queued");
  return g;
}
obs::Gauge& running_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.sched.running");
  return g;
}
obs::Gauge& deferred_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.sched.deferred");
  return g;
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::interactive:
      return "interactive";
    case Priority::normal:
      return "normal";
    case Priority::batch:
      return "batch";
  }
  return "unknown";
}

std::optional<Priority> priority_from_name(const std::string& name) {
  for (int i = 0; i < kNumPriorities; ++i) {
    const Priority p = static_cast<Priority>(i);
    if (name == priority_name(p)) return p;
  }
  return std::nullopt;
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::none:
      return "none";
    case RejectReason::queue_full:
      return "queue_full";
    case RejectReason::tenant_limit:
      return "tenant_limit";
    case RejectReason::shutting_down:
      return "shutting_down";
    case RejectReason::memory_budget:
      return "memory_budget";
  }
  return "unknown";
}

std::optional<RejectReason> reject_reason_from_name(const std::string& name) {
  for (int i = 0; i < kNumRejectReasons; ++i) {
    const RejectReason r = static_cast<RejectReason>(i);
    if (name == reject_reason_name(r)) return r;
  }
  return std::nullopt;
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::completed:
      return "completed";
    case JobStatus::deadline_expired:
      return "deadline_expired";
    case JobStatus::timed_out:
      return "timed_out";
    case JobStatus::cancelled:
      return "cancelled";
    case JobStatus::dropped:
      return "dropped";
    case JobStatus::failed:
      return "failed";
  }
  return "unknown";
}

std::optional<JobStatus> job_status_from_name(const std::string& name) {
  for (int i = 0; i < kNumJobStatuses; ++i) {
    const JobStatus s = static_cast<JobStatus>(i);
    if (name == job_status_name(s)) return s;
  }
  return std::nullopt;
}

FairScheduler::FairScheduler(Options opts) : opts_(opts) {
  QGEAR_CHECK_ARG(opts_.capacity > 0, "scheduler: capacity must be > 0");
  QGEAR_CHECK_ARG(opts_.per_tenant_inflight > 0,
                  "scheduler: per-tenant in-flight cap must be > 0");
}

void FairScheduler::set_tenant_weight(const std::string& tenant,
                                      double weight) {
  QGEAR_CHECK_ARG(weight > 0.0, "scheduler: tenant weight must be > 0");
  std::lock_guard<std::mutex> lock(mutex_);
  tenants_[tenant].weight = weight;
}

RejectReason FairScheduler::push(std::shared_ptr<JobState> job) {
  QGEAR_EXPECTS(job != nullptr);
  const int pri = static_cast<int>(job->spec.priority);
  QGEAR_CHECK_ARG(pri >= 0 && pri < kNumPriorities,
                  "scheduler: priority out of range");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return RejectReason::shutting_down;
    if (queued_ >= opts_.capacity) return RejectReason::queue_full;
    Tenant& t = tenants_[job->spec.tenant];
    if (t.inflight >= opts_.per_tenant_inflight) {
      return RejectReason::tenant_limit;
    }
    if (t.queued == 0) {
      // Re-activating tenant: no banked credit from its idle period.
      t.pass = std::max(t.pass, vtime_);
    }
    t.queues[pri].push_back(std::move(job));
    ++t.queued;
    ++t.inflight;
    ++queued_;
    queued_gauge().set(static_cast<double>(queued_));
  }
  pop_cv_.notify_one();
  return RejectReason::none;
}

bool FairScheduler::pop_locked(Popped* out) {
  if (queued_ == 0) return false;
  for (int pri = 0; pri < kNumPriorities; ++pri) {
    Tenant* best = nullptr;
    for (auto& [name, t] : tenants_) {
      if (t.queues[pri].empty()) continue;
      if (best == nullptr || t.pass < best->pass) best = &t;
    }
    if (best == nullptr) continue;
    std::shared_ptr<JobState> job = std::move(best->queues[pri].front());
    best->queues[pri].pop_front();
    --best->queued;
    --queued_;
    ++running_;
    out->job = std::move(job);
    out->expired = out->job->has_deadline() &&
                   Clock::now() > out->job->deadline;
    if (!out->expired) {
      vtime_ = best->pass;
      best->pass += out->job->cost / best->weight;
    }
    queued_gauge().set(static_cast<double>(queued_));
    running_gauge().set(static_cast<double>(running_));
    return true;
  }
  return false;  // unreachable while queued_ > 0
}

bool FairScheduler::pop(Popped* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (pop_locked(out)) return true;
    // Workers may only exit when nothing can produce more work: running
    // jobs can defer for retry and deferred jobs re-enter the queue, so
    // both must have drained along with the queue itself.
    if (closed_ && queued_ == 0 && running_ == 0 && deferred_ == 0) {
      return false;
    }
    pop_cv_.wait(lock);
  }
}

bool FairScheduler::try_pop(Popped* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked(out);
}

void FairScheduler::on_finished(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    QGEAR_EXPECTS(it != tenants_.end() && it->second.inflight > 0);
    QGEAR_EXPECTS(running_ > 0);
    --it->second.inflight;
    --running_;
    running_gauge().set(static_cast<double>(running_));
  }
  idle_cv_.notify_all();
  // A closed scheduler's pop() waiters gate on running_ reaching zero.
  pop_cv_.notify_all();
}

void FairScheduler::defer(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  QGEAR_EXPECTS(it != tenants_.end() && it->second.inflight > 0);
  QGEAR_EXPECTS(running_ > 0);
  --running_;
  ++deferred_;
  running_gauge().set(static_cast<double>(running_));
  deferred_gauge().set(static_cast<double>(deferred_));
  // No notify: the job's in-flight slot stays held, so neither pop()
  // waiters (no new work yet) nor wait_idle() (still busy) can advance.
}

void FairScheduler::push_retry(std::shared_ptr<JobState> job) {
  QGEAR_EXPECTS(job != nullptr);
  const int pri = static_cast<int>(job->spec.priority);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QGEAR_EXPECTS(deferred_ > 0);
    Tenant& t = tenants_[job->spec.tenant];
    if (t.queued == 0) t.pass = std::max(t.pass, vtime_);
    job->last_enqueue = Clock::now();
    t.queues[pri].push_back(std::move(job));
    ++t.queued;
    --deferred_;
    ++queued_;
    queued_gauge().set(static_cast<double>(queued_));
    deferred_gauge().set(static_cast<double>(deferred_));
  }
  pop_cv_.notify_one();
}

void FairScheduler::on_deferred_dropped(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    QGEAR_EXPECTS(it != tenants_.end() && it->second.inflight > 0);
    QGEAR_EXPECTS(deferred_ > 0);
    --it->second.inflight;
    --deferred_;
    deferred_gauge().set(static_cast<double>(deferred_));
  }
  idle_cv_.notify_all();
  pop_cv_.notify_all();
}

void FairScheduler::close_submissions() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  pop_cv_.notify_all();
  idle_cv_.notify_all();
}

bool FairScheduler::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<std::shared_ptr<JobState>> FairScheduler::drain_queued() {
  std::vector<std::shared_ptr<JobState>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, t] : tenants_) {
      for (auto& queue : t.queues) {
        for (auto& job : queue) {
          QGEAR_EXPECTS(t.inflight > 0);
          --t.inflight;
          out.push_back(std::move(job));
        }
        queue.clear();
      }
      t.queued = 0;
    }
    queued_ = 0;
    queued_gauge().set(0);
  }
  idle_cv_.notify_all();
  return out;
}

std::size_t FairScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t FairScheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::size_t FairScheduler::deferred() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deferred_;
}

void FairScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return queued_ == 0 && running_ == 0 && deferred_ == 0;
  });
}

}  // namespace qgear::serve
