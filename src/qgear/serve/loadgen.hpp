// Synthetic open-loop load generator for SimService, plus the
// qgear.serve.report/v1 aggregation it emits.
//
// Open loop means arrivals follow a Poisson process at a configured rate
// regardless of service backlog — the standard way to expose queueing
// behaviour (closed-loop generators self-throttle and hide it). Each
// arrival draws a tenant, a priority class, and a circuit: with
// probability `duplicate_ratio` a member of a small hot pool (repeated
// traffic the compilation cache can win on), otherwise a fresh unique
// circuit. After the last submission the service is drained and every
// ticket's result is folded into the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qgear/obs/json.hpp"
#include "qgear/serve/service.hpp"

namespace qgear::serve {

struct LoadGenOptions {
  std::uint64_t total_jobs = 400;
  double arrival_rate_hz = 400.0;  ///< open-loop Poisson arrival rate
  unsigned tenants = 4;            ///< tenant names "t0".."t{N-1}"
  double duplicate_ratio = 0.5;    ///< P(job reuses a hot-pool circuit)
  unsigned hot_circuits = 8;       ///< distinct circuits in the hot pool
  unsigned qubits = 10;
  std::uint64_t blocks = 120;      ///< CX blocks per random circuit
  double qft_fraction = 0.25;      ///< hot-pool share built as QFT kernels
  double interactive_fraction = 0.2;
  double batch_fraction = 0.2;     ///< rest is Priority::normal
  double queue_deadline_s = 0.0;   ///< per-job queue deadline (0 = none)
  double timeout_s = 0.0;          ///< per-job execution budget (0 = none)
  std::uint64_t seed = 1;
};

/// Order statistics of one latency component, in microseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double max_us = 0;
};

/// Linear-interpolated order statistic over an ascending-sorted sample
/// (p in [0,1]). Empty input yields 0; a single sample is every
/// percentile of itself.
double percentile(const std::vector<double>& sorted, double p);

LatencySummary summarize_latency(std::vector<double> seconds);

struct TenantReport {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double p95_e2e_us = 0;
};

struct LoadGenReport {
  LoadGenOptions opts;
  // Service configuration echo (for the report's config block).
  unsigned workers = 0;
  std::size_t queue_capacity = 0;
  std::size_t per_tenant_inflight = 0;
  bool cache_enabled = true;
  std::uint64_t cache_max_bytes = 0;
  bool fp64 = false;
  std::string backend = "fused";
  std::uint64_t memory_budget_bytes = 0;  ///< 0 = unlimited
  // Resilience configuration echo.
  unsigned retry_max_attempts = 1;
  double retry_backoff_ms = 0;
  std::uint64_t checkpoint_every = 0;

  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t dropped_on_shutdown = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_limit = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_memory_budget = 0;
  std::uint64_t cache_hits_among_completed = 0;

  double wall_seconds = 0;  ///< first submit -> drain complete
  double throughput_jobs_per_s = 0;

  LatencySummary e2e;
  LatencySummary queue_wait;
  LatencySummary compile;
  LatencySummary execute;
  /// e2e restricted to completed jobs whose compile was a cache hit/miss
  /// (the cache-win comparison the report exists to make).
  LatencySummary e2e_cache_hit;
  LatencySummary e2e_cache_miss;

  CompilationCache::Stats cache;
  std::vector<TenantReport> tenants;

  /// Admission pricing (router time model): distribution of the per-job
  /// execute-time estimates that now drive the fair-share cost, and the
  /// resolved backend × precision mix (one bucket per combination —
  /// non-trivial when the service backend is "auto").
  LatencySummary est_execute;
  struct RoutedBucket {
    std::string backend;
    std::string precision;
    std::uint64_t jobs = 0;
  };
  std::vector<RoutedBucket> routed;

  /// Resilience outcomes across all accepted jobs (docs/RESILIENCE.md):
  /// how many jobs needed more than one attempt, the total extra attempts
  /// spent, jobs downgraded to a fallback backend, and fused blocks the
  /// retries recovered from segment checkpoints instead of recomputing.
  std::uint64_t retried_jobs = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t degraded_jobs = 0;
  unsigned max_attempts_seen = 1;
  std::uint64_t checkpoint_blocks_restored = 0;

  std::uint64_t rejected_total() const {
    return rejected_queue_full + rejected_tenant_limit +
           rejected_shutting_down + rejected_memory_budget;
  }

  /// Serializes as qgear.serve.report/v1 (docs/serve_report.schema.json).
  obs::JsonValue to_json() const;
  /// Human-readable multi-line summary for the CLI.
  std::string summary() const;
};

/// Runs the load described by `opts` against `svc` (which must be fresh:
/// accepting jobs, idle). Drains the service before returning, so the
/// service is terminal afterwards.
LoadGenReport run_load(SimService& svc, const LoadGenOptions& opts);

}  // namespace qgear::serve
