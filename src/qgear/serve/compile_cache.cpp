#include "qgear/serve/compile_cache.hpp"

#include <utility>

#include "qgear/obs/metrics.hpp"
#include "qgear/qiskit/transpile.hpp"

namespace qgear::serve {

namespace {

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.cache.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.cache.misses");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.cache.evictions");
  return c;
}
obs::Counter& singleflight_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.cache.singleflight_waits");
  return c;
}
obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.cache.bytes");
  return g;
}
obs::Gauge& entries_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.cache.entries");
  return g;
}

}  // namespace

std::uint64_t compiled_footprint_bytes(const CompiledCircuit& cc) {
  std::uint64_t bytes = sizeof(CompiledCircuit);
  bytes += cc.transpiled.size() * sizeof(qiskit::Instruction);
  bytes += cc.tensor.byte_size();
  for (const sim::FusedBlock& b : cc.plan.blocks) {
    bytes += (b.matrix.size() + b.diag.size() + b.phases.size()) *
             sizeof(std::complex<double>);
    bytes += b.perm.size() * sizeof(std::uint32_t);
    bytes += b.qubits.size() * sizeof(unsigned);
    bytes += sizeof(sim::FusedBlock);
  }
  bytes += cc.plan.measured.size() * sizeof(unsigned);
  return bytes;
}

std::shared_ptr<const CompiledCircuit> compile_circuit(
    const qiskit::QuantumCircuit& qc, const sim::FusionOptions& fusion) {
  auto cc = std::make_shared<CompiledCircuit>();
  cc->transpiled = qiskit::transpile(qc);
  cc->tensor = core::encode_circuits({&cc->transpiled, 1});
  cc->plan = sim::plan_fusion(cc->transpiled, fusion);
  cc->num_qubits = qc.num_qubits();
  cc->byte_size = compiled_footprint_bytes(*cc);
  return cc;
}

CompilationCache::CompilationCache(Options opts) : opts_(opts) {}

std::shared_ptr<const CompiledCircuit> CompilationCache::get_or_compile(
    std::uint64_t key, const Compiler& compile, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  if (!opts_.enabled) {
    return compile();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  bool counted_wait = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // this caller compiles
    if (it->second.compiling) {
      if (!counted_wait) {
        counted_wait = true;
        ++stats_.singleflight_waits;
        singleflight_counter().add();
      }
      ready_cv_.wait(lock);
      continue;  // re-check: ready, or erased after a failed compile
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++stats_.hits;
    hits_counter().add();
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second.value;
  }

  ++stats_.misses;
  misses_counter().add();
  entries_.emplace(key, Entry{});  // claims the key (compiling == true)
  lock.unlock();

  std::shared_ptr<const CompiledCircuit> value;
  try {
    value = compile();
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    ready_cv_.notify_all();
    throw;
  }

  lock.lock();
  Entry& entry = entries_[key];
  entry.value = value;
  entry.compiling = false;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  stats_.bytes += value->byte_size;
  stats_.entries = lru_.size();
  evict_over_budget_locked();
  bytes_gauge().set(static_cast<double>(stats_.bytes));
  entries_gauge().set(static_cast<double>(stats_.entries));
  ready_cv_.notify_all();
  return value;
}

void CompilationCache::evict_over_budget_locked() {
  // Never evicts the most recent entry, so a single over-budget artifact
  // still caches (and still bounds steady-state growth).
  while (stats_.bytes > opts_.max_bytes && lru_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.value->byte_size;
    entries_.erase(it);
    ++stats_.evictions;
    evictions_counter().add();
  }
  stats_.entries = lru_.size();
}

CompilationCache::Stats CompilationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CompilationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint64_t key : lru_) entries_.erase(key);
  lru_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  bytes_gauge().set(0);
  entries_gauge().set(0);
}

}  // namespace qgear::serve
