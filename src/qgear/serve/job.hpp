// Job model for the online simulation service.
//
// A job is one circuit submitted by one tenant with a priority class and
// optional queue deadline / execution timeout. Submission hands back a
// JobTicket (job id + shared future + cancellation hook); the service
// fulfils the future exactly once with a JobResult describing how the job
// ended and where its latency went (queue wait / compile / execute).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qgear/obs/context.hpp"
#include "qgear/qiskit/circuit.hpp"
#include "qgear/sim/stats.hpp"

namespace qgear::serve {

/// Scheduling class. Lower value = more urgent; the scheduler always
/// exhausts a class before looking at the next (fair share applies only
/// between tenants inside one class).
enum class Priority : int {
  interactive = 0,  ///< latency-sensitive foreground traffic
  normal = 1,       ///< default
  batch = 2,        ///< throughput traffic, preempted by everything above
};
inline constexpr int kNumPriorities = 3;

const char* priority_name(Priority p);
/// Inverse of priority_name(); nullopt for unrecognized names.
std::optional<Priority> priority_from_name(const std::string& name);

/// Why admission control refused a submission.
enum class RejectReason : int {
  none = 0,
  queue_full,     ///< global bounded queue at capacity
  tenant_limit,   ///< tenant's in-flight cap (queued + running) reached
  shutting_down,  ///< service is draining or stopped
  memory_budget,  ///< backend memory estimate exceeds the service budget
};
inline constexpr int kNumRejectReasons = 5;

const char* reject_reason_name(RejectReason r);
/// Inverse of reject_reason_name(); nullopt for unrecognized names.
std::optional<RejectReason> reject_reason_from_name(const std::string& name);

/// Terminal state of an accepted job.
enum class JobStatus : int {
  completed = 0,
  deadline_expired,  ///< queue deadline passed before execution started
  timed_out,         ///< execution budget exhausted (cooperative stop)
  cancelled,         ///< caller cancelled before/while running
  dropped,           ///< service shut down non-gracefully with job pending
  failed,            ///< compile/execute threw (see `error`)
};
inline constexpr int kNumJobStatuses = 6;

const char* job_status_name(JobStatus s);
/// Inverse of job_status_name(); nullopt for unrecognized names.
std::optional<JobStatus> job_status_from_name(const std::string& name);

/// What the submitter asks for.
struct JobSpec {
  std::string tenant = "default";
  Priority priority = Priority::normal;
  qiskit::QuantumCircuit circuit{1};
  /// Max time the job may sit in the queue before it is abandoned
  /// (0 = no deadline). Measured from submission.
  double queue_deadline_s = 0.0;
  /// End-to-end budget; execution stops cooperatively (between fused
  /// blocks) once exceeded (0 = no timeout). Measured from submission.
  double timeout_s = 0.0;
  /// Trace correlation id. 0 = adopt the submitter's ambient
  /// obs::TraceContext, or generate a fresh one when there is none; every
  /// span the job produces (admit, compile, execute) carries this id, so
  /// `GET /trace?trace_id=<hex>` returns the request's merged timeline.
  std::uint64_t trace_id = 0;
  /// Simulation backend for this job (empty = the service default).
  /// Admission prices the job with *this* backend's memory_estimate, so a
  /// 50-qubit GHZ job is admissible on "dd"/"mps" even though its dense
  /// statevector price would dwarf any budget. "auto" asks the router
  /// (route::plan) to pick backend × precision × fusion width under the
  /// service's memory budget and accuracy bound.
  std::string backend;
  /// Execution precision: "fp32", "fp64", or "" for the service default
  /// (Options::fp64 on the fused path; engine-native fp64 elsewhere).
  /// Only the statevector backends honor fp32; the router sets this for
  /// backend=auto jobs.
  std::string precision;
};

/// How an accepted job ended, with its latency breakdown.
struct JobResult {
  JobStatus status = JobStatus::completed;
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string error;        ///< non-empty when status == failed
  bool cache_hit = false;   ///< compilation served from cache
  double queue_wait_s = 0;  ///< submit -> dequeued by a worker
  double compile_s = 0;     ///< transpile + fusion planning (0 on hit)
  double execute_s = 0;     ///< amplitude sweeps
  double e2e_s = 0;         ///< submit -> terminal
  std::uint64_t trace_id = 0;  ///< correlation id of the job's spans
  std::string backend;      ///< backend that executed (or would have)
  std::string precision;    ///< resolved execution precision
  /// Router/cost-model execute-time estimate priced at admission — the
  /// fair-share charge (see qgear.serve.report/v1 "admission").
  double est_execute_s = 0;
  sim::EngineStats stats;   ///< execution counters (completed jobs)
  /// Resilience outcome (see docs/RESILIENCE.md): how many attempts the
  /// job took (1 = first try), whether it was downgraded to a fallback
  /// backend after OutOfMemoryBudget, and the full chain of backends
  /// tried in order (size > 1 only when degraded).
  unsigned attempts = 1;
  bool degraded = false;
  std::vector<std::string> fallback_chain;
  /// Fused blocks restored from a segment checkpoint instead of being
  /// recomputed (nonzero only on retried checkpointed jobs).
  std::uint64_t checkpoint_blocks = 0;
};

using Clock = std::chrono::steady_clock;

/// Internal per-job record shared between submitter, scheduler, and
/// worker. Lives until the last ticket holder releases it.
struct JobState {
  JobSpec spec;
  std::uint64_t id = 0;
  obs::TraceContext ctx;          ///< resolved at submit (see JobSpec)
  std::uint64_t fingerprint = 0;  ///< cache key (computed at submit)
  std::string backend;            ///< resolved backend name
  std::string precision;          ///< resolved "fp32"/"fp64"
  std::uint64_t mem_bytes = 0;    ///< backend memory_estimate at submit
  double est_seconds = 0;         ///< cost-model time estimate at submit
  double cost = 1.0;  ///< fair-share charge (estimated execute seconds)
  Clock::time_point submit_time{};
  Clock::time_point last_enqueue{};  ///< submit, or the latest retry requeue
  Clock::time_point deadline{};      ///< zero when no queue deadline
  Clock::time_point timeout_at{};    ///< zero when no timeout
  std::atomic<bool> cancel_requested{false};
  std::promise<JobResult> promise;

  // Resilience bookkeeping (touched only by the worker that owns the job
  // and the retry nurse, never concurrently).
  unsigned attempt = 0;  ///< failed attempts so far
  bool degraded = false;
  std::vector<std::string> failed_backends;  ///< excluded on re-plan
  std::string checkpoint_path;  ///< empty = checkpointing off for this job
  std::uint64_t checkpoint_blocks = 0;  ///< blocks in the saved checkpoint

  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool has_timeout() const { return timeout_at != Clock::time_point{}; }
};

/// Handle returned by SimService::submit. For rejected submissions
/// `accepted` is false and `result` is not valid.
class JobTicket {
 public:
  JobTicket() = default;
  JobTicket(RejectReason reason) : reason_(reason) {}
  JobTicket(std::shared_ptr<JobState> state, std::shared_future<JobResult> f)
      : state_(std::move(state)), result_(std::move(f)) {}

  bool accepted() const { return state_ != nullptr; }
  RejectReason reject_reason() const { return reason_; }
  std::uint64_t job_id() const { return state_ ? state_->id : 0; }
  std::uint64_t trace_id() const { return state_ ? state_->ctx.trace_id : 0; }

  /// Future for the terminal JobResult (valid only when accepted()).
  const std::shared_future<JobResult>& result() const { return result_; }

  /// Requests cooperative cancellation: honored while queued and between
  /// fused blocks while executing. The result future still completes
  /// (status cancelled, or completed if the job won the race).
  void cancel() {
    if (state_) state_->cancel_requested.store(true, std::memory_order_relaxed);
  }

 private:
  RejectReason reason_ = RejectReason::none;
  std::shared_ptr<JobState> state_;
  std::shared_future<JobResult> result_;
};

}  // namespace qgear::serve
